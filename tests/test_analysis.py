"""Tests for the cost model, the Figure 2 α-error pipeline, and metrics."""

import pytest

from repro import collectives, topology
from repro.analysis import (Table, allgather_bandwidth_lower_bound,
                            alpha_blind_error, human_bytes, improvement_pct,
                            path_time, pipelined_path_time, speedup_pct)
from repro.core import TecclConfig, solve_milp
from repro.errors import ModelError


class TestCostModel:
    def test_path_time_sums_hops(self):
        topo = topology.line(3, capacity=2.0, alpha=0.5)
        assert path_time(topo, [0, 1, 2], 4.0) == pytest.approx(5.0)

    def test_trivial_path(self):
        topo = topology.line(2)
        assert path_time(topo, [0], 1.0) == 0.0

    def test_pipelined_beats_store_and_forward(self):
        topo = topology.line(4, capacity=1.0, alpha=0.1)
        size = 8.0
        naive = path_time(topo, [0, 1, 2, 3], size)
        piped = pipelined_path_time(topo, [0, 1, 2, 3], size, chunk_bytes=1.0)
        assert piped < naive

    def test_pipelined_validates_chunk(self):
        topo = topology.line(3)
        with pytest.raises(ModelError):
            pipelined_path_time(topo, [0, 1, 2], 4.0, chunk_bytes=8.0)

    def test_allgather_lower_bound(self):
        topo = topology.ring(4, capacity=1.0)
        bound = allgather_bandwidth_lower_bound(topo, per_gpu_bytes=1.0)
        # each GPU ingests 3 bytes over 2 in-links of 1 B/s
        assert bound == pytest.approx(1.5)

    def test_lower_bound_holds_for_milp(self, ring4, ag_ring4):
        out = solve_milp(ring4, ag_ring4,
                         TecclConfig(chunk_bytes=1.0, num_epochs=8))
        bound = allgather_bandwidth_lower_bound(ring4, per_gpu_bytes=1.0)
        assert out.finish_time >= bound - 1e-9


class TestAlphaError:
    def test_error_grows_as_transfers_shrink(self):
        """Figure 2's monotone trend on a small two-chassis fabric."""
        topo = topology.internal2(2)
        errors = []
        for chunk in (1e7, 1e5, 1e3):
            demand = collectives.allgather(topo.gpus, 1)
            config = TecclConfig(chunk_bytes=chunk, num_epochs=10)
            point = alpha_blind_error(topo, demand, config)
            errors.append(point.relative_error_pct)
        assert errors[0] < errors[-1]
        assert errors[-1] > 50.0  # alpha dominates tiny transfers

    def test_zero_alpha_topology_has_zero_error(self, ring4, ag_ring4):
        point = alpha_blind_error(ring4, ag_ring4,
                                  TecclConfig(chunk_bytes=1.0, num_epochs=8))
        assert point.relative_error_pct == pytest.approx(0.0, abs=1e-6)

    def test_point_validation(self):
        from repro.analysis import AlphaErrorPoint

        with pytest.raises(ModelError):
            AlphaErrorPoint(1.0, 0.0, 1.0).relative_error_pct


class TestMetrics:
    def test_improvement_pct(self):
        assert improvement_pct(3.0, 2.0) == pytest.approx(50.0)
        with pytest.raises(ModelError):
            improvement_pct(1.0, 0.0)

    def test_speedup_pct(self):
        assert speedup_pct(1.0, 3.0) == pytest.approx(200.0)
        with pytest.raises(ModelError):
            speedup_pct(0.0, 1.0)

    def test_table_rendering(self):
        table = Table("Demo", columns=["CT", "AB"])
        table.add("2 ch AG", CT=12.5, AB=3.14)
        table.add("4 ch AG", CT=None, AB="n/a")
        text = table.render()
        assert "2 ch AG" in text
        assert "X" in text  # None renders as the paper's infeasible mark
        assert "n/a" in text

    def test_human_bytes(self):
        assert human_bytes(1e9) == "1G"
        assert human_bytes(256e6) == "256M"
        assert human_bytes(25e3) == "25K"
        assert human_bytes(12) == "12B"
