"""Tests for the parallel decomposition paths (PR 7).

Covers the shared sub-solve executor (:mod:`repro.core.subsolve`), the
POP thread/process fan-out, and the hierarchical fingerprint dedup —
always against the invariant that parallel/deduped runs produce merged
schedules *identical* to the sequential paths and conformance-clean.
"""

import threading
import time

import pytest

from repro import collectives, topology
from repro.core import TecclConfig
from repro.core.hierarchical import chassis_groups, hierarchical_allgather
from repro.core.pop import solve_lp_pop
from repro.core.subsolve import SubSolveCache, run_subsolves
from repro.errors import ModelError
from repro.service.pool import SolvePool
from repro.simulate import check_flow, check_result
from repro.solver import SolverOptions

pytestmark = pytest.mark.parallel


# ----------------------------------------------------------------------
# the shared executor
# ----------------------------------------------------------------------
class TestRunSubsolves:
    def test_results_in_task_order(self):
        tasks = [lambda i=i: (time.sleep(0.002 * (8 - i)), i)[1]
                 for i in range(8)]
        assert run_subsolves(tasks, jobs=8) == list(range(8))

    def test_jobs_one_is_sequential(self):
        thread_ids = []

        def task():
            thread_ids.append(threading.get_ident())
            return len(thread_ids)

        assert run_subsolves([task] * 4, jobs=1) == [1, 2, 3, 4]
        assert set(thread_ids) == {threading.get_ident()}

    def test_single_task_runs_inline(self):
        ident = []
        run_subsolves([lambda: ident.append(threading.get_ident())],
                      jobs=8)
        assert ident == [threading.get_ident()]

    def test_lowest_index_error_wins(self):
        def ok():
            return "fine"

        def value_error():
            raise ValueError("index 1")

        def key_error():
            raise KeyError("index 3")

        with pytest.raises(ValueError, match="index 1"):
            run_subsolves([ok, value_error, ok, key_error], jobs=4)

    def test_all_tasks_run_even_after_a_failure(self):
        ran = []

        def task(i):
            ran.append(i)
            if i == 0:
                raise RuntimeError("first dies")
            return i

        with pytest.raises(RuntimeError):
            run_subsolves([lambda i=i: task(i) for i in range(6)], jobs=2)
        assert sorted(ran) == list(range(6))

    def test_thread_hammer(self):
        """Many tasks, narrow pool: every task runs exactly once, results
        stay ordered, and work genuinely spreads across threads."""
        seen = []
        lock = threading.Lock()

        def task(i):
            with lock:
                seen.append((i, threading.get_ident()))
            time.sleep(0.001)
            return i * i

        results = run_subsolves(
            [lambda i=i: task(i) for i in range(64)], jobs=8)
        assert results == [i * i for i in range(64)]
        assert len(seen) == 64
        assert len({t for _, t in seen}) > 1


class TestSubSolveCache:
    def test_second_request_hits(self):
        cache = SubSolveCache()
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            return object()

        first, hit1 = cache.solve("k", fn)
        second, hit2 = cache.solve("k", fn)
        assert (hit1, hit2) == (False, True)
        assert first is second and calls["n"] == 1
        assert (cache.solves, cache.hits) == (1, 2 - 1)

    def test_distinct_keys_solve_separately(self):
        cache = SubSolveCache()
        assert cache.solve("a", lambda: 1)[0] == 1
        assert cache.solve("b", lambda: 2)[0] == 2
        assert cache.solves == 2 and cache.hits == 0

    def test_concurrent_identical_requests_coalesce(self):
        cache = SubSolveCache()
        barrier = threading.Barrier(16)
        calls = {"n": 0}
        results = []
        lock = threading.Lock()

        def fn():
            calls["n"] += 1
            time.sleep(0.01)
            return object()

        def worker():
            barrier.wait()
            value, _ = cache.solve("k", fn)
            with lock:
                results.append(value)

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert calls["n"] == 1
        assert len(results) == 16 and len({id(v) for v in results}) == 1
        assert cache.solves == 1 and cache.hits == 15

    def test_owner_failure_propagates_to_everyone(self):
        cache = SubSolveCache()

        def boom():
            raise RuntimeError("owner died")

        with pytest.raises(RuntimeError, match="owner died"):
            cache.solve("k", boom)
        # joiners observe the same cached failure, never a re-solve
        with pytest.raises(RuntimeError, match="owner died"):
            cache.solve("k", lambda: "never runs")


# ----------------------------------------------------------------------
# POP fan-out: parallel == sequential, always conformance-clean
# ----------------------------------------------------------------------
def _lp_config():
    return TecclConfig(chunk_bytes=1.0,
                       solver=SolverOptions(time_limit=60))


def _assert_pop_identical(seq, par, topo, demand, config):
    assert par.schedule.flows == seq.schedule.flows
    assert par.schedule.reads == seq.schedule.reads
    assert par.finish_time == pytest.approx(seq.finish_time)
    assert par.plan.num_epochs == seq.plan.num_epochs
    for a, b in zip(seq.sub_outcomes, par.sub_outcomes):
        assert a.result.objective == pytest.approx(b.result.objective)
    report = check_flow(par.schedule, topo, demand, par.plan, config=config)
    assert report.ok, report.violations[:3]


class TestPopParallel:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_incremental_thread_fanout_matches_sequential(self, seed):
        topo = topology.ring(4, capacity=1.0)
        demand = collectives.alltoall(topo.gpus, 1)
        config = _lp_config()
        seq = solve_lp_pop(topo, demand, config, num_partitions=2,
                           seed=seed)
        par = solve_lp_pop(topo, demand, config, num_partitions=2,
                           seed=seed, parallel=True, jobs=4)
        _assert_pop_identical(seq, par, topo, demand, config)

    def test_cold_thread_fanout_matches_sequential(self):
        topo = topology.internal2(2)
        demand = collectives.alltoall(topo.gpus, 1)
        config = TecclConfig(chunk_bytes=1e6,
                             solver=SolverOptions(time_limit=60))
        seq = solve_lp_pop(topo, demand, config, num_partitions=2,
                           incremental=False)
        par = solve_lp_pop(topo, demand, config, num_partitions=2,
                           incremental=False, parallel=True)
        _assert_pop_identical(seq, par, topo, demand, config)

    def test_pool_requires_cold_path(self):
        topo = topology.ring(4, capacity=1.0)
        demand = collectives.alltoall(topo.gpus, 1)
        with SolvePool(executor="inline") as pool:
            with pytest.raises(ModelError, match="incremental"):
                solve_lp_pop(topo, demand, _lp_config(),
                             num_partitions=2, pool=pool)

    def test_pooled_process_style_fanout_matches_sequential(self):
        """The full serialise → worker → deserialise round trip, run on
        an inline pool so the test stays cheap and deterministic."""
        topo = topology.ring(4, capacity=1.0)
        demand = collectives.alltoall(topo.gpus, 1)
        config = _lp_config()
        seq = solve_lp_pop(topo, demand, config, num_partitions=2,
                           incremental=False)
        with SolvePool(executor="inline") as pool:
            pooled = solve_lp_pop(topo, demand, config, num_partitions=2,
                                  incremental=False, pool=pool)
            assert pool.stats.solves == 2
        _assert_pop_identical(seq, pooled, topo, demand, config)
        # the primal vector stays behind in the worker
        assert all(o.result.values is None for o in pooled.sub_outcomes)

    @pytest.mark.slow
    def test_pooled_real_processes_match_sequential(self):
        topo = topology.ring(4, capacity=1.0)
        demand = collectives.alltoall(topo.gpus, 1)
        config = _lp_config()
        seq = solve_lp_pop(topo, demand, config, num_partitions=2,
                           incremental=False)
        with SolvePool(max_workers=2, executor="process") as pool:
            pooled = solve_lp_pop(topo, demand, config, num_partitions=2,
                                  incremental=False, pool=pool)
        _assert_pop_identical(seq, pooled, topo, demand, config)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("partitions", [2, 4])
    def test_seeded_differential_sweep(self, seed, partitions):
        """The full grid: every (seed, k) pair, warm and cold, threads."""
        topo = topology.internal2(2)
        demand = collectives.alltoall(topo.gpus, 1)
        config = TecclConfig(chunk_bytes=1e6,
                             solver=SolverOptions(time_limit=60))
        for incremental in (True, False):
            seq = solve_lp_pop(topo, demand, config,
                               num_partitions=partitions, seed=seed,
                               incremental=incremental)
            par = solve_lp_pop(topo, demand, config,
                               num_partitions=partitions, seed=seed,
                               incremental=incremental, parallel=True)
            _assert_pop_identical(seq, par, topo, demand, config)


# ----------------------------------------------------------------------
# hierarchical: dedup + concurrency vs the sequential path
# ----------------------------------------------------------------------
def _hier_config():
    return TecclConfig(chunk_bytes=1e6,
                       solver=SolverOptions(mip_gap=0.2, time_limit=30))


def _assert_hier_identical(seq, fast):
    assert fast.finish_time == pytest.approx(seq.finish_time)
    for a, b in zip(seq.phases(), fast.phases()):
        assert a.label == b.label
        assert b.finish_time == pytest.approx(a.finish_time)
        assert b.synthesis.schedule.to_dict() == \
            a.synthesis.schedule.to_dict()


def _assert_hier_conformant(outcome):
    for phase in outcome.phases():
        if phase.synthesis.hyper is None:
            report = check_result(phase.synthesis,
                                  topology=phase.fabric.topology,
                                  demand=phase.demand)
        else:
            report = check_result(phase.synthesis)
        assert report.ok, (phase.label, report.violations[:3])


class TestHierarchicalDedupParallel:
    def test_dedup_matches_sequential_on_symmetric_chassis(self):
        topo = topology.internal2(2)
        plans = chassis_groups(topo, 2)
        seq = hierarchical_allgather(topo, _hier_config(), chassis=plans,
                                     dedup=False)
        ded = hierarchical_allgather(topo, _hier_config(), chassis=plans,
                                     dedup=True)
        _assert_hier_identical(seq, ded)
        _assert_hier_conformant(ded)
        # 2 symmetric chassis: 5 instances collapse to 3 distinct solves
        assert seq.sub_solves == 5 and seq.dedup_hits == 0
        assert ded.sub_solves == 3 and ded.dedup_hits == 2
        assert [p.deduped for p in ded.phases()].count(True) == 2

    def test_parallel_dedup_matches_sequential(self):
        topo = topology.internal2(2)
        plans = chassis_groups(topo, 2)
        seq = hierarchical_allgather(topo, _hier_config(), chassis=plans,
                                     dedup=False)
        fast = hierarchical_allgather(topo, _hier_config(), chassis=plans,
                                      dedup=True, parallel=True, jobs=4)
        _assert_hier_identical(seq, fast)
        _assert_hier_conformant(fast)
        assert fast.sub_solves == 3

    def test_parallel_without_dedup_matches_sequential(self):
        topo = topology.internal2(2)
        plans = chassis_groups(topo, 2)
        seq = hierarchical_allgather(topo, _hier_config(), chassis=plans,
                                     dedup=False)
        par = hierarchical_allgather(topo, _hier_config(), chassis=plans,
                                     dedup=False, parallel=True)
        _assert_hier_identical(seq, par)
        assert par.sub_solves == 5

    def test_capacity_fn_disables_dedup(self):
        topo = topology.internal2(2)
        plans = chassis_groups(topo, 2)
        config = TecclConfig(
            chunk_bytes=1e6,
            solver=SolverOptions(mip_gap=0.2, time_limit=30),
            capacity_fn=lambda i, j, k: 25e9)
        out = hierarchical_allgather(topo, config, chassis=plans,
                                     dedup=True)
        # a callable has no canonical form: every instance solves itself
        assert out.sub_solves == 5 and out.dedup_hits == 0

    @pytest.mark.slow
    def test_four_symmetric_chassis_collapse_three_to_one(self):
        """The acceptance shape: G=4 symmetric chassis, 9 instances,
        3 distinct solves — ≥2x fewer than sequential."""
        topo = topology.internal2(4)
        plans = chassis_groups(topo, 2)
        seq = hierarchical_allgather(topo, _hier_config(), chassis=plans,
                                     dedup=False)
        ded = hierarchical_allgather(topo, _hier_config(), chassis=plans,
                                     dedup=True, parallel=True)
        _assert_hier_identical(seq, ded)
        _assert_hier_conformant(ded)
        assert seq.sub_solves == 9
        assert ded.sub_solves == 3
        assert ded.dedup_hits == 6
