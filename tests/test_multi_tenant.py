"""Multi-tenant synthesis (§5): priority weighting and shared capacity."""

import math

import pytest

from repro import collectives, topology
from repro.collectives.demand import Demand, TenantDemand
from repro.core import TecclConfig
from repro.core.solve import Method, SynthesisResult, synthesize_multi_tenant

_EPS = 1e-9


def _tenant_completion(result: SynthesisResult, demand: Demand) -> float:
    """When the *first* tenant's last demanded chunk lands, in seconds.

    merge_tenants keeps the first tenant's (source, chunk) ids unchanged, so
    its triples can be read straight off the merged schedule: a send into
    destination d carrying (s, c) delivers at (epoch + Δ + 1)·τ.
    """
    plan = result.plan
    finish = 0.0
    for s, c, d in demand.triples():
        arrivals = [
            (send.epoch + plan.arrival_offset(send.src, send.dst) + 1)
            * plan.tau
            for send in result.schedule.sends
            if send.source == s and send.chunk == c and send.dst == d]
        assert arrivals, f"triple ({s},{c},{d}) never delivered"
        finish = max(finish, min(arrivals))
    return finish


@pytest.fixture
def contended():
    """Two allgather tenants sharing a unit-capacity 4-ring.

    Eight commodities over eight unit links: the fabric cannot finish both
    tenants at the single-tenant optimum, so the objective's priority
    weights decide who waits.
    """
    topo = topology.ring(4, capacity=1.0, alpha=0.0)
    demand_a = collectives.allgather(topo.gpus, 1)
    demand_b = collectives.allgather(topo.gpus, 1)
    config = TecclConfig(chunk_bytes=1.0, num_epochs=8)
    return topo, demand_a, demand_b, config


def _solve(topo, demand_a, demand_b, config, priority_a: float):
    tenants = [TenantDemand(demand=demand_a, priority=priority_a, name="a"),
               TenantDemand(demand=demand_b, priority=1.0, name="b")]
    return synthesize_multi_tenant(topo, tenants, config,
                                   method=Method.MILP)


class TestPriorities:
    def test_raising_priority_weakly_helps_that_tenant(self, contended):
        topo, demand_a, demand_b, config = contended
        baseline = _solve(topo, demand_a, demand_b, config, priority_a=1.0)
        boosted = _solve(topo, demand_a, demand_b, config, priority_a=10.0)
        t_base = _tenant_completion(baseline, demand_a)
        t_boost = _tenant_completion(boosted, demand_a)
        assert t_boost <= t_base + _EPS

    def test_priority_cannot_beat_single_tenant_optimum(self, contended):
        topo, demand_a, demand_b, config = contended
        from repro.core.solve import synthesize

        alone = synthesize(topo, demand_a, config, method=Method.MILP)
        boosted = _solve(topo, demand_a, demand_b, config, priority_a=100.0)
        assert _tenant_completion(boosted, demand_a) >= \
            alone.finish_time - _EPS

    def test_both_tenants_fully_served(self, contended):
        topo, demand_a, demand_b, config = contended
        result = _solve(topo, demand_a, demand_b, config, priority_a=5.0)
        # every merged triple is delivered (the helper asserts delivery for
        # tenant a; tenant b's chunks are the renumbered remainder)
        _tenant_completion(result, demand_a)
        delivered = {(s.source, s.chunk, s.dst)
                     for s in result.schedule.sends}
        merged_chunks = {c for _, c, _ in
                         (t for t in result.demand_used.triples())}
        assert merged_chunks == {0, 1}  # tenant a's chunk 0, b's renamed to 1
        for s, c, d in result.demand_used.triples():
            assert any(send.source == s and send.chunk == c and send.dst == d
                       for send in result.schedule.sends)


class TestSharedCapacity:
    def test_merged_demand_respects_link_capacity(self, contended):
        """No (link, epoch) carries more chunks than the fabric allows —
        tenants share constraints, they don't each get a copy of the
        network."""
        topo, demand_a, demand_b, config = contended
        result = _solve(topo, demand_a, demand_b, config, priority_a=3.0)
        plan = result.plan
        load: dict[tuple[tuple[int, int], int], int] = {}
        for send in result.schedule.sends:
            load[(send.link, send.epoch)] = \
                load.get((send.link, send.epoch), 0) + 1
        assert load, "schedule is empty"
        for (link, _), count in load.items():
            cap = math.floor(plan.cap_chunks[link] + _EPS)
            assert count <= cap, \
                f"link {link} carries {count} chunks > capacity {cap}"

    def test_merged_uses_strictly_more_epochs_than_one_tenant(self,
                                                              contended):
        """Doubling the demand on a saturated fabric must cost time."""
        from repro.core.solve import synthesize

        topo, demand_a, demand_b, config = contended
        alone = synthesize(topo, demand_a, config, method=Method.MILP)
        merged = _solve(topo, demand_a, demand_b, config, priority_a=1.0)
        assert merged.finish_time > alone.finish_time - _EPS
        assert merged.finish_time >= alone.finish_time * 1.5
