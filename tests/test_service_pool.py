"""SolvePool lifecycle: in-flight retirement, coalescing, warm payloads.

The regression that matters here (PR 4 satellite): a solve that *fails*
must leave the in-flight registry, so a later identical request re-solves
instead of inheriting the old exception forever.
"""

import time

import pytest

from repro.errors import ModelError
from repro.service import Planner, ScheduleCache, SolvePool

FP = "f" * 64


def _boom(request_dict):
    """Module-level so the process executor can pickle it."""
    raise ModelError("boom")


def _wait_retired(pool, timeout=5.0):
    """Done-callbacks run on executor threads; give them a beat."""
    deadline = time.monotonic() + timeout
    while pool.inflight_count and time.monotonic() < deadline:
        time.sleep(0.01)
    return pool.inflight_count == 0


class TestFailedSolveRetirement:
    def test_inline_executor_retires_and_resolves(self):
        calls = {"n": 0}

        def flaky(request_dict):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ModelError("boom")
            return {"attempt": calls["n"]}

        pool = SolvePool(executor="inline", solve_fn=flaky)
        future, coalesced = pool.submit(FP, {})
        assert not coalesced
        with pytest.raises(ModelError, match="boom"):
            pool.wait(future)
        assert pool.inflight_count == 0
        # the identical request must re-solve, not join the dead future
        retry, coalesced = pool.submit(FP, {})
        assert not coalesced
        assert pool.wait(retry) == {"attempt": 2}
        assert pool.stats.solves == 2
        assert pool.stats.errors == 1
        assert pool.stats.completed == 1

    def test_process_executor_retires_and_resolves(self):
        pool = SolvePool(max_workers=1, executor="process", solve_fn=_boom)
        try:
            future, coalesced = pool.submit(FP, {})
            assert not coalesced
            with pytest.raises(ModelError, match="boom"):
                pool.wait(future)
            assert _wait_retired(pool)
            retry, coalesced = pool.submit(FP, {})
            assert not coalesced  # a fresh solve, not the dead future
            with pytest.raises(ModelError, match="boom"):
                pool.wait(retry)
            assert pool.stats.solves == 2
            assert pool.stats.errors >= 1
        finally:
            pool.shutdown()

    def test_planner_retries_after_failed_solve(self):
        """End to end: a failed plan() does not poison the fingerprint."""
        from repro import collectives, topology
        from repro.core import TecclConfig
        from repro.service import PlanRequest

        calls = {"n": 0}

        def flaky(request_dict):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ModelError("first call dies")
            from repro.service.pool import solve_request

            return solve_request(request_dict)

        topo = topology.ring(4, capacity=1.0)
        request = PlanRequest(
            topology=topo, demand=collectives.alltoall(topo.gpus, 1),
            config=TecclConfig(chunk_bytes=1.0, num_epochs=4))
        planner = Planner(cache=ScheduleCache(capacity=4),
                          pool=SolvePool(executor="inline", solve_fn=flaky))
        with planner:
            with pytest.raises(ModelError):
                planner.plan(request)
            response = planner.plan(request)
            assert response.ok and not response.cache_hit \
                and not response.coalesced
            assert calls["n"] == 2
