"""Tests for the tree baselines (binomial, chain, double binary trees)."""

import math

import pytest

from repro import collectives, topology
from repro.baselines.trees import (LogicalTree, binomial_broadcast,
                                   binomial_tree, chain_tree,
                                   double_binary_trees,
                                   double_tree_broadcast, tree_allgather)
from repro.core import TecclConfig, solve_milp
from repro.core.epochs import plan_with_tau
from repro.errors import DemandError, TopologyError
from repro.simulate import verify


def cfg(num_epochs=None, **kwargs):
    return TecclConfig(chunk_bytes=1.0, num_epochs=num_epochs, **kwargs)


class TestLogicalTree:
    def test_edges_bfs_order(self):
        tree = LogicalTree(root=0, children={0: (1, 2), 1: (3,), 2: (),
                                             3: ()})
        assert tree.edges_bfs() == [(0, 1), (0, 2), (1, 3)]

    def test_nodes_and_leaves(self):
        tree = LogicalTree(root=0, children={0: (1, 2), 1: (), 2: ()})
        assert tree.nodes == [0, 1, 2]
        assert tree.leaves() == [1, 2]

    def test_depth(self):
        tree = LogicalTree(root=0, children={0: (1,), 1: (2,), 2: ()})
        assert tree.depth() == 2
        assert LogicalTree(root=5, children={5: ()}).depth() == 0

    def test_cycle_rejected(self):
        with pytest.raises(TopologyError):
            LogicalTree(root=0, children={0: (1,), 1: (0,)})

    def test_unreachable_member_rejected(self):
        with pytest.raises(TopologyError):
            LogicalTree(root=0, children={0: (), 1: (2,), 2: ()})


class TestBinomialTree:
    def test_doubling_step_count(self):
        tree = binomial_tree(0, list(range(8)))
        # each BFS level t has 2^t senders; total depth = log2(8) = 3
        assert tree.depth() == 3
        assert sorted(tree.nodes) == list(range(8))

    def test_non_power_of_two(self):
        tree = binomial_tree(0, list(range(6)))
        assert sorted(tree.nodes) == list(range(6))
        # tree depth never exceeds the ceil(log2 N) doubling step count
        assert tree.depth() <= math.ceil(math.log2(6))

    def test_root_must_be_member(self):
        with pytest.raises(DemandError):
            binomial_tree(9, [0, 1, 2])

    def test_duplicate_members_rejected(self):
        with pytest.raises(DemandError):
            binomial_tree(0, [0, 1, 1])

    def test_two_members(self):
        tree = binomial_tree(3, [3, 7])
        assert tree.edges_bfs() == [(3, 7)]


class TestChainTree:
    def test_is_a_path(self):
        tree = chain_tree(2, [2, 0, 1])
        assert tree.edges_bfs() == [(2, 0), (0, 1)]
        assert tree.depth() == 2

    def test_root_must_be_member(self):
        with pytest.raises(DemandError):
            chain_tree(5, [0, 1])


class TestDoubleBinaryTrees:
    def test_complementary_leaf_property_even(self):
        tree_a, tree_b = double_binary_trees(list(range(8)))
        leaves_a = set(tree_a.leaves())
        leaves_b = set(tree_b.leaves())
        # every rank is a leaf in at most one tree
        assert not (leaves_a & leaves_b)

    def test_both_span_all_members(self):
        for n in (2, 3, 5, 8):
            tree_a, tree_b = double_binary_trees(list(range(n)))
            assert sorted(tree_a.nodes) == list(range(n))
            assert sorted(tree_b.nodes) == list(range(n))

    def test_logarithmic_depth(self):
        tree_a, _ = double_binary_trees(list(range(16)))
        assert tree_a.depth() <= math.ceil(math.log2(16)) + 1

    def test_too_few_members(self):
        with pytest.raises(DemandError):
            double_binary_trees([0])


class TestBroadcastSchedules:
    def test_binomial_broadcast_delivers(self, ring4):
        sched = binomial_broadcast(ring4, cfg(), root=0, num_chunks=2)
        demand = collectives.broadcast(0, ring4.gpus, 2)
        plan = plan_with_tau(ring4, 1.0, tau=1.0, num_epochs=sched.num_epochs)
        verify(sched, ring4, demand, plan)

    def test_binomial_broadcast_through_switch(self, star3):
        sched = binomial_broadcast(star3, cfg(), root=0, num_chunks=1)
        demand = collectives.broadcast(0, star3.gpus, 1)
        plan = plan_with_tau(star3, 1.0, tau=1.0, num_epochs=sched.num_epochs)
        verify(sched, star3, demand, plan)

    def test_double_tree_broadcast_delivers(self):
        topo = topology.full_mesh(6, capacity=1.0)
        sched = double_tree_broadcast(topo, cfg(), root=0, num_chunks=4)
        demand = collectives.broadcast(0, topo.gpus, 4)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=sched.num_epochs)
        verify(sched, topo, demand, plan)

    def test_double_tree_requires_two_chunks(self, ring4):
        with pytest.raises(DemandError):
            double_tree_broadcast(ring4, cfg(), root=0, num_chunks=1)

    def test_milp_at_least_as_good_as_binomial(self, ring4):
        demand = collectives.broadcast(0, ring4.gpus, 1)
        tree_sched = binomial_broadcast(ring4, cfg(), root=0, num_chunks=1)
        opt = solve_milp(ring4, demand, cfg(8))
        assert opt.finish_time <= tree_sched.finish_time(ring4) + 1e-9


class TestTreeAllgather:
    def test_delivers_on_mesh(self):
        topo = topology.full_mesh(4, capacity=1.0)
        sched = tree_allgather(topo, cfg(), chunks_per_gpu=1)
        demand = collectives.allgather(topo.gpus, 1)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=sched.num_epochs)
        verify(sched, topo, demand, plan)

    def test_delivers_on_dgx1(self, dgx1):
        config = TecclConfig(chunk_bytes=1e6)
        sched = tree_allgather(dgx1, config, chunks_per_gpu=1)
        demand = collectives.allgather(dgx1.gpus, 1)
        from repro.core.epochs import build_epoch_plan

        plan = build_epoch_plan(dgx1, config, num_epochs=sched.num_epochs)
        verify(sched, dgx1, demand, plan)

    def test_milp_at_least_as_good(self, ring4, ag_ring4):
        tree_sched = tree_allgather(ring4, cfg(), chunks_per_gpu=1)
        opt = solve_milp(ring4, ag_ring4, cfg(8))
        assert opt.finish_time <= tree_sched.finish_time(ring4) + 1e-9
