"""Regression pins: legacy stats facades atop the metrics registry.

PR 6 moved ``PlannerStats``, ``PoolStats``, and the fleet controller's
counters onto :class:`repro.obs.metrics.MetricsRegistry`.  Every test in
this file pins the *old* public surface — dict keys, value types,
attribute ``+=`` mutation — byte-for-byte, so downstream consumers of
``stats()`` dicts (status files, benches, the CLI) cannot silently
break.
"""

import json

import pytest

from repro import collectives, topology
from repro.core import TecclConfig
from repro.fleet import AdaptationController, FleetJob, SyntheticTelemetry
from repro.service import Planner
from repro.service.planner import PlannerStats
from repro.service.pool import PoolStats, SolvePool

pytestmark = pytest.mark.obs


class TestPlannerStats:
    def test_dict_shape_pinned(self):
        stats = PlannerStats()
        assert stats.to_dict() == {
            "requests": 0, "timeouts": 0, "conformance_checks": 0,
            "conformance_failures": 0, "warm_donors": 0, "replans": 0,
            "symmetry_collapses": 0}
        assert list(stats.to_dict()) == [
            "requests", "timeouts", "conformance_checks",
            "conformance_failures", "warm_donors", "replans",
            "symmetry_collapses"]

    def test_values_stay_ints(self):
        stats = PlannerStats()
        stats.requests += 3
        stats.warm_donors = 2
        assert stats.requests == 3
        assert isinstance(stats.requests, int)
        assert all(isinstance(v, int) for v in stats.to_dict().values())
        json.dumps(stats.to_dict())  # JSON-safe, as status files require

    def test_backed_by_registry(self):
        stats = PlannerStats()
        stats.requests += 1
        snapshot = stats.registry.snapshot()
        assert snapshot["planner_requests_total"]["value"] == 1
        text = stats.registry.prometheus_text()
        assert "planner_requests_total 1" in text


class TestPoolStats:
    def test_dict_shape_pinned(self):
        stats = PoolStats()
        assert stats.to_dict() == {
            "solves": 0, "coalesced": 0, "completed": 0, "errors": 0}
        assert list(stats.to_dict()) == [
            "solves", "coalesced", "completed", "errors"]

    def test_solves_mirrors_submitted(self):
        stats = PoolStats()
        stats.submitted += 2
        assert stats.solves == 2
        assert isinstance(stats.solves, int)
        assert stats.registry.snapshot()["pool_submitted_total"]["value"] == 2

    def test_live_pool_counts(self):
        with SolvePool(executor="inline",
                       solve_fn=lambda request_dict: {"ok": True}) as pool:
            future, coalesced = pool.submit("fp", {})
            assert not coalesced
            assert pool.wait(future) == {"ok": True}
        assert pool.stats.to_dict() == {
            "solves": 1, "coalesced": 0, "completed": 1, "errors": 0}


class TestPlannerFacade:
    def test_stats_dict_shape_pinned(self):
        with Planner(executor="inline") as planner:
            stats = planner.stats()
        assert list(stats) == [
            "requests", "timeouts", "conformance_checks",
            "conformance_failures", "warm_donors", "replans",
            "symmetry_collapses",
            "hits", "misses", "solves", "coalesced", "cache", "pool"]
        assert list(stats["cache"]) == [
            "hits", "memory_hits", "disk_hits", "misses", "stores",
            "evictions", "invalidations", "near_hits", "near_misses"]
        assert list(stats["pool"]) == ["solves", "coalesced", "completed",
                                       "errors"]

    def test_serve_latency_outside_stats(self):
        """The latency summary is additive API, not a stats() key."""
        with Planner(executor="inline") as planner:
            assert "serve_latency" not in planner.stats()
            latency = planner.serve_latency()
        assert set(latency) == {"count", "sum", "p50", "p95", "p99"}
        assert latency["count"] == 0

    def test_metrics_snapshot_merges_pool_scope(self):
        with Planner(executor="inline") as planner:
            snapshot = planner.metrics_snapshot()
        assert "planner_requests_total" in snapshot
        assert "planner_serve_latency_seconds" in snapshot
        assert "pool_submitted_total" in snapshot


class TestControllerStats:
    def test_stats_dict_shape_pinned(self):
        topo = topology.ring(4, capacity=1.0)
        with Planner(executor="inline") as planner:
            daemon = AdaptationController(
                topo, SyntheticTelemetry(topo), planner)
            daemon.add_job(FleetJob(
                name="a2a", demand=collectives.alltoall(topo.gpus, 1),
                config=TecclConfig(chunk_bytes=1.0)))
            daemon.step()
            stats = daemon.stats()
            status = daemon.status()
        assert list(stats) == [
            "polls", "samples", "transitions", "replans", "kept",
            "rollbacks", "failed", "errors", "adaptation_solve_time"]
        for key, value in stats.items():
            if key == "adaptation_solve_time":
                assert isinstance(value, float)
            else:
                assert isinstance(value, int)
        assert stats["polls"] == 1
        # the histogram-backed latency summary rides status(), not stats()
        assert set(status["serve_latency"]) == {"count", "sum", "p50",
                                                "p95", "p99"}
        json.dumps(status)  # the fleet status file must stay JSON-safe

    def test_counters_visible_in_metrics_registry(self):
        topo = topology.ring(4, capacity=1.0)
        with Planner(executor="inline") as planner:
            daemon = AdaptationController(
                topo, SyntheticTelemetry(topo), planner)
            daemon.step()
            snapshot = daemon.metrics.snapshot()
        assert snapshot["fleet_polls_total"]["value"] == 1
        assert "fleet_adaptation_solve_seconds_total" in snapshot
