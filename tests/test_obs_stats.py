"""Regression pins: legacy stats facades atop the metrics registry.

PR 6 moved ``PlannerStats``, ``PoolStats``, and the fleet controller's
counters onto :class:`repro.obs.metrics.MetricsRegistry`.  Every test in
this file pins the *old* public surface — dict keys, value types,
attribute ``+=`` mutation — byte-for-byte, so downstream consumers of
``stats()`` dicts (status files, benches, the CLI) cannot silently
break.
"""

import json

import pytest

from repro import collectives, topology
from repro.core import TecclConfig
from repro.fleet import AdaptationController, FleetJob, SyntheticTelemetry
from repro.service import Planner
from repro.service.planner import PlannerStats
from repro.service.pool import PoolStats, SolvePool

pytestmark = pytest.mark.obs


class TestPlannerStats:
    def test_dict_shape_pinned(self):
        stats = PlannerStats()
        assert stats.to_dict() == {
            "requests": 0, "timeouts": 0, "conformance_checks": 0,
            "conformance_failures": 0, "warm_donors": 0, "replans": 0,
            "symmetry_collapses": 0}
        assert list(stats.to_dict()) == [
            "requests", "timeouts", "conformance_checks",
            "conformance_failures", "warm_donors", "replans",
            "symmetry_collapses"]

    def test_values_stay_ints(self):
        stats = PlannerStats()
        stats.requests += 3
        stats.warm_donors = 2
        assert stats.requests == 3
        assert isinstance(stats.requests, int)
        assert all(isinstance(v, int) for v in stats.to_dict().values())
        json.dumps(stats.to_dict())  # JSON-safe, as status files require

    def test_backed_by_registry(self):
        stats = PlannerStats()
        stats.requests += 1
        snapshot = stats.registry.snapshot()
        assert snapshot["planner_requests_total"]["value"] == 1
        text = stats.registry.prometheus_text()
        assert "planner_requests_total 1" in text


class TestPoolStats:
    def test_dict_shape_pinned(self):
        stats = PoolStats()
        assert stats.to_dict() == {
            "solves": 0, "coalesced": 0, "completed": 0, "errors": 0}
        assert list(stats.to_dict()) == [
            "solves", "coalesced", "completed", "errors"]

    def test_solves_mirrors_submitted(self):
        stats = PoolStats()
        stats.submitted += 2
        assert stats.solves == 2
        assert isinstance(stats.solves, int)
        assert stats.registry.snapshot()["pool_submitted_total"]["value"] == 2

    def test_live_pool_counts(self):
        with SolvePool(executor="inline",
                       solve_fn=lambda request_dict: {"ok": True}) as pool:
            future, coalesced = pool.submit("fp", {})
            assert not coalesced
            assert pool.wait(future) == {"ok": True}
        assert pool.stats.to_dict() == {
            "solves": 1, "coalesced": 0, "completed": 1, "errors": 0}


class TestPlannerFacade:
    def test_stats_dict_shape_pinned(self):
        with Planner(executor="inline") as planner:
            stats = planner.stats()
        assert list(stats) == [
            "requests", "timeouts", "conformance_checks",
            "conformance_failures", "warm_donors", "replans",
            "symmetry_collapses",
            "hits", "misses", "solves", "coalesced", "cache", "pool"]
        assert list(stats["cache"]) == [
            "hits", "memory_hits", "disk_hits", "misses", "stores",
            "evictions", "invalidations", "near_hits", "near_misses"]
        assert list(stats["pool"]) == ["solves", "coalesced", "completed",
                                       "errors"]

    def test_serve_latency_outside_stats(self):
        """The latency summary is additive API, not a stats() key."""
        with Planner(executor="inline") as planner:
            assert "serve_latency" not in planner.stats()
            latency = planner.serve_latency()
        assert set(latency) == {"count", "sum", "p50", "p95", "p99"}
        assert latency["count"] == 0

    def test_metrics_snapshot_merges_pool_scope(self):
        with Planner(executor="inline") as planner:
            snapshot = planner.metrics_snapshot()
        assert "planner_requests_total" in snapshot
        assert "planner_serve_latency_seconds" in snapshot
        assert "pool_submitted_total" in snapshot


class TestControllerStats:
    def test_stats_dict_shape_pinned(self):
        topo = topology.ring(4, capacity=1.0)
        with Planner(executor="inline") as planner:
            daemon = AdaptationController(
                topo, SyntheticTelemetry(topo), planner)
            daemon.add_job(FleetJob(
                name="a2a", demand=collectives.alltoall(topo.gpus, 1),
                config=TecclConfig(chunk_bytes=1.0)))
            daemon.step()
            stats = daemon.stats()
            status = daemon.status()
        assert list(stats) == [
            "polls", "samples", "transitions", "replans", "kept",
            "rollbacks", "failed", "errors", "adaptation_solve_time"]
        for key, value in stats.items():
            if key == "adaptation_solve_time":
                assert isinstance(value, float)
            else:
                assert isinstance(value, int)
        assert stats["polls"] == 1
        # the histogram-backed latency summary rides status(), not stats()
        assert set(status["serve_latency"]) == {"count", "sum", "p50",
                                                "p95", "p99"}
        json.dumps(status)  # the fleet status file must stay JSON-safe

    def test_counters_visible_in_metrics_registry(self):
        topo = topology.ring(4, capacity=1.0)
        with Planner(executor="inline") as planner:
            daemon = AdaptationController(
                topo, SyntheticTelemetry(topo), planner)
            daemon.step()
            snapshot = daemon.metrics.snapshot()
        assert snapshot["fleet_polls_total"]["value"] == 1
        assert "fleet_adaptation_solve_seconds_total" in snapshot


class TestHistogramQuantile:
    """Pinned interpolation arithmetic for ``Histogram.quantile``.

    Worked example: buckets (1, 2, 4, 8), observations
    (0.5, 1.5, 1.5, 3.0, 6.0) → per-bucket counts [1, 2, 1, 1, 0].
    The estimator linearly interpolates the target rank's fractional
    position inside the containing bucket, with both interval ends
    clamped to the observed min/max.
    """

    def _hist(self):
        from repro.obs.metrics import Histogram

        hist = Histogram("t_q", buckets=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 1.5, 3.0, 6.0):
            hist.observe(value)
        return hist

    def test_median_interpolates_within_bucket(self):
        # target rank 2.5 lands in the (1, 2] bucket after 1 prior
        # observation: frac = (2.5 - 1) / 2 = 0.75 → 1 + 0.75 × 1
        assert self._hist().quantile(0.5) == pytest.approx(1.75)

    def test_extremes_clamp_to_observed_range(self):
        hist = self._hist()
        assert hist.quantile(0.0) == pytest.approx(0.5)   # observed min
        assert hist.quantile(1.0) == pytest.approx(6.0)   # observed max

    def test_bucket_boundary_rank(self):
        # target rank 4.0 exactly exhausts the (2, 4] bucket → its hi end
        assert self._hist().quantile(0.8) == pytest.approx(4.0)

    def test_inf_bucket_uses_observed_max(self):
        from repro.obs.metrics import Histogram

        hist = Histogram("t_inf", buckets=(1.0,))
        for value in (0.5, 10.0, 20.0):
            hist.observe(value)
        # rank 2 of 3 sits halfway through the +Inf bucket: the open
        # interval is closed at the observed max → (1, 20], frac 0.5
        assert hist.quantile(2 / 3) == pytest.approx(10.5)
        assert hist.quantile(1.0) == pytest.approx(20.0)

    def test_degenerate_bucket_returns_single_value(self):
        from repro.obs.metrics import Histogram

        hist = Histogram("t_one", buckets=(1.0, 2.0, 4.0, 8.0))
        for _ in range(5):
            hist.observe(5.0)
        # lo and hi both clamp to 5.0 — no interval left to interpolate
        assert hist.quantile(0.5) == 5.0

    def test_empty_is_nan(self):
        import math

        from repro.obs.metrics import Histogram

        assert math.isnan(Histogram("t_empty").quantile(0.5))

    def test_out_of_range_q_raises(self):
        from repro.errors import ObservabilityError

        with pytest.raises(ObservabilityError):
            self._hist().quantile(1.5)


def _parse_prometheus(text: str):
    """Parse exposition text into (help, types, series) dicts."""
    helps, types, series = {}, {}, {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            name, _, rest = line[len("# HELP "):].partition(" ")
            helps[name] = rest
        elif line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            types[name] = kind
        elif line:
            name, _, value = line.rpartition(" ")
            series[name] = float(value)
    return helps, types, series


class TestPrometheusRoundTrip:
    """``prometheus_text`` must agree with ``snapshot()`` when parsed back."""

    def _registry(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        counter = registry.counter("rt_requests_total", "requests served")
        counter.inc(7)
        registry.gauge("rt_inflight")  # description-less: no HELP line
        hist = registry.histogram("rt_latency_seconds", "serve latency",
                                  buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):  # 5.0 → the +Inf bucket
            hist.observe(value)
        return registry

    def test_help_and_type_lines(self):
        registry = self._registry()
        helps, types, _ = _parse_prometheus(registry.prometheus_text())
        assert helps["rt_requests_total"] == "requests served"
        assert "rt_inflight" not in helps  # no description, no HELP
        assert types == {"rt_requests_total": "counter",
                         "rt_inflight": "gauge",
                         "rt_latency_seconds": "histogram"}

    def test_series_match_snapshot(self):
        registry = self._registry()
        snapshot = registry.snapshot()
        _, _, series = _parse_prometheus(registry.prometheus_text())
        assert series["rt_requests_total"] == \
            snapshot["rt_requests_total"]["value"]
        assert series["rt_inflight"] == snapshot["rt_inflight"]["value"]
        hist = snapshot["rt_latency_seconds"]
        assert series["rt_latency_seconds_count"] == hist["count"]
        assert series["rt_latency_seconds_sum"] == \
            pytest.approx(hist["sum"])
        for bound, count in hist["buckets"]:
            le = bound if bound == "+Inf" else f"{bound:g}"
            assert series[f'rt_latency_seconds_bucket{{le="{le}"}}'] == count

    def test_inf_bucket_present_and_cumulative(self):
        registry = self._registry()
        _, _, series = _parse_prometheus(registry.prometheus_text())
        buckets = [(name, value) for name, value in series.items()
                   if name.startswith("rt_latency_seconds_bucket")]
        assert any('le="+Inf"' in name for name, _ in buckets)
        counts = [value for _, value in buckets]  # exposition order
        assert counts == sorted(counts)  # cumulative → non-decreasing
        assert counts[-1] == series["rt_latency_seconds_count"]

    def test_snapshot_renderer_agrees_with_live_text(self):
        from repro.obs.metrics import prometheus_from_snapshot

        registry = self._registry()
        live = _parse_prometheus(registry.prometheus_text())
        offline = _parse_prometheus(
            prometheus_from_snapshot(registry.snapshot()))
        # the snapshot carries no descriptions; types + series must agree
        assert offline[1] == live[1]
        assert offline[2] == pytest.approx(live[2])
