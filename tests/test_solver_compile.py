"""Property tests for the bulk construction path and the compile layer.

Edge cases the COO buffers must handle exactly like the expression algebra:
duplicate ``(row, col)`` entries (sum), empty-term rows (all-zero rows with
bounds), constant-only objectives, ``quicksum([])``, and the cross-model
ownership guard.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.solver import (Model, Sense, SolveStatus, VarType, quicksum)
from repro.solver.expr import LinExpr
from repro.solver.model import compiled_equal


class TestCooSemantics:
    def test_duplicate_coo_entries_sum(self):
        """Duplicates must accumulate, matching LinExpr.add_term."""
        bulk = Model(sense=Sense.MAXIMIZE)
        idx = bulk.add_var_array(2, ub=10.0)
        bulk.add_constr_coo(rows=[0, 0, 0], cols=[idx[0], idx[0], idx[1]],
                            data=[1.0, 2.0, 1.0], lb=-np.inf, ub=6.0)
        bulk.set_objective_array(idx, [1.0, 1.0])

        expr = Model(sense=Sense.MAXIMIZE)
        x, y = expr.add_var(ub=10.0), expr.add_var(ub=10.0)
        total = LinExpr()
        total.add_term(x, 1.0)
        total.add_term(x, 2.0)
        total.add_term(y, 1.0)
        expr.add_constr(total <= 6.0)
        expr.set_objective(x + y)

        assert compiled_equal(bulk.compile(), expr.compile())
        assert bulk.solve().objective == pytest.approx(
            expr.solve().objective)

    def test_duplicates_cancelling_to_zero(self):
        """+c and −c on the same cell vanish, like add_term popping zeros."""
        bulk = Model()
        idx = bulk.add_var_array(1, ub=1.0)
        bulk.add_constr_coo(rows=[0, 0], cols=[idx[0], idx[0]],
                            data=[1.0, -1.0], lb=0.0, ub=0.0)
        expr = Model()
        x = expr.add_var(ub=1.0)
        expr.add_constr(x - x == 0.0)
        assert compiled_equal(bulk.compile(), expr.compile())

    def test_empty_term_row_matches_constant_constraint(self):
        """A row with no COO entries is the constant-expression analogue."""
        bulk = Model()
        bulk.add_var_array(1)
        bulk.add_constr_coo(rows=[], cols=[], data=[], lb=0.0, ub=0.0,
                            num_rows=1)
        expr = Model()
        expr.add_var()
        expr.add_constr(quicksum([]) == 0.0)
        assert bulk.num_constraints == expr.num_constraints == 1
        assert compiled_equal(bulk.compile(), expr.compile())

    def test_quicksum_empty_objective(self):
        m = Model(sense=Sense.MAXIMIZE)
        m.add_var(ub=1.0)
        m.set_objective(quicksum([]))
        result = m.solve()
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(0.0)

    def test_constant_only_objective(self):
        for m in (Model(), Model()):
            m.add_var(ub=2.0)
        bulk, expr = Model(), Model()
        bulk.add_var_array(1, ub=2.0)
        bulk.set_objective_array([], [], const=5.0)
        expr.add_var(ub=2.0)
        expr.set_objective(5.0)
        assert compiled_equal(bulk.compile(), expr.compile())
        assert bulk.solve().objective == pytest.approx(5.0)
        assert expr.solve().objective == pytest.approx(5.0)

    def test_objective_array_duplicates_sum(self):
        m = Model(sense=Sense.MAXIMIZE)
        idx = m.add_var_array(1, ub=3.0)
        m.set_objective_array([idx[0], idx[0]], [1.0, 1.0])
        assert m.solve().objective == pytest.approx(6.0)

    def test_bulk_binary_bounds_clamped(self):
        m = Model()
        m.add_var_array(2, lb=-5.0, ub=7.0, vtype=VarType.BINARY)
        compiled = m.compile()
        assert np.array_equal(compiled.col_lower, [0.0, 0.0])
        assert np.array_equal(compiled.col_upper, [1.0, 1.0])
        assert np.array_equal(compiled.integrality, [1, 1])

    def test_bulk_shape_and_bad_bounds(self):
        m = Model()
        grid = m.add_var_array((2, 3))
        assert grid.shape == (2, 3)
        assert m.num_vars == 6
        with pytest.raises(ModelError):
            m.add_var_array(2, lb=2.0, ub=1.0)

    def test_coo_validation(self):
        m = Model()
        idx = m.add_var_array(2)
        with pytest.raises(ModelError):  # column beyond this model's vars
            m.add_constr_coo([0], [5], [1.0], lb=0.0, ub=0.0)
        with pytest.raises(ModelError):  # row beyond the block
            m.add_constr_coo([3], [idx[0]], [1.0], lb=0.0, ub=0.0,
                             num_rows=2)
        with pytest.raises(ModelError):  # crossed bounds
            m.add_constr_coo([0], [idx[0]], [1.0], lb=1.0, ub=0.0)
        with pytest.raises(ModelError):  # ragged triplets
            m.add_constr_coo([0, 0], [idx[0]], [1.0], lb=0.0, ub=0.0)

    def test_interleaved_blocks_keep_row_order(self):
        """Expression and COO rows interleave in call order."""
        m = Model()
        idx = m.add_var_array(2, ub=4.0)
        x = m.var(idx[0])
        m.add_constr(x <= 1.0, name="first")
        m.add_constr_coo([0], [idx[1]], [1.0], lb=-np.inf, ub=2.0)
        m.add_constr(x >= 0.5, name="third")
        rows = list(m.rows())
        assert [r[3] for r in rows] == [1.0, 2.0, np.inf]
        assert rows[0][0] == "first" and rows[2][0] == "third"

    def test_mixed_paths_solve(self):
        m = Model(sense=Sense.MAXIMIZE)
        idx = m.add_var_array(2, ub=4.0)
        x, y = m.var(idx[0]), m.var(idx[1])
        m.add_constr(x + 2 * y <= 6)
        m.set_objective_array(idx, [1.0, 1.0])
        result = m.solve()
        assert result.objective == pytest.approx(5.0)
        assert result.value(int(idx[0])) == pytest.approx(4.0)
        assert result.value(x) == pytest.approx(4.0)

    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 3),
                              st.floats(-3, 3, allow_nan=False)),
                    min_size=0, max_size=24))
    @settings(max_examples=50, deadline=None)
    def test_random_coo_blocks_match_expressions(self, entries):
        """Any duplicate-laden COO block equals its expression twin."""
        bulk = Model()
        idx = bulk.add_var_array(4, ub=9.0)
        rows = [r for r, _c, _v in entries]
        cols = [idx[c] for _r, c, _v in entries]
        data = [v for _r, _c, v in entries]
        bulk.add_constr_coo(rows, cols, data, lb=-np.inf, ub=1.0,
                            num_rows=5)
        expr = Model()
        handles = [expr.add_var(ub=9.0) for _ in range(4)]
        accumulators = [LinExpr() for _ in range(5)]
        for r, c, v in entries:
            accumulators[r].add_term(handles[c], v)
        for accumulator in accumulators:
            expr.add_constr(accumulator <= 1.0)
        assert compiled_equal(bulk.compile(), expr.compile())


class TestCompileCache:
    def test_repeated_solves_reuse_stack(self):
        m = Model(sense=Sense.MAXIMIZE)
        idx = m.add_var_array(3, ub=1.0)
        m.add_constr_coo([0, 0], idx[:2], [1.0, 1.0], lb=-np.inf, ub=1.5)
        m.set_objective_array(idx, [1.0, 1.0, 1.0])
        first = m.compile()
        second = m.compile()
        assert first.A is second.A  # cached stack, not a re-build
        assert m.solve().status is SolveStatus.OPTIMAL

    def test_cache_invalidated_by_new_rows(self):
        m = Model()
        idx = m.add_var_array(2, ub=1.0)
        m.add_constr_coo([0], [idx[0]], [1.0], lb=-np.inf, ub=1.0)
        first = m.compile()
        m.add_constr_coo([0], [idx[1]], [1.0], lb=-np.inf, ub=1.0)
        second = m.compile()
        assert second.A.shape[0] == first.A.shape[0] + 1

    def test_cache_invalidated_by_new_vars(self):
        m = Model()
        idx = m.add_var_array(1, ub=1.0)
        m.add_constr_coo([0], [idx[0]], [1.0], lb=-np.inf, ub=1.0)
        assert m.compile().A.shape == (1, 1)
        m.add_var()
        assert m.compile().A.shape == (1, 2)

    def test_objective_change_does_not_restack(self):
        m = Model()
        idx = m.add_var_array(2, ub=1.0)
        m.add_constr_coo([0], [idx[0]], [1.0], lb=-np.inf, ub=1.0)
        first = m.compile()
        m.set_objective_array(idx, [1.0, 2.0])
        second = m.compile()
        assert first.A is second.A
        assert not np.array_equal(first.c, second.c)


class TestOwnership:
    def test_smaller_foreign_model_variable_rejected(self):
        """Regression: an in-range index from a foreign model must not
        silently alias this model's same-index column."""
        small = Model()
        foreign = small.add_var(ub=1.0)  # index 0
        big = Model()
        big.add_var(ub=5.0)  # also index 0 — would alias silently before
        big.add_var(ub=5.0)
        with pytest.raises(ModelError):
            big.add_constr(foreign <= 1.0)
        with pytest.raises(ModelError):
            big.set_objective(foreign.to_expr())

    def test_combining_two_models_rejected(self):
        m1, m2 = Model(), Model()
        x1 = m1.add_var()
        x2 = m2.add_var()
        with pytest.raises(ModelError):
            _ = x1 + x2
        with pytest.raises(ModelError):
            quicksum([x1, x2])

    def test_constants_combine_with_anything(self):
        m = Model()
        x = m.add_var(ub=2.0)
        expr = x + LinExpr({}, 1.0)
        assert expr.model_id == x._model_id
        constraint = m.add_constr(expr <= 3.0)
        assert constraint.expr.model_id == x._model_id

    def test_out_of_range_index_still_rejected(self):
        # a hand-rolled LinExpr has no owner tag; the range check remains
        m = Model()
        m.add_var()
        with pytest.raises(ModelError):
            m.add_constr(LinExpr({5: 1.0}) <= 1.0)
