"""Tests for the baseline schedulers and the quality orderings the paper
relies on (TE-CCL ≥ TACCL-like ≥ nothing; SCCL wins only at 1 chunk)."""

import pytest

from repro import collectives, topology
from repro.baselines import (barrier_finish_time, find_ring, ring_allgather,
                             ring_allgather_time, ring_demand, sccl_instance,
                             sccl_least_steps, shortest_path,
                             shortest_path_schedule, taccl_like)
from repro.baselines.common import GreedyScheduler, LinkLedger
from repro.core import TecclConfig, solve_milp
from repro.core.epochs import build_epoch_plan, plan_with_tau
from repro.errors import InfeasibleError, TopologyError
from repro.simulate import verify


def cfg(num_epochs=None, **kwargs):
    return TecclConfig(chunk_bytes=1.0, num_epochs=num_epochs, **kwargs)


class TestLinkLedger:
    def test_unit_capacity_booking(self):
        topo = topology.line(2, capacity=1.0)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=4)
        ledger = LinkLedger(topo, plan, 4)
        assert ledger.earliest(0, 1, 0) == 0
        ledger.reserve(0, 1, 0)
        assert ledger.earliest(0, 1, 0) == 1

    def test_windowed_booking(self):
        topo = topology.line(2, capacity=1.0)
        plan = plan_with_tau(topo, 4.0, tau=1.0, num_epochs=16)
        ledger = LinkLedger(topo, plan, 16)
        ledger.reserve(0, 1, 0)
        # next slot must clear the 4-epoch occupancy window
        assert ledger.earliest(0, 1, 0) == 4

    def test_exhaustion_raises(self):
        topo = topology.line(2, capacity=1.0)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=2)
        ledger = LinkLedger(topo, plan, 2)
        ledger.reserve(0, 1, 0)
        ledger.reserve(0, 1, 1)
        with pytest.raises(InfeasibleError):
            ledger.earliest(0, 1, 0)


class TestGreedyScheduler:
    def test_path_through_switch_atomic(self):
        topo = topology.star(3)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=8)
        scheduler = GreedyScheduler(topo, plan, 8)
        scheduler.hold(0, 0, 0, 0)
        arrival = scheduler.send_path(0, 0, [0, 3, 1])
        assert arrival == 2
        sched = scheduler.to_schedule()
        demand = collectives.Demand.from_triples([(0, 0, 1)])
        verify(sched, topo, demand, plan)

    def test_path_ending_at_switch_rejected(self):
        topo = topology.star(3)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=8)
        scheduler = GreedyScheduler(topo, plan, 8)
        scheduler.hold(0, 0, 0, 0)
        with pytest.raises(InfeasibleError):
            scheduler.send_path(0, 0, [0, 3])

    def test_missing_chunk_rejected(self):
        topo = topology.line(2, capacity=1.0)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=4)
        scheduler = GreedyScheduler(topo, plan, 4)
        with pytest.raises(InfeasibleError):
            scheduler.send_path(0, 0, [0, 1])


class TestShortestPath:
    def test_dijkstra_prefers_low_alpha(self):
        topo = topology.Topology("t", num_nodes=3)
        topo.add_bidirectional(0, 2, capacity=1.0, alpha=10.0)  # direct, slow
        topo.add_bidirectional(0, 1, capacity=1.0, alpha=0.0)
        topo.add_bidirectional(1, 2, capacity=1.0, alpha=0.0)
        assert shortest_path(topo, 0, 2, 1.0) == [0, 1, 2]

    def test_no_path_raises(self):
        topo = topology.Topology("t", num_nodes=3)
        topo.add_bidirectional(0, 1, 1.0)
        topo.add_bidirectional(1, 2, 1.0)
        del topo.links[(1, 2)]
        with pytest.raises(InfeasibleError):
            shortest_path(topo, 0, 2, 1.0)

    def test_alltoall_schedule_valid(self, ring4):
        demand = collectives.alltoall(ring4.gpus, 1)
        sched = shortest_path_schedule(ring4, demand, cfg())
        plan = plan_with_tau(ring4, 1.0, tau=1.0,
                             num_epochs=sched.num_epochs)
        verify(sched, ring4, demand, plan)

    def test_never_better_than_milp(self, ring4, ag_ring4):
        sp = shortest_path_schedule(ring4, ag_ring4, cfg())
        opt = solve_milp(ring4, ag_ring4, cfg(8))
        assert sp.finish_time(ring4) >= opt.finish_time - 1e-9

    def test_no_copy_means_more_bytes(self, ring4, ag_ring4):
        sp = shortest_path_schedule(ring4, ag_ring4, cfg())
        opt = solve_milp(ring4, ag_ring4, cfg(8))
        assert sp.total_bytes() >= opt.schedule.total_bytes()


class TestRing:
    def test_find_ring_on_ring(self):
        order = find_ring(topology.ring(5))
        assert sorted(order) == [0, 1, 2, 3, 4]

    def test_find_ring_on_dgx1(self):
        topo = topology.dgx1()
        order = find_ring(topo)
        assert len(order) == 8
        for a, b in zip(order, order[1:] + order[:1]):
            assert topo.has_link(a, b)

    def test_no_ring_raises(self):
        topo = topology.line(3)
        # a line has no Hamiltonian cycle over direct links... but our line
        # is bidirectional so 0-1-2-1-0 is not simple; expect failure
        with pytest.raises(TopologyError):
            find_ring(topo)

    def test_ring_allgather_correct(self):
        topo = topology.ring(5, capacity=1.0)
        sched = ring_allgather(topo, cfg())
        demand = ring_demand(topo)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=sched.num_epochs)
        verify(sched, topo, demand, plan)

    def test_ring_time_closed_form(self):
        topo = topology.ring(5, capacity=2.0, alpha=0.5)
        t = ring_allgather_time(topo, 4.0)
        assert t == pytest.approx(4 * (0.5 + 2.0))

    def test_milp_at_least_as_good_as_ring(self):
        topo = topology.ring(4, capacity=1.0)
        demand = collectives.allgather(topo.gpus, 1)
        opt = solve_milp(topo, demand, cfg(8))
        assert opt.finish_time <= ring_allgather_time(topo, 1.0) + 1e-9


class TestScclLike:
    def test_least_steps_line_broadcast(self):
        topo = topology.line(3, capacity=1.0)
        demand = collectives.broadcast(0, [1, 2], 1)
        out = sccl_least_steps(topo, demand, cfg())
        assert out.steps == 2

    def test_instance_infeasible_below_least(self):
        topo = topology.line(3, capacity=1.0)
        demand = collectives.broadcast(0, [1, 2], 1)
        with pytest.raises(InfeasibleError):
            sccl_instance(topo, demand, cfg(), steps=1)

    def test_barrier_time_sums_worst_links(self):
        topo = topology.Topology("h", num_nodes=3)
        topo.add_bidirectional(0, 1, 4.0, alpha=0.0)
        topo.add_bidirectional(1, 2, 1.0, alpha=0.5)
        demand = collectives.broadcast(0, [2], 1)
        out = sccl_least_steps(topo, demand, TecclConfig(chunk_bytes=4.0))
        # step 1 uses the fast link (1 s), step 2 the slow one (4.5 s)
        assert out.finish_time == pytest.approx(1.0 + 4.5)

    def test_teccl_beats_sccl_with_multiple_chunks(self):
        """Table 3's shape: the barrier hurts once pipelining matters."""
        topo = topology.line(3, capacity=1.0, alpha=1.0)
        demand = collectives.broadcast(0, [2], 3)
        sccl = sccl_least_steps(topo, demand, cfg())
        teccl = solve_milp(topo, demand, cfg(16))
        assert teccl.finish_time < sccl.finish_time

    def test_schedule_verifies_under_barrier_plan(self, ring4, ag_ring4):
        out = sccl_least_steps(ring4, ag_ring4, cfg())
        from repro.baselines.sccl_like import _barrier_plan

        plan = _barrier_plan(ring4, 1.0, out.steps)
        verify(out.schedule, ring4, ag_ring4, plan)


class TestTacclLike:
    def test_allgather_on_ndv2(self):
        topo = topology.ndv2(2)
        demand = collectives.allgather(topo.gpus, 1)
        out = taccl_like(topo, demand, TecclConfig(chunk_bytes=1e6), seed=0)
        plan = build_epoch_plan(out.topology,
                                TecclConfig(chunk_bytes=1e6),
                                out.schedule.num_epochs)
        verify(out.schedule, out.topology, out.demand, plan)
        assert out.finish_time > 0
        assert out.routing_time >= 0 and out.scheduling_time >= 0

    def test_deterministic_per_seed(self):
        topo = topology.internal1(2)
        demand = collectives.allgather(topo.gpus, 1)
        config = TecclConfig(chunk_bytes=1e6)
        a = taccl_like(topo, demand, config, seed=7)
        b = taccl_like(topo, demand, config, seed=7)
        assert a.schedule.sends == b.schedule.sends

    def test_seeds_can_differ(self):
        """The paper's 'unreliable heuristic' property: run-to-run variance."""
        topo = topology.internal1(2)
        demand = collectives.allgather(topo.gpus, 1)
        config = TecclConfig(chunk_bytes=1e6)
        finishes = {round(taccl_like(topo, demand, config, seed=s)
                          .finish_time, 12) for s in range(4)}
        # not required to differ, but the machinery must allow it; at
        # minimum the runs completed
        assert len(finishes) >= 1

    def test_never_beats_teccl_milp(self):
        topo = topology.internal2(2)
        demand = collectives.allgather(topo.gpus, 1)
        config = TecclConfig(chunk_bytes=1e6)
        heuristic = taccl_like(topo, demand, config, seed=0)
        from repro.core.config import SwitchModel
        from repro.core.solve import Method, synthesize

        fair = TecclConfig(chunk_bytes=1e6, num_epochs=24,
                           switch_model=SwitchModel.HYPER_EDGE)
        ours = synthesize(topo, demand, fair, method=Method.MILP)
        assert ours.finish_time <= heuristic.finish_time + 1e-12

    def test_tight_horizon_infeasible(self):
        topo = topology.internal2(2)
        demand = collectives.allgather(topo.gpus, 4)
        config = TecclConfig(chunk_bytes=1e6)
        with pytest.raises(InfeasibleError):
            taccl_like(topo, demand, config, seed=0, horizon_factor=0.01)
