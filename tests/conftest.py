"""Shared fixtures: small fabrics and configs every test module reuses.

Also home of :func:`random_instance`, the randomized topology/demand/config
generator the differential tests (``test_model_equivalence.py``) sweep to
prove the expression and COO construction paths build identical models.
"""

from __future__ import annotations

import pytest

from repro import collectives, topology
from repro.core import TecclConfig


@pytest.fixture
def ring4() -> topology.Topology:
    """Bidirectional 4-ring, unit capacity, zero alpha."""
    return topology.ring(4, capacity=1.0, alpha=0.0)


@pytest.fixture
def line3() -> topology.Topology:
    return topology.line(3, capacity=1.0, alpha=0.0)


@pytest.fixture
def star3() -> topology.Topology:
    """3 GPUs around a switch hub."""
    return topology.star(3, capacity=1.0, alpha=0.0, hub_is_switch=True)


@pytest.fixture
def dgx1() -> topology.Topology:
    return topology.dgx1()


@pytest.fixture
def internal2x2() -> topology.Topology:
    return topology.internal2(2)


@pytest.fixture
def unit_config() -> TecclConfig:
    """Chunk = 1 byte on unit-capacity links: tau = 1 s, cap = 1 chunk."""
    return TecclConfig(chunk_bytes=1.0)


def unit_cfg(num_epochs: int | None = None, **kwargs) -> TecclConfig:
    return TecclConfig(chunk_bytes=1.0, num_epochs=num_epochs, **kwargs)


@pytest.fixture
def ag_ring4(ring4):
    return collectives.allgather(ring4.gpus, 1)


@pytest.fixture
def atoa_ring4(ring4):
    return collectives.alltoall(ring4.gpus, 1)


# ----------------------------------------------------------------------
# randomized instances for the differential (expr vs COO) tests and the
# cross-producer conformance harness. The generator itself lives in
# repro.simulate.harness so the benchmarks and the CLI share it; this
# module keeps the historical import point.
# ----------------------------------------------------------------------
from repro.simulate.harness import random_instance  # noqa: E402,F401


@pytest.fixture
def make_instance():
    """The :func:`random_instance` generator, as a fixture (importable
    conftest symbols clash with ``benchmarks/conftest.py`` in full runs)."""
    return random_instance
