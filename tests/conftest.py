"""Shared fixtures: small fabrics and configs every test module reuses.

Also home of :func:`random_instance`, the randomized topology/demand/config
generator the differential tests (``test_model_equivalence.py``) sweep to
prove the expression and COO construction paths build identical models.
"""

from __future__ import annotations

import random

import pytest

from repro import collectives, topology
from repro.collectives.demand import Demand
from repro.core import TecclConfig
from repro.solver import SolverOptions
from repro.topology.topology import Topology


@pytest.fixture
def ring4() -> topology.Topology:
    """Bidirectional 4-ring, unit capacity, zero alpha."""
    return topology.ring(4, capacity=1.0, alpha=0.0)


@pytest.fixture
def line3() -> topology.Topology:
    return topology.line(3, capacity=1.0, alpha=0.0)


@pytest.fixture
def star3() -> topology.Topology:
    """3 GPUs around a switch hub."""
    return topology.star(3, capacity=1.0, alpha=0.0, hub_is_switch=True)


@pytest.fixture
def dgx1() -> topology.Topology:
    return topology.dgx1()


@pytest.fixture
def internal2x2() -> topology.Topology:
    return topology.internal2(2)


@pytest.fixture
def unit_config() -> TecclConfig:
    """Chunk = 1 byte on unit-capacity links: tau = 1 s, cap = 1 chunk."""
    return TecclConfig(chunk_bytes=1.0)


def unit_cfg(num_epochs: int | None = None, **kwargs) -> TecclConfig:
    return TecclConfig(chunk_bytes=1.0, num_epochs=num_epochs, **kwargs)


@pytest.fixture
def ag_ring4(ring4):
    return collectives.allgather(ring4.gpus, 1)


@pytest.fixture
def atoa_ring4(ring4):
    return collectives.alltoall(ring4.gpus, 1)


# ----------------------------------------------------------------------
# randomized instances for the differential (expr vs COO) tests
# ----------------------------------------------------------------------
def random_instance(seed: int) -> tuple[Topology, Demand, TecclConfig]:
    """A deterministic pseudo-random (topology, demand, config) triple.

    Sweeps the formulation surface the two construction paths must agree
    on: ring/line/star/mesh shapes (with and without a switch), mixed link
    speeds and α delays (which exercise occupancy windows under the default
    fastest-link epochs), unicast and multicast chunks, optional buffer
    limits, and the store-and-forward ablation.
    """
    rng = random.Random(seed)
    kind = rng.choice(["ring", "line", "star", "mesh"])
    n = rng.randint(3, 5)
    if kind == "ring":
        topo = topology.ring(n, capacity=1.0, alpha=0.0)
    elif kind == "line":
        topo = topology.line(n, capacity=1.0, alpha=0.0)
    elif kind == "star":
        topo = topology.star(n, capacity=1.0, alpha=0.0, hub_is_switch=True)
    else:
        topo = Topology(name=f"mesh{n}", num_nodes=n)
        for a in range(n):
            for b in range(a + 1, n):
                topo.add_bidirectional(a, b, capacity=1.0)
    # re-roll link speeds and delays (replaces the uniform builder links)
    for (a, b) in list(topo.links):
        topo.add_link(a, b, capacity=rng.choice([1.0, 1.0, 2.0]),
                      alpha=rng.choice([0.0, 0.0, 0.5]))
    topo.validate()

    gpus = topo.gpus
    triples = []
    for s in gpus:
        for c in range(rng.randint(1, 2)):
            others = [d for d in gpus if d != s]
            for d in rng.sample(others, rng.randint(1, min(2, len(others)))):
                triples.append((s, c, d))
    demand = Demand.from_triples(triples)

    config = TecclConfig(
        chunk_bytes=1.0,
        store_and_forward=rng.random() > 0.25,
        buffer_limit_chunks=rng.choice([None, None, None, 2]),
        tighten=rng.random() > 0.2,
        solver=SolverOptions(time_limit=60))
    return topo, demand, config


@pytest.fixture
def make_instance():
    """The :func:`random_instance` generator, as a fixture (importable
    conftest symbols clash with ``benchmarks/conftest.py`` in full runs)."""
    return random_instance
