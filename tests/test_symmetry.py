"""Symmetry reduction: detection, quotient/cut differentials, cache collapse.

The engine (``repro.core.symmetry``) is layered so that heuristics can only
cost compression, never correctness: candidate permutations are exactly
verified against the topology and demand, their induced column permutations
are exactly verified against the compiled matrix, and every reduced solution
is replay-vetted by the conformance oracle with a cold fallback.  These
tests pin each layer and then the end-to-end contract: quotient and full
builds agree on the objective, float-tight, and both replay clean.
"""

import pytest

from repro import collectives
from repro.collectives.demand import Demand
from repro.core import TecclConfig
from repro.core import symmetry
from repro.core.lp import solve_lp
from repro.core.milp import solve_milp
from repro.core.symmetry import (Automorphism, canonicalize_demand,
                                 chunk_relabeling, column_orbits,
                                 find_generators, invert_permutation,
                                 is_automorphism)
from repro.service import Planner, PlanRequest
from repro.simulate import check_flow, check_schedule
from repro.simulate.harness import PRODUCERS, sweep
from repro.solver import SolverOptions
from repro.topology import line, ring, with_capacity_overrides

pytestmark = pytest.mark.symmetry


def _rotation(n, r):
    return [(i + r) % n for i in range(n)]


def _cfg(**kwargs):
    solver = SolverOptions(symmetry=kwargs.pop("symmetry", "on"),
                           time_limit=kwargs.pop("time_limit", 60.0))
    return TecclConfig(chunk_bytes=1.0, solver=solver, **kwargs)


# ----------------------------------------------------------------------
# detection
# ----------------------------------------------------------------------
class TestDetection:
    def test_ring_rotation_is_automorphism(self):
        topo = ring(6)
        demand = collectives.allgather(topo.gpus, 1)
        assert is_automorphism(topo, demand, _rotation(6, 1))
        assert is_automorphism(topo, demand, _rotation(6, 3))

    def test_non_bijection_and_broken_links_rejected(self):
        topo = ring(6)
        assert not is_automorphism(topo, None, [0] * 6)
        # a transposition of adjacent ring nodes breaks the link structure
        swap = list(range(6))
        swap[0], swap[2] = swap[2], swap[0]
        assert not is_automorphism(topo, None, swap)

    def test_capacity_asymmetry_breaks_rotation(self):
        topo = with_capacity_overrides(ring(6), {(0, 1): 0.5})
        assert not is_automorphism(topo, None, _rotation(6, 1))

    def test_alltoall_needs_chunk_relabeling(self):
        # alltoall encodes the destination index in the chunk id, so a
        # rotation is only demand-stabilizing through a per-source chunk
        # bijection -- the raw triple set is NOT invariant.
        demand = collectives.alltoall(list(range(4)), 1)
        perm = _rotation(4, 1)
        relabeled = {(perm[s], c, perm[d]) for s, c, d in demand.triples()}
        assert relabeled != set(demand.triples())
        mapping = chunk_relabeling(demand, perm)
        assert mapping is not None
        # the mapping is a per-source bijection landing on the rotated source
        for (s, c), (t, c2) in mapping.items():
            assert t == perm[s]
        assert is_automorphism(demand=demand, topology=ring(4),
                               perm=perm)

    def test_generators_found_on_symmetric_instances(self):
        topo = ring(8)
        demand = collectives.allgather(topo.gpus, 1)
        gens = find_generators(topo, demand)
        assert gens
        for gen in gens:
            assert is_automorphism(topo, demand, list(gen.perm))

    def test_no_generators_on_asymmetric_fabric(self):
        # distinct capacities on every link kill all non-trivial symmetry
        topo = ring(5)
        factors = {pair: 1.0 / (3 + i)
                   for i, pair in enumerate(sorted(topo.links))}
        broken = with_capacity_overrides(topo, factors)
        assert find_generators(broken) == []

    def test_orbits_partition_columns(self):
        gens = find_generators(ring(6))
        perms = [list(g.perm) for g in gens]
        orbit, reps = column_orbits(6, perms)
        # the rotation group is transitive on ring nodes: one orbit
        assert len(reps) == 1
        assert set(orbit.tolist()) == {0}

    def test_invert_permutation(self):
        perm = [2, 0, 3, 1]
        inv = invert_permutation(perm)
        assert [perm[i] for i in inv] == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# canonicalization
# ----------------------------------------------------------------------
class TestCanonicalization:
    def test_symmetric_variants_share_canonical_form(self):
        topo = ring(6)
        base = collectives.broadcast(0, [1, 2], 1)
        shifted = Demand.from_triples(
            [(2, 0, 3), (2, 0, 4)])  # the same pattern rotated by 2
        canon_a, _ = canonicalize_demand(topo, base)
        canon_b, _ = canonicalize_demand(topo, shifted)
        assert sorted(canon_a.triples()) == sorted(canon_b.triples())

    def test_sigma_relabels_to_canonical(self):
        topo = ring(6)
        demand = Demand.from_triples([(3, 0, 4)])
        canon, sigma = canonicalize_demand(topo, demand)
        relabeled = sorted((sigma[s], c, sigma[d])
                           for s, c, d in demand.triples())
        assert relabeled == sorted(canon.triples())

    def test_asymmetric_instance_is_fixed_point(self):
        topo = with_capacity_overrides(ring(4), {(0, 1): 0.125})
        demand = collectives.broadcast(2, [0], 1)
        canon, sigma = canonicalize_demand(topo, demand)
        assert sorted(canon.triples()) == sorted(demand.triples())
        assert sigma == list(range(4))


# ----------------------------------------------------------------------
# LP quotient differential
# ----------------------------------------------------------------------
class TestLpQuotient:
    def test_quotient_matches_full_and_replays_clean(self):
        topo = ring(8)
        demand = collectives.alltoall(topo.gpus, 1)
        config_on = _cfg(symmetry="on")
        config_off = _cfg(symmetry="off")

        reduced = solve_lp(topo, demand, config_on)
        full = solve_lp(topo, demand, config_off)

        stats = reduced.result.stats
        assert stats.get("symmetry_generators", 0) > 0
        assert stats["symmetry_cols_reduced"] < stats["symmetry_cols_full"]
        assert stats.get("symmetry_conformant") is True
        assert "symmetry_fallback" not in stats
        # the quotient restriction is exact for LPs: equal optimum
        assert reduced.result.objective == pytest.approx(
            full.result.objective, rel=1e-7, abs=1e-7)
        report = check_flow(reduced.schedule, topo, demand, reduced.plan,
                            config=config_on)
        assert report.ok, [str(v) for v in report.violations[:3]]

    def test_off_never_reduces(self):
        topo = ring(6)
        demand = collectives.allgather(topo.gpus, 1)
        out = solve_lp(topo, demand, _cfg(symmetry="off"))
        assert "symmetry_generators" not in out.result.stats

    def test_auto_skips_small_models(self):
        # auto only engages at AUTO_SYMMETRY_MIN_VARS; a 4-ring allgather
        # LP is far below it, so auto must behave like off here.
        topo = ring(4)
        demand = collectives.allgather(topo.gpus, 1)
        out = solve_lp(topo, demand, _cfg(symmetry="auto"))
        assert "symmetry_generators" not in out.result.stats


# ----------------------------------------------------------------------
# MILP lex-leader cuts differential
# ----------------------------------------------------------------------
class TestMilpCuts:
    def test_cuts_preserve_optimum_and_replay_clean(self):
        topo = ring(5)
        demand = collectives.allgather(topo.gpus, 1)
        config_on = _cfg(symmetry="on", num_epochs=8)
        config_off = _cfg(symmetry="off", num_epochs=8)

        cut = solve_milp(topo, demand, config_on)
        full = solve_milp(topo, demand, config_off)

        assert cut.result.stats.get("symmetry_cuts", 0) > 0
        assert "symmetry_fallback" not in cut.result.stats
        assert cut.result.objective == pytest.approx(
            full.result.objective, rel=1e-7, abs=1e-7)
        report = check_schedule(cut.schedule, topo, demand, cut.plan,
                                config=config_on)
        assert report.ok, [str(v) for v in report.violations[:3]]

    def test_off_adds_no_cuts(self):
        topo = ring(5)
        demand = collectives.allgather(topo.gpus, 1)
        out = solve_milp(topo, demand, _cfg(symmetry="off", num_epochs=8))
        assert "symmetry_cuts" not in out.result.stats


# ----------------------------------------------------------------------
# planner cache collapse
# ----------------------------------------------------------------------
class TestPlannerCollapse:
    @staticmethod
    def _request(source):
        topo = ring(6)
        return PlanRequest(
            topology=topo,
            demand=collectives.broadcast(
                source, [(source + 1) % 6, (source + 2) % 6], 1),
            config=TecclConfig(chunk_bytes=1.0, num_epochs=8))

    def test_symmetric_requests_share_one_entry(self):
        with Planner(executor="inline") as planner:
            first = planner.plan(self._request(0))
            second = planner.plan(self._request(3))  # rotated by 3
            stats = planner.stats()
        assert not first.cache_hit
        assert second.cache_hit
        assert stats["solves"] == 1
        assert stats["symmetry_collapses"] >= 1

    def test_relabeled_result_is_conformant(self):
        request = self._request(3)
        with Planner(executor="inline") as planner:
            planner.plan(self._request(0))
            response = planner.plan(request)
        result = response.result
        # the response is expressed in the caller's labels, not canonical
        assert sorted(result.demand_used.triples()) == \
            sorted(request.demand.triples())
        report = check_schedule(result.schedule, result.topology_used,
                                result.demand_used, result.plan,
                                config=request.config)
        assert report.ok, [str(v) for v in report.violations[:3]]

    def test_symmetry_off_disables_collapse(self):
        with Planner(executor="inline", symmetry="off") as planner:
            planner.plan(self._request(0))
            second = planner.plan(self._request(3))
            stats = planner.stats()
        assert not second.cache_hit
        assert stats["solves"] == 2
        assert stats["symmetry_collapses"] == 0


# ----------------------------------------------------------------------
# cross-producer replay on symmetric instances
# ----------------------------------------------------------------------
def symmetric_instance(seed):
    """Symmetric seeds for the replay harness: uniform rings, symmetric
    collectives, symmetry forced on so every producer runs through the
    reduction paths it supports."""
    import random

    rng = random.Random(seed)
    n = rng.choice([4, 5, 6])
    topo = ring(n, capacity=rng.choice([1.0, 2.0]),
                alpha=rng.choice([0.0, 0.5]))
    if rng.random() < 0.5:
        demand = collectives.allgather(topo.gpus, 1)
    else:
        demand = collectives.alltoall(topo.gpus, 1)
    config = TecclConfig(
        chunk_bytes=1.0,
        buffer_limit_chunks=rng.choice([None, 2 * n]),
        solver=SolverOptions(symmetry="on", time_limit=60.0))
    return topo, demand, config


def _assert_clean(records):
    bad = [r for r in records if not r.skipped and not r.ok]
    details = [(r.producer, r.seed, r.label,
                [str(v) for v in r.report.violations[:3]]) for r in bad]
    assert not bad, details


class TestSymmetricSweep:
    def test_fast_symmetric_sweep(self):
        records = sweep(range(3), instance_fn=symmetric_instance)
        _assert_clean(records)
        replayed = {r.producer for r in records if not r.skipped}
        assert len(replayed) >= 8

    @pytest.mark.slow
    def test_full_symmetric_sweep(self):
        records = sweep(range(20), instance_fn=symmetric_instance)
        _assert_clean(records)
        ok_counts = {}
        for r in records:
            if r.ok:
                ok_counts[r.producer] = ok_counts.get(r.producer, 0) + 1
        # every producer in the registry replayed clean on symmetric seeds
        assert set(ok_counts) == set(PRODUCERS), ok_counts

    @pytest.mark.slow
    def test_quotient_objective_sweep(self):
        # quotient == full, float-tight, across seeded symmetric LPs
        import random

        for seed in range(8):
            rng = random.Random(1000 + seed)
            n = rng.choice([5, 6, 8])
            topo = ring(n)
            demand = (collectives.allgather(topo.gpus, 1)
                      if rng.random() < 0.5
                      else collectives.alltoall(topo.gpus, 1))
            reduced = solve_lp(topo, demand, _cfg(symmetry="on"))
            full = solve_lp(topo, demand, _cfg(symmetry="off"))
            assert reduced.result.objective == pytest.approx(
                full.result.objective, rel=1e-7, abs=1e-7), (seed, n)
