"""Differential tests: the COO bulk path equals the expression path.

The vectorized construction in ``core/lp.py`` / ``core/milp.py`` re-derives
every variable-existence mask and constraint family with NumPy index
arithmetic. These tests are the proof that the rewrite changed *nothing*
mathematically: over a sweep of randomized instances
(:func:`tests.conftest.random_instance`), both paths must compile to
identical canonicalized ``(A, lb, ub, c, bounds, integrality)`` tuples, and
the solve facades must return equal objectives and schedules.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.epochs import build_epoch_plan, path_based_epoch_bound
from repro.core.lp import LpBuilder, solve_lp
from repro.core.milp import MilpBuilder, solve_milp
from repro.errors import InfeasibleError, ScheduleError
from repro.solver.model import compiled_equal

#: failures the facades can legitimately raise on a random instance; the
#: differential claim is that both paths fail the *same* way
_INSTANCE_ERRORS = (InfeasibleError, ScheduleError)

#: the differential sweep — at least 20 randomized instances (acceptance
#: criterion of PR 2)
SEEDS = list(range(24))

#: subset solved end-to-end through both facades
SOLVE_SEEDS = list(range(8))


def _plan_for(topo, demand, config):
    probe = build_epoch_plan(topo, config, num_epochs=1)
    horizon = path_based_epoch_bound(topo, demand, probe)
    return build_epoch_plan(topo, config, num_epochs=horizon)


def _with_construction(config, construction):
    return replace(config,
                   solver=replace(config.solver, construction=construction))


def _assert_same_columns(expr_problem, coo_problem):
    """Same keys must map to the same solver column on both paths."""
    for attr in ("f_vars", "b_vars", "r_vars"):
        expr_vars = getattr(expr_problem, attr)
        coo_vars = getattr(coo_problem, attr)
        assert set(expr_vars) == set(coo_vars)
        for key, var in expr_vars.items():
            assert var.index == coo_vars[key], (attr, key)


class TestCompileEquality:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_lp_paths_identical(self, seed, make_instance):
        topo, demand, config = make_instance(seed)
        plan = _plan_for(topo, demand, config)
        expr = LpBuilder(topo, demand, config, plan,
                         construction="expr").build()
        coo = LpBuilder(topo, demand, config, plan,
                        construction="coo").build()
        assert expr.construction == "expr" and coo.construction == "coo"
        assert compiled_equal(expr.model.compile(), coo.model.compile())
        _assert_same_columns(expr, coo)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_milp_paths_identical(self, seed, make_instance):
        topo, demand, config = make_instance(seed)
        plan = _plan_for(topo, demand, config)
        expr = MilpBuilder(topo, demand, config, plan,
                           construction="expr").build()
        coo = MilpBuilder(topo, demand, config, plan,
                          construction="coo").build()
        assert compiled_equal(expr.model.compile(), coo.model.compile())
        _assert_same_columns(expr, coo)

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_lp_pop_capacity_fn_identical(self, seed, make_instance):
        """POP subproblems scale capacities via capacity_fn — the COO
        capacity family must evaluate it exactly like the expression one."""
        topo, demand, config = make_instance(seed)
        share = 0.5 + 0.1 * seed

        def scaled(i, j, k, _base=topo):
            return _base.link(i, j).capacity * share

        config = replace(config, capacity_fn=scaled)
        plan = _plan_for(topo, demand, config)
        expr = LpBuilder(topo, demand, config, plan,
                         construction="expr").build()
        coo = LpBuilder(topo, demand, config, plan,
                        construction="coo").build()
        assert compiled_equal(expr.model.compile(), coo.model.compile())

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_lp_aggregated_commodities_identical(self, seed, make_instance):
        """The ALLTOALL fast path (chunks aggregated by source)."""
        from repro import collectives, topology

        topo = topology.ring(4 + seed % 2, capacity=1.0, alpha=0.0)
        demand = collectives.alltoall(topo.gpus, 1 + seed % 2)
        _topo, _demand, config = make_instance(seed)
        plan = _plan_for(topo, demand, config)
        expr = LpBuilder(topo, demand, config, plan,
                         construction="expr").build()
        coo = LpBuilder(topo, demand, config, plan,
                        construction="coo").build()
        assert compiled_equal(expr.model.compile(), coo.model.compile())


class TestSolveEquality:
    @pytest.mark.parametrize("seed", SOLVE_SEEDS)
    def test_solve_lp_equal(self, seed, make_instance):
        topo, demand, config = make_instance(seed)
        outcomes = {}
        for construction in ("expr", "coo"):
            try:
                outcomes[construction] = solve_lp(
                    topo, demand, _with_construction(config, construction))
            except _INSTANCE_ERRORS as exc:
                outcomes[construction] = type(exc)
        expr, coo = outcomes["expr"], outcomes["coo"]
        if isinstance(expr, type) or isinstance(coo, type):
            assert expr == coo  # both paths fail identically
            return
        assert coo.result.stats["construction"] == "coo"
        assert expr.result.objective == pytest.approx(
            coo.result.objective, abs=1e-6)
        assert set(expr.raw_schedule.flows) == set(coo.raw_schedule.flows)
        for key, flow in expr.raw_schedule.flows.items():
            assert flow == pytest.approx(coo.raw_schedule.flows[key],
                                         abs=1e-6), key
        assert expr.finish_time == pytest.approx(coo.finish_time, abs=1e-9)

    @pytest.mark.parametrize("seed", SOLVE_SEEDS)
    def test_solve_milp_equal(self, seed, make_instance):
        topo, demand, config = make_instance(seed)
        outcomes = {}
        for construction in ("expr", "coo"):
            try:
                outcomes[construction] = solve_milp(
                    topo, demand, _with_construction(config, construction))
            except _INSTANCE_ERRORS as exc:
                outcomes[construction] = type(exc)
        expr, coo = outcomes["expr"], outcomes["coo"]
        if isinstance(expr, type) or isinstance(coo, type):
            assert expr == coo  # both paths fail identically
            return
        assert coo.result.stats["construction"] == "coo"
        assert expr.result.objective == pytest.approx(
            coo.result.objective, abs=1e-6)
        # identical compiled inputs => HiGHS returns the identical point
        assert expr.raw_schedule.sends == coo.raw_schedule.sends
        assert expr.delivered_epoch == coo.delivered_epoch
        assert expr.finish_time == pytest.approx(coo.finish_time, abs=1e-9)


class TestEdgeCases:
    def test_non_gpu_holders_ignored_like_expr_path(self, star3):
        """A switch in initial_holders must not alias a GPU's buffer rows
        (the expression path never buffers at switches; regression for the
        COO path's node_pos[-1] indexing)."""
        from repro import collectives
        from repro.core import TecclConfig

        demand = collectives.allgather(star3.gpus, 1)
        config = TecclConfig(chunk_bytes=1.0, buffer_limit_chunks=2)
        plan = _plan_for(star3, demand, config)
        holders = {q: {q[0]} | set(star3.switches)
                   for q in demand.commodities()}
        expr = MilpBuilder(star3, demand, config, plan,
                           initial_holders=holders,
                           construction="expr").build()
        coo = MilpBuilder(star3, demand, config, plan,
                          initial_holders=holders,
                          construction="coo").build()
        assert compiled_equal(expr.model.compile(), coo.model.compile())


class TestDispatch:
    def test_auto_uses_coo_for_standard_models(self, ring4, ag_ring4,
                                               unit_config):
        plan = _plan_for(ring4, ag_ring4, unit_config)
        problem = MilpBuilder(ring4, ag_ring4, unit_config, plan).build()
        assert problem.construction == "coo"

    def test_astar_round_models_fall_back_to_expr(self, ring4, ag_ring4,
                                                  unit_config):
        plan = _plan_for(ring4, ag_ring4, unit_config)
        problem = MilpBuilder(ring4, ag_ring4, unit_config, plan,
                              require_completion=False,
                              allow_overhang=True).build()
        assert problem.construction == "expr"

    def test_forced_coo_rejects_round_models(self, ring4, ag_ring4,
                                             unit_config):
        from repro.errors import ModelError

        plan = _plan_for(ring4, ag_ring4, unit_config)
        with pytest.raises(ModelError):
            MilpBuilder(ring4, ag_ring4, unit_config, plan,
                        require_completion=False, construction="coo")

    def test_values_survive_solve_on_both_paths(self, ring4, ag_ring4,
                                                unit_config):
        plan = _plan_for(ring4, ag_ring4, unit_config)
        for construction in ("expr", "coo"):
            problem = MilpBuilder(ring4, ag_ring4, unit_config, plan,
                                  construction=construction).build()
            result = problem.model.solve(unit_config.solver)
            assert result.status.has_solution
            total = sum(result.value(var)
                        for var in problem.f_vars.values())
            assert total > 0
