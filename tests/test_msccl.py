"""Tests for the MSCCL XML export and switch-hop collapsing."""

import pytest

from repro import collectives, topology
from repro.core import TecclConfig, solve_milp
from repro.errors import ExportError
from repro.msccl import (collapse_switch_hops, parse_msccl_xml,
                         schedule_from_msccl_xml, to_msccl_xml)


def dgx1_outcome():
    topo = topology.dgx1()
    demand = collectives.allgather(topo.gpus, 1)
    out = solve_milp(topo, demand, TecclConfig(chunk_bytes=25e3,
                                               num_epochs=10))
    return topo, demand, out


class TestCollapse:
    def test_no_switches_identity(self, ring4):
        demand = collectives.allgather(ring4.gpus, 1)
        out = solve_milp(ring4, demand, TecclConfig(chunk_bytes=1.0,
                                                    num_epochs=6))
        collapsed = collapse_switch_hops(out.schedule, ring4)
        assert collapsed.sends == out.schedule.sends

    def test_switch_hops_merged(self, star3):
        demand = collectives.allgather(star3.gpus, 1)
        out = solve_milp(star3, demand, TecclConfig(chunk_bytes=1.0,
                                                    num_epochs=8))
        collapsed = collapse_switch_hops(out.schedule, star3)
        assert all(not star3.is_switch(s.src) and not star3.is_switch(s.dst)
                   for s in collapsed.sends)
        # every demanded triple still has an arrival
        arrived = {(s.source, s.chunk, s.dst) for s in collapsed.sends}
        for t in demand.triples():
            assert t in arrived

    def test_orphan_relay_rejected(self, star3):
        from repro.core.schedule import Schedule, Send

        orphan = Schedule(
            sends=[Send(epoch=2, source=0, chunk=0, src=3, dst=1)],
            tau=1.0, chunk_bytes=1.0, num_epochs=4)
        with pytest.raises(ExportError):
            collapse_switch_hops(orphan, star3)


class TestExport:
    def test_well_formed_document(self):
        topo, demand, out = dgx1_outcome()
        xml = to_msccl_xml(out.schedule, topo, demand, name="t",
                           collective="allgather")
        parsed = parse_msccl_xml(xml)
        assert parsed["attrs"]["name"] == "t"
        assert parsed["attrs"]["coll"] == "allgather"
        assert int(parsed["attrs"]["ngpus"]) == 8

    def test_every_gpu_has_threadblocks(self):
        topo, demand, out = dgx1_outcome()
        parsed = parse_msccl_xml(to_msccl_xml(out.schedule, topo, demand))
        assert set(parsed["gpus"]) == set(range(8))
        for tbs in parsed["gpus"].values():
            assert tbs  # ALLGATHER: everybody sends and receives

    def test_send_recv_steps_balance(self):
        topo, demand, out = dgx1_outcome()
        parsed = parse_msccl_xml(to_msccl_xml(out.schedule, topo, demand))
        sends = recvs = 0
        for tbs in parsed["gpus"].values():
            for _tb, kind, _peer, steps in tbs:
                if kind == "s":
                    sends += len(steps)
                else:
                    recvs += len(steps)
        assert sends == recvs == out.schedule.num_sends

    def test_forward_steps_depend_on_receives(self):
        topo, demand, out = dgx1_outcome()
        parsed = parse_msccl_xml(to_msccl_xml(out.schedule, topo, demand))
        dependent = 0
        for gpu, tbs in parsed["gpus"].items():
            for _tb, kind, _peer, steps in tbs:
                if kind != "s":
                    continue
                for (_s, _type, srcoff, depid, deps) in steps:
                    # sending someone else's chunk requires a dependency
                    if srcoff != gpu and depid >= 0:
                        dependent += 1
        assert dependent > 0

    def test_switch_topology_export(self, star3):
        demand = collectives.allgather(star3.gpus, 1)
        out = solve_milp(star3, demand, TecclConfig(chunk_bytes=1.0,
                                                    num_epochs=8))
        xml = to_msccl_xml(out.schedule, star3, demand)
        parsed = parse_msccl_xml(xml)
        assert set(parsed["gpus"]) == {0, 1, 2}

    def test_parse_rejects_garbage(self):
        with pytest.raises(ExportError):
            parse_msccl_xml("<foo/>")

    def test_chunk_offsets_unique_per_source(self):
        topo, demand, out = dgx1_outcome()
        xml = to_msccl_xml(out.schedule, topo, demand)
        parsed = parse_msccl_xml(xml)
        offsets = set()
        for tbs in parsed["gpus"].values():
            for _tb, kind, _peer, steps in tbs:
                for step in steps:
                    offsets.add(step[2])
        assert len(offsets) == 8  # 8 sources x 1 chunk


class TestRoundTrip:
    def test_schedule_round_trips_exactly(self):
        topo, demand, out = dgx1_outcome()
        xml = to_msccl_xml(out.schedule, topo, demand)
        back = schedule_from_msccl_xml(xml, tau=out.plan.tau,
                                       chunk_bytes=out.plan.chunk_bytes)
        assert sorted(back.sends) == sorted(out.schedule.sends)

    def test_round_trip_simulates_identically(self):
        from repro.simulate import run_events

        topo, demand, out = dgx1_outcome()
        xml = to_msccl_xml(out.schedule, topo, demand)
        back = schedule_from_msccl_xml(xml, tau=out.plan.tau,
                                       chunk_bytes=out.plan.chunk_bytes)
        original = run_events(out.schedule, topo, demand).finish_time
        reloaded = run_events(back, topo, demand).finish_time
        assert reloaded == pytest.approx(original)

    def test_foreign_document_rejected(self):
        foreign = ("<algo name='x' ngpus='2'><gpu id='0'>"
                   "<tb id='0' send='1' recv='-1'>"
                   "<step s='0' type='s' srcoff='0'/></tb></gpu></algo>")
        with pytest.raises(ExportError, match="x_epoch"):
            schedule_from_msccl_xml(foreign, tau=1.0, chunk_bytes=1.0)

    def test_empty_document_rejected(self):
        with pytest.raises(ExportError):
            schedule_from_msccl_xml("<algo/>", tau=1.0, chunk_bytes=1.0)
