"""Crash-injection sweep: SIGKILL the fleet daemon, recover, compare.

The acceptance criterion for the durable control plane: a daemon killed
at *any* WAL-record boundary and restarted with recovery must converge to
exactly the state of a daemon that never crashed — zero lost activations,
zero duplicate replans, zero non-conformant activations, cool-down clocks
resumed.

The harness runs the daemon in a subprocess whose WAL ``append`` is
instrumented to ``SIGKILL`` the process the moment record *N* is durable
— the worst possible moment, inside the write-ahead window where the
record exists but the state transition it announces has not been applied.
The restarted child recovers, fast-forwards its deterministic telemetry
stream past the committed steps, finishes the scenario, and dumps a
normalized state summary; the parent compares it against the never-killed
oracle's summary.

Tier-1 runs a sampled subset of kill points (``durability`` lane); the
weekly job sweeps every record boundary (``slow``).

The estimator is run memoryless (``smoothing=1.0``, ``min_samples=1``) so
its state is fully determined by the journaled transitions; the summary
therefore compares health and cool-down clocks, not the EWMA itself —
the EWMA is rebuilt by the first post-recovery poll by construction.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

pytestmark = pytest.mark.durability

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"

#: the scenario every child runs (determinism is the whole harness)
STEPS = 6

CHILD = '''
import os
import signal
import sys

from repro import collectives, topology
from repro.core import TecclConfig
from repro.fleet import (AdaptationController, FabricEstimator, FleetJob,
                         LinkEvent, SyntheticTelemetry, WriteAheadLog,
                         atomic_write_json)
from repro.service import Planner
from repro.service.fingerprint import fingerprint_canonical

walpath, out, steps, kill_after = (sys.argv[1], sys.argv[2],
                                   int(sys.argv[3]), int(sys.argv[4]))

topo = topology.ring(4, capacity=1.0)
events = [LinkEvent(at=2.0, link=(0, 1), factor=0.4),
          LinkEvent(at=2.0, link=(1, 2), factor=0.3, until=4.0)]
source = SyntheticTelemetry(topo, events=events)
wal = WriteAheadLog(walpath)
wal.attach_lease(takeover=True)
if kill_after:
    original = wal.append
    count = {"n": 0}

    def append(kind, data=None, *, now=None):
        seq = original(kind, data, now=now)
        count["n"] += 1
        if count["n"] >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)  # dies mid-transition
        return seq

    wal.append = append

estimator = FabricEstimator(topo, smoothing=1.0, min_samples=1)
with Planner(executor="inline") as planner:
    daemon = AdaptationController(topo, source, planner, wal=wal,
                                  estimator=estimator)
    if wal.has_state():
        daemon.recover()
        # resume the deterministic telemetry stream where the committed
        # history left it: a poll per completed step
        for _ in range(daemon._step_index):
            source.poll()
    if "a2a" not in daemon.jobs:
        daemon.add_job(FleetJob(
            name="a2a", demand=collectives.alltoall(topo.gpus, 1),
            config=TecclConfig(chunk_bytes=1.0)))
    while daemon._step_index < steps:
        daemon.step()

    def fp(result):
        doc = result.to_dict()
        doc.pop("solve_time", None)  # wall clock differs run to run
        doc.pop("explain", None)  # provenance carries wall-clock phases
        return fingerprint_canonical(doc)

    registry = daemon.registry
    with registry._lock:
        entries = {e.seq: e for e in registry.history}
        for e in registry._active.values():
            entries[e.seq] = e
        active = {job: e.seq for job, e in registry._active.items()}
    summary = {
        "jobs": sorted(daemon.jobs),
        "steps": daemon._step_index,
        "now": daemon.now,
        "active": {job: [seq, fp(entries[seq].result)]
                   for job, seq in sorted(active.items())},
        "entries": [[s, entries[s].job, entries[s].status.value,
                     entries[s].conformance_ok, fp(entries[s].result)]
                    for s in sorted(entries)],
        # health + cool-down clock are the durability contract; raw
        # sample counts are not journaled per-poll by design (a poll per
        # record would defeat write-ahead batching)
        "estimator": {
            "%d->%d" % link: [est.health.value, est.last_transition]
            for link, est in sorted(daemon.estimator._links.items())},
        "decisions": [[d.job, d.time, d.action] for d in daemon.decisions],
    }
    atomic_write_json(out, summary)
wal.close()
print("RECORDS", wal.records_written)
'''


def run_child(tmp_path, wal, out, *, kill_after=0, steps=STEPS):
    script = tmp_path / "child.py"
    if not script.exists():
        script.write_text(CHILD, encoding="utf-8")
    env = dict(os.environ, PYTHONPATH=str(SRC))
    return subprocess.run(
        [sys.executable, str(script), str(wal), str(out), str(steps),
         str(kill_after)],
        env=env, capture_output=True, text=True, timeout=120)


def oracle_summary(tmp_path):
    """One clean, never-killed run of the scenario."""
    done = subprocess.CompletedProcess
    wal = tmp_path / "oracle" / "fleet.wal"
    wal.parent.mkdir()
    out = tmp_path / "oracle" / "summary.json"
    done = run_child(tmp_path, wal, out)
    assert done.returncode == 0, done.stderr
    records = int(done.stdout.split("RECORDS")[-1].strip().split()[0])
    return json.loads(out.read_text(encoding="utf-8")), records


def sweep_kill_points(tmp_path, kill_points, oracle):
    for kill_after in kill_points:
        workdir = tmp_path / f"kill{kill_after}"
        workdir.mkdir()
        wal = workdir / "fleet.wal"
        out = workdir / "summary.json"
        crashed = run_child(tmp_path, wal, out, kill_after=kill_after)
        assert crashed.returncode == -signal.SIGKILL, (
            f"kill point {kill_after}: child survived past the whole "
            f"scenario\n{crashed.stderr}")
        assert not out.exists()  # died before finishing, as intended
        resumed = run_child(tmp_path, wal, out)
        assert resumed.returncode == 0, (
            f"kill point {kill_after}: recovery failed\n{resumed.stderr}")
        summary = json.loads(out.read_text(encoding="utf-8"))
        assert summary == oracle, (
            f"kill point {kill_after}: recovered state diverged from the "
            "never-crashed oracle")


class TestCrashRecoverySweep:
    def test_oracle_scenario_adapts(self, tmp_path):
        # the scenario must actually exercise the machinery being crashed:
        # a replan (new activation), a retirement, and >= 2 transitions
        oracle, records = oracle_summary(tmp_path)
        statuses = [row[2] for row in oracle["entries"]]
        assert "active" in statuses and "retired" in statuses
        assert any(action == "replan" for _, _, action
                   in oracle["decisions"])
        assert records >= 15
        # every surviving activation is conformance-vetted
        for row in oracle["entries"]:
            if row[2] in ("active", "retired"):
                assert row[3] is True

    def test_kill_sweep_fast_subset(self, tmp_path):
        """Tier-1: sampled kill points across the record sequence."""
        import random

        oracle, records = oracle_summary(tmp_path)
        rng = random.Random(0)
        # always the nastiest boundaries (first record, mid-admission,
        # final commit) plus a random sample in between
        points = {1, 3, records}
        points.update(rng.sample(range(2, records), 3))
        sweep_kill_points(tmp_path, sorted(points), oracle)

    @pytest.mark.slow
    def test_kill_sweep_every_record_boundary(self, tmp_path):
        """Weekly: SIGKILL after every single record in the scenario."""
        oracle, records = oracle_summary(tmp_path)
        sweep_kill_points(tmp_path, range(1, records + 1), oracle)


class TestStatusFileCrash:
    def test_kill_mid_dump_never_leaves_a_torn_status_file(self, tmp_path):
        """Satellite: --status-file is temp+rename, so a reader (or a
        crash mid-dump) sees a complete document or the previous one."""
        status = tmp_path / "status.json"
        # a deliberately large document so the dump has a wide kill window
        writer = tmp_path / "writer.py"
        writer.write_text(
            "import sys\n"
            "from repro.fleet import atomic_write_json\n"
            "doc = {'generation': 0, 'pad': ['x' * 64] * 20000}\n"
            "i = 0\n"
            "while True:\n"
            "    i += 1\n"
            "    doc['generation'] = i\n"
            "    atomic_write_json(sys.argv[1], doc)\n",
            encoding="utf-8")
        env = dict(os.environ, PYTHONPATH=str(SRC))
        proc = subprocess.Popen([sys.executable, str(writer), str(status)],
                                env=env)
        try:
            deadline = time.monotonic() + 30
            while not status.exists():
                assert time.monotonic() < deadline
                time.sleep(0.01)
            for _ in range(20):  # kill and restart across many dumps
                time.sleep(0.02)
                proc.kill()
                proc.wait()
                doc = json.loads(status.read_text(encoding="utf-8"))
                assert doc["generation"] >= 1  # complete, parseable, whole
                assert len(doc["pad"]) == 20000
                proc = subprocess.Popen(
                    [sys.executable, str(writer), str(status)], env=env)
        finally:
            proc.kill()
            proc.wait()
