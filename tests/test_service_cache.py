"""The two-tier schedule cache: LRU, disk persistence, invalidation."""

import json

import pytest

from repro.errors import ServiceError
from repro.service import CACHE_FORMAT_VERSION, ScheduleCache

FP_A = "a" * 64
FP_B = "b" * 64
FP_C = "c" * 64


class TestMemoryTier:
    def test_put_get_roundtrip(self):
        cache = ScheduleCache(capacity=4)
        cache.put(FP_A, {"x": 1})
        assert cache.get(FP_A) == {"x": 1}
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 0

    def test_miss_counted(self):
        cache = ScheduleCache(capacity=4)
        assert cache.get(FP_A) is None
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = ScheduleCache(capacity=2)
        cache.put(FP_A, {"v": "a"})
        cache.put(FP_B, {"v": "b"})
        cache.get(FP_A)               # A is now most-recent
        cache.put(FP_C, {"v": "c"})   # evicts B, not A
        assert cache.get(FP_A) is not None
        assert cache.get(FP_B) is None
        assert cache.stats.evictions == 1

    def test_capacity_validated(self):
        with pytest.raises(ServiceError, match="capacity"):
            ScheduleCache(capacity=0)

    def test_non_hex_fingerprint_rejected(self):
        cache = ScheduleCache(capacity=2)
        with pytest.raises(ServiceError, match="hex"):
            cache.put("../evil", {"v": 1})

    def test_lookups_reject_traversal_keys(self, tmp_path):
        """get()/contains() must never turn a key into an escape path."""
        victim = tmp_path / "victim.json"
        victim.write_text("{}")
        cache = ScheduleCache(capacity=2, directory=tmp_path / "cache")
        for key in ("../victim", "..", "a/b", ""):
            with pytest.raises(ServiceError, match="hex"):
                cache.get(key)
            with pytest.raises(ServiceError, match="hex"):
                cache.contains(key)
        assert victim.exists()  # nothing outside the cache dir was touched


class TestDiskTier:
    def test_survives_new_instance(self, tmp_path):
        first = ScheduleCache(capacity=4, directory=tmp_path)
        first.put(FP_A, {"x": 42})
        fresh = ScheduleCache(capacity=4, directory=tmp_path)
        assert fresh.get(FP_A) == {"x": 42}
        assert fresh.stats.disk_hits == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        ScheduleCache(capacity=4, directory=tmp_path).put(FP_A, {"x": 1})
        cache = ScheduleCache(capacity=4, directory=tmp_path)
        cache.get(FP_A)
        cache.get(FP_A)
        assert cache.stats.disk_hits == 1
        assert cache.stats.memory_hits == 1

    def test_eviction_does_not_lose_disk_copy(self, tmp_path):
        cache = ScheduleCache(capacity=1, directory=tmp_path)
        cache.put(FP_A, {"v": "a"})
        cache.put(FP_B, {"v": "b"})  # evicts A from memory only
        assert cache.get(FP_A) == {"v": "a"}
        assert cache.stats.disk_hits == 1

    def test_version_mismatch_invalidates(self, tmp_path):
        cache = ScheduleCache(capacity=4, directory=tmp_path)
        cache.put(FP_A, {"x": 1})
        path = tmp_path / f"{FP_A}.json"
        envelope = json.loads(path.read_text())
        envelope["version"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(envelope))
        fresh = ScheduleCache(capacity=4, directory=tmp_path)
        assert fresh.get(FP_A) is None
        assert fresh.stats.invalidations == 1
        assert not path.exists()  # stale file dropped

    def test_package_version_mismatch_invalidates(self, tmp_path):
        cache = ScheduleCache(capacity=4, directory=tmp_path)
        cache.put(FP_A, {"x": 1})
        path = tmp_path / f"{FP_A}.json"
        envelope = json.loads(path.read_text())
        envelope["package"] = "0.0.0-ancient"
        path.write_text(json.dumps(envelope))
        fresh = ScheduleCache(capacity=4, directory=tmp_path)
        assert fresh.get(FP_A) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        (tmp_path / f"{FP_A}.json").write_text("{not json")
        cache = ScheduleCache(capacity=4, directory=tmp_path)
        assert cache.get(FP_A) is None
        assert cache.stats.invalidations == 1

    def test_purge_clears_both_tiers(self, tmp_path):
        cache = ScheduleCache(capacity=4, directory=tmp_path)
        cache.put(FP_A, {"x": 1})
        cache.put(FP_B, {"x": 2})
        # each entry lives in both tiers but is one logical entry
        assert cache.purge() == 2
        assert cache.get(FP_A) is None
        assert list(tmp_path.glob("*.json")) == []

    def test_directory_expands_user(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        cache = ScheduleCache(capacity=2, directory="~/.cache/teccl-test")
        cache.put(FP_A, {"x": 1})
        assert (tmp_path / ".cache" / "teccl-test" / f"{FP_A}.json").exists()
        import pathlib
        assert not pathlib.Path("~").exists()  # no literal "~" dir in CWD

    def test_entries_listing(self, tmp_path):
        cache = ScheduleCache(capacity=4, directory=tmp_path)
        cache.put(FP_A, {"x": 1}, meta={"note": "hello"})
        entries = cache.entries()
        assert len(entries) == 1
        assert entries[0].fingerprint == FP_A
        assert entries[0].stale is False
        assert entries[0].meta == {"note": "hello"}

    def test_contains_does_not_touch_stats(self, tmp_path):
        cache = ScheduleCache(capacity=4, directory=tmp_path)
        cache.put(FP_A, {"x": 1})
        assert cache.contains(FP_A)
        assert not cache.contains(FP_B)
        assert cache.stats.misses == 0
        assert cache.stats.hits == 0


NEAR_X = "d" * 64
NEAR_Y = "e" * 64


class TestNearIndex:
    """The warm-start donor lookup: same fabric shape, different scalars."""

    def test_get_near_returns_most_recent_donor(self):
        cache = ScheduleCache(capacity=4)
        cache.put(FP_A, {"v": "a"}, meta={"near": NEAR_X})
        cache.put(FP_B, {"v": "b"}, meta={"near": NEAR_X})
        assert cache.get_near(NEAR_X) == {"v": "b"}
        assert cache.stats.near_hits == 1

    def test_get_near_miss_counted(self):
        cache = ScheduleCache(capacity=4)
        cache.put(FP_A, {"v": "a"}, meta={"near": NEAR_X})
        assert cache.get_near(NEAR_Y) is None
        assert cache.stats.near_misses == 1

    def test_get_near_does_not_disturb_exact_stats(self):
        cache = ScheduleCache(capacity=4)
        cache.put(FP_A, {"v": "a"}, meta={"near": NEAR_X})
        cache.get_near(NEAR_X)
        assert cache.stats.memory_hits == 0
        assert cache.stats.misses == 0

    def test_evicted_entry_stops_donating(self):
        cache = ScheduleCache(capacity=4)
        cache.put(FP_A, {"v": "a"}, meta={"near": NEAR_X})
        cache.evict(FP_A)
        assert cache.get_near(NEAR_X) is None

    def test_donor_survives_restart_via_disk_meta(self, tmp_path):
        first = ScheduleCache(capacity=4, directory=tmp_path)
        first.put(FP_A, {"v": "a"}, meta={"near": NEAR_X})
        # a fresh process: empty memory index, donors found via envelopes
        second = ScheduleCache(capacity=4, directory=tmp_path)
        assert second.get_near(NEAR_X) == {"v": "a"}
        assert second.stats.near_hits == 1

    def test_purge_clears_donors(self):
        cache = ScheduleCache(capacity=4)
        cache.put(FP_A, {"v": "a"}, meta={"near": NEAR_X})
        cache.purge()
        assert cache.get_near(NEAR_X) is None

    def test_non_hex_near_key_rejected(self):
        cache = ScheduleCache(capacity=4)
        with pytest.raises(ServiceError, match="hex"):
            cache.put(FP_A, {"v": "a"}, meta={"near": "../evil"})
        with pytest.raises(ServiceError, match="hex"):
            cache.get_near("../evil")
