"""Unit tests for demand matrices, collective patterns, multi-tenant merge."""

import pytest

from repro.collectives import (Demand, TenantDemand, allgather,
                               allreduce_phases, alltoall, broadcast, gather,
                               merge_tenants, reduce_scatter, scatter,
                               scatter_gather)
from repro.errors import DemandError
from repro.topology import ring, star


class TestDemand:
    def test_from_triples(self):
        d = Demand.from_triples([(0, 0, 1), (0, 0, 2), (1, 0, 0)])
        assert d.wants(0, 0, 1)
        assert d.wants(0, 0, 2)
        assert not d.wants(0, 0, 0)
        assert d.num_triples == 3
        assert d.num_commodities == 2

    def test_rejects_self_demand(self):
        with pytest.raises(DemandError):
            Demand.from_triples([(0, 0, 0)])

    def test_rejects_negative_chunk(self):
        with pytest.raises(DemandError):
            Demand.from_triples([(0, -1, 1)])

    def test_destinations(self):
        d = Demand.from_triples([(0, 0, 1), (0, 0, 2)])
        assert d.destinations(0, 0) == frozenset({1, 2})
        assert d.destinations(5, 0) == frozenset()

    def test_benefits_from_copy(self):
        multicast = Demand.from_triples([(0, 0, 1), (0, 0, 2)])
        unicast = Demand.from_triples([(0, 0, 1), (0, 1, 2)])
        assert multicast.benefits_from_copy()
        assert not unicast.benefits_from_copy()

    def test_chunks_of(self):
        d = Demand.from_triples([(0, 0, 1), (0, 2, 1), (0, 1, 2)])
        assert d.chunks_of(0) == [0, 1, 2]
        assert d.num_chunks(0) == 3

    def test_validate_against_topology(self):
        topo = star(3)  # hub id 3 is a switch
        ok = Demand.from_triples([(0, 0, 1)])
        ok.validate(topo)
        with pytest.raises(DemandError, match="switch"):
            Demand.from_triples([(0, 0, 3)]).validate(topo)
        with pytest.raises(DemandError, match="not in topology"):
            Demand.from_triples([(0, 0, 9)]).validate(topo)
        with pytest.raises(DemandError, match="empty"):
            Demand.empty().validate(topo)

    def test_without(self):
        d = allgather([0, 1, 2], 1)
        rest = d.without([(0, 0, 1)])
        assert not rest.wants(0, 0, 1)
        assert rest.num_triples == d.num_triples - 1

    def test_without_everything(self):
        d = Demand.from_triples([(0, 0, 1)])
        assert d.without([(0, 0, 1)]).is_empty()

    def test_union_disjoint_renumbers(self):
        a = Demand.from_triples([(0, 0, 1)])
        b = Demand.from_triples([(0, 0, 2)])
        merged, renames = a.union_disjoint(b)
        assert merged.num_triples == 2
        assert renames[(0, 0, 2)] == (0, 1, 2)
        assert merged.wants(0, 1, 2)

    def test_repr_mentions_copy(self):
        assert "copy=yes" in repr(allgather([0, 1, 2], 1))
        assert "copy=no" in repr(alltoall([0, 1, 2], 1))


class TestPatterns:
    def test_allgather_counts(self):
        d = allgather([0, 1, 2, 3], chunks_per_gpu=2)
        assert d.num_commodities == 8
        assert d.num_triples == 8 * 3
        assert d.benefits_from_copy()

    def test_alltoall_counts(self):
        d = alltoall([0, 1, 2], chunks_per_pair=2)
        # each source: 2 other GPUs x 2 chunks
        assert d.num_chunks(0) == 4
        assert d.num_triples == 3 * 2 * 2
        assert not d.benefits_from_copy()

    def test_alltoall_distinct_destinations(self):
        d = alltoall([0, 1, 2], 1)
        for s, c in d.commodities():
            assert len(d.destinations(s, c)) == 1

    def test_broadcast(self):
        d = broadcast(0, [0, 1, 2], num_chunks=3)
        assert d.sources == [0]
        assert d.num_triples == 6  # source removed from destinations

    def test_gather(self):
        d = gather(0, [1, 2], chunks_per_gpu=2)
        assert all(dst == {0} for dst in
                   (set(d.destinations(s, c)) for s, c in d.commodities()))

    def test_scatter_distinct_chunks(self):
        d = scatter(0, [1, 2, 3], chunks_per_dst=2)
        assert d.num_chunks(0) == 6
        assert not d.benefits_from_copy()

    def test_reduce_scatter_is_alltoall_shaped(self):
        assert reduce_scatter([0, 1, 2], 1).triples() == \
            alltoall([0, 1, 2], 1).triples()

    def test_allreduce_phases(self):
        rs, ag = allreduce_phases([0, 1, 2], 1)
        assert not rs.benefits_from_copy()
        assert ag.benefits_from_copy()

    def test_scatter_gather(self):
        d = scatter_gather(0, [0, 1, 2], num_chunks=1)
        # every non-root wants every root chunk
        assert d.wants(0, 0, 1) and d.wants(0, 0, 2)
        assert d.wants(0, 1, 1) and d.wants(0, 1, 2)

    def test_pattern_validation(self):
        with pytest.raises(DemandError):
            allgather([0], 1)
        with pytest.raises(DemandError):
            allgather([0, 0, 1], 1)
        with pytest.raises(DemandError):
            alltoall([0, 1], 0)
        with pytest.raises(DemandError):
            broadcast(0, [0])
        with pytest.raises(DemandError):
            gather(0, [0])
        with pytest.raises(DemandError):
            scatter_gather(5, [0, 1])


class TestMultiTenant:
    def test_merge_two_tenants(self):
        t1 = TenantDemand(allgather([0, 1], 1), priority=2.0, name="a")
        t2 = TenantDemand(alltoall([0, 1], 1), priority=1.0, name="b")
        merged, weights = merge_tenants([t1, t2])
        assert merged.num_triples == t1.demand.num_triples + \
            t2.demand.num_triples
        # tenant 1's triples keep priority 2
        assert weights[(0, 0, 1)] == 2.0
        # tenant 2's renamed triples carry priority 1
        assert 1.0 in set(weights.values())

    def test_merge_requires_tenants(self):
        with pytest.raises(DemandError):
            merge_tenants([])

    def test_priority_positive(self):
        with pytest.raises(DemandError):
            TenantDemand(allgather([0, 1], 1), priority=0.0)

    def test_three_tenants_disjoint_chunks(self):
        tenants = [TenantDemand(allgather([0, 1], 1), priority=float(i + 1))
                   for i in range(3)]
        merged, weights = merge_tenants(tenants)
        assert merged.num_chunks(0) == 3
        assert len(weights) == merged.num_triples
