"""Tests for the Blink-style spanning-tree packing baseline."""

import pytest

from repro import collectives, topology
from repro.baselines.blink_like import (blink_allgather, blink_broadcast,
                                        pack_arborescences, split_chunks)
from repro.core import TecclConfig, solve_milp
from repro.core.epochs import build_epoch_plan, plan_with_tau
from repro.errors import DemandError, TopologyError
from repro.simulate import verify


def cfg(num_epochs=None, **kwargs):
    return TecclConfig(chunk_bytes=1.0, num_epochs=num_epochs, **kwargs)


class TestPacking:
    def test_single_tree_on_line(self, line3):
        trees = pack_arborescences(line3, 0, chunk_bytes=1.0)
        assert len(trees) == 1
        assert trees[0].covered_gpus(line3) == {0, 1, 2}

    def test_two_disjoint_trees_on_mesh(self):
        topo = topology.full_mesh(4, capacity=1.0)
        trees = pack_arborescences(topo, 0, chunk_bytes=1.0, max_trees=8)
        # a 4-mesh has out-degree 3 at the root: up to 3 arc-disjoint trees
        assert 2 <= len(trees) <= 3
        used: set[tuple[int, int]] = set()
        for tree in trees:
            arcs = set(tree.arcs)
            assert not (arcs & used), "trees must be arc-disjoint"
            used |= arcs

    def test_link_budget_allows_sharing(self, line3):
        trees = pack_arborescences(line3, 0, chunk_bytes=1.0,
                                   link_budget=2, max_trees=8)
        assert len(trees) == 2

    def test_max_trees_caps(self):
        topo = topology.full_mesh(4, capacity=1.0)
        trees = pack_arborescences(topo, 0, chunk_bytes=1.0, max_trees=1)
        assert len(trees) == 1

    def test_rate_is_bottleneck_capacity(self):
        topo = topology.Topology("het", num_nodes=3)
        topo.add_link(0, 1, capacity=4.0)
        topo.add_link(1, 2, capacity=1.0)
        topo.add_link(2, 0, capacity=8.0)
        trees = pack_arborescences(topo, 0, chunk_bytes=1.0)
        assert trees[0].rate == pytest.approx(1.0)

    def test_switch_root_rejected(self, star3):
        hub = next(iter(star3.switches))
        with pytest.raises(DemandError):
            pack_arborescences(star3, hub, chunk_bytes=1.0)

    def test_no_tree_raises(self):
        topo = topology.Topology("disc", num_nodes=3)
        topo.add_bidirectional(0, 1, 1.0)
        # node 2 reachable only via an incoming-only link pattern is invalid
        topo.add_link(2, 0, 1.0)
        topo.add_link(2, 1, 1.0)
        with pytest.raises(TopologyError):
            pack_arborescences(topo, 0, chunk_bytes=1.0)

    def test_trees_thread_switches(self, star3):
        trees = pack_arborescences(star3, 0, chunk_bytes=1.0)
        tree = trees[0]
        hub = next(iter(star3.switches))
        assert hub in tree.parent  # the hub must relay
        logical, paths = tree.to_logical(star3)
        assert sorted(logical.nodes) == star3.gpus
        for path in paths.values():
            assert path[0] in star3.gpus and path[-1] in star3.gpus


class TestSplitChunks:
    def test_proportional_split(self):
        assert split_chunks(4, [1.0, 1.0]) == [2, 2]
        assert split_chunks(3, [2.0, 1.0]) == [2, 1]

    def test_shares_sum_exactly(self):
        for n in (1, 5, 7):
            shares = split_chunks(n, [0.3, 0.5, 0.2])
            assert sum(shares) == n

    def test_zero_rate_rejected(self):
        with pytest.raises(DemandError):
            split_chunks(4, [1.0, 0.0])

    def test_zero_chunks_rejected(self):
        with pytest.raises(DemandError):
            split_chunks(0, [1.0])


class TestBlinkSchedules:
    def test_broadcast_delivers_on_mesh(self):
        topo = topology.full_mesh(4, capacity=1.0)
        sched = blink_broadcast(topo, cfg(), root=0, num_chunks=4)
        demand = collectives.broadcast(0, topo.gpus, 4)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=sched.num_epochs)
        verify(sched, topo, demand, plan)

    def test_broadcast_through_switch(self, star3):
        sched = blink_broadcast(star3, cfg(), root=0, num_chunks=2)
        demand = collectives.broadcast(0, star3.gpus, 2)
        plan = plan_with_tau(star3, 1.0, tau=1.0, num_epochs=sched.num_epochs)
        verify(sched, star3, demand, plan)

    def test_multi_tree_beats_single_tree_on_mesh(self):
        """Packing >1 tree must not be slower than the best single tree —
        Blink's core claim on multi-connected fabrics."""
        topo = topology.full_mesh(4, capacity=1.0)
        multi = blink_broadcast(topo, cfg(), root=0, num_chunks=6,
                                max_trees=3)
        single = blink_broadcast(topo, cfg(), root=0, num_chunks=6,
                                 max_trees=1)
        assert multi.finish_time(topo) <= single.finish_time(topo) + 1e-9

    def test_allgather_delivers_on_dgx1(self, dgx1):
        config = TecclConfig(chunk_bytes=1e6)
        sched = blink_allgather(dgx1, config, chunks_per_gpu=1, max_trees=2)
        demand = collectives.allgather(dgx1.gpus, 1)
        plan = build_epoch_plan(dgx1, config, num_epochs=sched.num_epochs)
        verify(sched, dgx1, demand, plan)

    def test_milp_at_least_as_good(self, ring4, ag_ring4):
        blink = blink_allgather(ring4, cfg(), chunks_per_gpu=1)
        opt = solve_milp(ring4, ag_ring4, cfg(8))
        assert opt.finish_time <= blink.finish_time(ring4) + 1e-9
