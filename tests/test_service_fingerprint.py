"""Fingerprinting: order-insensitivity, normalisation, version salting."""

import pytest

from repro import collectives, topology
from repro.collectives.demand import Demand
from repro.core import TecclConfig
from repro.core.config import AStarConfig, SwitchModel
from repro.core.solve import Method
from repro.errors import ServiceError
from repro.service import fingerprint_request
from repro.service.fingerprint import (FINGERPRINT_VERSION,
                                       canonical_request)
from repro.solver import SolverOptions


def _fp(topo, demand, config, **kwargs):
    return fingerprint_request(topo, demand, config, **kwargs)


@pytest.fixture
def config():
    return TecclConfig(chunk_bytes=1e6, num_epochs=8)


class TestOrderInsensitivity:
    def test_link_insertion_order_is_irrelevant(self, config):
        edges = [(0, 1, 2.0, 1e-6), (1, 2, 3.0, 0.0), (2, 0, 1.0, 5e-7),
                 (1, 0, 2.0, 1e-6), (2, 1, 3.0, 0.0), (0, 2, 1.0, 5e-7)]
        demand = collectives.allgather([0, 1, 2], 1)

        def build(order):
            topo = topology.Topology("t", num_nodes=3)
            for src, dst, cap, alpha in order:
                topo.add_link(src, dst, cap, alpha)
            return topo

        forward = build(edges)
        backward = build(list(reversed(edges)))
        assert _fp(forward, demand, config) == _fp(backward, demand, config)

    def test_triple_insertion_order_is_irrelevant(self, ring4, config):
        triples = [(0, 0, 1), (0, 0, 2), (1, 0, 3), (2, 0, 0)]
        fwd = Demand.from_triples(triples)
        rev = Demand.from_triples(reversed(triples))
        assert _fp(ring4, fwd, config) == _fp(ring4, rev, config)

    def test_permutation_property(self, ring4, config):
        """Any permutation of links and triples hashes identically."""
        import itertools
        import random

        rng = random.Random(7)
        triples = [(s, 0, d) for s, d in itertools.permutations(range(4), 2)]
        edges = [(a, b, 1.0, 0.0) for a in range(4) for b in range(4)
                 if abs(a - b) in (1, 3)]
        reference = None
        for _ in range(5):
            rng.shuffle(triples)
            rng.shuffle(edges)
            topo = topology.Topology("p", num_nodes=4)
            for src, dst, cap, alpha in edges:
                topo.add_link(src, dst, cap, alpha)
            fp = _fp(topo, Demand.from_triples(triples), config)
            if reference is None:
                reference = fp
            assert fp == reference

    def test_priorities_dict_order_is_irrelevant(self, ring4):
        demand = collectives.allgather(ring4.gpus, 1)
        a = TecclConfig(chunk_bytes=1.0,
                        priorities={(0, 0, 1): 2.0, (1, 0, 2): 3.0})
        b = TecclConfig(chunk_bytes=1.0,
                        priorities={(1, 0, 2): 3.0, (0, 0, 1): 2.0})
        assert _fp(ring4, demand, a) == _fp(ring4, demand, b)


class TestNormalisation:
    def test_int_and_float_fields_agree(self, ring4):
        demand = collectives.allgather(ring4.gpus, 1)
        assert _fp(ring4, demand, TecclConfig(chunk_bytes=1)) == \
            _fp(ring4, demand, TecclConfig(chunk_bytes=1.0))

    def test_topology_name_is_excluded(self, config):
        demand = collectives.allgather(list(range(4)), 1)
        a = topology.ring(4, capacity=1.0)
        b = a.copy(name="totally-different")
        assert _fp(a, demand, config) == _fp(b, demand, config)

    def test_nonfinite_values_rejected(self, ring4, config):
        demand = collectives.allgather(ring4.gpus, 1)
        bad = TecclConfig(chunk_bytes=float("inf"))
        with pytest.raises(ServiceError, match="finite"):
            _fp(ring4, demand, bad)

    def test_capacity_fn_rejected(self, ring4, config):
        demand = collectives.allgather(ring4.gpus, 1)
        hooked = TecclConfig(chunk_bytes=1.0,
                             capacity_fn=lambda s, d, k: 1.0)
        with pytest.raises(ServiceError, match="capacity_fn"):
            _fp(ring4, demand, hooked)


class TestSensitivity:
    """Anything that changes the instance must change the fingerprint."""

    def test_distinct_requests_differ(self, ring4):
        demand = collectives.allgather(ring4.gpus, 1)
        base = TecclConfig(chunk_bytes=1.0, num_epochs=8)
        fp = _fp(ring4, demand, base)
        variants = [
            _fp(ring4, demand, TecclConfig(chunk_bytes=2.0, num_epochs=8)),
            _fp(ring4, demand, TecclConfig(chunk_bytes=1.0, num_epochs=9)),
            _fp(ring4, demand, TecclConfig(
                chunk_bytes=1.0, num_epochs=8,
                switch_model=SwitchModel.NO_COPY)),
            _fp(ring4, demand, TecclConfig(
                chunk_bytes=1.0, num_epochs=8,
                solver=SolverOptions(mip_gap=0.3))),
            _fp(ring4, collectives.alltoall(ring4.gpus, 1), base),
            _fp(topology.ring(5, capacity=1.0),
                collectives.allgather(list(range(5)), 1), base),
            _fp(ring4, demand, base, method=Method.LP),
            _fp(ring4, demand, base, minimize_epochs=True),
            _fp(ring4, demand, base, astar_config=AStarConfig(gamma=0.5)),
        ]
        assert len({fp, *variants}) == len(variants) + 1

    def test_version_salt_present(self, ring4):
        demand = collectives.allgather(ring4.gpus, 1)
        doc = canonical_request(ring4, demand, TecclConfig(chunk_bytes=1.0))
        assert doc["version"] == FINGERPRINT_VERSION

    def test_fingerprint_is_sha256_hex(self, ring4):
        demand = collectives.allgather(ring4.gpus, 1)
        fp = _fp(ring4, demand, TecclConfig(chunk_bytes=1.0))
        assert len(fp) == 64
        assert set(fp) <= set("0123456789abcdef")

    def test_stable_across_calls(self, ring4):
        demand = collectives.allgather(ring4.gpus, 1)
        cfg = TecclConfig(chunk_bytes=1.0, num_epochs=8)
        assert _fp(ring4, demand, cfg) == _fp(ring4, demand, cfg)


class TestCanonicalFormPin:
    """Golden pins of the canonical form for FINGERPRINT_VERSION == 2.

    Any change to the canonical document — a new normalised field, a field
    ordering change, a float formatting change — alters every fingerprint in
    every persisted cache, so it MUST come with a FINGERPRINT_VERSION bump.
    These pins fail loudly if the form drifts while the version stands still;
    when bumping the version, recompute and update the pinned digest.
    """

    PINNED_VERSION = 2
    # sha256 of json.dumps(canonical_request(...), sort_keys=True,
    # separators=(",", ":")) for the fixed instance below.
    PINNED_SHA256 = ("72c023594c93b812afa16fc96649834a5d0d832539f3"
                     "2f0fa53ef6299c385ca0")

    @staticmethod
    def _fixed_instance():
        topo = topology.ring(4)
        demand = collectives.allgather(topo.gpus, 1)
        config = TecclConfig(chunk_bytes=1e6, num_epochs=8)
        return topo, demand, config

    def test_canonical_json_pin(self):
        topo, demand, config = self._fixed_instance()
        assert FINGERPRINT_VERSION == self.PINNED_VERSION, (
            "FINGERPRINT_VERSION bumped: recompute PINNED_SHA256 for the "
            "new canonical form")
        fp = _fp(topo, demand, config, method=Method.MILP)
        assert fp == self.PINNED_SHA256, (
            "canonical request form changed without a FINGERPRINT_VERSION "
            "bump — persisted caches would silently go stale")

    def test_symmetry_knob_not_fingerprinted(self):
        # v2 semantics: the symmetry knob changes how the model is solved,
        # never what it computes, so all three settings share a cache entry.
        topo, demand, config = self._fixed_instance()
        import dataclasses
        fps = {
            _fp(topo, demand, dataclasses.replace(
                config, solver=SolverOptions(symmetry=mode)))
            for mode in ("auto", "on", "off")
        }
        assert len(fps) == 1
