"""The conformance engine and the randomized cross-producer harness.

Three layers:

* unit tests proving the oracle *detects* each violation family on
  deliberately corrupted schedules (an oracle that cannot fail is not an
  oracle);
* the MSCCL round-trip satellite: export → re-ingest → equal replay;
* the randomized sweeps: every producer over ``random_instance`` seeds with
  zero violations and solver-objective agreement. The fast subset runs in
  tier-1; the full sweep carries the ``slow`` marker for the weekly job.
"""

import pytest

from repro import collectives, topology
from repro.collectives.demand import Demand
from repro.core import TecclConfig
from repro.core.config import SwitchModel
from repro.core.epochs import plan_with_tau
from repro.core.schedule import FlowSchedule, Schedule, Send
from repro.core.solve import synthesize
from repro.errors import ScheduleError
from repro.simulate import (PRODUCERS, check_flow, check_result,
                            check_schedule, sweep)
from repro.simulate.harness import random_instance

pytestmark = pytest.mark.conformance


def send(epoch, src, dst, source=0, chunk=0):
    return Send(epoch=epoch, source=source, chunk=chunk, src=src, dst=dst)


def sched(sends, num_epochs=8, chunk_bytes=1.0):
    return Schedule(sends=sends, tau=1.0, chunk_bytes=chunk_bytes,
                    num_epochs=num_epochs)


@pytest.fixture
def line3_plan(line3):
    return plan_with_tau(line3, 1.0, tau=1.0, num_epochs=8)


class TestViolationDetection:
    """Each violation family must be caught, with provenance attached."""

    def test_conformant_schedule_reports_clean(self, line3, line3_plan):
        demand = Demand.from_triples([(0, 0, 2)])
        report = check_schedule(sched([send(0, 0, 1), send(1, 1, 2)]),
                                line3, demand, line3_plan)
        assert report.ok
        assert report.finish_time == pytest.approx(2.0)
        assert report.counts_by_kind() == {}
        assert report.delivered[(0, 0, 2)] == pytest.approx(2.0)

    def test_availability(self, line3, line3_plan):
        demand = Demand.from_triples([(0, 0, 2)])
        report = check_schedule(sched([send(0, 0, 1), send(0, 1, 2)]),
                                line3, demand, line3_plan)
        kinds = report.counts_by_kind()
        assert kinds.get("availability") == 1
        bad = [v for v in report.violations if v.kind == "availability"][0]
        assert bad.epoch == 0 and bad.node == 1 and bad.commodity == (0, 0)

    def test_missing_link(self, line3, line3_plan):
        demand = Demand.from_triples([(0, 0, 2)])
        report = check_schedule(sched([send(0, 0, 2)]), line3, demand,
                                line3_plan)
        assert any(v.kind == "link" and v.link == (0, 2)
                   for v in report.violations)

    def test_horizon(self, line3):
        plan = plan_with_tau(line3, 1.0, tau=1.0, num_epochs=2)
        demand = Demand.from_triples([(0, 0, 1)])
        report = check_schedule(sched([send(5, 0, 1)], num_epochs=8),
                                line3, demand, plan)
        assert any(v.kind == "horizon" and v.epoch == 5
                   for v in report.violations)

    def test_capacity(self, line3, line3_plan):
        demand = Demand.from_triples([(0, 0, 1), (0, 1, 1)])
        report = check_schedule(
            sched([send(0, 0, 1), send(0, 0, 1, chunk=1)]),
            line3, demand, line3_plan)
        assert any(v.kind == "capacity" and v.link == (0, 1)
                   for v in report.violations)

    def test_windowed_capacity_on_slow_links(self):
        topo = topology.Topology("w", num_nodes=2)
        topo.add_bidirectional(0, 1, 1.0)
        plan = plan_with_tau(topo, 4.0, tau=1.0, num_epochs=12)
        assert plan.occupancy[(0, 1)] == 4
        demand = Demand.from_triples([(0, 0, 1), (0, 1, 1)])
        burst = check_schedule(
            sched([send(0, 0, 1), send(2, 0, 1, chunk=1)], num_epochs=12,
                  chunk_bytes=4.0), topo, demand, plan)
        assert any(v.kind == "capacity" for v in burst.violations)
        spaced = check_schedule(
            sched([send(0, 0, 1), send(4, 0, 1, chunk=1)], num_epochs=12,
                  chunk_bytes=4.0), topo, demand, plan)
        assert spaced.ok

    def test_switch_forward_without_arrival(self):
        topo = topology.star(3)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=8)
        demand = Demand.from_triples([(0, 0, 1)])
        late = check_schedule(sched([send(0, 0, 3), send(2, 3, 1)]),
                              topo, demand, plan, strict_switches=False)
        assert any(v.kind == "switch" for v in late.violations)

    def test_stranded_chunk_under_strict_switches(self):
        topo = topology.star(3)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=8)
        demand = Demand.from_triples([(0, 0, 1)])
        report = check_schedule(
            sched([send(0, 0, 3), send(1, 3, 1), send(2, 0, 3)]),
            topo, demand, plan, strict_switches=True)
        assert any(v.kind == "stranded" for v in report.violations)

    def test_no_copy_switch_rejects_duplication(self):
        topo = topology.star(3)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=8)
        demand = Demand.from_triples([(0, 0, 1), (0, 0, 2)])
        dup = sched([send(0, 0, 3), send(1, 3, 1), send(1, 3, 2)])
        copy_cfg = TecclConfig(chunk_bytes=1.0,
                               switch_model=SwitchModel.COPY)
        nocopy_cfg = TecclConfig(chunk_bytes=1.0,
                                 switch_model=SwitchModel.NO_COPY)
        assert check_schedule(dup, topo, demand, plan, config=copy_cfg).ok
        report = check_schedule(dup, topo, demand, plan, config=nocopy_cfg)
        assert any(v.kind == "switch" and "duplicates" in str(v)
                   for v in report.violations)

    def test_store_and_forward_ablation(self, line3, line3_plan):
        demand = Demand.from_triples([(0, 0, 2)])
        cfg = TecclConfig(chunk_bytes=1.0, store_and_forward=False)
        held = sched([send(0, 0, 1), send(3, 1, 2)])
        report = check_schedule(held, line3, demand, line3_plan, config=cfg)
        assert any(v.kind == "relay" and v.node == 1
                   for v in report.violations)
        prompt = sched([send(0, 0, 1), send(1, 1, 2)])
        assert check_schedule(prompt, line3, demand, line3_plan,
                              config=cfg).ok

    def test_buffer_budget(self, line3, line3_plan):
        # two chunks overlap in node 1's relay buffer at epoch 2
        demand = Demand.from_triples([(0, 0, 2), (0, 1, 2)])
        cfg = TecclConfig(chunk_bytes=1.0, buffer_limit_chunks=1)
        crowded = sched([send(0, 0, 1), send(1, 0, 1, chunk=1),
                         send(2, 1, 2, chunk=1), send(3, 1, 2)])
        report = check_schedule(crowded, line3, demand, line3_plan,
                                config=cfg)
        assert any(v.kind == "buffer" and v.node == 1
                   for v in report.violations)
        # staggered relays never hold two chunks at once
        staggered = sched([send(0, 0, 1), send(1, 1, 2),
                           send(1, 0, 1, chunk=1), send(2, 1, 2, chunk=1)])
        assert check_schedule(staggered, line3, demand, line3_plan,
                              config=cfg).ok

    def test_unmet_demand(self, line3, line3_plan):
        demand = Demand.from_triples([(0, 0, 1), (0, 0, 2)])
        report = check_schedule(sched([send(0, 0, 1)]), line3, demand,
                                line3_plan)
        assert any(v.kind == "delivery" and v.node == 2
                   for v in report.violations)

    def test_finish_disagreement(self, line3, line3_plan):
        demand = Demand.from_triples([(0, 0, 1)])
        report = check_schedule(sched([send(0, 0, 1)]), line3, demand,
                                line3_plan, claimed_finish_time=5.0)
        assert any(v.kind == "finish" for v in report.violations)
        agree = check_schedule(sched([send(0, 0, 1)]), line3, demand,
                               line3_plan, claimed_finish_time=1.0)
        assert agree.ok and agree.finish_delta == pytest.approx(0.0)

    def test_report_serialisation(self, line3, line3_plan):
        demand = Demand.from_triples([(0, 0, 2)])
        report = check_schedule(sched([send(0, 0, 1), send(0, 1, 2)]),
                                line3, demand, line3_plan)
        doc = report.to_dict()
        assert doc["ok"] is False
        assert doc["violation_counts"]["availability"] == 1
        entry = [v for v in doc["violations"]
                 if v["kind"] == "availability"][0]
        assert entry["commodity"] == [0, 0] and entry["epoch"] == 0

    def test_raise_on_violation(self, line3, line3_plan):
        demand = Demand.from_triples([(0, 0, 2)])
        with pytest.raises(ScheduleError):
            check_schedule(sched([]), line3, demand,
                           line3_plan).raise_on_violation()


class TestFlowConformance:
    """The fractional oracle, on hand-built LP-shaped schedules."""

    def _flow(self, flows, reads, num_epochs=8):
        return FlowSchedule(flows=flows, reads=reads, tau=1.0,
                            chunk_bytes=1.0, num_epochs=num_epochs)

    def test_conformant_flow(self, line3, line3_plan):
        demand = Demand.from_triples([(0, 0, 2)])
        flow = self._flow({((0, 0), 0, 1, 0): 1.0, ((0, 0), 1, 2, 1): 1.0},
                          {((0, 0), 2, 1): 1.0})
        report = check_flow(flow, line3, demand, line3_plan)
        assert report.ok
        assert report.delivered[((0, 0), 2)] == pytest.approx(1.0)
        assert report.finish_time == pytest.approx(2.0)

    def test_capacity_violation(self, line3, line3_plan):
        demand = Demand.from_triples([(0, 0, 2)])
        flow = self._flow({((0, 0), 0, 1, 0): 3.0, ((0, 0), 1, 2, 1): 1.0},
                          {((0, 0), 2, 1): 1.0})
        report = check_flow(flow, line3, demand, line3_plan)
        assert any(v.kind == "capacity" and v.link == (0, 1)
                   for v in report.violations)

    def test_causality_violation(self, line3, line3_plan):
        demand = Demand.from_triples([(0, 0, 2)])
        # the read draws pool 1, but the arrival only lands at pool 2
        flow = self._flow({((0, 0), 0, 1, 0): 1.0, ((0, 0), 1, 2, 1): 1.0},
                          {((0, 0), 2, 0): 1.0})
        report = check_flow(flow, line3, demand, line3_plan)
        assert any(v.kind == "conservation" and v.node == 2
                   for v in report.violations)

    def test_relay_sends_before_arrival(self, line3, line3_plan):
        demand = Demand.from_triples([(0, 0, 2)])
        flow = self._flow({((0, 0), 0, 1, 1): 1.0, ((0, 0), 1, 2, 1): 1.0},
                          {((0, 0), 2, 1): 1.0})
        report = check_flow(flow, line3, demand, line3_plan)
        assert any(v.kind == "conservation" and v.node == 1
                   for v in report.violations)

    def test_partial_delivery(self, line3, line3_plan):
        demand = Demand.from_triples([(0, 0, 2)])
        flow = self._flow({((0, 0), 0, 1, 0): 0.5, ((0, 0), 1, 2, 1): 0.5},
                          {((0, 0), 2, 1): 0.5})
        report = check_flow(flow, line3, demand, line3_plan)
        assert any(v.kind == "delivery" and v.node == 2
                   for v in report.violations)

    def test_undemanded_read(self, line3, line3_plan):
        demand = Demand.from_triples([(0, 0, 2)])
        flow = self._flow({((0, 0), 0, 1, 0): 1.0, ((0, 0), 1, 2, 1): 1.0},
                          {((0, 0), 2, 1): 1.0, ((0, 0), 1, 1): 0.5})
        report = check_flow(flow, line3, demand, line3_plan)
        assert any(v.kind == "delivery" and "never demanded" in str(v)
                   for v in report.violations)

    def test_switch_cannot_buffer_flow(self):
        topo = topology.star(3)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=8)
        demand = Demand.from_triples([(0, 0, 1)])
        good = self._flow({((0, 0), 0, 3, 0): 1.0, ((0, 0), 3, 1, 1): 1.0},
                          {((0, 0), 1, 1): 1.0})
        assert check_flow(good, topo, demand, plan).ok
        held = self._flow({((0, 0), 0, 3, 0): 1.0, ((0, 0), 3, 1, 2): 1.0},
                          {((0, 0), 1, 2): 1.0})
        report = check_flow(held, topo, demand, plan)
        assert any(v.kind == "switch" and v.node == 3
                   for v in report.violations)

    def test_aggregated_commodities(self, line3, line3_plan):
        # the aggregated LP keys commodities by bare source id
        demand = Demand.from_triples([(0, 0, 1), (0, 1, 2)])
        flow = self._flow({(0, 0, 1, 0): 2.0, (0, 1, 2, 1): 1.0},
                          {(0, 1, 0): 1.0, (0, 2, 1): 1.0})
        plan2 = plan_with_tau(line3, 1.0, tau=2.0, num_epochs=8)
        report = check_flow(flow, line3, demand, plan2)
        assert report.ok, [str(v) for v in report.violations]

    def test_solved_lp_replays_clean(self, line3):
        demand = Demand.from_triples([(0, 0, 2), (2, 0, 0), (1, 0, 2)])
        config = TecclConfig(chunk_bytes=1.0)
        result = synthesize(line3, demand, config)
        report = check_result(result, config=config)
        assert report.ok, [str(v) for v in report.violations]
        assert report.finish_delta == pytest.approx(0.0, abs=1e-9)


class TestMscclRoundTrip:
    """Satellite: export → re-ingest → identical delivery and finish."""

    def _roundtrip_reports(self, topo, demand, schedule):
        from repro.msccl import schedule_from_msccl_xml, to_msccl_xml

        xml = to_msccl_xml(schedule, topo, demand, name="roundtrip")
        back = schedule_from_msccl_xml(xml, tau=schedule.tau,
                                       chunk_bytes=schedule.chunk_bytes)
        plan = plan_with_tau(topo, schedule.chunk_bytes, schedule.tau,
                             max(schedule.num_epochs, back.num_epochs))
        return (check_schedule(schedule, topo, demand, plan),
                check_schedule(back, topo, demand, plan))

    def test_baseline_roundtrip_equal_replay(self, ring4):
        from repro.baselines import tree_allgather

        demand = collectives.allgather(ring4.gpus, 1)
        schedule = tree_allgather(ring4, TecclConfig(chunk_bytes=1.0), 1)
        original, back = self._roundtrip_reports(ring4, demand, schedule)
        assert original.ok and back.ok
        assert back.delivered == original.delivered
        assert back.finish_time == pytest.approx(original.finish_time)
        assert back.num_sends == original.num_sends

    def test_milp_roundtrip_equal_replay(self, line3):
        demand = collectives.allgather(line3.gpus, 1)
        result = synthesize(line3, demand, TecclConfig(chunk_bytes=1.0))
        original, back = self._roundtrip_reports(line3, demand,
                                                 result.schedule)
        assert original.ok and back.ok
        assert back.delivered == original.delivered
        assert back.finish_time == pytest.approx(original.finish_time)
        # the replayed finish is the solver's objective, end to end
        assert back.finish_time == pytest.approx(result.finish_time)

    def test_interpreter_agrees_on_delivery(self, ring4):
        from repro.baselines import tree_allgather
        from repro.msccl import to_msccl_xml, verify_program

        demand = collectives.allgather(ring4.gpus, 1)
        schedule = tree_allgather(ring4, TecclConfig(chunk_bytes=1.0), 1)
        xml = to_msccl_xml(schedule, ring4, demand, name="interp")
        interp = verify_program(xml, ring4, demand, chunk_bytes=1.0)
        plan = plan_with_tau(ring4, 1.0, schedule.tau, schedule.num_epochs)
        replay = check_schedule(schedule, ring4, demand, plan)
        assert replay.ok
        for s, c, d in demand.triples():
            assert interp.delivered(s, c, d)
        assert set(replay.delivered) == set(demand.triples())


def _assert_clean(records):
    bad = [r for r in records if not r.skipped and not r.ok]
    details = [(r.producer, r.seed, r.label,
                [str(v) for v in r.report.violations[:3]]) for r in bad]
    assert not bad, details


class TestRandomizedSweep:
    def test_fast_sweep_all_producers(self, make_instance):
        records = sweep(range(6), instance_fn=make_instance)
        _assert_clean(records)
        replayed = {r.producer for r in records if not r.skipped}
        assert len(replayed) >= 8

    def test_solver_objectives_replay_exactly(self, make_instance):
        # LP/MILP claims must match the replay on every instance (the
        # "finish" violation kind would flag any disagreement; require the
        # comparison actually happened too).
        records = sweep(range(6), producers=["milp", "lp"],
                        instance_fn=make_instance)
        _assert_clean(records)
        for r in records:
            assert not r.skipped
            assert r.report.claimed_finish_time is not None
            assert abs(r.finish_delta) <= 1e-6 * max(
                1e-12, r.report.claimed_finish_time)

    @pytest.mark.slow
    def test_full_randomized_sweep(self):
        seeds = range(40)
        records = sweep(seeds)
        _assert_clean(records)
        ok_counts = {}
        for r in records:
            if r.ok:
                ok_counts[r.producer] = ok_counts.get(r.producer, 0) + 1
        # the acceptance bar: >= 8 producers each replayed on >= 20
        # randomized instances, zero violations anywhere
        deep = {p for p, n in ok_counts.items() if n >= 20}
        assert len(deep) >= 8, ok_counts
        # and every producer in the registry took part
        assert set(ok_counts) == set(PRODUCERS)


class TestHarnessPlumbing:
    def test_random_instance_is_deterministic(self):
        a_topo, a_demand, a_cfg = random_instance(12)
        b_topo, b_demand, b_cfg = random_instance(12)
        assert a_topo.to_dict() == b_topo.to_dict()
        assert a_demand.to_dict() == b_demand.to_dict()
        assert a_cfg.to_dict() == b_cfg.to_dict()

    def test_skips_are_reported_not_raised(self):
        # seed 1 is a line fabric: no Hamiltonian ring exists
        topo, demand, config = random_instance(1)
        assert topo.name.startswith("line")
        from repro.simulate import run_producer

        records = run_producer("ring", topo, demand, config, seed=1)
        assert len(records) == 1 and records[0].skipped
        assert "ring" in records[0].error


class TestResultConfigRoundTrip:
    """Deserialised results must replay under their model variant."""

    def test_config_roundtrips_with_result(self, line3):
        from repro.core.solve import SynthesisResult

        demand = collectives.allgather(line3.gpus, 1)
        config = TecclConfig(chunk_bytes=1.0, store_and_forward=False)
        result = synthesize(line3, demand, config)
        restored = SynthesisResult.from_dict(result.to_dict())
        assert restored.config is not None
        assert restored.config.store_and_forward is False
        report = check_result(restored)  # config comes from the document
        assert report.ok, [str(v) for v in report.violations]

    def test_deserialised_result_honours_no_copy_switches(self):
        from repro.core.solve import Method, SynthesisResult

        topo = topology.star(3)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=8)
        demand = Demand.from_triples([(0, 0, 1), (0, 0, 2)])
        dup = sched([send(0, 0, 3), send(1, 3, 1), send(1, 3, 2)])
        nocopy = TecclConfig(chunk_bytes=1.0,
                             switch_model=SwitchModel.NO_COPY)
        result = SynthesisResult(
            method=Method.MILP, schedule=dup, finish_time=2.0,
            solve_time=0.0, plan=plan, topology_used=topo,
            demand_used=demand, config=nocopy)
        restored = SynthesisResult.from_dict(result.to_dict())
        report = check_result(restored, compare_finish=False)
        assert any(v.kind == "switch" and "duplicates" in str(v)
                   for v in report.violations)
        # the same schedule is legal on a copying switch
        assert check_result(restored, compare_finish=False,
                            config=TecclConfig(chunk_bytes=1.0)).ok


class TestFlowStranding:
    def test_mass_stranded_at_switch_detected(self):
        topo = topology.star(3)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=8)
        demand = Demand.from_triples([(0, 0, 1)])
        # demand is met over the hub, but half a chunk enters the switch a
        # second time and never leaves — stranded mass at a zero-buffer node
        flow = FlowSchedule(
            flows={((0, 0), 0, 3, 0): 1.0, ((0, 0), 3, 1, 1): 1.0,
                   ((0, 0), 0, 3, 3): 0.5},
            reads={((0, 0), 1, 1): 1.0},
            tau=1.0, chunk_bytes=1.0, num_epochs=8)
        report = check_flow(flow, topo, demand, plan)
        assert any(v.kind == "stranded" and v.node == 3
                   for v in report.violations)
