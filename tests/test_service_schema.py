"""Serialisation round-trips: configs, results, and the wire schema."""

import json

import pytest

from repro import collectives, topology
from repro.core import TecclConfig
from repro.core.config import AStarConfig, EpochMode, SwitchModel
from repro.core.solve import Method, SynthesisResult, synthesize
from repro.errors import ModelError, ServiceError
from repro.service import PlanRequest, PlanResponse
from repro.solver import SolverOptions


def _json_roundtrip(data: dict) -> dict:
    """Force the document through actual JSON text, as the cache does."""
    return json.loads(json.dumps(data))


class TestConfigRoundtrip:
    def test_defaults(self):
        config = TecclConfig(chunk_bytes=25e3)
        assert TecclConfig.from_dict(
            _json_roundtrip(config.to_dict())) == config

    def test_fully_populated(self):
        config = TecclConfig(
            chunk_bytes=1e6, num_epochs=12,
            epoch_mode=EpochMode.SLOWEST_LINK, epoch_multiplier=2.5,
            switch_model=SwitchModel.HYPER_EDGE, store_and_forward=False,
            buffer_limit_chunks=4.0, tighten=False,
            solver=SolverOptions(time_limit=30.0, mip_gap=0.3,
                                 node_limit=1000, verbose=True,
                                 presolve=False, lp_method="highs-ipm"),
            priorities={(0, 0, 1): 2.0, (1, 0, 2): 0.5})
        assert TecclConfig.from_dict(
            _json_roundtrip(config.to_dict())) == config

    def test_capacity_fn_rejected(self):
        config = TecclConfig(chunk_bytes=1.0,
                             capacity_fn=lambda s, d, k: 1.0)
        with pytest.raises(ModelError, match="capacity_fn"):
            config.to_dict()

    def test_malformed_rejected(self):
        with pytest.raises(ModelError, match="malformed"):
            TecclConfig.from_dict({"chunk_bytes": "not-a-number"})

    def test_astar_roundtrip(self):
        config = AStarConfig(epochs_per_round=4, max_rounds=16, gamma=0.5)
        assert AStarConfig.from_dict(
            _json_roundtrip(config.to_dict())) == config
        assert AStarConfig.from_dict(
            _json_roundtrip(AStarConfig().to_dict())) == AStarConfig()

    def test_solver_options_roundtrip(self):
        options = SolverOptions(time_limit=12.0, mip_gap=0.1,
                                lp_method="highs-ds")
        assert SolverOptions.from_dict(
            _json_roundtrip(options.to_dict())) == options


class TestSynthesisResultRoundtrip:
    def _roundtrip(self, result: SynthesisResult) -> SynthesisResult:
        return SynthesisResult.from_dict(_json_roundtrip(result.to_dict()))

    def test_milp_result(self, ring4):
        demand = collectives.allgather(ring4.gpus, 1)
        result = synthesize(ring4, demand,
                            TecclConfig(chunk_bytes=1.0, num_epochs=8),
                            method=Method.MILP)
        back = self._roundtrip(result)
        assert back.method is Method.MILP
        assert back.finish_time == pytest.approx(result.finish_time)
        assert back.solve_time == pytest.approx(result.solve_time)
        assert sorted(back.schedule.sends) == sorted(result.schedule.sends)
        assert back.plan.tau == pytest.approx(result.plan.tau)
        assert back.plan.cap_chunks == result.plan.cap_chunks
        assert back.topology_used.links == result.topology_used.links
        assert back.demand_used.triples() == result.demand_used.triples()
        assert back.outcome is None  # solver internals do not survive

    def test_lp_result(self, ring4):
        demand = collectives.alltoall(ring4.gpus, 1)
        result = synthesize(ring4, demand, TecclConfig(chunk_bytes=1.0),
                            method=Method.LP)
        back = self._roundtrip(result)
        assert back.method is Method.LP
        assert back.schedule.flows == result.schedule.flows
        assert back.schedule.reads == result.schedule.reads

    def test_hyper_result_keeps_transformed_space(self, star3):
        demand = collectives.allgather(star3.gpus, 1)
        config = TecclConfig(chunk_bytes=1.0, num_epochs=8,
                             switch_model=SwitchModel.HYPER_EDGE)
        result = synthesize(star3, demand, config, method=Method.MILP)
        assert result.hyper is not None
        back = self._roundtrip(result)
        # hyper record is dropped but the transformed topology/demand the
        # schedule is expressed over survive:
        assert back.hyper is None
        assert back.topology_used.num_nodes == \
            result.topology_used.num_nodes
        assert back.demand_used.triples() == result.demand_used.triples()

    def test_roundtripped_result_replays_in_simulator(self, ring4):
        from repro.simulate import run_events

        demand = collectives.allgather(ring4.gpus, 1)
        result = synthesize(ring4, demand,
                            TecclConfig(chunk_bytes=1.0, num_epochs=8),
                            method=Method.MILP)
        back = self._roundtrip(result)
        report = run_events(back.schedule, back.topology_used,
                            back.demand_used)
        assert report.finish_time > 0


class TestAlgorithmicBandwidth:
    def test_rejects_nonpositive_buffer(self, ring4):
        demand = collectives.allgather(ring4.gpus, 1)
        result = synthesize(ring4, demand,
                            TecclConfig(chunk_bytes=1.0, num_epochs=8))
        with pytest.raises(ModelError, match="-3.0"):
            result.algorithmic_bandwidth(-3.0)
        with pytest.raises(ModelError, match="output_buffer_bytes"):
            result.algorithmic_bandwidth(0)
        assert result.algorithmic_bandwidth(4.0) == \
            pytest.approx(4.0 / result.finish_time)


class TestWireSchema:
    def _request(self):
        topo = topology.ring(4, capacity=1.0)
        return PlanRequest(
            topology=topo,
            demand=collectives.allgather(topo.gpus, 1),
            config=TecclConfig(chunk_bytes=1.0, num_epochs=8),
            method=Method.MILP,
            astar_config=AStarConfig(gamma=0.5),
            minimize_epochs=False, tag="job-17")

    def test_request_roundtrip(self):
        request = self._request()
        back = PlanRequest.from_dict(_json_roundtrip(request.to_dict()))
        assert back.topology.links == request.topology.links
        assert back.demand == request.demand
        assert back.config == request.config
        assert back.method is Method.MILP
        assert back.astar_config == request.astar_config
        assert back.tag == "job-17"

    def test_request_rejects_garbage(self):
        from repro.errors import ReproError

        # a broken nested document surfaces its own typed error...
        with pytest.raises(ReproError, match="malformed"):
            PlanRequest.from_dict({"topology": {}})
        # ...while structurally wrong requests report as service errors
        with pytest.raises(ServiceError, match="malformed"):
            PlanRequest.from_dict({})

    def test_response_roundtrip(self, ring4):
        demand = collectives.allgather(ring4.gpus, 1)
        result = synthesize(ring4, demand,
                            TecclConfig(chunk_bytes=1.0, num_epochs=8))
        response = PlanResponse(fingerprint="ab" * 32, result=result,
                                cache_hit=True, serve_time=0.25, tag="t")
        back = PlanResponse.from_dict(_json_roundtrip(response.to_dict()))
        assert back.ok and back.cache_hit
        assert back.fingerprint == response.fingerprint
        assert back.result.finish_time == pytest.approx(result.finish_time)

    def test_error_response_roundtrip(self):
        response = PlanResponse(fingerprint="cd" * 32, error="infeasible")
        back = PlanResponse.from_dict(_json_roundtrip(response.to_dict()))
        assert not back.ok
        assert back.error == "infeasible"
        assert back.result is None
