"""Tests for the compare/verify/impact/upgrade CLI subcommands."""

import pytest

from repro.cli import main


class TestTopologyCatalog:
    def test_new_fabrics_listed(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        for name in ("fattree", "torus", "hypercube", "leafspine"):
            assert name in out

    def test_synth_on_hypercube(self, capsys):
        code = main(["synth", "--topology", "hypercube", "--chassis", "2",
                     "--collective", "allgather", "--chunk-size", "1e6"])
        assert code == 0
        assert "finish time" in capsys.readouterr().out


class TestCompare:
    def test_allgather_table(self, capsys):
        code = main(["compare", "--topology", "dgx1",
                     "--collective", "allgather", "--chunk-size", "1e6",
                     "--time-limit", "30"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("te-ccl", "shortest-path", "ring", "binomial-trees",
                     "blink-trees"):
            assert name in out
        # te-ccl must top the table (smallest finish = first data row)
        first_row = out.splitlines()[1]
        assert first_row.startswith("te-ccl")

    def test_alltoall_table(self, capsys):
        code = main(["compare", "--topology", "torus", "--chassis", "2",
                     "--collective", "alltoall", "--chunk-size", "1e6",
                     "--time-limit", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "te-ccl" in out and "shortest-path" in out
        assert "ring" not in out  # allgather-only baselines excluded


class TestVerify:
    def test_export_then_verify(self, tmp_path, capsys):
        target = tmp_path / "algo.xml"
        assert main(["synth", "--topology", "dgx1",
                     "--collective", "allgather",
                     "--chunk-size", "25e3", "--epochs", "10",
                     "--export", str(target)]) == 0
        capsys.readouterr()
        code = main(["verify", "--xml", str(target), "--topology", "dgx1",
                     "--collective", "allgather", "--chunk-size", "25e3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all demanded chunks delivered" in out

    def test_verify_against_wrong_collective_fails(self, tmp_path, capsys):
        target = tmp_path / "algo.xml"
        assert main(["synth", "--topology", "dgx1",
                     "--collective", "broadcast",
                     "--chunk-size", "25e3", "--epochs", "10",
                     "--export", str(target)]) == 0
        capsys.readouterr()
        code = main(["verify", "--xml", str(target), "--topology", "dgx1",
                     "--collective", "allgather", "--chunk-size", "25e3"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestImpact:
    def test_hypercube_impact_table(self, capsys):
        code = main(["impact", "--topology", "hypercube", "--chassis", "2",
                     "--collective", "allgather", "--chunk-size", "1e6",
                     "--top", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        assert out.count("\n") == 4  # header + 3 rows


class TestUpgrade:
    def test_upgrade_table(self, capsys):
        code = main(["upgrade", "--topology", "hypercube", "--chassis", "2",
                     "--collective", "allgather", "--chunk-size", "1e6",
                     "--factor", "2", "--top", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "improvement" in out
        assert out.count("%") >= 4


class TestWorkload:
    def test_pipeline_job_on_hypercube(self, capsys):
        code = main(["workload", "--topology", "hypercube", "--chassis",
                     "2", "--job", "pipeline"])
        assert code == 0
        out = capsys.readouterr().out
        assert "step total" in out
        assert "activations" in out and "gradients" in out

    def test_dlrm_job_on_dgx1(self, capsys):
        code = main(["workload", "--topology", "dgx1", "--job", "dlrm",
                     "--time-limit", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "emb-forward" in out
        assert "solver time" in out

    def test_unknown_job_rejected(self):
        with pytest.raises(SystemExit):
            main(["workload", "--topology", "dgx1", "--job", "nonsense"])
