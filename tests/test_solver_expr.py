"""Unit tests for the linear-expression algebra."""

import pytest

from repro.errors import ModelError
from repro.solver import Model, Relation, Sense, VarType, quicksum
from repro.solver.expr import LinExpr


@pytest.fixture
def model():
    return Model("t")


@pytest.fixture
def xy(model):
    return model.add_var(name="x"), model.add_var(name="y")


class TestVariableArithmetic:
    def test_add_two_vars(self, xy):
        x, y = xy
        expr = x + y
        assert expr.terms == {x.index: 1.0, y.index: 1.0}
        assert expr.const == 0.0

    def test_scale(self, xy):
        x, _ = xy
        expr = 3 * x
        assert expr.terms == {x.index: 3.0}

    def test_negate(self, xy):
        x, _ = xy
        assert (-x).terms == {x.index: -1.0}

    def test_subtract_constant(self, xy):
        x, _ = xy
        expr = x - 2
        assert expr.const == -2.0

    def test_rsub(self, xy):
        x, _ = xy
        expr = 5 - x
        assert expr.const == 5.0
        assert expr.terms == {x.index: -1.0}

    def test_division(self, xy):
        x, _ = xy
        assert (x / 4).terms == {x.index: 0.25}

    def test_divide_by_zero_rejected(self, xy):
        x, _ = xy
        with pytest.raises(ModelError):
            x.to_expr() / 0

    def test_nonlinear_rejected(self, xy):
        x, y = xy
        with pytest.raises(ModelError):
            x.to_expr() * y  # type: ignore[arg-type]


class TestLinExpr:
    def test_terms_cancel(self, xy):
        x, _ = xy
        expr = x - x
        assert expr.is_constant()

    def test_chained_sum(self, xy):
        x, y = xy
        expr = 2 * x + 3 * y + 1 + x
        assert expr.terms[x.index] == 3.0
        assert expr.terms[y.index] == 3.0
        assert expr.const == 1.0

    def test_copy_is_independent(self, xy):
        x, _ = xy
        a = x + 1
        b = a.copy()
        b.add_term(x, 1.0)
        assert a.terms[x.index] == 1.0
        assert b.terms[x.index] == 2.0

    def test_scale_by_zero_empties(self, xy):
        x, _ = xy
        assert ((x + 1) * 0).is_constant()

    def test_coerce_rejects_strings(self):
        with pytest.raises(ModelError):
            LinExpr._coerce("nope")  # type: ignore[arg-type]


class TestConstraints:
    def test_le_normalisation(self, xy):
        x, y = xy
        constraint = x + y <= 3
        assert constraint.relation is Relation.LE
        assert constraint.expr.const == -3.0

    def test_ge(self, xy):
        x, _ = xy
        constraint = x >= 1
        assert constraint.relation is Relation.GE

    def test_eq_builds_constraint(self, xy):
        x, y = xy
        constraint = (x + y == 2)
        assert constraint.relation is Relation.EQ

    def test_constant_violated_raises(self):
        with pytest.raises(ModelError):
            _ = LinExpr({}, 5.0) <= LinExpr({}, 1.0)

    def test_constant_satisfied_ok(self):
        constraint = LinExpr({}, 1.0) <= LinExpr({}, 5.0)
        assert constraint.expr.is_constant()


class TestQuicksum:
    def test_mixed_items(self, xy):
        x, y = xy
        total = quicksum([x, 2 * y, 3, x + 1])
        assert total.terms[x.index] == 2.0
        assert total.terms[y.index] == 2.0
        assert total.const == 4.0

    def test_empty(self):
        assert quicksum([]).is_constant()

    def test_rejects_bad_type(self, xy):
        with pytest.raises(ModelError):
            quicksum(["x"])  # type: ignore[list-item]

    def test_matches_builtin_sum(self, model):
        xs = [model.add_var() for _ in range(10)]
        a = quicksum(xs)
        b = sum((x.to_expr() for x in xs), LinExpr())
        assert a.terms == b.terms


class TestVarTypes:
    def test_binary_bounds_clamped(self, model):
        v = model.add_var(lb=-5, ub=7, vtype=VarType.BINARY)
        assert (v.lb, v.ub) == (0.0, 1.0)

    def test_bad_bounds(self, model):
        with pytest.raises(ModelError):
            model.add_var(lb=2, ub=1)

    def test_sense_enum(self):
        assert Sense.MAXIMIZE.value == "max"
