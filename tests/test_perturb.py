"""Tests for congestion-perturbation robustness (simulate.perturb)."""

import random

import pytest

from repro import collectives, topology
from repro.baselines import ring_allgather, ring_demand
from repro.core import TecclConfig, solve_milp
from repro.errors import ModelError
from repro.simulate import (DriftModel, PerturbationModel,
                            congestion_robustness, drift_trace,
                            perturbed_topology, run_events)


def cfg(num_epochs=None, **kwargs):
    return TecclConfig(chunk_bytes=1.0, num_epochs=num_epochs, **kwargs)


class TestPerturbationModel:
    def test_validation(self):
        with pytest.raises(ModelError):
            PerturbationModel(beta_jitter=-0.1)
        with pytest.raises(ModelError):
            PerturbationModel(congested_fraction=1.5)
        with pytest.raises(ModelError):
            PerturbationModel(congestion_factor=0.5)


class TestPerturbedTopology:
    def test_structure_preserved(self, dgx1):
        model = PerturbationModel(beta_jitter=0.1, congested_fraction=0.25)
        fabric = perturbed_topology(dgx1, model, seed=0)
        assert sorted(fabric.links) == sorted(dgx1.links)
        assert fabric.switches == dgx1.switches

    def test_deterministic_per_seed(self, dgx1):
        model = PerturbationModel(beta_jitter=0.1)
        a = perturbed_topology(dgx1, model, seed=4)
        b = perturbed_topology(dgx1, model, seed=4)
        for key in dgx1.links:
            assert a.link(*key).capacity == b.link(*key).capacity

    def test_zero_jitter_identity(self, ring4):
        model = PerturbationModel(beta_jitter=0.0, alpha_jitter=0.0)
        fabric = perturbed_topology(ring4, model, seed=0)
        for key, link in ring4.links.items():
            assert fabric.link(*key).capacity == pytest.approx(link.capacity)

    def test_congestion_slows_some_links(self, ring4):
        model = PerturbationModel(beta_jitter=0.0, alpha_jitter=0.0,
                                  congested_fraction=0.5,
                                  congestion_factor=4.0)
        fabric = perturbed_topology(ring4, model, seed=0)
        slowed = [key for key in ring4.links
                  if fabric.link(*key).capacity
                  < ring4.link(*key).capacity * 0.9]
        assert len(slowed) == round(0.5 * len(ring4.links))


class TestRobustness:
    def test_report_statistics(self, ring4, ag_ring4):
        outcome = solve_milp(ring4, ag_ring4, cfg(8))
        model = PerturbationModel(beta_jitter=0.1, congested_fraction=0.25,
                                  congestion_factor=2.0)
        report = congestion_robustness(outcome.schedule, ring4, ag_ring4,
                                       model=model, trials=10)
        assert len(report.times) == 10
        assert report.p50 <= report.p95 <= report.worst + 1e-12
        assert report.baseline > 0

    def test_congestion_slows_collectives(self, ring4, ag_ring4):
        outcome = solve_milp(ring4, ag_ring4, cfg(8))
        model = PerturbationModel(beta_jitter=0.0, alpha_jitter=0.0,
                                  congested_fraction=0.5,
                                  congestion_factor=4.0)
        report = congestion_robustness(outcome.schedule, ring4, ag_ring4,
                                       model=model, trials=8)
        assert report.mean_slowdown > 1.0

    def test_zero_perturbation_zero_spread(self, ring4, ag_ring4):
        outcome = solve_milp(ring4, ag_ring4, cfg(8))
        model = PerturbationModel(beta_jitter=0.0, alpha_jitter=0.0)
        report = congestion_robustness(outcome.schedule, ring4, ag_ring4,
                                       model=model, trials=3)
        for t in report.times:
            assert t == pytest.approx(report.baseline)

    def test_trials_validated(self, ring4, ag_ring4):
        outcome = solve_milp(ring4, ag_ring4, cfg(8))
        with pytest.raises(ModelError):
            congestion_robustness(outcome.schedule, ring4, ag_ring4,
                                  model=PerturbationModel(), trials=0)

    def test_ring_schedule_robustness_comparable(self):
        """The TE-CCL schedule must stay at least as fast as the ring
        baseline *under congestion*, not only on the clean fabric."""
        topo = topology.ring(4, capacity=1.0)
        demand = ring_demand(topo)
        teccl = solve_milp(topo, demand, cfg(8)).schedule
        ring_sched = ring_allgather(topo, cfg())
        model = PerturbationModel(beta_jitter=0.1, congested_fraction=0.25)
        ours = congestion_robustness(teccl, topo, demand, model=model,
                                     trials=10, seed=3)
        theirs = congestion_robustness(ring_sched, topo, demand, model=model,
                                       trials=10, seed=3)
        assert ours.mean <= theirs.mean * 1.05


class TestDriftScenarios:
    """Seeded determinism of the scenario generators (PR 5 satellite)."""

    def test_same_seed_identical_trace(self):
        topo = topology.ring(6, capacity=1.0)
        model = DriftModel(sigma=0.1)
        traces = [drift_trace(topo, model, 10, rng=random.Random(42))
                  for _ in range(2)]
        assert traces[0] == traces[1]

    def test_different_seeds_diverge(self):
        topo = topology.ring(6, capacity=1.0)
        model = DriftModel(sigma=0.1)
        a = drift_trace(topo, model, 10, rng=random.Random(1))
        b = drift_trace(topo, model, 10, rng=random.Random(2))
        assert a != b

    def test_factors_stay_clamped(self):
        topo = topology.ring(4, capacity=1.0)
        model = DriftModel(sigma=0.8, floor=0.5, ceiling=1.1)
        for step in drift_trace(topo, model, 25, rng=random.Random(0)):
            for factor in step.values():
                assert model.floor <= factor <= model.ceiling

    def test_trace_covers_every_link_every_step(self):
        topo = topology.ring(4, capacity=1.0)
        trace = drift_trace(topo, DriftModel(), 3, rng=random.Random(0))
        assert len(trace) == 3
        for step in trace:
            assert set(step) == set(topo.links)

    def test_validation(self):
        topo = topology.ring(4, capacity=1.0)
        with pytest.raises(ModelError):
            drift_trace(topo, DriftModel(), 0, rng=random.Random(0))
        with pytest.raises(ModelError):
            DriftModel(sigma=-0.1)
        with pytest.raises(ModelError):
            DriftModel(floor=0.0)

    def test_perturbed_topology_accepts_explicit_rng(self):
        topo = topology.ring(4, capacity=1.0)
        model = PerturbationModel(beta_jitter=0.2)
        seeded = perturbed_topology(topo, model, seed=9)
        threaded = perturbed_topology(topo, model, rng=random.Random(9))
        for key in topo.links:
            assert seeded.links[key].capacity == pytest.approx(
                threaded.links[key].capacity)
