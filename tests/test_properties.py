"""Property-based tests (hypothesis): invariants over random instances.

Strategy: generate small random strongly-connected topologies and random
demands, run the full synthesize → prune → simulate pipeline, and assert the
invariants the paper's correctness rests on:

* every solver's schedule passes the independent simulator;
* pruning never breaks delivery and never adds bytes;
* the LP (optimal, no copy) never beats the MILP (optimal, with copy);
* heuristics never beat the exact formulations.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import collectives, topology
from repro.core import TecclConfig, solve_lp, solve_milp
from repro.core.astar import solve_astar
from repro.core.config import AStarConfig
from repro.core.epochs import build_epoch_plan, path_based_epoch_bound
from repro.errors import InfeasibleError
from repro.simulate import simulate
from repro.solver import Model, Sense, SolverOptions, quicksum

_LIMIT = SolverOptions(time_limit=20.0)

SETTINGS = settings(max_examples=8, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def small_topology(draw) -> topology.Topology:
    """A strongly connected digraph: a directed ring plus random chords."""
    n = draw(st.integers(min_value=3, max_value=5))
    topo = topology.Topology("prop", num_nodes=n)
    caps = draw(st.lists(st.sampled_from([1.0, 2.0]), min_size=n, max_size=n))
    for i in range(n):
        topo.add_link(i, (i + 1) % n, caps[i])
    extra = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=4))
    for (i, j) in extra:
        if i != j and not topo.has_link(i, j):
            topo.add_link(i, j, 1.0,
                          alpha=draw(st.sampled_from([0.0, 1.0])))
    return topo


@st.composite
def topology_and_demand(draw):
    topo = draw(small_topology())
    gpus = topo.gpus
    kind = draw(st.sampled_from(["allgather", "alltoall", "broadcast",
                                 "random"]))
    if kind == "allgather":
        demand = collectives.allgather(gpus, 1)
    elif kind == "alltoall":
        demand = collectives.alltoall(gpus, 1)
    elif kind == "broadcast":
        demand = collectives.broadcast(gpus[0], gpus[1:], 1)
    else:
        triples = draw(st.lists(
            st.tuples(st.sampled_from(gpus), st.integers(0, 1),
                      st.sampled_from(gpus)),
            min_size=1, max_size=6).map(
                lambda ts: [(s, c, d) for (s, c, d) in ts if s != d]))
        if not triples:
            triples = [(gpus[0], 0, gpus[1])]
        demand = collectives.Demand.from_triples(triples)
    return topo, demand


def horizon_for(topo, demand, cfg) -> int:
    probe = build_epoch_plan(topo, cfg, 1)
    return path_based_epoch_bound(topo, demand, probe)


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
class TestMilpProperties:
    @pytest.mark.slow
    @SETTINGS
    @given(topology_and_demand())
    def test_milp_schedule_always_simulates_clean(self, case):
        topo, demand = case
        cfg = TecclConfig(chunk_bytes=1.0, solver=_LIMIT,
                          num_epochs=horizon_for(topo, demand,
                                                 TecclConfig(chunk_bytes=1.0)))
        out = solve_milp(topo, demand, cfg)
        report = simulate(out.schedule, topo, demand, out.plan)
        assert report.ok, report.violations

    @pytest.mark.slow
    @SETTINGS
    @given(topology_and_demand())
    def test_pruning_only_removes(self, case):
        topo, demand = case
        cfg = TecclConfig(chunk_bytes=1.0, solver=_LIMIT,
                          num_epochs=horizon_for(topo, demand,
                                                 TecclConfig(chunk_bytes=1.0)))
        out = solve_milp(topo, demand, cfg)
        raw_set = set(out.raw_schedule.sends)
        assert set(out.schedule.sends) <= raw_set
        assert out.schedule.finish_time(topo) <= \
            out.raw_schedule.finish_time(topo) + 1e-9

    @SETTINGS
    @given(topology_and_demand())
    def test_no_copy_lp_ships_one_copy_per_triple(self, case):
        """The no-copy LP can never ship less than one full copy per
        demanded triple — that floor is exactly what in-network copy
        removes. (The MILP's bytes are *not* comparable: it optimises
        time and may buy speed with longer detours.)"""
        topo, demand = case
        cfg = TecclConfig(chunk_bytes=1.0, solver=_LIMIT,
                          num_epochs=horizon_for(topo, demand,
                                                 TecclConfig(chunk_bytes=1.0)))
        lp = solve_lp(topo, demand, cfg, aggregate=False)
        assert lp.schedule.total_bytes() >= \
            demand.num_triples * cfg.chunk_bytes - 1e-6

    @SETTINGS
    @given(topology_and_demand())
    def test_milp_ships_at_least_one_copy_per_commodity(self, case):
        """Even with copy, every demanded commodity must leave its source
        at least once (nothing is created out of thin air, Figure 3)."""
        topo, demand = case
        cfg = TecclConfig(chunk_bytes=1.0, solver=_LIMIT,
                          num_epochs=horizon_for(topo, demand,
                                                 TecclConfig(chunk_bytes=1.0)))
        milp = solve_milp(topo, demand, cfg)
        for (s, c) in demand.commodities():
            out_of_source = [snd for snd in milp.schedule.sends
                             if snd.commodity == (s, c) and snd.src == s]
            assert out_of_source, f"commodity ({s},{c}) never left {s}"


class TestAstarProperties:
    @SETTINGS
    @given(topology_and_demand())
    def test_astar_schedule_always_simulates_clean(self, case):
        topo, demand = case
        cfg = TecclConfig(chunk_bytes=1.0, solver=_LIMIT)
        try:
            out = solve_astar(topo, demand, cfg,
                              AStarConfig(epochs_per_round=4, max_rounds=32))
        except InfeasibleError:
            pytest.skip("round budget too small for this instance")
        report = simulate(out.schedule, topo, demand, out.plan)
        assert report.ok, report.violations

    @pytest.mark.slow
    @SETTINGS
    @given(topology_and_demand())
    def test_finish_times_respect_path_lower_bound(self, case):
        """No solver may beat physics: the slowest demanded pair's
        α+β shortest-path time lower-bounds every finish.

        (A* vs MILP ordering is *not* asserted: the paper's Σ R/(k+1)
        objective is a proxy for completion time, so the MILP optimum does
        not always minimise the makespan and A* can legitimately produce a
        shorter schedule.)
        """
        from repro.core.epochs import min_time_seconds

        topo, demand = case
        seconds = min_time_seconds(topo, 1.0)
        bound = max(seconds[s][d] for s, c in demand.commodities()
                    for d in demand.destinations(s, c))
        cfg = TecclConfig(chunk_bytes=1.0, solver=_LIMIT,
                          num_epochs=horizon_for(topo, demand,
                                                 TecclConfig(chunk_bytes=1.0)))
        opt = solve_milp(topo, demand, cfg)
        assert opt.finish_time >= bound - 1e-9
        try:
            approx = solve_astar(topo, demand,
                                 TecclConfig(chunk_bytes=1.0, solver=_LIMIT),
                                 AStarConfig(epochs_per_round=4,
                                             max_rounds=32))
        except InfeasibleError:
            pytest.skip("round budget too small for this instance")
        assert approx.finish_time >= bound - 1e-9


class TestLpProperties:
    @SETTINGS
    @given(topology_and_demand())
    def test_lp_meets_all_demands(self, case):
        topo, demand = case
        cfg = TecclConfig(chunk_bytes=1.0, solver=_LIMIT,
                          num_epochs=horizon_for(topo, demand,
                                                 TecclConfig(chunk_bytes=1.0)))
        out = solve_lp(topo, demand, cfg, aggregate=False)
        for s, c in demand.commodities():
            for d in demand.destinations(s, c):
                assert out.schedule.delivered((s, c), d) == \
                    pytest.approx(1.0, abs=1e-5)

    @SETTINGS
    @given(topology_and_demand())
    def test_lp_capacity_never_violated(self, case):
        topo, demand = case
        cfg = TecclConfig(chunk_bytes=1.0, solver=_LIMIT,
                          num_epochs=horizon_for(topo, demand,
                                                 TecclConfig(chunk_bytes=1.0)))
        out = solve_lp(topo, demand, cfg, aggregate=False)
        for (i, j) in topo.links:
            for k in range(out.plan.num_epochs):
                assert out.schedule.link_load(i, j, k) <= \
                    out.plan.cap_chunks[(i, j)] + 1e-6


class TestSolverLayerProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.floats(0.1, 10), st.floats(0.1, 10)),
                    min_size=1, max_size=8))
    def test_lp_relaxation_upper_bounds_milp(self, items):
        """For any knapsack, the LP relaxation dominates the MILP optimum."""
        from repro.solver import VarType

        budget = sum(w for w, _ in items) / 2

        def build(integral: bool):
            m = Model(sense=Sense.MAXIMIZE)
            xs = [m.add_var(ub=1.0,
                            vtype=VarType.BINARY if integral
                            else VarType.CONTINUOUS)
                  for _ in items]
            m.add_constr(quicksum(w * x for (w, _), x in zip(items, xs))
                         <= budget)
            m.set_objective(quicksum(v * x for (_, v), x in zip(items, xs)))
            return m.solve(SolverOptions())

        relaxed = build(False)
        integral = build(True)
        assert relaxed.objective >= integral.objective - 1e-6
