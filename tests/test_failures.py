"""Tests for failure injection and checkpoint-restart schedule repair."""

import pytest

from repro import collectives, topology
from repro.core import TecclConfig, solve_milp
from repro.core.epochs import build_epoch_plan
from repro.core.schedule import Schedule, Send
from repro.errors import InfeasibleError, ModelError, TopologyError
from repro.failures import (FailureEvent, affected_sends,
                            degraded_capacity_fn, degraded_topology,
                            failure_impact, is_survivable, network_state_at,
                            rehome_demand, repair_schedule)


def cfg(num_epochs=None, **kwargs):
    return TecclConfig(chunk_bytes=1.0, num_epochs=num_epochs, **kwargs)


def solved_ring4():
    topo = topology.ring(4, capacity=1.0)
    demand = collectives.allgather(topo.gpus, 1)
    outcome = solve_milp(topo, demand, cfg(8))
    return topo, demand, outcome


class TestFailureEvent:
    def test_kills_only_from_epoch(self):
        event = FailureEvent(epoch=2, link=(0, 1))
        early = Send(epoch=1, source=0, chunk=0, src=0, dst=1)
        late = Send(epoch=2, source=0, chunk=0, src=0, dst=1)
        assert not event.kills(early)
        assert event.kills(late)

    def test_other_links_unaffected(self):
        event = FailureEvent(epoch=0, link=(0, 1))
        send = Send(epoch=5, source=0, chunk=0, src=1, dst=2)
        assert not event.kills(send)

    def test_negative_epoch_rejected(self):
        with pytest.raises(TopologyError):
            FailureEvent(epoch=-1, link=(0, 1))


class TestDegradedFabric:
    def test_degraded_topology_removes_links(self, ring4):
        degraded = degraded_topology(ring4, [FailureEvent(0, (0, 1))])
        assert not degraded.has_link(0, 1)
        assert degraded.has_link(1, 0)

    def test_no_failures_copies(self, ring4):
        degraded = degraded_topology(ring4, [])
        assert sorted(degraded.links) == sorted(ring4.links)

    def test_capacity_fn_zeroes_after_cutoff(self, ring4):
        capacity = degraded_capacity_fn(ring4, [FailureEvent(3, (0, 1))])
        assert capacity(0, 1, 2) == pytest.approx(1.0)
        assert capacity(0, 1, 3) <= 1e-9
        assert capacity(1, 0, 9) == pytest.approx(1.0)

    def test_earliest_cutoff_wins(self, ring4):
        capacity = degraded_capacity_fn(
            ring4, [FailureEvent(5, (0, 1)), FailureEvent(2, (0, 1))])
        assert capacity(0, 1, 2) <= 1e-9

    def test_survivable_ring_single_link(self, ring4, ag_ring4):
        assert is_survivable(ring4, ag_ring4, [FailureEvent(0, (0, 1))])

    def test_unsurvivable_partition(self):
        topo = topology.line(3, capacity=1.0)
        demand = collectives.allgather(topo.gpus, 1)
        cut = [FailureEvent(0, (1, 2)), FailureEvent(0, (2, 1))]
        assert not is_survivable(topo, demand, cut)


class TestAffectedSends:
    def test_direct_hits_only(self):
        topo, demand, outcome = solved_ring4()
        sends_01 = [s for s in outcome.schedule.sends if s.link == (0, 1)]
        assert sends_01, "expected the optimum to use link (0,1)"
        hit = affected_sends(outcome.schedule, [FailureEvent(0, (0, 1))])
        assert hit == sorted(sends_01)


class TestNetworkState:
    def test_state_at_zero_only_sources(self):
        topo, demand, outcome = solved_ring4()
        state = network_state_at(outcome.schedule, topo, demand,
                                 outcome.plan, 0)
        for (s, c), holders in state.holders.items():
            assert holders == {s}
        assert not state.delivered

    def test_state_after_horizon_all_delivered(self):
        topo, demand, outcome = solved_ring4()
        state = network_state_at(outcome.schedule, topo, demand,
                                 outcome.plan, outcome.schedule.num_epochs + 4)
        assert state.delivered == set(demand.triples())
        assert state.progress(demand) == pytest.approx(1.0)

    def test_progress_monotone_in_epoch(self):
        topo, demand, outcome = solved_ring4()
        last = -1.0
        for epoch in range(outcome.schedule.num_epochs + 2):
            state = network_state_at(outcome.schedule, topo, demand,
                                     outcome.plan, epoch)
            now = state.progress(demand)
            assert now >= last
            last = now

    def test_in_flight_tracked(self):
        topo = topology.line(2, capacity=1.0, alpha=5.0)  # multi-epoch delay
        demand = collectives.Demand.from_triples([(0, 0, 1)])
        outcome = solve_milp(topo, demand, cfg(12))
        sends = outcome.schedule.sends
        assert sends
        mid = sends[0].epoch + 1  # after start, before the α-delayed arrival
        state = network_state_at(outcome.schedule, topo, demand,
                                 outcome.plan, mid)
        assert state.in_flight
        assert not state.delivered


class TestRehomeDemand:
    def test_everything_delivered_empty_residual(self):
        topo, demand, outcome = solved_ring4()
        state = network_state_at(outcome.schedule, topo, demand,
                                 outcome.plan, outcome.schedule.num_epochs + 4)
        residual, mapping = rehome_demand(state, demand, topo, 1.0)
        assert residual.is_empty()
        assert mapping == {}

    def test_rehomes_to_closest_holder(self):
        # chunk of source 0 already reached node 2; node 3 still wants it.
        # On a line, holder 2 is one hop from 3 while source 0 is three.
        topo = topology.line(4, capacity=1.0)
        demand = collectives.Demand.from_triples([(0, 0, 2), (0, 0, 3)])
        from repro.failures.repair import NetworkState

        state = NetworkState(epoch=3, holders={(0, 0): {0, 2}},
                             delivered={(0, 0, 2)})
        residual, mapping = rehome_demand(state, demand, topo, 1.0)
        [(h, c, d)] = residual.triples()
        assert (h, d) == (2, 3)
        assert mapping[(h, c, d)] == (0, 0, 3)

    def test_unreachable_destination_raises(self):
        topo = topology.line(3, capacity=1.0)
        degraded = degraded_topology(
            topo, [FailureEvent(0, (1, 2)), FailureEvent(0, (0, 1))])
        demand = collectives.Demand.from_triples([(0, 0, 2)])
        from repro.failures.repair import NetworkState

        state = NetworkState(epoch=0, holders={(0, 0): {0}})
        with pytest.raises(InfeasibleError):
            rehome_demand(state, demand, degraded, 1.0)


class TestRepairSchedule:
    def test_repair_completes_residual(self):
        topo, demand, outcome = solved_ring4()
        failures = [FailureEvent(1, (0, 1))]
        repair = repair_schedule(topo, demand, cfg(), outcome.schedule,
                                 outcome.plan, failures)
        assert repair.restart_epoch == 1
        assert repair.synthesis is not None
        assert repair.total_time > 0
        # every residual triple maps back to an original one
        for rehomed in repair.residual_demand.triples():
            assert repair.mapping[rehomed] in set(demand.triples())

    def test_late_failure_needs_no_repair(self):
        topo, demand, outcome = solved_ring4()
        failures = [FailureEvent(outcome.schedule.num_epochs + 4, (0, 1))]
        repair = repair_schedule(topo, demand, cfg(), outcome.schedule,
                                 outcome.plan, failures)
        assert repair.synthesis is None
        assert repair.residual_finish_time == 0.0

    def test_repair_costs_more_than_no_failure(self):
        topo, demand, outcome = solved_ring4()
        failures = [FailureEvent(1, (0, 1))]
        repair = repair_schedule(topo, demand, cfg(), outcome.schedule,
                                 outcome.plan, failures)
        assert repair.overhead_over(outcome.finish_time) >= -1e-9

    def test_partitioning_failure_raises(self):
        topo = topology.line(3, capacity=1.0)
        demand = collectives.allgather(topo.gpus, 1)
        outcome = solve_milp(topo, demand, cfg(8))
        cut = [FailureEvent(0, (1, 2)), FailureEvent(0, (2, 1))]
        with pytest.raises(InfeasibleError):
            repair_schedule(topo, demand, cfg(), outcome.schedule,
                            outcome.plan, cut)

    def test_no_failures_rejected(self):
        topo, demand, outcome = solved_ring4()
        with pytest.raises(ModelError):
            repair_schedule(topo, demand, cfg(), outcome.schedule,
                            outcome.plan, [])


class TestFailureImpact:
    def test_ranks_all_links(self, ring4, ag_ring4):
        rows = failure_impact(ring4, ag_ring4, cfg())
        assert len(rows) == len(ring4.links)
        assert all(r.survivable for r in rows)
        # worst-first ordering
        for earlier, later in zip(rows, rows[1:]):
            assert earlier.slowdown >= later.slowdown - 1e-12

    def test_bridge_link_unsurvivable(self):
        topo = topology.line(3, capacity=1.0)
        demand = collectives.allgather(topo.gpus, 1)
        rows = failure_impact(topo, demand, cfg(),
                              links=[(1, 2)])
        [row] = rows
        assert not row.survivable
        assert row.finish_time == float("inf")


class TestRepairConformance:
    def test_residual_schedule_replays_clean(self):
        topo, demand, outcome = solved_ring4()
        repair = repair_schedule(topo, demand, cfg(), outcome.schedule,
                                 outcome.plan, [FailureEvent(1, (0, 1))])
        report = repair.check_conformance(cfg())
        assert report is not None
        assert report.ok, [str(v) for v in report.violations]
        # the replayed finish is the residual objective the repair reports
        assert report.finish_time == pytest.approx(
            repair.residual_finish_time)

    def test_nothing_to_replay_after_late_failure(self):
        topo, demand, outcome = solved_ring4()
        late = outcome.schedule.num_epochs + 4
        repair = repair_schedule(topo, demand, cfg(), outcome.schedule,
                                 outcome.plan, [FailureEvent(late, (0, 1))])
        assert repair.check_conformance() is None
