"""The Planner: hit/miss accounting, coalescing, batching, timeouts."""

import threading
import time

import pytest

from repro import collectives, topology
from repro.core import TecclConfig
from repro.core.solve import Method
from repro.errors import ServiceError
from repro.service import Planner, PlanRequest, SolvePool
from repro.solver import SolverOptions


def _request(chunks: int = 1, *, chunk_bytes: float = 1.0,
             num_epochs: int | None = 8, tag: str = "") -> PlanRequest:
    topo = topology.ring(4, capacity=1.0, alpha=0.0)
    return PlanRequest(
        topology=topo,
        demand=collectives.allgather(topo.gpus, chunks),
        config=TecclConfig(chunk_bytes=chunk_bytes, num_epochs=num_epochs),
        tag=tag)


class TestCaching:
    def test_miss_then_hit(self):
        with Planner(executor="inline") as planner:
            first = planner.plan(_request())
            second = planner.plan(_request())
        assert not first.cache_hit and second.cache_hit
        stats = planner.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["solves"] == 1

    def test_equivalent_objects_hit(self):
        """A request rebuilt from scratch (different objects, permuted
        edge insertion) still hits the cache."""
        with Planner(executor="inline") as planner:
            planner.plan(_request())
            topo = topology.Topology("rebuilt", num_nodes=4)
            for a, b in [(2, 3), (0, 1), (1, 2), (3, 0)]:
                topo.add_bidirectional(a, b, 1.0)
            rebuilt = PlanRequest(
                topology=topo,
                demand=collectives.allgather(list(range(4)), 1),
                config=TecclConfig(chunk_bytes=1, num_epochs=8))
            response = planner.plan(rebuilt)
        assert response.cache_hit

    def test_cached_result_equivalent(self):
        with Planner(executor="inline") as planner:
            cold = planner.plan(_request())
            warmed = planner.plan(_request())
        assert warmed.result.finish_time == pytest.approx(
            cold.result.finish_time)
        assert warmed.result.method == cold.result.method
        assert len(warmed.result.schedule.sends) == \
            len(cold.result.schedule.sends)
        # the cached result still supports downstream consumers
        assert warmed.result.topology_used is not None
        assert warmed.result.schedule.finish_time(
            warmed.result.topology_used) > 0

    def test_disk_cache_spans_planners(self, tmp_path):
        with Planner(executor="inline", cache_dir=tmp_path) as planner:
            planner.plan(_request())
        with Planner(executor="inline", cache_dir=tmp_path) as planner:
            response = planner.plan(_request())
            assert response.cache_hit
            assert planner.stats()["solves"] == 0


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_solve(self):
        n = 6
        with Planner(executor="thread", max_workers=4) as planner:
            barrier = threading.Barrier(n)
            responses: list = [None] * n

            def serve(i: int) -> None:
                barrier.wait()
                responses[i] = planner.plan(_request())

            threads = [threading.Thread(target=serve, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        stats = planner.stats()
        assert stats["solves"] == 1            # exactly one synthesize()
        assert stats["coalesced"] == n - 1
        finishes = {r.result.finish_time for r in responses}
        assert len(finishes) == 1
        assert sum(1 for r in responses if r.coalesced) == n - 1

    def test_distinct_requests_solve_in_parallel(self):
        """With a 2-wide pool, two *distinct* slow solves overlap."""
        calls: list[str] = []

        def slow_solve(request_dict: dict) -> dict:
            calls.append(request_dict["tag"])
            time.sleep(0.2)
            return {"tag": request_dict["tag"]}

        pool = SolvePool(max_workers=2, executor="thread",
                         solve_fn=slow_solve)
        try:
            t0 = time.perf_counter()
            fut_a, co_a = pool.submit("a" * 64, {"tag": "a"})
            fut_b, co_b = pool.submit("b" * 64, {"tag": "b"})
            assert not co_a and not co_b
            assert fut_a.result(5)["tag"] == "a"
            assert fut_b.result(5)["tag"] == "b"
            elapsed = time.perf_counter() - t0
        finally:
            pool.shutdown()
        assert sorted(calls) == ["a", "b"]
        assert elapsed < 0.35  # serial would be >= 0.4

    def test_batch_with_duplicates_coalesces(self):
        with Planner(executor="thread", max_workers=2) as planner:
            responses = planner.plan_batch(
                [_request(tag="x"), _request(tag="y"), _request(tag="z")])
        stats = planner.stats()
        assert stats["solves"] == 1
        # the duplicates either coalesced onto the in-flight solve or (if it
        # finished between submissions) hit the cache — never a second solve
        assert stats["coalesced"] + stats["hits"] == 2
        assert [r.tag for r in responses] == ["x", "y", "z"]
        assert all(r.ok for r in responses)


class TestBatchAndWarm:
    def test_batch_mixes_hits_and_solves(self):
        with Planner(executor="thread", max_workers=2) as planner:
            planner.plan(_request())
            responses = planner.plan_batch(
                [_request(tag="hit"), _request(chunks=2, tag="cold")])
        served = {r.tag: r for r in responses}
        assert served["hit"].cache_hit
        assert not served["cold"].cache_hit and served["cold"].ok

    def test_batch_captures_errors(self):
        good = _request(tag="good")
        # horizon 1 on a 4-ring allgather is infeasible
        bad = _request(num_epochs=1, tag="bad")
        with Planner(executor="inline") as planner:
            responses = planner.plan_batch([good, bad])
        by_tag = {r.tag: r for r in responses}
        assert by_tag["good"].ok
        assert not by_tag["bad"].ok
        assert by_tag["bad"].error

    def test_plan_raises_on_infeasible(self):
        from repro.errors import ReproError

        with Planner(executor="inline") as planner:
            with pytest.raises(ReproError):
                planner.plan(_request(num_epochs=1))

    def test_warm_counts_fresh_solves(self):
        with Planner(executor="inline") as planner:
            assert planner.warm([_request(), _request(chunks=2)]) == 2
            assert planner.warm([_request(), _request(chunks=2)]) == 0


class TestTimeouts:
    def test_timeout_raises_service_error(self):
        def glacial(request_dict: dict) -> dict:
            time.sleep(5.0)
            return {}

        pool = SolvePool(max_workers=1, executor="thread", solve_fn=glacial)
        planner = Planner(pool=pool)
        try:
            with pytest.raises(ServiceError, match="did not finish"):
                planner.plan(_request(), timeout=0.05)
            assert planner.stats()["timeouts"] == 1
        finally:
            planner.close()

    def test_timed_out_solve_still_warms_cache(self):
        release = threading.Event()

        def gated(request_dict: dict) -> dict:
            release.wait(5.0)
            from repro.service.pool import solve_request
            return solve_request(request_dict)

        pool = SolvePool(max_workers=1, executor="thread", solve_fn=gated)
        planner = Planner(pool=pool)
        try:
            with pytest.raises(ServiceError):
                planner.plan(_request(), timeout=0.05)
            release.set()
            # Retrying either coalesces onto the still-running solve or hits
            # the cache it populated — but never starts a second solve.
            response = planner.plan(_request(), timeout=10)
            assert response.ok
            assert planner.stats()["solves"] == 1
        finally:
            release.set()
            planner.close()


class TestProcessPool:
    def test_process_executor_roundtrip(self):
        """Requests and results cross the process boundary intact."""
        with Planner(executor="process", max_workers=2) as planner:
            response = planner.plan(_request())
            again = planner.plan(_request())
        assert response.ok and response.result.schedule.num_sends > 0
        assert again.cache_hit
        assert planner.stats()["solves"] == 1

    def test_lp_result_crosses_process_boundary(self):
        topo = topology.ring(4, capacity=1.0, alpha=0.0)
        request = PlanRequest(
            topology=topo,
            demand=collectives.alltoall(topo.gpus, 1),
            config=TecclConfig(chunk_bytes=1.0),
            method=Method.LP)
        with Planner(executor="process", max_workers=1) as planner:
            response = planner.plan(request)
        assert response.ok
        assert response.result.method is Method.LP
        assert response.result.schedule.flows  # FlowSchedule round-trip


class TestConformanceCheck:
    def test_post_solve_replay_attaches_report(self):
        with Planner(executor="inline", check_conformance=True) as planner:
            response = planner.plan(_request())
        assert response.ok
        assert response.conformant is True
        assert response.conformance["ok"] is True
        assert response.conformance["violation_counts"] == {}
        assert response.conformance["finish_time"] == pytest.approx(
            response.result.finish_time)
        stats = planner.stats()
        assert stats["conformance_checks"] == 1
        assert stats["conformance_failures"] == 0

    def test_cache_hits_are_checked_too(self):
        with Planner(executor="inline", check_conformance=True) as planner:
            planner.plan(_request())
            hit = planner.plan(_request())
        assert hit.cache_hit and hit.conformant is True
        assert planner.stats()["conformance_checks"] == 2

    def test_corrupted_cache_entry_is_evicted_and_resolved(self):
        import copy

        with Planner(executor="inline", check_conformance=True) as planner:
            first = planner.plan(_request())
            # sabotage the cached document: every send collapses to epoch 0
            payload = copy.deepcopy(planner.cache.get(first.fingerprint))
            for send in payload["schedule"]["sends"]:
                send[0] = 0
            planner.cache.put(first.fingerprint, payload)
            healed = planner.plan(_request())
            again = planner.plan(_request())
        # the poisoned entry was expelled and the request re-solved fresh
        assert healed.ok and healed.conformant is True
        assert not healed.cache_hit
        # ... and the replacement entry serves clean hits afterwards
        assert again.ok and again.cache_hit and again.conformant is True
        stats = planner.stats()
        assert stats["conformance_failures"] == 1
        assert stats["solves"] == 2

    def test_disabled_by_default(self):
        with Planner(executor="inline") as planner:
            response = planner.plan(_request())
        assert response.conformance is None
        assert response.conformant is None
        assert planner.stats()["conformance_checks"] == 0


class TestNearFingerprintDonors:
    """Cache misses probe the near index for a warm-start donor (PR 4)."""

    def _scaled_request(self, factor: float) -> PlanRequest:
        topo = topology.scale_capacity(
            topology.ring(4, capacity=1.0, alpha=0.0), factor)
        return PlanRequest(
            topology=topo, demand=collectives.alltoall(topo.gpus, 1),
            config=TecclConfig(chunk_bytes=1.0))

    def test_rescaled_fabric_rides_a_donor(self):
        with Planner(executor="inline") as planner:
            first = planner.plan(self._scaled_request(1.0))
            second = planner.plan(self._scaled_request(2.0))
        assert not first.cache_hit and not first.warm_donor
        assert not second.cache_hit   # a different exact fingerprint...
        assert second.warm_donor      # ...but the same near class
        stats = planner.stats()
        assert stats["warm_donors"] == 1
        assert stats["cache"]["near_hits"] == 1
        assert stats["solves"] == 2

    def test_donor_solve_matches_cold_solve(self):
        request = self._scaled_request(2.0)
        with Planner(executor="inline") as planner:
            planner.plan(self._scaled_request(1.0))  # the donor
            seeded = planner.plan(request)
        with Planner(executor="inline") as cold_planner:
            cold = cold_planner.plan(request)
        assert seeded.result.finish_time == pytest.approx(
            cold.result.finish_time, rel=1e-6) or \
            seeded.result.finish_time <= cold.result.finish_time + 1e-9

    def test_cache_hits_never_mark_donors(self):
        with Planner(executor="inline") as planner:
            planner.plan(_request())
            hit = planner.plan(_request())
        assert hit.cache_hit and not hit.warm_donor
        assert planner.stats()["warm_donors"] == 0

    def test_donor_flag_roundtrips_the_wire(self):
        from repro.service import PlanResponse

        with Planner(executor="inline") as planner:
            planner.plan(self._scaled_request(1.0))
            response = planner.plan(self._scaled_request(0.5))
        back = PlanResponse.from_dict(response.to_dict())
        assert back.warm_donor == response.warm_donor is True


class TestStatsThreadSafety:
    """The stats counters survive concurrent hammering (PR 5 satellite).

    The fleet daemon thread bumps counters alongside pool callbacks and
    caller threads; before the single stats lock, concurrent increments
    could be lost (read-modify-write races on the dataclass fields).
    """

    def test_concurrent_plans_count_exactly(self):
        with Planner(executor="inline") as planner:
            planner.plan(_request())  # populate the cache
            threads_n, per_thread = 8, 25
            errors = []

            def hammer():
                try:
                    for _ in range(per_thread):
                        assert planner.plan(_request()).ok
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=hammer)
                       for _ in range(threads_n)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            stats = planner.stats()
            assert stats["requests"] == 1 + threads_n * per_thread
            assert stats["hits"] == threads_n * per_thread

    def test_explicit_warm_from_counts_as_replan(self):
        with Planner(executor="inline") as planner:
            prior = planner.plan(_request()).result
            # a different instance, seeded by the prior result
            response = planner.plan(_request(chunk_bytes=0.5),
                                    warm_from=prior)
        assert response.ok and response.warm_donor
        stats = planner.stats()
        assert stats["replans"] == 1
        # the near-donor counter is reserved for cache-index donors
        assert stats["warm_donors"] == 0

    def test_warm_from_batch_must_align(self):
        with Planner(executor="inline") as planner:
            with pytest.raises(ServiceError):
                planner.plan_batch([_request()], warm_from=[])
