"""Tests for the extended collectives (alltoallv, halo, hierarchical)."""

import pytest

from repro import collectives, topology
from repro.collectives import (alltoallv, halo_exchange,
                               hierarchical_allgather)
from repro.core import TecclConfig, solve_lp, solve_milp, synthesize
from repro.core.solve import Method
from repro.errors import DemandError
from repro.simulate import verify


class TestAlltoallv:
    def test_uneven_counts(self):
        demand = alltoallv({(0, 1): 3, (0, 2): 1, (1, 0): 2})
        assert demand.num_chunks(0) == 4
        assert demand.num_chunks(1) == 2
        assert not demand.benefits_from_copy()

    def test_zero_pairs_allowed(self):
        demand = alltoallv({(0, 1): 1, (1, 0): 0})
        assert demand.num_triples == 1

    def test_validation(self):
        with pytest.raises(DemandError):
            alltoallv({(0, 0): 1})
        with pytest.raises(DemandError):
            alltoallv({(0, 1): -1})
        with pytest.raises(DemandError):
            alltoallv({})

    def test_moe_routing_solves(self, ring4):
        # skewed expert load: rank 0 receives most tokens
        demand = alltoallv({(1, 0): 3, (2, 0): 3, (3, 0): 1, (0, 1): 1})
        out = solve_lp(ring4, demand, TecclConfig(chunk_bytes=1.0))
        assert out.result.status.has_solution
        # rank 0's ingress (2 links) paces the skew: >= ceil(6/2) epochs
        assert out.finish_time >= 3.0 - 1e-9


class TestHaloExchange:
    def test_ring_halo(self):
        demand = halo_exchange([0, 1, 2, 3])
        # every rank sends to both neighbours
        assert demand.num_triples == 8
        assert not demand.benefits_from_copy()

    def test_open_chain(self):
        demand = halo_exchange([0, 1, 2], wrap=False)
        # ends have a single neighbour
        assert demand.num_triples == 4

    def test_validation(self):
        with pytest.raises(DemandError):
            halo_exchange([0])
        with pytest.raises(DemandError):
            halo_exchange([0, 1], chunks_per_neighbor=0)

    def test_halo_on_ring_is_one_epoch(self, ring4):
        demand = halo_exchange(ring4.gpus, 1)
        out = solve_lp(ring4, demand, TecclConfig(chunk_bytes=1.0))
        # neighbour exchange saturates each link exactly once
        assert out.finish_time == pytest.approx(1.0)


class TestHierarchicalAllgather:
    def test_phases_shape(self):
        intra, inter = hierarchical_allgather([[0, 1], [2, 3]], 1)
        # intra: each chassis pair exchanges
        assert intra.wants(0, 0, 1) and intra.wants(2, 0, 3)
        assert not intra.wants(0, 0, 2)  # no cross-chassis in phase 1
        # inter: leaders (0, 2) exchange their 2-chunk aggregates
        assert inter.wants(0, 0, 2) and inter.wants(0, 1, 2)
        assert inter.wants(2, 0, 0)

    def test_validation(self):
        with pytest.raises(DemandError):
            hierarchical_allgather([[0, 1]])
        with pytest.raises(DemandError):
            hierarchical_allgather([[0, 1], [1, 2]])
        with pytest.raises(DemandError):
            hierarchical_allgather([[0], [1]])

    def test_two_phase_schedule_on_internal2(self, internal2x2):
        groups = [[0, 1], [2, 3]]
        intra, inter = hierarchical_allgather(groups, 1)
        cfg = TecclConfig(chunk_bytes=1e6, num_epochs=12)
        phase1 = solve_milp(internal2x2, intra, cfg)
        verify(phase1.schedule, internal2x2, intra, phase1.plan)
        phase2 = solve_milp(internal2x2, inter, cfg)
        verify(phase2.schedule, internal2x2, inter, phase2.plan)
        # staging never beats the flat joint optimization (sanity anchor)
        flat = synthesize(internal2x2,
                          collectives.allgather(internal2x2.gpus, 1),
                          TecclConfig(chunk_bytes=1e6, num_epochs=16),
                          method=Method.MILP)
        staged = phase1.finish_time + phase2.finish_time \
            + phase1.finish_time
        assert staged >= flat.finish_time - 1e-9
