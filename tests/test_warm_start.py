"""The incremental re-solve engine: warm starts, model growth, re-planning.

Differential suite for PR 4: every warm path (shared-model
``minimize_epochs`` searches, POP retries on growing models, seeded
``replan``/repair re-solves) must reach the same objectives as a cold solve
of the same model — float-tight — and every schedule it hands out must
replay cleanly through the PR 3 conformance oracle.
"""

import math

import numpy as np
import pytest

from repro import collectives, topology
from repro.core import TecclConfig
from repro.core.epochs import build_epoch_plan
from repro.core.lp import IncrementalLp, LpBuilder, minimize_epochs_lp
from repro.core.pop import pop_auto_horizon, solve_lp_pop
from repro.core.solve import synthesize
from repro.errors import ModelError, ReproError
from repro.failures import FailureEvent, replan
from repro.simulate import check_flow, check_result
from repro.simulate.harness import random_instance
from repro.solver import Model, Sense, SolveStatus, WarmStart

TOL = 1e-6

pytestmark = pytest.mark.warmstart


# uniformly renegotiated bandwidth = the library's what-if transform
_scaled_topology = topology.scale_capacity


# ----------------------------------------------------------------------
# solver layer: WarmStart + extend/patch/bounds mechanics
# ----------------------------------------------------------------------
class TestWarmStartApi:
    def _toy(self):
        model = Model("toy", sense=Sense.MAXIMIZE)
        idx = model.add_var_array(2, ub=4.0)
        model.add_constr_coo([0, 0], [0, 1], [1.0, 2.0], -np.inf, 6.0)
        model.set_objective_array(idx, np.ones(2))
        return model, idx

    def test_capture_and_pad(self):
        model, _ = self._toy()
        result = model.solve()
        warm = result.warm_start()
        assert warm is not None
        assert warm.num_vars == 2
        assert warm.objective == pytest.approx(result.objective)
        padded = warm.padded(4)
        assert padded.shape == (4,)
        assert padded[2:] == pytest.approx([0.0, 0.0])

    def test_pad_rejects_shrinking(self):
        model, _ = self._toy()
        warm = model.solve().warm_start()
        with pytest.raises(ModelError):
            warm.padded(1)

    def test_no_solution_no_warm_start(self):
        model = Model("inf")
        x = model.add_var_array(1, ub=1.0)
        model.add_constr_coo([0], [0], [1.0], 2.0, np.inf)
        model.set_objective_array(x, np.ones(1))
        result = model.solve()
        assert result.status is SolveStatus.INFEASIBLE
        assert result.warm_start() is None
        assert WarmStart.from_result(result) is None
        assert WarmStart.from_result(None) is None

    def test_solve_records_backend_support(self):
        model, _ = self._toy()
        warm = model.solve().warm_start()
        result = model.solve(warm_start=warm)
        # scipy's HiGHS wrappers accept no primal seed today; the solve
        # must still succeed and say what happened to the hint.
        assert result.stats["warm_start"] in ("applied", "unsupported")
        assert result.objective == pytest.approx(5.0)

    def test_check_point(self):
        model, _ = self._toy()
        result = model.solve()
        assert model.check_point(result.values)
        assert not model.check_point(np.array([10.0, 10.0]))
        assert not model.check_point(np.array([1.0]))


class TestModelExtend:
    def test_extend_matches_cold_build(self):
        grown = Model("g", sense=Sense.MAXIMIZE)
        idx = grown.add_var_array(2, ub=3.0)
        grown.add_constr_coo([0, 0], [0, 1], [1.0, 1.0], -np.inf, 4.0)
        grown.set_objective_array(idx, np.ones(2))
        first = grown.solve()
        grown.extend()
        extra = grown.add_var_array(1, ub=2.0)
        grown.add_coo_terms([0], [int(extra[0])], [1.0])
        grown.add_constr_coo([0], [int(extra[0])], [1.0], 0.5, np.inf)
        grown.set_objective_array(np.concatenate([idx, extra]), np.ones(3))

        cold = Model("c", sense=Sense.MAXIMIZE)
        cidx = cold.add_var_array(2, ub=3.0)
        cextra = cold.add_var_array(1, ub=2.0)
        cold.add_constr_coo([0, 0, 0], [0, 1, 2], [1.0, 1.0, 1.0],
                            -np.inf, 4.0)
        cold.add_constr_coo([0], [int(cextra[0])], [1.0], 0.5, np.inf)
        cold.set_objective_array(np.concatenate([cidx, cextra]), np.ones(3))

        a, b = grown.compile(), cold.compile()
        assert a.A.shape == b.A.shape
        assert (a.A != b.A).nnz == 0
        assert np.array_equal(a.row_lower, b.row_lower)
        assert np.array_equal(a.row_upper, b.row_upper)
        assert grown.solve().objective == pytest.approx(
            cold.solve().objective)
        # the pre-extension solve is untouched by the growth
        assert first.objective == pytest.approx(4.0)

    def test_patch_requires_existing_rows(self):
        model = Model("p")
        model.add_var_array(1)
        with pytest.raises(ModelError):
            model.add_coo_terms([0], [0], [1.0])

    def test_bound_restriction_roundtrip(self):
        model, idx = Model("b", sense=Sense.MAXIMIZE), None
        idx = model.add_var_array(3, ub=2.0)
        model.set_objective_array(idx, np.ones(3))
        assert model.solve().objective == pytest.approx(6.0)
        model.set_var_bounds(idx[1:], ub=0.0)
        assert model.solve().objective == pytest.approx(2.0)
        model.set_var_bounds(idx[1:], ub=np.inf)
        model.set_var_bounds(idx[1:], ub=2.0)
        assert model.solve().objective == pytest.approx(6.0)

    def test_bound_mutation_rejects_crossing(self):
        model = Model("x")
        idx = model.add_var_array(1, lb=1.0, ub=2.0)
        with pytest.raises(ModelError):
            model.set_var_bounds(idx, ub=0.5)


# ----------------------------------------------------------------------
# LP layer: growth differential (append == rebuild)
# ----------------------------------------------------------------------
class TestIncrementalGrowth:
    @pytest.mark.parametrize("seed", range(8))
    def test_grown_model_equals_cold_build(self, seed):
        topo, demand, config = random_instance(seed)
        inc = None
        for start_k in (3, 6, 10):
            try:
                inc = IncrementalLp(topo, demand, config, start_k)
                break
            except ReproError:
                continue
        assert inc is not None, "no feasible starting horizon up to 10"
        inc.grow(start_k + 2)
        inc.grow(start_k + 9)

        plan = build_epoch_plan(topo, config, num_epochs=start_k + 9)
        cold = LpBuilder(topo, demand, config, plan,
                         construction="coo").build()
        assert inc.model.num_vars == cold.model.num_vars
        assert inc.model.num_constraints == cold.model.num_constraints
        assert inc.model.compile().A.nnz == cold.model.compile().A.nnz
        warm_result = inc.model.solve(config.solver)
        cold_result = cold.model.solve(config.solver)
        assert warm_result.status.has_solution \
            == cold_result.status.has_solution
        if warm_result.status.has_solution:
            assert warm_result.objective == pytest.approx(
                cold_result.objective, rel=TOL)
            outcome = inc.extract(warm_result, start_k + 9)
            report = check_flow(outcome.schedule, topo, demand,
                                outcome.plan, config=config)
            assert report.ok, report.violations[:3]

    def test_restricted_probe_matches_cold_horizon(self):
        ring4 = topology.ring(4, capacity=1.0)
        atoa = collectives.alltoall(ring4.gpus, 1)
        config = TecclConfig(chunk_bytes=1.0)
        inc = IncrementalLp(ring4, atoa, config, 6)
        probe = inc.solve_at(2)
        plan2 = build_epoch_plan(ring4, config, num_epochs=2)
        cold = LpBuilder(ring4, atoa, config, plan2).build()
        cold_result = cold.model.solve(config.solver)
        assert probe.status.has_solution
        assert probe.objective == pytest.approx(cold_result.objective,
                                                rel=TOL)

    def test_grow_rejects_shrinking(self):
        ring4 = topology.ring(4, capacity=1.0)
        atoa = collectives.alltoall(ring4.gpus, 1)
        inc = IncrementalLp(ring4, atoa, TecclConfig(chunk_bytes=1.0), 4)
        with pytest.raises(ModelError):
            inc.grow(3)


# ----------------------------------------------------------------------
# the acceptance sweep: >= 20 randomized instances, three warm paths
# ----------------------------------------------------------------------
class TestMinimizeEpochsDifferential:
    @pytest.mark.parametrize("seed", range(20))
    def test_warm_equals_cold(self, seed):
        topo, demand, config = random_instance(seed)
        try:
            warm = minimize_epochs_lp(topo, demand, config)
            cold = minimize_epochs_lp(topo, demand, config,
                                      incremental=False)
        except ReproError:
            pytest.skip("instance infeasible for the horizon search")
        assert warm.plan.num_epochs == cold.plan.num_epochs
        assert warm.result.objective == pytest.approx(
            cold.result.objective, rel=TOL)
        for outcome in (warm, cold):
            report = check_flow(outcome.schedule, topo, demand,
                                outcome.plan, config=config)
            assert report.ok, (seed, report.violations[:3])
        # the warm search really ran on the shared model (no silent
        # fallback to the cold path)
        assert "horizon_solves" in warm.result.stats


class TestPopDifferential:
    @pytest.mark.parametrize("seed", range(10))
    def test_warm_equals_cold(self, seed):
        topo, demand, config = random_instance(seed)
        if demand.benefits_from_copy():
            demand = collectives.alltoall(topo.gpus, 1)
        if len(demand.sources) < 2:
            pytest.skip("POP needs at least two sources")
        try:
            warm = solve_lp_pop(topo, demand, config, num_partitions=2,
                                seed=seed)
            cold = solve_lp_pop(topo, demand, config, num_partitions=2,
                                seed=seed, incremental=False)
        except ReproError:
            pytest.skip("POP infeasible on this instance")
        assert warm.attempts == cold.attempts
        assert warm.plan.num_epochs == cold.plan.num_epochs
        assert len(warm.sub_outcomes) == len(cold.sub_outcomes)
        for w, c in zip(warm.sub_outcomes, cold.sub_outcomes):
            assert w.result.objective == pytest.approx(
                c.result.objective, rel=TOL)
        report = check_flow(warm.schedule, topo, demand, warm.plan,
                            config=config)
        assert report.ok, (seed, report.violations[:3])


class TestReplanDifferential:
    @pytest.mark.parametrize("seed", range(6))
    def test_seeded_resolve_equals_cold_at_same_horizon(self, seed):
        topo, demand, config = random_instance(seed)
        try:
            prior = synthesize(topo, demand, config)
        except ReproError:
            pytest.skip("baseline synthesis infeasible")
        # perturb: uniformly renegotiated bandwidth (the Cloud Collectives
        # scenario); the near class is preserved, the instance is not.
        perturbed = _scaled_topology(topo, 0.5)
        result = replan(prior, perturbed, demand, config)
        report = check_result(result, config=config)
        assert report.ok, (seed, report.violations[:3])
        # fair differential: a cold solve of the *same* model (horizon
        # pinned to what the warm path chose) reaches the same objective
        from dataclasses import replace

        pinned = replace(config, num_epochs=result.plan.num_epochs)
        cold = synthesize(perturbed, demand, pinned)
        warm_obj = result.outcome.result.objective
        cold_obj = cold.outcome.result.objective
        assert warm_obj == pytest.approx(cold_obj, rel=TOL)

    def test_repair_replan_is_conformant(self):
        ring6 = topology.ring(6, capacity=1.0)
        ag = collectives.allgather(ring6.gpus, 1)
        config = TecclConfig(chunk_bytes=1.0)
        prior = synthesize(ring6, ag, config)
        outcome = replan(prior, ring6, ag, config,
                         failures=[FailureEvent(epoch=1, link=(0, 1))])
        assert outcome.synthesis is not None
        report = outcome.check_conformance(config)
        assert report.ok, report.violations[:3]
        assert outcome.total_time > 0

    def test_fractional_prior_replans_on_degraded_fabric(self):
        ring6 = topology.ring(6, capacity=1.0)
        atoa = collectives.alltoall(ring6.gpus, 1)
        config = TecclConfig(chunk_bytes=1.0)
        prior = synthesize(ring6, atoa, config)
        result = replan(prior, ring6, atoa, config,
                        failures=[FailureEvent(epoch=1, link=(0, 1))])
        # LP priors have no integral prefix: a fresh degraded-fabric solve
        assert result.finish_time > prior.finish_time
        assert check_result(result).ok

    def test_warm_hint_shrinks_the_model(self):
        ring6 = topology.ring(6, capacity=1.0)
        atoa = collectives.alltoall(ring6.gpus, 1)
        config = TecclConfig(chunk_bytes=1.0)
        prior = synthesize(ring6, atoa, config)
        seeded = replan(prior, ring6, atoa, config)
        cold = synthesize(ring6, atoa, config)
        assert seeded.plan.num_epochs <= cold.plan.num_epochs
        hint = math.ceil(prior.finish_time / prior.plan.tau) + 1
        assert seeded.plan.num_epochs <= max(2, hint)


class TestPopAutoHorizon:
    def test_default_two_partitions_gets_real_slack(self):
        # regression: max(K, int(K * 2 * 0.5)) == K was a no-op
        for base in (2, 5, 10, 17):
            assert pop_auto_horizon(base, 2) > base

    def test_floor_of_one_epoch(self):
        assert pop_auto_horizon(2, 2) == 3

    def test_scales_with_partitions(self):
        assert pop_auto_horizon(10, 3) == 15
        assert pop_auto_horizon(10, 4) == 20

    def test_single_partition_unchanged(self):
        assert pop_auto_horizon(10, 1) == 10

    def test_two_partition_instance_solves_first_try(self):
        # with real slack the default POP run burns no infeasible retry
        ring6 = topology.ring(6, capacity=1.0)
        atoa = collectives.alltoall(ring6.gpus, 1)
        out = solve_lp_pop(ring6, atoa, TecclConfig(chunk_bytes=1.0),
                           num_partitions=2)
        assert out.attempts == 1
