"""End-to-end tests of the paper's qualitative claims, in miniature.

Each test is one claim from the evaluation (§2 examples, §6 findings),
exercised through the public facade on instances small enough for CI.
"""

import pytest

from repro import collectives, topology
from repro.collectives import TenantDemand, allgather_plan
from repro.core import TecclConfig, solve_lp, solve_milp
from repro.core.astar import solve_astar
from repro.core.config import AStarConfig, EpochMode, SwitchModel
from repro.core.solve import (Method, synthesize, synthesize_multi_tenant)
from repro.simulate import verify
from repro.solver import SolverOptions


class TestFigure1Claims:
    def test_1b_store_and_forward_solution_quality_unchanged(self):
        """Fig 1(b): buffers enlarge the solution space, not the optimum."""
        topo = topology.store_and_forward_star()
        demand = collectives.gather(4, [0, 1, 2], 1)
        cfg = TecclConfig(chunk_bytes=1.0, num_epochs=6)
        with_sf = solve_milp(topo, demand, cfg)
        without = solve_milp(
            topo, demand,
            TecclConfig(chunk_bytes=1.0, num_epochs=6,
                        store_and_forward=False))
        # both satisfy the demand in 3 "seconds" (3 unit chunks over the
        # 2-unit h->d link, bottlenecked at ceil(3/2) = 2 epochs + relay)
        assert with_sf.finish_time == pytest.approx(without.finish_time)

    def test_1c_copy_halves_transfer(self):
        """Fig 1(c): 2 s with copy vs 4 s without, exactly."""
        topo = topology.copy_star()
        demand = collectives.broadcast(0, [2, 3, 4], 1)
        cfg = TecclConfig(chunk_bytes=1.0, num_epochs=8)
        with_copy = solve_milp(topo, demand, cfg)
        without = solve_lp(topo, demand, cfg, aggregate=False)
        assert with_copy.finish_time == pytest.approx(2.0)
        assert without.finish_time == pytest.approx(4.0)


class TestAutoMethodSelection:
    def test_alltoall_uses_lp(self, internal2x2):
        demand = collectives.alltoall(internal2x2.gpus, 1)
        result = synthesize(internal2x2, demand,
                            TecclConfig(chunk_bytes=1e6))
        assert result.method is Method.LP

    def test_allgather_uses_milp(self, dgx1):
        demand = collectives.allgather(dgx1.gpus, 1)
        result = synthesize(dgx1, demand,
                            TecclConfig(chunk_bytes=25e3, num_epochs=10))
        assert result.method is Method.MILP

    def test_forced_astar(self, internal2x2):
        demand = collectives.allgather(internal2x2.gpus, 1)
        result = synthesize(internal2x2, demand,
                            TecclConfig(chunk_bytes=1e6),
                            method=Method.ASTAR)
        assert result.method is Method.ASTAR

    def test_hyper_edge_mode_transforms(self, internal2x2):
        demand = collectives.allgather(internal2x2.gpus, 1)
        cfg = TecclConfig(chunk_bytes=1e6, num_epochs=16,
                          switch_model=SwitchModel.HYPER_EDGE)
        result = synthesize(internal2x2, demand, cfg, method=Method.MILP)
        assert result.hyper is not None
        assert not result.hyper.topology.switches

    def test_algorithmic_bandwidth_helper(self, dgx1):
        demand = collectives.allgather(dgx1.gpus, 1)
        plan = allgather_plan(8, output_buffer_bytes=8 * 25e3)
        result = synthesize(dgx1, demand,
                            TecclConfig(chunk_bytes=plan.chunk_bytes,
                                        num_epochs=10))
        ab = result.algorithmic_bandwidth(plan.output_buffer_bytes)
        assert ab > 0


class TestMultiTenant:
    def test_two_tenants_share_fabric(self, ring4):
        tenants = [
            TenantDemand(collectives.allgather(ring4.gpus, 1), 1.0, "a"),
            TenantDemand(collectives.alltoall(ring4.gpus, 1), 1.0, "b"),
        ]
        result = synthesize_multi_tenant(
            ring4, tenants, TecclConfig(chunk_bytes=1.0, num_epochs=10),
            method=Method.MILP)
        assert result.finish_time > 0

    def test_priority_changes_completion_order(self):
        topo = topology.line(2, capacity=1.0)
        slow = collectives.Demand.from_triples([(0, 0, 1)])
        fast = collectives.Demand.from_triples([(0, 0, 1)])
        base = TecclConfig(chunk_bytes=1.0, num_epochs=4)
        result = synthesize_multi_tenant(
            topo,
            [TenantDemand(slow, 1.0, "low"), TenantDemand(fast, 9.0, "hi")],
            base, method=Method.MILP)
        sends = sorted(result.schedule.sends)
        # the high-priority tenant's (renumbered) chunk goes first
        assert sends[0].chunk == 1


class TestScalePath:
    @pytest.mark.slow
    def test_astar_on_8_chassis_internal2(self):
        """Table 4's direction: A* handles fabrics the MILP struggles with."""
        topo = topology.internal2(8)  # 16 GPUs + switch
        demand = collectives.allgather(topo.gpus, 1)
        cfg = TecclConfig(chunk_bytes=1e6,
                          solver=SolverOptions(mip_gap=0.3, time_limit=120))
        out = solve_astar(topo, demand, cfg, AStarConfig())
        report = verify(out.schedule, topo, demand, out.plan)
        assert report.ok

    @pytest.mark.slow
    def test_lp_on_8_chassis_internal2_alltoall(self):
        topo = topology.internal2(8)
        demand = collectives.alltoall(topo.gpus, 1)
        out = solve_lp(topo, demand, TecclConfig(chunk_bytes=1e6))
        assert out.result.status.has_solution

    def test_epoch_multiplier_shrinks_model(self):
        """Table 4's EM knob: coarser epochs, smaller model, same demand."""
        topo = topology.internal2(4)
        demand = collectives.alltoall(topo.gpus, 1)
        fine = solve_lp(topo, demand, TecclConfig(chunk_bytes=1e6))
        coarse = solve_lp(topo, demand,
                          TecclConfig(chunk_bytes=1e6, epoch_multiplier=2.0))
        assert coarse.result.stats["num_vars"] < fine.result.stats["num_vars"]
        assert coarse.finish_time >= fine.finish_time - 1e-9


class TestEpochGranularity:
    def test_fig8_small_epochs_better_schedules(self):
        """Fig 8(b): fastest-link epochs win on heterogeneous fabrics."""
        topo = topology.ndv2(2)
        demand = collectives.allgather(topo.gpus[:4], 1)
        small = synthesize(topo, demand, TecclConfig(
            chunk_bytes=1e6, num_epochs=24,
            epoch_mode=EpochMode.FASTEST_LINK,
            solver=SolverOptions(mip_gap=0.05)), method=Method.MILP)
        large = synthesize(topo, demand, TecclConfig(
            chunk_bytes=1e6, num_epochs=8,
            epoch_mode=EpochMode.SLOWEST_LINK,
            solver=SolverOptions(mip_gap=0.05)), method=Method.MILP)
        assert small.finish_time <= large.finish_time * 1.05 + 1e-9


class TestReducescatterAllreduce:
    def test_reducescatter_lp(self, ring4):
        demand = collectives.reduce_scatter(ring4.gpus, 1)
        result = synthesize(ring4, demand, TecclConfig(chunk_bytes=1.0))
        assert result.method is Method.LP

    def test_allreduce_as_two_phases(self, ring4):
        rs, ag = collectives.allreduce_phases(ring4.gpus, 1)
        cfg = TecclConfig(chunk_bytes=1.0, num_epochs=8)
        phase1 = synthesize(ring4, rs, cfg)
        phase2 = synthesize(ring4, ag, cfg, method=Method.MILP)
        total = phase1.finish_time + phase2.finish_time
        assert total > 0
