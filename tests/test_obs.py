"""The observability layer: tracer, metrics registry, exporters.

The concurrency section holds the PR's hardest promise: spans emitted
from the fleet daemon thread, coalesced planner caller threads, and
``ProcessPoolExecutor`` solve workers must land in one JSONL file as
well-formed records with correct parent linkage — including across the
process boundary, where the trace context rides the request dict.
"""

import json
import math
import os
import threading
import time

import pytest

from repro import collectives, obs, topology
from repro.core import TecclConfig
from repro.errors import ObservabilityError
from repro.obs.metrics import prometheus_from_snapshot

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _tracing_disabled():
    """Every test starts and ends in the zero-overhead default state."""
    obs.disable()
    yield
    obs.disable()


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestSpan:
    def test_disabled_is_shared_noop(self):
        assert obs.get_tracer() is None
        sp = obs.span("anything", cost="free")
        assert sp is obs.NOOP_SPAN
        with sp as inner:
            assert inner.set_attr(more=1) is inner
        obs.event("ignored")  # no tracer: must not raise

    def test_nesting_and_linkage(self):
        sink = obs.MemorySink()
        obs.configure(sink)
        with obs.span("outer", k=1):
            with obs.span("inner"):
                pass
            with obs.span("inner"):
                pass
        outer = next(r for r in sink.records if r["name"] == "outer")
        inners = [r for r in sink.records if r["name"] == "inner"]
        assert len(inners) == 2
        for inner in inners:
            assert inner["parent"] == outer["span"]
            assert inner["trace"] == outer["trace"]
        assert outer["parent"] is None
        assert outer["attrs"] == {"k": 1}
        assert outer["v"] == obs.TRACE_SCHEMA_VERSION
        # children close first, so they are recorded first
        assert sink.records[-1] is outer

    def test_duration_is_monotonic_and_positive(self):
        sink = obs.MemorySink()
        obs.configure(sink)
        with obs.span("timed"):
            time.sleep(0.01)
        record = sink.records[0]
        assert record["dur"] >= 0.01
        assert record["t0"] == pytest.approx(time.time(), abs=5.0)

    def test_exception_recorded_and_propagated(self):
        sink = obs.MemorySink()
        obs.configure(sink)
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        assert sink.records[0]["attrs"]["error"] == "ValueError"
        # the contextvar unwound: a new span is a root again
        with obs.span("after"):
            pass
        assert sink.records[-1]["parent"] is None

    def test_set_attr_after_open(self):
        sink = obs.MemorySink()
        obs.configure(sink)
        with obs.span("phase") as sp:
            sp.set_attr(rows=42)
        assert sink.records[0]["attrs"]["rows"] == 42

    def test_event_attaches_to_current_span(self):
        sink = obs.MemorySink()
        obs.configure(sink)
        with obs.span("parent"):
            obs.event("fired", job="j1")
        event = next(r for r in sink.records if r["kind"] == "event")
        parent = next(r for r in sink.records if r["kind"] == "span")
        assert event["span"] == parent["span"]
        assert event["attrs"] == {"job": "j1"}


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(path)
        with obs.span("a"):
            with obs.span("b"):
                pass
        obs.disable()
        events = obs.read_events(path)
        assert [e["name"] for e in events] == ["b", "a"]
        # every line is standalone JSON
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_close_is_idempotent_and_safe(self, tmp_path):
        sink = obs.JsonlSink(tmp_path / "t.jsonl")
        sink.write({"kind": "event"})
        sink.close()
        sink.close()
        sink.write({"kind": "event"})  # after close: dropped, no crash

    def test_unwritable_path_raises(self, tmp_path):
        target = tmp_path / "dir-not-file"
        target.mkdir()
        with pytest.raises(ObservabilityError):
            obs.JsonlSink(target)


class TestCarrier:
    def test_memory_sink_has_no_carrier(self):
        obs.configure(obs.MemorySink())
        assert obs.current_context() is None

    def test_disabled_has_no_carrier(self):
        assert obs.current_context() is None

    def test_jsonl_carrier_names_current_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(path)
        with obs.span("submit"):
            ctx = obs.current_context()
        assert ctx["sink"] == str(path)
        assert ctx["span"] is not None
        submit = obs.read_events(path)[0]
        assert ctx["trace"] == submit["trace"]
        assert ctx["span"] == submit["span"]

    def test_activate_stitches_under_remote_parent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(path)
        with obs.span("submit"):
            ctx = obs.current_context()
        obs.disable()  # simulate the fresh worker process
        with obs.activate(ctx):
            with obs.span("pool.solve"):
                pass
        # worker tracer stays configured for the next request on purpose
        assert obs.get_tracer() is not None
        events = obs.read_events(path)
        submit = next(e for e in events if e["name"] == "submit")
        solve = next(e for e in events if e["name"] == "pool.solve")
        assert solve["trace"] == submit["trace"]
        assert solve["parent"] == submit["span"]

    def test_activate_none_is_noop(self):
        with obs.activate(None):
            assert obs.span("x") is obs.NOOP_SPAN

    def test_env_var_fallback(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv(obs.TRACE_ENV_VAR, str(path))
        with obs.activate(None):
            with obs.span("from-env"):
                pass
        assert obs.read_events(path)[0]["name"] == "from-env"


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter(self):
        c = obs.Counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ObservabilityError):
            c.inc(-1)

    def test_gauge(self):
        g = obs.Gauge("depth")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3

    def test_histogram_quantiles(self):
        h = obs.Histogram("lat", buckets=(1.0, 2.0, 4.0, 8.0))
        for v in (0.5, 1.5, 1.5, 3.0, 6.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(12.5)
        assert 0.5 <= h.quantile(0.0) <= 1.0
        assert 1.0 <= h.quantile(0.5) <= 2.0
        assert h.quantile(1.0) == pytest.approx(6.0)
        summary = h.summary()
        assert set(summary) == {"count", "sum", "p50", "p95", "p99"}

    def test_histogram_rejects_nan_and_bad_buckets(self):
        with pytest.raises(ObservabilityError):
            obs.Histogram("h", buckets=(2.0, 1.0))
        h = obs.Histogram("h")
        with pytest.raises(ObservabilityError):
            h.observe(float("nan"))

    def test_empty_histogram_quantile_is_nan(self):
        assert math.isnan(obs.Histogram("h").quantile(0.5))

    def test_exponential_buckets(self):
        buckets = obs.exponential_buckets(1.0, 2.0, 4)
        assert buckets == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ObservabilityError):
            obs.exponential_buckets(0.0, 2.0, 4)


class TestRegistry:
    def test_get_or_create(self):
        reg = obs.MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        with pytest.raises(ObservabilityError):
            reg.gauge("a_total")

    def test_bad_names_rejected(self):
        reg = obs.MetricsRegistry()
        for bad in ("", "1abc", "has space", "dash-ed"):
            with pytest.raises(ObservabilityError):
                reg.counter(bad)

    def test_prometheus_text(self):
        reg = obs.MetricsRegistry()
        reg.counter("reqs_total", "requests served").inc(3)
        reg.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = reg.prometheus_text()
        assert "# HELP reqs_total requests served" in text
        assert "# TYPE reqs_total counter" in text
        assert "reqs_total 3" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_snapshot_round_trips_to_prometheus(self):
        reg = obs.MetricsRegistry()
        reg.counter("a_total").inc(2)
        reg.gauge("depth").set(1.5)
        reg.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
        snapshot = json.loads(json.dumps(reg.snapshot()))
        assert prometheus_from_snapshot(snapshot) == reg.prometheus_text()

    def test_prometheus_from_snapshot_rejects_garbage(self):
        with pytest.raises(ObservabilityError):
            prometheus_from_snapshot({"m": {"type": "unknown"}})
        with pytest.raises(ObservabilityError):
            prometheus_from_snapshot({"m": {"type": "counter"}})


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def _span(name, span_id, parent, dur, t0=0.0):
    return {"kind": "span", "v": 1, "name": name, "trace": "t1",
            "span": span_id, "parent": parent, "pid": 1, "tid": 1,
            "t0": t0, "dur": dur, "attrs": {}}


class TestExport:
    def test_corrupt_jsonl_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span"}\n{"broke', encoding="utf-8")
        with pytest.raises(ObservabilityError):
            obs.read_events(path)

    def test_chrome_trace_shapes(self):
        events = [_span("a", "s1", None, 0.5, t0=1.0),
                  {"kind": "event", "name": "e", "pid": 2, "tid": 3,
                   "t0": 1.2, "attrs": {"x": 1}}]
        trace = obs.chrome_trace(events)
        complete = trace["traceEvents"][0]
        assert complete["ph"] == "X"
        assert complete["dur"] == pytest.approx(0.5e6)
        assert complete["ts"] == pytest.approx(1.0e6)
        instant = trace["traceEvents"][1]
        assert instant["ph"] == "i"
        assert instant["args"] == {"x": 1}

    def test_summarize_coverage(self):
        # root (1.0s) -> mid (0.8s) -> leaf (0.6s); plus leaf2 (0.2s)
        events = [_span("root", "r", None, 1.0),
                  _span("mid", "m", "r", 0.8),
                  _span("leaf", "l", "m", 0.6),
                  _span("leaf2", "l2", "r", 0.2)]
        summary = obs.summarize(events)
        assert summary["coverage"] == pytest.approx(0.8)  # 0.6 + 0.2
        assert summary["phases"]["root"]["self"] == pytest.approx(0.0)
        assert summary["phases"]["mid"]["self"] == pytest.approx(0.2)
        assert summary["roots"][0]["name"] == "root"
        assert summary["num_spans"] == 4

    def test_format_summary_renders(self):
        summary = obs.summarize([_span("root", "r", None, 1.0)])
        text = obs.format_summary(summary)
        assert "root" in text
        assert "coverage" in text


# ----------------------------------------------------------------------
# concurrency: threads, the fleet daemon, and worker processes
# ----------------------------------------------------------------------
def _small_request(tag):
    topo = topology.dgx1()
    return {
        "topology": topo,
        "demand": collectives.allgather(topo.gpus, 1),
        "config": TecclConfig(chunk_bytes=25e3, num_epochs=12),
        "tag": tag,
    }


class TestConcurrency:
    def test_threaded_spans_stay_well_formed(self, tmp_path):
        """Many caller threads, one JSONL file: parseable, correctly
        parented per thread (the contextvar keeps stacks thread-local)."""
        path = tmp_path / "threads.jsonl"
        obs.configure(path)
        n_threads, n_spans = 8, 25

        def worker(i):
            for j in range(n_spans):
                with obs.span("outer", thread=i, j=j):
                    with obs.span("inner", thread=i, j=j):
                        pass

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        obs.disable()
        events = obs.read_events(path)  # raises on any corrupt record
        assert len(events) == n_threads * n_spans * 2
        by_id = {e["span"]: e for e in events}
        for e in events:
            if e["name"] != "inner":
                continue
            parent = by_id[e["parent"]]
            assert parent["name"] == "outer"
            # never adopted by another thread's open span
            assert parent["attrs"]["thread"] == e["attrs"]["thread"]
            assert parent["attrs"]["j"] == e["attrs"]["j"]

    def test_fleet_daemon_thread_spans(self, tmp_path):
        from repro.fleet import (AdaptationController, FleetJob,
                                 SyntheticTelemetry)
        from repro.service import Planner

        path = tmp_path / "fleet.jsonl"
        topo = topology.ring(4, capacity=1.0)
        with Planner(executor="inline") as planner:
            daemon = AdaptationController(
                topo, SyntheticTelemetry(topo), planner, sink=path)
            daemon.add_job(FleetJob(
                name="a2a", demand=collectives.alltoall(topo.gpus, 1),
                config=TecclConfig(chunk_bytes=1.0)))
            daemon.start(interval=0.01)
            deadline = time.time() + 5.0
            while daemon.stats()["polls"] < 3 and time.time() < deadline:
                time.sleep(0.01)
            daemon.stop()
        events = obs.read_events(path)
        steps = [e for e in events if e["name"] == "fleet.step"]
        assert len(steps) >= 3
        assert all(e["tid"] != threading.get_ident() for e in steps)
        polls = [e for e in events if e["name"] == "fleet.poll"]
        step_ids = {e["span"] for e in steps}
        assert polls and all(e["parent"] in step_ids for e in polls)

    def test_process_pool_stitching(self, tmp_path):
        """The headline: worker-process solve spans append to the same
        file and parent under the submitting request's submit span."""
        from repro.service import Planner, PlanRequest

        path = tmp_path / "pool.jsonl"
        with Planner(executor="process", max_workers=2,
                     sink=path) as planner:
            responses = planner.plan_batch(
                [PlanRequest(**_small_request("r0")),
                 PlanRequest(**_small_request("r1"))])
        assert all(r.ok for r in responses)
        events = obs.read_events(path)  # raises on any corrupt record
        solves = [e for e in events if e["name"] == "pool.solve"]
        submits = [e for e in events if e["name"] == "planner.submit"]
        # the two identical requests coalesce onto one worker solve
        assert solves and submits
        submit_by_id = {e["span"]: e for e in submits}
        for solve in solves:
            assert solve["pid"] != os.getpid()
            parent = submit_by_id[solve["parent"]]
            assert parent["trace"] == solve["trace"]
            # the worker's own phases nest under its pool.solve
            children = [e for e in events if e["parent"] == solve["span"]]
            assert any(e["name"] == "synthesize" for e in children)
