"""Tests for the datacenter fabric builders."""

import pytest

from repro import collectives, topology
from repro.core import TecclConfig, synthesize
from repro.errors import TopologyError
from repro.topology.fabrics import (dragonfly, fat_tree, hypercube,
                                    leaf_spine, torus2d)


class TestLeafSpine:
    def test_shape(self):
        topo = leaf_spine(num_leaves=3, gpus_per_leaf=4, num_spines=2)
        assert topo.num_gpus == 12
        assert len(topo.switches) == 5
        topo.validate()

    def test_gpu_single_homed(self):
        topo = leaf_spine(2, 3, 2)
        for gpu in topo.gpus:
            assert len(topo.out_edges(gpu)) == 1

    def test_leaf_connects_all_spines(self):
        topo = leaf_spine(2, 2, 3)
        first_leaf = topo.num_gpus
        spine_peers = [l.dst for l in topo.out_edges(first_leaf)
                       if topo.is_switch(l.dst)]
        assert len(spine_peers) == 3

    def test_validation(self):
        with pytest.raises(TopologyError):
            leaf_spine(0, 4, 2)


class TestFatTree:
    def test_k4_shape(self):
        topo = fat_tree(4)
        assert topo.num_gpus == 16       # k^3/4
        assert len(topo.switches) == 20  # 8 edge + 8 agg + 4 core
        topo.validate()

    def test_k2_shape(self):
        topo = fat_tree(2)
        assert topo.num_gpus == 2
        assert len(topo.switches) == 5
        topo.validate()

    def test_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            fat_tree(3)

    def test_full_bisection(self):
        """Every edge switch has equal up- and down-link counts."""
        topo = fat_tree(4)
        first_edge = topo.num_gpus
        for e in range(8):
            edge = first_edge + e
            down = [l for l in topo.out_edges(edge)
                    if not topo.is_switch(l.dst)]
            up = [l for l in topo.out_edges(edge)
                  if topo.is_switch(l.dst)]
            assert len(down) == len(up) == 2

    def test_allgather_synthesis_on_subtree(self):
        """The synthesizer must route through two switch tiers."""
        from repro.topology.transforms import subset_gpus

        topo = subset_gpus(fat_tree(2), [0, 1])
        demand = collectives.allgather(topo.gpus, 1)
        config = TecclConfig(chunk_bytes=1e6)  # auto horizon: two tiers
        result = synthesize(topo, demand, config)
        assert result.finish_time > 0


class TestTorus2d:
    def test_shape_and_degree(self):
        topo = torus2d(3, 4)
        assert topo.num_gpus == 12
        for gpu in topo.gpus:
            assert len(topo.out_edges(gpu)) == 4
        topo.validate()

    def test_single_row_is_ring(self):
        topo = torus2d(1, 5)
        for gpu in topo.gpus:
            assert len(topo.out_edges(gpu)) == 2

    def test_2x2_no_duplicate_links(self):
        topo = torus2d(2, 2)
        # wrap-around and direct neighbour coincide: 2 distinct peers each
        for gpu in topo.gpus:
            assert len(topo.out_edges(gpu)) == 2

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            torus2d(1, 1)


class TestHypercube:
    def test_shape_and_degree(self):
        topo = hypercube(3)
        assert topo.num_gpus == 8
        for gpu in topo.gpus:
            assert len(topo.out_edges(gpu)) == 3
        topo.validate()

    def test_dimension_one(self):
        topo = hypercube(1)
        assert topo.num_gpus == 2

    def test_neighbours_differ_by_one_bit(self):
        topo = hypercube(4)
        for (a, b) in topo.links:
            assert bin(a ^ b).count("1") == 1

    def test_bad_dimension_rejected(self):
        with pytest.raises(TopologyError):
            hypercube(0)


class TestDragonfly:
    def test_shape(self):
        topo = dragonfly(num_groups=3, routers_per_group=2,
                         gpus_per_router=2)
        assert topo.num_gpus == 12
        assert len(topo.switches) == 6
        topo.validate()

    def test_local_mesh(self):
        topo = dragonfly(2, 3, 1)
        first_router = topo.num_gpus
        local_peers = [l.dst for l in topo.out_edges(first_router)
                       if topo.is_switch(l.dst)
                       and l.dst < first_router + 3]
        assert len(local_peers) == 2  # meshed to the other two in-group

    def test_every_group_pair_has_global_link(self):
        groups, routers = 3, 2
        topo = dragonfly(groups, routers, 1)
        first_router = topo.num_gpus

        def group_of(router: int) -> int:
            return (router - first_router) // routers

        seen = set()
        for (a, b) in topo.links:
            if (topo.is_switch(a) and topo.is_switch(b)
                    and group_of(a) != group_of(b)):
                seen.add((group_of(a), group_of(b)))
        expected = {(g, h) for g in range(groups) for h in range(groups)
                    if g != h}
        assert seen == expected

    def test_validation(self):
        with pytest.raises(TopologyError):
            dragonfly(1, 2, 2)


class TestSynthesisOnFabrics:
    """The builders must produce fabrics the solvers accept end to end."""

    def test_torus_alltoall(self):
        topo = torus2d(2, 2)
        demand = collectives.alltoall(topo.gpus, 1)
        config = TecclConfig(chunk_bytes=1e6, num_epochs=10)
        result = synthesize(topo, demand, config)
        assert result.finish_time > 0

    def test_hypercube_allgather(self):
        topo = hypercube(2)
        demand = collectives.allgather(topo.gpus, 1)
        config = TecclConfig(chunk_bytes=1e6, num_epochs=8)
        result = synthesize(topo, demand, config)
        assert result.finish_time > 0

    def test_leaf_spine_broadcast(self):
        topo = leaf_spine(2, 2, 1)
        demand = collectives.broadcast(0, topo.gpus, 1)
        config = TecclConfig(chunk_bytes=1e6)  # auto horizon: two tiers
        result = synthesize(topo, demand, config)
        assert result.finish_time > 0
