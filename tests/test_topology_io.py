"""Tests for topology JSON serialisation and edge-list construction."""

import pytest

from repro.errors import TopologyError
from repro.topology import (dgx1, from_dict, from_edge_list, internal2,
                            load_json, ndv2, save_json, to_dict)


class TestEdgeList:
    def test_basic_construction(self):
        topo = from_edge_list(3, [(0, 1, 1e9, 0.0), (1, 0, 1e9, 0.0),
                                  (1, 2, 2e9, 1e-6), (2, 1, 2e9, 1e-6)])
        topo.validate()
        assert topo.link(1, 2).capacity == 2e9

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            from_edge_list(3, [])

    def test_switches_carried(self):
        topo = from_edge_list(3, [(0, 2, 1.0, 0.0), (2, 1, 1.0, 0.0),
                                  (1, 2, 1.0, 0.0), (2, 0, 1.0, 0.0)],
                              switches=[2])
        assert topo.is_switch(2)


class TestDictRoundTrip:
    @pytest.mark.parametrize("builder", [dgx1, lambda: ndv2(2),
                                         lambda: internal2(3)])
    def test_round_trip_preserves_everything(self, builder):
        topo = builder()
        clone = from_dict(to_dict(topo))
        assert clone.name == topo.name
        assert clone.num_nodes == topo.num_nodes
        assert clone.switches == topo.switches
        assert set(clone.links) == set(topo.links)
        for key, link in topo.links.items():
            assert clone.links[key].capacity == pytest.approx(link.capacity)
            assert clone.links[key].alpha == pytest.approx(link.alpha)

    def test_malformed_document_rejected(self):
        with pytest.raises(TopologyError):
            from_dict({"name": "x"})
        with pytest.raises(TopologyError):
            from_dict({"name": "x", "num_nodes": 2,
                       "links": [{"src": 0}]})
        with pytest.raises(TopologyError):
            from_dict({"name": "x", "num_nodes": 2, "links": []})

    def test_alpha_defaults_to_zero(self):
        topo = from_dict({"name": "x", "num_nodes": 2,
                          "links": [{"src": 0, "dst": 1, "capacity": 1.0},
                                    {"src": 1, "dst": 0, "capacity": 1.0}]})
        assert topo.link(0, 1).alpha == 0.0


class TestJsonFiles:
    def test_file_round_trip(self, tmp_path):
        topo = ndv2(2)
        path = tmp_path / "fabric.json"
        save_json(topo, path)
        clone = load_json(path)
        assert set(clone.links) == set(topo.links)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(TopologyError):
            load_json(path)

    def test_loaded_topology_solves(self, tmp_path):
        from repro import collectives
        from repro.core import TecclConfig, solve_milp

        path = tmp_path / "fabric.json"
        save_json(dgx1(), path)
        topo = load_json(path)
        demand = collectives.allgather(topo.gpus, 1)
        out = solve_milp(topo, demand,
                         TecclConfig(chunk_bytes=25e3, num_epochs=10))
        assert out.result.status.has_solution
