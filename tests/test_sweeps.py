"""Tests for the §5 parameter-sweep utilities."""

import pytest

from repro import collectives, topology
from repro.analysis.sweeps import (chunk_size_sweep, epoch_multiplier_sweep,
                                   horizon_sweep)
from repro.core import TecclConfig
from repro.core.solve import Method
from repro.errors import InfeasibleError, ModelError


@pytest.fixture
def setup():
    topo = topology.ring(4, capacity=1.0)
    demand = collectives.alltoall(topo.gpus, 1)
    return topo, demand, TecclConfig(chunk_bytes=1.0)


class TestChunkSweep:
    def test_records_every_point(self, setup):
        topo, demand, cfg = setup
        result = chunk_size_sweep(topo, demand, cfg, [0.5, 1.0, 2.0],
                                  method=Method.LP)
        assert len(result.points) == 3
        assert result.best.value in (0.5, 1.0, 2.0)

    def test_empty_sweep_rejected(self, setup):
        topo, demand, cfg = setup
        with pytest.raises(ModelError):
            chunk_size_sweep(topo, demand, cfg, [])


class TestMultiplierSweep:
    def test_coarser_never_faster_transfer(self, setup):
        topo, demand, cfg = setup
        result = epoch_multiplier_sweep(topo, demand, cfg, [1.0, 2.0],
                                        method=Method.LP)
        fine, coarse = result.points
        assert coarse.finish_time >= fine.finish_time - 1e-9

    def test_best_prefers_smaller_value_on_ties(self, setup):
        topo, demand, cfg = setup
        result = epoch_multiplier_sweep(topo, demand, cfg, [2.0, 1.0],
                                        method=Method.LP)
        # ties broken toward the smaller knob value
        if result.points[0].finish_time == result.points[1].finish_time:
            assert result.best.value == 1.0


class TestHorizonSweep:
    def test_infeasible_horizons_recorded(self, setup):
        topo, demand, cfg = setup
        result = horizon_sweep(topo, demand, cfg, [1, 2, 4],
                               method=Method.LP)
        assert result.points[0].infeasible       # K=1 cannot work
        assert not result.points[1].infeasible   # K=2 is the optimum
        assert result.feasible_values() == [2.0, 4.0]

    def test_all_infeasible_raises_on_best(self, setup):
        topo, demand, cfg = setup
        result = horizon_sweep(topo, demand, cfg, [1], method=Method.LP)
        with pytest.raises(InfeasibleError):
            _ = result.best
