"""Unit tests for the α–β schedule executor (the hardware stand-in)."""

import pytest

from repro import collectives, topology
from repro.core.epochs import plan_with_tau
from repro.core.schedule import Schedule, Send
from repro.errors import ScheduleError
from repro.simulate import simulate, verify


def send(epoch, src, dst, source=0, chunk=0):
    return Send(epoch=epoch, source=source, chunk=chunk, src=src, dst=dst)


@pytest.fixture
def line3():
    return topology.line(3, capacity=1.0)


@pytest.fixture
def plan3(line3):
    return plan_with_tau(line3, 1.0, tau=1.0, num_epochs=8)


def sched(sends, num_epochs=8, chunk_bytes=1.0):
    return Schedule(sends=sends, tau=1.0, chunk_bytes=chunk_bytes,
                    num_epochs=num_epochs)


class TestAvailability:
    def test_valid_relay_passes(self, line3, plan3):
        demand = collectives.Demand.from_triples([(0, 0, 2)])
        report = simulate(sched([send(0, 0, 1), send(1, 1, 2)]),
                          line3, demand, plan3)
        assert report.ok
        assert report.finish_time == pytest.approx(2.0)

    def test_premature_forward_detected(self, line3, plan3):
        demand = collectives.Demand.from_triples([(0, 0, 2)])
        report = simulate(sched([send(0, 0, 1), send(0, 1, 2)]),
                          line3, demand, plan3)
        assert not report.ok
        assert any("before holding" in v for v in report.violations)

    def test_forward_of_never_received_chunk(self, line3, plan3):
        demand = collectives.Demand.from_triples([(0, 0, 2)])
        report = simulate(sched([send(0, 1, 2)]), line3, demand, plan3)
        assert not report.ok

    def test_alpha_shifts_availability(self):
        topo = topology.line(3, capacity=1.0, alpha=1.5)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=8)
        demand = collectives.Demand.from_triples([(0, 0, 2)])
        # Delta = 2: forwarding at epoch 2 is one epoch too early
        early = simulate(sched([send(0, 0, 1), send(2, 1, 2)]),
                         topo, demand, plan)
        assert not early.ok
        ok = simulate(sched([send(0, 0, 1), send(3, 1, 2)]),
                      topo, demand, plan)
        assert ok.ok


class TestCapacity:
    def test_over_capacity_detected(self, line3, plan3):
        demand = collectives.Demand.from_triples([(0, 0, 1), (0, 1, 1)])
        report = simulate(
            sched([send(0, 0, 1), send(0, 0, 1, chunk=1)]),
            line3, demand, plan3)
        assert not report.ok
        assert any("capacity" in v for v in report.violations)

    def test_windowed_capacity_on_slow_links(self):
        topo = topology.Topology("w", num_nodes=2)
        topo.add_bidirectional(0, 1, 1.0)
        plan = plan_with_tau(topo, 4.0, tau=1.0, num_epochs=12)
        assert plan.occupancy[(0, 1)] == 4
        demand = collectives.Demand.from_triples([(0, 0, 1), (0, 1, 1)])
        burst = simulate(
            sched([send(0, 0, 1), send(2, 0, 1, chunk=1)], num_epochs=12,
                  chunk_bytes=4.0),
            topo, demand, plan)
        assert not burst.ok
        spaced = simulate(
            sched([send(0, 0, 1), send(4, 0, 1, chunk=1)], num_epochs=12,
                  chunk_bytes=4.0),
            topo, demand, plan)
        assert spaced.ok


class TestSwitchSemantics:
    def test_stranded_chunk_detected(self):
        topo = topology.star(3)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=8)
        demand = collectives.Demand.from_triples([(0, 0, 1)])
        report = simulate(
            sched([send(0, 0, 3), send(0, 0, 1)]),  # direct link 0->1 absent!
            topo, demand, plan)
        assert not report.ok

    def test_switch_relay_timing(self):
        topo = topology.star(3)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=8)
        demand = collectives.Demand.from_triples([(0, 0, 1)])
        good = simulate(sched([send(0, 0, 3), send(1, 3, 1)]),
                        topo, demand, plan)
        assert good.ok
        late = simulate(sched([send(0, 0, 3), send(2, 3, 1)]),
                        topo, demand, plan, strict_switches=True)
        assert not late.ok

    def test_lenient_mode_allows_buffered_switches(self):
        topo = topology.star(3)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=8)
        demand = collectives.Demand.from_triples([(0, 0, 1)])
        report = simulate(sched([send(0, 0, 3), send(2, 3, 1)]),
                          topo, demand, plan, strict_switches=False)
        # forwarding late is an arrival violation only in strict mode
        assert not any("stranded" in v for v in report.violations)


class TestDelivery:
    def test_unmet_demand_detected(self, line3, plan3):
        demand = collectives.Demand.from_triples([(0, 0, 1), (0, 0, 2)])
        report = simulate(sched([send(0, 0, 1)]), line3, demand, plan3)
        assert not report.ok
        assert any("unmet" in v for v in report.violations)

    def test_finish_time_is_last_useful_arrival(self, line3, plan3):
        demand = collectives.Demand.from_triples([(0, 0, 1)])
        report = simulate(sched([send(0, 0, 1), send(3, 1, 2)]),
                          line3, demand, plan3)
        # the epoch-3 hop serves nothing; finish tracks demand only
        assert report.finish_time == pytest.approx(1.0)

    def test_verify_raises(self, line3, plan3):
        demand = collectives.Demand.from_triples([(0, 0, 2)])
        with pytest.raises(ScheduleError):
            verify(sched([]), line3, demand, plan3)

    def test_total_bytes_reported(self, line3, plan3):
        demand = collectives.Demand.from_triples([(0, 0, 1)])
        report = simulate(sched([send(0, 0, 1)]), line3, demand, plan3)
        assert report.total_bytes == pytest.approx(1.0)
