"""Tests for the temporal flow decomposition (LP rates → timed paths)."""

import pytest

from repro import collectives, topology
from repro.core import TecclConfig, solve_lp
from repro.core.decompose import (decompose, strips_to_events,
                                  strips_to_schedule)
from repro.core.epochs import plan_with_tau
from repro.core.schedule import FlowSchedule
from repro.errors import ScheduleError


def cfg(num_epochs=None, **kwargs):
    return TecclConfig(chunk_bytes=1.0, num_epochs=num_epochs, **kwargs)


def solved(topo, demand, epochs=8, aggregate=True):
    return solve_lp(topo, demand, cfg(epochs), aggregate=aggregate)


class TestDecompose:
    def test_direct_transfer_single_strip(self):
        topo = topology.line(2, capacity=1.0)
        demand = collectives.Demand.from_triples([(0, 0, 1)])
        out = solved(topo, demand, epochs=4)
        strips = decompose(out.schedule, topo, out.plan)
        assert len(strips) == 1
        strip = strips[0]
        assert strip.amount == pytest.approx(1.0)
        assert strip.nodes == [0, 1]
        assert strip.hops[0].epoch == 0

    def test_relay_path_recovered(self):
        topo = topology.line(3, capacity=1.0)
        demand = collectives.Demand.from_triples([(0, 0, 2)])
        out = solved(topo, demand, epochs=6)
        strips = decompose(out.schedule, topo, out.plan)
        total = sum(s.amount for s in strips if s.destination == 2)
        assert total == pytest.approx(1.0)
        for strip in strips:
            assert strip.nodes[0] == 0
            assert strip.nodes[-1] == 2
            # hops are time-ordered
            epochs = [h.epoch for h in strip.hops]
            assert epochs == sorted(epochs)

    def test_mass_conserved_per_destination(self, ring4):
        demand = collectives.alltoall(ring4.gpus, 1)
        out = solved(ring4, demand, epochs=6)
        strips = decompose(out.schedule, ring4, out.plan)
        per_sink: dict = {}
        for strip in strips:
            key = (strip.commodity, strip.destination)
            per_sink[key] = per_sink.get(key, 0.0) + strip.amount
        for (q, d), amount in per_sink.items():
            assert amount == pytest.approx(
                out.schedule.delivered(q, d), abs=1e-5)

    def test_strips_respect_flow_amounts(self, ring4):
        demand = collectives.alltoall(ring4.gpus, 1)
        out = solved(ring4, demand, epochs=6)
        strips = decompose(out.schedule, ring4, out.plan)
        used: dict = {}
        for strip in strips:
            for hop in strip.hops:
                key = (strip.commodity, hop.src, hop.dst, hop.epoch)
                used[key] = used.get(key, 0.0) + strip.amount
        for key, amount in used.items():
            assert amount <= out.schedule.flows[key] + 1e-5

    def test_split_paths_give_multiple_strips(self):
        topo = topology.Topology("par", num_nodes=4)
        topo.add_bidirectional(0, 1, 1.0)
        topo.add_bidirectional(1, 3, 1.0)
        topo.add_bidirectional(0, 2, 1.0)
        topo.add_bidirectional(2, 3, 1.0)
        demand = collectives.Demand.from_triples([(0, 0, 3), (0, 1, 3)])
        out = solved(topo, demand, epochs=4)
        strips = decompose(out.schedule, topo, out.plan)
        assert sum(s.amount for s in strips) == pytest.approx(2.0, abs=1e-5)
        routes = {tuple(s.nodes) for s in strips}
        assert len(routes) >= 2  # both parallel paths used

    def test_broken_schedule_raises(self):
        topo = topology.line(3, capacity=1.0)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=6)
        broken = FlowSchedule(flows={}, reads={(0, 2, 1): 1.0},
                              tau=1.0, chunk_bytes=1.0, num_epochs=6)
        with pytest.raises(ScheduleError):
            decompose(broken, topo, plan, buffers={})


class TestStripsToSchedule:
    def test_roundtrip_to_sends(self, ring4):
        demand = collectives.alltoall(ring4.gpus, 1)
        out = solved(ring4, demand, epochs=6)
        strips = decompose(out.schedule, ring4, out.plan)
        schedule = strips_to_schedule(strips, out.plan)
        assert schedule.num_sends > 0
        # every send's link exists
        for send in schedule.sends:
            assert ring4.has_link(send.src, send.dst)

    def test_integral_strip_one_send_per_hop(self):
        topo = topology.line(3, capacity=1.0)
        demand = collectives.Demand.from_triples([(0, 0, 2)])
        out = solved(topo, demand, epochs=6)
        strips = decompose(out.schedule, topo, out.plan)
        schedule = strips_to_schedule(strips, out.plan)
        assert schedule.num_sends == 2  # two hops, one unit chunk


class TestStripsToEvents:
    def test_synthetic_demand_covers_all_units(self, ring4):
        demand = collectives.alltoall(ring4.gpus, 1)
        out = solved(ring4, demand, epochs=6)
        strips = decompose(out.schedule, ring4, out.plan)
        schedule, synth = strips_to_events(strips, out.plan)
        # same number of unit deliveries as the original demand
        assert synth.num_triples == demand.num_triples
        # every synthetic chunk id is unique per source
        seen = set()
        for s, c, d in synth.triples():
            assert (s, c) not in seen
            seen.add((s, c))

    def test_event_execution_of_lp_schedule(self, ring4):
        from repro.simulate import run_events

        demand = collectives.alltoall(ring4.gpus, 1)
        out = solved(ring4, demand, epochs=6)
        strips = decompose(out.schedule, ring4, out.plan)
        schedule, synth = strips_to_events(strips, out.plan)
        report = run_events(schedule, ring4, synth)
        # continuous time can only improve on the epoch-grid estimate
        assert report.finish_time <= out.finish_time + 1e-9

    def test_fractional_split_rounds_to_total(self):
        """Two half-unit strips to one sink become exactly one unit chunk."""
        from repro.core.decompose import PathStrip, TimedHop

        topo = topology.line(2, capacity=1.0)
        from repro.core.epochs import plan_with_tau

        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=4)
        strips = [
            PathStrip(commodity=0, destination=1, amount=0.5,
                      hops=(TimedHop(0, 1, 0),), read_epoch=0),
            PathStrip(commodity=0, destination=1, amount=0.5,
                      hops=(TimedHop(0, 1, 1),), read_epoch=1),
        ]
        schedule, synth = strips_to_events(strips, plan)
        assert synth.num_triples == 1
        assert schedule.num_sends == 1
