"""Unit tests for the hyper-edge (Appendix C) and rescaling transforms."""

import pytest

from repro.errors import TopologyError
from repro.topology import (Topology, internal2, ndv2, relabel, ring,
                            scale_capacity, star, subset_gpus, to_hyper_edges,
                            with_capacity_overrides, without_links)


def _link_table(topo):
    """(src, dst) -> (capacity, alpha) for structural comparison."""
    return {pair: (link.capacity, link.alpha)
            for pair, link in topo.links.items()}


class TestHyperEdges:
    def test_no_switches_is_identity(self):
        topo = ring(4)
        hyper = to_hyper_edges(topo)
        assert hyper.topology.num_nodes == 4
        assert not hyper.groups
        assert hyper.node_map == {n: n for n in range(4)}

    def test_star_becomes_mesh(self):
        topo = star(3)  # 3 GPUs + hub switch
        hyper = to_hyper_edges(topo)
        out = hyper.topology
        assert out.num_nodes == 3
        assert not out.switches
        # every ordered GPU pair gets a hyper-edge
        assert len(out.links) == 6
        assert len(hyper.groups) == 1
        group = hyper.groups[0]
        assert group.usage_limit == 3  # min(in-degree, out-degree)
        assert len(group.edges) == 6

    def test_hyper_edge_parameters(self):
        topo = Topology("t", num_nodes=3, switches={2})
        topo.add_link(0, 2, capacity=4.0, alpha=0.1)
        topo.add_link(2, 1, capacity=2.0, alpha=0.2)
        topo.add_link(1, 2, capacity=8.0, alpha=0.1)
        topo.add_link(2, 0, capacity=8.0, alpha=0.1)
        hyper = to_hyper_edges(topo)
        link = hyper.topology.link(0, 1)
        assert link.capacity == pytest.approx(2.0)  # min of the two hops
        assert link.alpha == pytest.approx(0.3)     # sum of the two hops

    def test_existing_direct_link_kept_when_faster(self):
        topo = Topology("t", num_nodes=3, switches={2})
        topo.add_bidirectional(0, 1, capacity=100.0)
        topo.add_bidirectional(0, 2, capacity=1.0)
        topo.add_bidirectional(1, 2, capacity=1.0)
        hyper = to_hyper_edges(topo)
        assert hyper.topology.link(0, 1).capacity == pytest.approx(100.0)

    def test_ndv2_hyper_edges(self):
        hyper = to_hyper_edges(ndv2(2))
        out = hyper.topology
        assert not out.switches
        assert out.num_nodes == 16
        # uplinked GPUs (0, 1 of each chassis) are now directly meshed
        pairs = hyper.hyper_edge_pairs()
        assert pairs  # non-empty
        for (i, j) in pairs:
            assert out.has_link(i, j)

    def test_node_map_round_trip(self):
        topo = internal2(2)
        hyper = to_hyper_edges(topo)
        for new, old in hyper.node_map.items():
            assert not topo.is_switch(old)
            assert 0 <= new < hyper.topology.num_nodes

    def test_switch_without_outputs_rejected(self):
        topo = Topology("t", num_nodes=3, switches={2})
        topo.add_bidirectional(0, 1, 1.0)
        topo.add_link(0, 2, 1.0)
        with pytest.raises(TopologyError):
            to_hyper_edges(topo)


class TestRescaling:
    def test_scale_capacity(self):
        topo = ring(3, capacity=2.0, alpha=0.5)
        scaled = scale_capacity(topo, 2.0)
        assert scaled.link(0, 1).capacity == pytest.approx(4.0)
        assert scaled.link(0, 1).alpha == pytest.approx(0.5)

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(TopologyError):
            scale_capacity(ring(3), 0.0)

    def test_subset_gpus(self):
        topo = internal2(3)  # 6 GPUs + switch
        sub = subset_gpus(topo, [0, 1, 2, 3])
        sub.validate()
        assert sub.num_gpus == 4
        assert len(sub.switches) == 1

    def test_subset_rejects_unknown_node(self):
        with pytest.raises(TopologyError):
            subset_gpus(ring(3), [0, 7])


class TestLinkFailures:
    def test_without_links_removes_only_requested(self):
        topo = ring(4)
        degraded = without_links(topo, [(0, 1)])
        assert not degraded.has_link(0, 1)
        assert degraded.has_link(1, 0)
        assert len(degraded.links) == len(topo.links) - 1

    def test_unknown_link_rejected(self):
        with pytest.raises(TopologyError):
            without_links(ring(4), [(0, 2)])

    def test_partition_surfaces_in_validate(self):
        topo = ring(3)
        degraded = without_links(
            topo, [(0, 1), (1, 0), (0, 2), (2, 0)])
        with pytest.raises(TopologyError):
            degraded.validate()

    def test_solver_routes_around_failure(self):
        from repro import collectives
        from repro.core import TecclConfig, solve_milp

        topo = ring(4)
        degraded = without_links(topo, [(0, 1), (1, 0)])
        demand = collectives.broadcast(0, [1], 1)
        out = solve_milp(degraded, demand,
                         TecclConfig(chunk_bytes=1.0, num_epochs=6))
        # the only remaining route is the long way round
        assert out.schedule.num_sends == 3


class TestRelabel:
    def test_inverse_round_trip(self):
        from repro.core.symmetry import invert_permutation

        topo = star(4)  # 4 GPUs + hub switch: exercises switch mapping too
        perm = [2, 0, 3, 1, 4]
        back = relabel(relabel(topo, perm), invert_permutation(perm))
        assert back.num_nodes == topo.num_nodes
        assert back.switches == topo.switches
        assert _link_table(back) == _link_table(topo)

    def test_identity_is_noop(self):
        topo = ring(5)
        same = relabel(topo, list(range(5)))
        assert _link_table(same) == _link_table(topo)
        assert same.switches == topo.switches

    def test_non_bijection_rejected(self):
        with pytest.raises(TopologyError):
            relabel(ring(4), [0, 0, 1, 2])
        with pytest.raises(TopologyError):
            relabel(ring(4), [0, 1, 2, 4])

    def test_subset_commutes_with_relabel(self):
        # subset_gpus(relabel(t, p), p(G)) == relabel(subset_gpus(t, G), q)
        # where q is the permutation p induces on the kept nodes.
        topo = ring(6)
        perm = [(i + 2) % 6 for i in range(6)]  # rotation by 2
        gpus = [0, 2, 3]

        left = subset_gpus(relabel(topo, perm), [perm[g] for g in gpus])

        keep_before = sorted(gpus)
        keep_after = sorted(perm[g] for g in gpus)
        induced = [keep_after.index(perm[g]) for g in keep_before]
        right = relabel(subset_gpus(topo, gpus), induced)

        assert left.num_nodes == right.num_nodes
        assert left.switches == right.switches
        assert _link_table(left) == _link_table(right)

    def test_scale_commutes_with_overrides(self):
        # scale_capacity o with_capacity_overrides ==
        # with_capacity_overrides o scale_capacity (both give cap * k * f).
        topo = ring(4)
        factors = {(0, 1): 0.5, (2, 3): 0.25}
        left = scale_capacity(with_capacity_overrides(topo, factors), 3.0)
        right = with_capacity_overrides(scale_capacity(topo, 3.0), factors)
        assert set(left.links) == set(right.links)
        for pair, link in left.links.items():
            other = right.links[pair]
            assert link.capacity == pytest.approx(other.capacity, rel=1e-12)
            assert link.alpha == other.alpha
