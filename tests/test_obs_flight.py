"""The flight recorder: ring semantics, dumps, and incident acceptance.

The tentpole contract this file holds:

* the recorder is **always on** and bounded — records ring, drops are
  counted, nothing configures it;
* automatic dumps fire only with a dump directory configured, are
  rate-limited, and never raise;
* a forced planner failure and a fleet rollback each land a JSONL dump
  whose events reconstruct the failing request's provenance (the
  ``planner.serve_failed`` decision event carries the full explain
  record; ring spans are correlated by fingerprint context labels).
"""

import dataclasses
import os
import signal

import pytest

from repro import collectives, obs, topology
from repro.core import TecclConfig
from repro.errors import ModelError, ObservabilityError
from repro.fleet import AdaptationController, LinkEvent, SyntheticTelemetry
from repro.obs import recorder as flight
from repro.obs.explain import ExplainRecord
from repro.service import Planner
from repro.service.pool import SolvePool
from repro.service.schema import PlanRequest

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def fresh_recorder(monkeypatch):
    """A clean ring and no dump destination for every test."""
    monkeypatch.delenv(flight.FLIGHT_DIR_ENV, raising=False)
    flight.set_dump_dir(None)
    recorder = flight.configure_recorder()
    yield recorder
    flight.set_dump_dir(None)
    flight.configure_recorder()


def tiny_request(tag="t"):
    topo = topology.ring(4, capacity=1.0)
    return PlanRequest(topology=topo,
                       demand=collectives.alltoall(topo.gpus, 1),
                       config=TecclConfig(chunk_bytes=1.0), tag=tag)


# ----------------------------------------------------------------------
# ring semantics
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_always_on_by_default(self):
        assert flight.active() is not None

    def test_ring_bounds_and_drop_counter(self):
        recorder = flight.FlightRecorder(capacity=4)
        for i in range(6):
            recorder.record("event", f"e{i}")
        assert recorder.total == 6
        assert recorder.drops == 2
        names = [rec["name"] for rec in recorder.snapshot()]
        assert names == ["e2", "e3", "e4", "e5"]  # oldest evicted

    def test_capacity_validated(self):
        with pytest.raises(ObservabilityError):
            flight.FlightRecorder(capacity=0)

    def test_records_carry_context_label(self, fresh_recorder):
        with flight.context("fp-abc"):
            flight.record("event", "inside")
        flight.record("event", "outside")
        by_name = {rec["name"]: rec for rec in fresh_recorder.snapshot()}
        assert by_name["inside"]["ctx"] == "fp-abc"
        assert by_name["outside"]["ctx"] is None

    def test_collect_phases_accumulates_rspan_durations(self):
        with flight.collect_phases() as phases:
            with obs.rspan("phase.a"):
                pass
            with obs.rspan("phase.a"):
                pass
            with obs.rspan("phase.b"):
                pass
        assert set(phases) == {"phase.a", "phase.b"}
        assert phases["phase.a"] >= 0.0

    def test_phases_survive_disabled_recorder(self):
        # with the recorder off, rspan still records through a configured
        # tracer — and the traced span's exit credits the phase collector
        flight.disable_recorder()
        obs.configure(obs.MemorySink())
        try:
            with flight.collect_phases() as phases:
                with obs.rspan("phase.c"):
                    pass
        finally:
            obs.disable()
        assert "phase.c" in phases

    def test_rspan_is_noop_when_all_disabled(self):
        from repro.obs.trace import NOOP_SPAN

        flight.disable_recorder()
        assert obs.rspan("anything") is NOOP_SPAN

    def test_rspan_rings_without_tracer(self, fresh_recorder):
        assert obs.get_tracer() is None
        with obs.rspan("coarse.site", probe=7):
            pass
        [rec] = fresh_recorder.snapshot()
        assert rec["kind"] == "span"
        assert rec["name"] == "coarse.site"
        assert rec["attrs"]["probe"] == 7
        assert rec["dur"] >= 0.0

    def test_rspan_rings_and_traces_with_tracer(self, fresh_recorder):
        sink = obs.MemorySink()
        obs.configure(sink)
        try:
            with obs.rspan("both.paths"):
                pass
        finally:
            obs.disable()
        assert any(r.get("name") == "both.paths" for r in sink.records)
        assert any(rec["name"] == "both.paths"
                   for rec in fresh_recorder.snapshot())

    def test_rspan_marks_error_exits(self, fresh_recorder):
        with pytest.raises(ValueError):
            with obs.rspan("boom.site"):
                raise ValueError("x")
        [rec] = fresh_recorder.snapshot()
        assert rec["attrs"]["error"] == "ValueError"


# ----------------------------------------------------------------------
# dumps
# ----------------------------------------------------------------------
class TestDumps:
    def test_dump_roundtrip(self, fresh_recorder, tmp_path):
        flight.record("event", "one", attrs={"k": 1})
        with obs.rspan("two"):
            pass
        path = fresh_recorder.dump(tmp_path / "flight.jsonl",
                                   reason="manual")
        events = flight.read_dump(path)
        header, *records = events
        assert header["kind"] == "flight_header"
        assert header["v"] == flight.FLIGHT_SCHEMA_VERSION
        assert header["reason"] == "manual"
        assert header["events"] == len(records) == 2
        assert [rec["name"] for rec in records] == ["one", "two"]
        text = flight.format_flight(events)
        assert "reason=manual" in text
        assert "two" in text

    def test_dump_without_destination_raises(self, fresh_recorder):
        with pytest.raises(ObservabilityError):
            fresh_recorder.dump()

    def test_dump_names_file_from_dir_and_reason(self, fresh_recorder,
                                                 tmp_path):
        flight.set_dump_dir(tmp_path)
        path = fresh_recorder.dump(reason="testing")
        assert path.parent == tmp_path
        assert path.name.startswith("flight-testing-")

    def test_auto_dump_silent_without_dir(self, fresh_recorder):
        assert flight.auto_dump("incident") is None

    def test_auto_dump_rate_limited_per_reason(self, fresh_recorder,
                                               tmp_path):
        flight.set_dump_dir(tmp_path)
        first = flight.auto_dump("storm")
        second = flight.auto_dump("storm")  # inside the interval
        other = flight.auto_dump("different")
        assert first is not None
        assert second is None
        assert other is not None

    def test_auto_dump_process_cap(self, tmp_path):
        recorder = flight.FlightRecorder()
        flight.set_dump_dir(tmp_path)
        recorder._auto_dumps = flight.MAX_AUTO_DUMPS
        assert recorder.auto_dump("capped") is None

    def test_env_var_names_dump_dir(self, fresh_recorder, tmp_path,
                                    monkeypatch):
        monkeypatch.setenv(flight.FLIGHT_DIR_ENV, str(tmp_path / "envdir"))
        path = flight.auto_dump("via-env")
        assert path is not None and path.parent == tmp_path / "envdir"

    def test_sigusr2_dumps_the_ring(self, fresh_recorder, tmp_path):
        flight.set_dump_dir(tmp_path)
        flight.record("event", "before-signal")
        previous = signal.getsignal(signal.SIGUSR2)
        try:
            assert flight.install_signal_dump()
            os.kill(os.getpid(), signal.SIGUSR2)
        finally:
            signal.signal(signal.SIGUSR2, previous)
        dumps = list(tmp_path.glob("flight-sigusr2-*.jsonl"))
        assert len(dumps) == 1
        events = flight.read_dump(dumps[0])
        assert any(rec.get("name") == "before-signal" for rec in events)

    def test_last_explain_roundtrip(self, tmp_path):
        assert flight.save_last_explain({"source": "cache"}) is None
        flight.set_dump_dir(tmp_path)
        path = flight.save_last_explain({"source": "cache", "tag": "x"})
        assert path is not None
        assert flight.load_last_explain(tmp_path)["tag"] == "x"

    def test_load_last_explain_without_dir_raises(self):
        with pytest.raises(ObservabilityError):
            flight.load_last_explain()


# ----------------------------------------------------------------------
# bounded MemorySink (satellite)
# ----------------------------------------------------------------------
class TestMemorySinkBound:
    def test_default_capacity_bounded(self):
        sink = obs.MemorySink()
        assert sink.capacity == obs.MemorySink.DEFAULT_CAPACITY

    def test_cap_evicts_oldest_and_counts_drops(self):
        sink = obs.MemorySink(capacity=3)
        for i in range(5):
            sink.write({"kind": "span", "i": i})
        assert [r["i"] for r in sink.records] == [2, 3, 4]
        assert sink.dropped == 2

    def test_unbounded_when_capacity_none(self):
        sink = obs.MemorySink(capacity=None)
        for i in range(5):
            sink.write({"i": i})
        assert len(sink.records) == 5
        assert sink.dropped == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ObservabilityError):
            obs.MemorySink(capacity=0)


# ----------------------------------------------------------------------
# acceptance: a forced planner failure dumps a reconstructable record
# ----------------------------------------------------------------------
def _boom(request_dict):
    raise ModelError("forced failure for the flight recorder")


class TestPlannerFailureDump:
    def test_error_response_dumps_explain(self, tmp_path):
        flight.set_dump_dir(tmp_path)
        pool = SolvePool(executor="inline", solve_fn=_boom)
        with Planner(pool=pool) as planner:
            [response] = planner.plan_batch([tiny_request("doomed")])
        assert not response.ok
        assert response.explain.source == "error"
        assert "forced failure" in response.explain.error

        [dump] = tmp_path.glob("flight-planner-failure-*.jsonl")
        events = flight.read_dump(dump)
        [failed] = [rec for rec in events
                    if rec.get("name") == "planner.serve_failed"]
        record = ExplainRecord.from_dict(failed["attrs"]["explain"])
        assert record.source == "error"
        assert record.fingerprint == response.fingerprint
        assert record.tag == "doomed"
        assert "forced failure" in record.error
        # finish-side records are correlated by the request fingerprint
        # the planner stamped as the flight context
        assert failed["ctx"] == response.fingerprint

    def test_raise_path_also_dumps(self, tmp_path):
        flight.set_dump_dir(tmp_path)
        pool = SolvePool(executor="inline", solve_fn=_boom)
        with Planner(pool=pool) as planner:
            with pytest.raises(ModelError):
                planner.plan(tiny_request("raiser"))
        dumps = list(tmp_path.glob("flight-planner-failure-*.jsonl"))
        assert len(dumps) == 1

    def test_success_records_last_explain(self, tmp_path):
        flight.set_dump_dir(tmp_path)
        with Planner(executor="inline") as planner:
            response = planner.plan(tiny_request("fine"))
        doc = flight.load_last_explain(tmp_path)
        record = ExplainRecord.from_dict(doc)
        assert record.fingerprint == response.fingerprint
        assert record.source == "solve"
        assert not list(tmp_path.glob("flight-planner-failure-*"))


# ----------------------------------------------------------------------
# acceptance: a fleet rollback dumps, and the rollback SLO fires
# ----------------------------------------------------------------------
class CorruptingPlanner(Planner):
    """Claims a finish time the conformance replay cannot reproduce."""

    corrupt = False

    def plan_batch(self, requests, *, timeout=None, warm_from=None):
        responses = super().plan_batch(requests, timeout=timeout,
                                       warm_from=warm_from)
        if self.corrupt:
            for response in responses:
                response.result = dataclasses.replace(
                    response.result,
                    finish_time=response.result.finish_time / 2)
        return responses


class TestFleetRollbackDump:
    def test_rollback_dumps_and_alert_fires(self, tmp_path):
        flight.set_dump_dir(tmp_path)
        topo = topology.ring(4, capacity=1.0)
        source = SyntheticTelemetry(topo, events=[
            LinkEvent(at=1.0, link=(0, 1), factor=0.4)])
        from repro.fleet import FleetJob

        with CorruptingPlanner(executor="inline") as planner:
            daemon = AdaptationController(topo, source, planner)
            daemon.add_job(FleetJob(
                name="a2a", demand=collectives.alltoall(topo.gpus, 1),
                config=TecclConfig(chunk_bytes=1.0)))
            planner.corrupt = True
            for _ in range(4):
                daemon.step()
            stats = daemon.stats()
            status = daemon.status()
        assert stats["rollbacks"] >= 1

        [dump] = tmp_path.glob("flight-fleet-rollback-*.jsonl")
        events = flight.read_dump(dump)
        rollbacks = [rec for rec in events
                     if rec.get("name") == "fleet.rollback"]
        assert rollbacks and rollbacks[0]["attrs"]["job"] == "a2a"
        assert rollbacks[0]["attrs"]["reason"] == "conformance"
        # the ring reconstructs the failing replan: its serve spans are
        # correlated to the rollback by the request fingerprint context
        assert any(rec.get("ctx") for rec in events
                   if rec.get("kind") == "span")

        # the rollback counter trips the built-in SLO on the same step,
        # and the newly-firing edge produced an alert dump too
        firing = {alert["name"] for alert in status["alerts"]}
        assert "fleet_rollbacks" in firing
        assert list(tmp_path.glob("flight-alert-*.jsonl"))
