"""CLI tests for the fleet verbs: ``fleet run``, ``fleet status``, and
the hccl_demo-style ``bench-sweep``."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.fleet


class TestBenchSweep:
    def test_sweep_publishes_algbw_busbw(self, tmp_path, capsys):
        output = tmp_path / "BENCH_fleet_sweep.json"
        code = main(["bench-sweep", "--topology", "dgx1",
                     "--collective", "allgather",
                     "--min-size", "4096", "--max-size", "16384",
                     "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "algbw GB/s" in out and "busbw GB/s" in out
        doc = json.loads(output.read_text(encoding="utf-8"))
        assert doc["collective"] == "allgather"
        sizes = [row["size_bytes"] for row in doc["rows"]]
        assert sizes == [4096, 8192, 16384]  # the 2^k grid
        for row in doc["rows"]:
            n = doc["gpus"]
            assert row["algbw"] == pytest.approx(
                row["size_bytes"] / row["finish_time"])
            assert row["busbw"] == pytest.approx(
                row["algbw"] * (n - 1) / n)

    def test_allreduce_busbw_factor(self, tmp_path):
        output = tmp_path / "sweep.json"
        code = main(["bench-sweep", "--topology", "dgx1",
                     "--collective", "allreduce",
                     "--min-size", "8192", "--max-size", "8192",
                     "--output", str(output)])
        assert code == 0
        doc = json.loads(output.read_text(encoding="utf-8"))
        row = doc["rows"][0]
        n = doc["gpus"]
        assert row["busbw"] == pytest.approx(
            row["algbw"] * 2 * (n - 1) / n)

    def test_bad_size_range_rejected(self, capsys):
        assert main(["bench-sweep", "--topology", "dgx1",
                     "--min-size", "5000", "--max-size", "6000"]) == 1
        assert "power-of-two" in capsys.readouterr().err


class TestFleetRunStatus:
    def test_run_adapts_and_status_renders(self, tmp_path, capsys):
        status_file = tmp_path / "fleet.json"
        code = main(["fleet", "run", "--topology", "dgx1",
                     "--jobs", "alltoall", "--chunk-size", "1e6",
                     "--steps", "5", "--degrade", "0,1,0.4,2",
                     "--status-file", str(status_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "admitted     : alltoall#0" in out
        assert "replan" in out
        assert "rollbacks" in out

        doc = json.loads(status_file.read_text(encoding="utf-8"))
        assert doc["stats"]["transitions"] >= 1
        assert doc["stats"]["replans"] >= 1
        assert doc["stats"]["rollbacks"] == 0
        active = doc["registry"]["active"]
        assert all(entry["conformance_ok"] for entry in active.values())

        code = main(["fleet", "status", "--status-file", str(status_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded" in out
        assert "alltoall#0" in out

    def test_link_failure_scenario(self, capsys):
        # dgx1 survives losing one NVLink pair: the daemon must replan
        code = main(["fleet", "run", "--topology", "dgx1",
                     "--jobs", "alltoall", "--chunk-size", "1e6",
                     "--steps", "4",
                     "--fail", "0,1,1", "--fail", "1,0,1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 down" in out or "2 down" in out

    def test_bad_degrade_spec_rejected(self, capsys):
        assert main(["fleet", "run", "--topology", "dgx1",
                     "--degrade", "0,1"]) == 1
        assert "SRC,DST,FACTOR,AT" in capsys.readouterr().err
        # wrong types degrade to the CLI error contract, not a traceback
        assert main(["fleet", "run", "--topology", "dgx1",
                     "--degrade", "0,1,half,2"]) == 1
        assert "bad --degrade" in capsys.readouterr().err
        assert main(["fleet", "run", "--topology", "dgx1",
                     "--fail", "0,x,1"]) == 1
        assert "bad --fail" in capsys.readouterr().err

    def test_wal_recover_resumes_the_fleet(self, tmp_path, capsys):
        wal = tmp_path / "fleet.wal"
        status_file = tmp_path / "fleet.json"
        code = main(["fleet", "run", "--topology", "dgx1",
                     "--jobs", "alltoall", "--chunk-size", "1e6",
                     "--steps", "4", "--degrade", "0,1,0.4,2",
                     "--wal", str(wal), "--status-file", str(status_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "wal          :" in out and "generation 1" in out

        # a second generation recovers the schedule instead of replanning
        code = main(["fleet", "run", "--topology", "dgx1",
                     "--jobs", "alltoall", "--chunk-size", "1e6",
                     "--steps", "1", "--wal", str(wal),
                     "--recover", "--takeover",
                     "--status-file", str(status_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "generation 2" in out
        assert "recovered    : 1 schedule(s)" in out
        assert "resumed      : alltoall#0" in out

        code = main(["fleet", "status", "--status-file", str(status_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "recovery     : generation 2" in out
        assert "wal          :" in out

    def test_recover_with_dropped_incumbent_replans(self, tmp_path,
                                                    capsys):
        # a recovered incumbent that fails conformance re-vetting is
        # dropped; the run must then *replan* the still-admitted job
        # rather than crash trying to re-admit it
        import dataclasses

        from repro.fleet import WriteAheadLog
        from repro.fleet.controller import RegistryEntry

        wal = tmp_path / "fleet.wal"
        code = main(["fleet", "run", "--topology", "dgx1",
                     "--jobs", "alltoall", "--chunk-size", "1e6",
                     "--steps", "1", "--wal", str(wal)])
        assert code == 0
        capsys.readouterr()

        # forge the durable schedule: claim a finish time the conformance
        # replay cannot reproduce, so recovery must drop the incumbent
        records = WriteAheadLog(wal).load().records
        wal.unlink()
        forged = WriteAheadLog(wal)
        for record in records:
            if record["kind"] == "propose":
                entry = RegistryEntry.from_wire(record["data"])
                entry.result = dataclasses.replace(
                    entry.result,
                    finish_time=entry.result.finish_time / 2)
                forged.append("propose", entry.to_wire())
            else:
                forged.append(record["kind"], record["data"])
        forged.close()

        code = main(["fleet", "run", "--topology", "dgx1",
                     "--jobs", "alltoall", "--chunk-size", "1e6",
                     "--steps", "1", "--wal", str(wal),
                     "--recover", "--takeover"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered    : 0 schedule(s), 1 dropped" in out
        assert "replanned    : alltoall#0" in out
        assert "resumed" not in out and "admitted" not in out

    def test_recover_without_wal_rejected(self, capsys):
        assert main(["fleet", "run", "--topology", "dgx1",
                     "--recover"]) == 1
        assert "--recover needs --wal" in capsys.readouterr().err

    def test_takeover_required_while_holder_lives(self, tmp_path, capsys):
        # same process = same pid = still the holder, so simulate another
        # live daemon by planting init's pid in the lease
        from repro.fleet import atomic_write_json

        wal = tmp_path / "fleet.wal"
        atomic_write_json(str(wal) + ".lease", {"generation": 3, "pid": 1})
        assert main(["fleet", "run", "--topology", "dgx1",
                     "--jobs", "alltoall", "--chunk-size", "1e6",
                     "--steps", "1", "--wal", str(wal)]) == 1
        assert "--takeover" in capsys.readouterr().err

    def test_unwritable_status_file_rejected(self, capsys):
        assert main(["fleet", "run", "--topology", "dgx1",
                     "--jobs", "alltoall", "--chunk-size", "1e6",
                     "--steps", "1",
                     "--status-file", "/nonexistent/dir/f.json"]) == 1
        assert "cannot write --status-file" in capsys.readouterr().err

    def test_unwritable_output_rejected(self, capsys):
        assert main(["bench-sweep", "--topology", "dgx1",
                     "--min-size", "4096", "--max-size", "4096",
                     "--output", "/proc/nope/out.json"]) == 1
        assert "cannot write --output" in capsys.readouterr().err

    def test_status_missing_file_rejected(self, capsys):
        assert main(["fleet", "status",
                     "--status-file", "/nonexistent/f.json"]) == 1
        assert "cannot read" in capsys.readouterr().err
