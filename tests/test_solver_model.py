"""Unit tests for the Model → HiGHS compile-and-solve path."""

import pytest

from repro.errors import InfeasibleError, ModelError
from repro.solver import (Model, Sense, SolverOptions, SolveStatus, VarType,
                          quicksum)


class TestLpSolve:
    def test_simple_maximise(self):
        m = Model(sense=Sense.MAXIMIZE)
        x = m.add_var(ub=4)
        y = m.add_var(ub=4)
        m.add_constr(x + 2 * y <= 6)
        m.set_objective(x + y)
        res = m.solve()
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(5.0)
        assert res.value(x) == pytest.approx(4.0)

    def test_simple_minimise(self):
        m = Model()
        x = m.add_var(lb=1)
        y = m.add_var(lb=2)
        m.set_objective(x + y)
        res = m.solve()
        assert res.objective == pytest.approx(3.0)

    def test_equality_constraint(self):
        m = Model(sense=Sense.MAXIMIZE)
        x = m.add_var(ub=10)
        y = m.add_var(ub=10)
        m.add_constr(x + y == 7)
        m.set_objective(x)
        res = m.solve()
        assert res.value(x) == pytest.approx(7.0)
        assert res.value(y) == pytest.approx(0.0)

    def test_infeasible(self):
        m = Model()
        x = m.add_var(ub=1)
        m.add_constr(x >= 2)
        m.set_objective(x)
        res = m.solve()
        assert res.status is SolveStatus.INFEASIBLE
        with pytest.raises(InfeasibleError):
            res.require_solution()

    def test_unbounded(self):
        m = Model(sense=Sense.MAXIMIZE)
        x = m.add_var()
        m.set_objective(x)
        res = m.solve()
        assert res.status in (SolveStatus.UNBOUNDED, SolveStatus.ERROR)

    def test_expression_evaluation(self):
        m = Model(sense=Sense.MAXIMIZE)
        x = m.add_var(ub=3)
        m.set_objective(x)
        res = m.solve()
        assert res.value(2 * x + 1) == pytest.approx(7.0)


class TestMilpSolve:
    def test_knapsack(self):
        m = Model(sense=Sense.MAXIMIZE)
        values = [10, 13, 7]
        weights = [3, 4, 2]
        xs = [m.add_var(vtype=VarType.BINARY) for _ in range(3)]
        m.add_constr(quicksum(w * x for w, x in zip(weights, xs)) <= 6)
        m.set_objective(quicksum(v * x for v, x in zip(values, xs)))
        res = m.solve()
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(20.0)  # items 1 and 2

    def test_integer_rounding_matters(self):
        m = Model(sense=Sense.MAXIMIZE)
        x = m.add_var(vtype=VarType.INTEGER, ub=10)
        m.add_constr(2 * x <= 7)
        m.set_objective(x)
        res = m.solve()
        assert res.objective == pytest.approx(3.0)

    def test_mip_gap_early_stop_accepts_incumbent(self):
        # with a huge allowed gap any incumbent is acceptable
        m = Model(sense=Sense.MAXIMIZE)
        xs = [m.add_var(vtype=VarType.BINARY) for _ in range(12)]
        m.add_constr(quicksum(xs) <= 6)
        m.set_objective(quicksum((i + 1) * x for i, x in enumerate(xs)))
        res = m.solve(SolverOptions(mip_gap=0.5))
        assert res.status in (SolveStatus.OPTIMAL, SolveStatus.GAP_LIMIT)
        assert res.objective is not None
        # optimum is 7+8+...+12 = 57; incumbent must be within 50%
        assert res.objective >= 57 * 0.5

    def test_milp_infeasible(self):
        m = Model()
        x = m.add_var(vtype=VarType.BINARY)
        y = m.add_var(vtype=VarType.BINARY)
        m.add_constr(x + y >= 3)
        m.set_objective(x)
        assert m.solve().status is SolveStatus.INFEASIBLE


class TestModelHygiene:
    def test_no_vars_raises(self):
        with pytest.raises(ModelError):
            Model().solve()

    def test_foreign_variable_rejected(self):
        # ownership is index-based: an out-of-range index is always caught
        m1, m2 = Model(), Model()
        m1.add_var()
        x2 = m1.add_var()
        m2.add_var()
        with pytest.raises(ModelError):
            m2.add_constr(x2 <= 1)

    def test_add_constr_requires_constraint(self):
        m = Model()
        x = m.add_var()
        with pytest.raises(ModelError):
            m.add_constr(x)  # type: ignore[arg-type]

    def test_add_vars_names(self):
        m = Model()
        vs = m.add_vars([(0, 1), (0, 2)], name="F")
        assert set(vs) == {(0, 1), (0, 2)}
        assert vs[(0, 1)].name == "F[(0, 1)]"

    def test_summary_counts(self):
        m = Model("demo")
        m.add_var(vtype=VarType.BINARY)
        m.add_var()
        text = m.summary()
        assert "2 vars" in text and "1 integer" in text

    def test_options_validation(self):
        with pytest.raises(ModelError):
            SolverOptions(time_limit=-1)
        with pytest.raises(ModelError):
            SolverOptions(mip_gap=1.5)
        with pytest.raises(ModelError):
            SolverOptions(node_limit=0)

    def test_options_to_scipy(self):
        opts = SolverOptions(time_limit=10, mip_gap=0.3, node_limit=5)
        payload = opts.to_scipy()
        assert payload["time_limit"] == 10.0
        assert payload["mip_rel_gap"] == 0.3
        assert payload["node_limit"] == 5

    def test_lp_method_validation(self):
        with pytest.raises(ModelError):
            SolverOptions(lp_method="simplex")
        assert SolverOptions(lp_method="highs-ipm").lp_method == "highs-ipm"

    def test_lp_method_auto_switches_on_size(self):
        opts = SolverOptions()
        assert opts.resolve_lp_method(100) == "highs"
        assert opts.resolve_lp_method(10 ** 6) == "highs-ipm"
        forced = SolverOptions(lp_method="highs-ds")
        assert forced.resolve_lp_method(10 ** 6) == "highs-ds"

    def test_forced_ipm_still_solves(self):
        m = Model(sense=Sense.MAXIMIZE)
        x = m.add_var(ub=4)
        y = m.add_var(ub=4)
        m.add_constr(x + 2 * y <= 6)
        m.set_objective(x + y)
        res = m.solve(SolverOptions(lp_method="highs-ipm"))
        assert res.objective == pytest.approx(5.0, abs=1e-6)

    def test_stats_populated(self):
        m = Model()
        x = m.add_var(ub=1)
        m.add_constr(x <= 1)
        m.set_objective(x)
        res = m.solve()
        assert res.stats["num_vars"] == 1
        assert res.stats["num_constraints"] == 1
