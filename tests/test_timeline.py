"""Tests for the ASCII schedule timeline renderer."""

import pytest

from repro import collectives, topology
from repro.analysis.timeline import occupancy_histogram, render_timeline
from repro.core import TecclConfig, solve_milp
from repro.core.schedule import Schedule, Send
from repro.errors import ScheduleError


def send(epoch, src, dst, source=0, chunk=0):
    return Send(epoch=epoch, source=source, chunk=chunk, src=src, dst=dst)


@pytest.fixture
def small_schedule():
    return Schedule(sends=[send(0, 0, 1), send(1, 1, 2),
                           send(1, 0, 1, chunk=1)],
                    tau=1.0, chunk_bytes=1.0, num_epochs=4)


class TestRenderTimeline:
    def test_grid_contains_all_links_and_chunks(self, small_schedule):
        text = render_timeline(small_schedule)
        assert "0->1" in text and "1->2" in text
        assert "0.0" in text and "0.1" in text

    def test_idle_cells_are_dots(self, small_schedule):
        lines = render_timeline(small_schedule).splitlines()
        row_12 = next(l for l in lines if l.startswith("1->2"))
        assert "." in row_12

    def test_collision_marker(self):
        sched = Schedule(sends=[send(0, 0, 1), send(0, 0, 1, chunk=1)],
                         tau=1.0, chunk_bytes=1.0, num_epochs=2)
        assert "*2" in render_timeline(sched)

    def test_truncation_marker(self):
        sched = Schedule(sends=[send(0, 0, 1), send(99, 0, 1, chunk=1)],
                         tau=1.0, chunk_bytes=1.0, num_epochs=120)
        text = render_timeline(sched, max_epochs=8)
        assert "truncated" in text

    def test_link_filter(self, small_schedule):
        text = render_timeline(small_schedule, links=[(0, 1)])
        assert "0->1" in text and "1->2" not in text

    def test_unknown_filter_rejected(self, small_schedule):
        with pytest.raises(ScheduleError):
            render_timeline(small_schedule, links=[(5, 6)])

    def test_empty_schedule_rejected(self):
        empty = Schedule(sends=[], tau=1.0, chunk_bytes=1.0, num_epochs=1)
        with pytest.raises(ScheduleError):
            render_timeline(empty)

    def test_renders_solver_output(self, dgx1):
        demand = collectives.allgather(dgx1.gpus, 1)
        out = solve_milp(dgx1, demand,
                         TecclConfig(chunk_bytes=25e3, num_epochs=10))
        text = render_timeline(out.schedule)
        # every used link appears as a row
        assert len([l for l in text.splitlines() if "->" in l]) == \
            len(out.schedule.links_used())


class TestOccupancy:
    def test_counts(self, small_schedule):
        counts = occupancy_histogram(small_schedule)
        assert counts[(0, 1)] == 2
        assert counts[(1, 2)] == 1
