"""Unit tests for chunk-size arithmetic (output buffer ↔ chunk geometry)."""

import pytest

from repro.collectives import (algorithmic_bandwidth, allgather_plan,
                               alltoall_plan, from_transfer_size)
from repro.errors import DemandError


class TestAllgatherPlan:
    def test_geometry(self):
        plan = allgather_plan(num_gpus=8, output_buffer_bytes=8e9,
                              chunks_per_gpu=4)
        assert plan.transfer_bytes == pytest.approx(1e9)
        assert plan.chunk_bytes == pytest.approx(0.25e9)
        assert plan.chunks_per_source == 4
        assert plan.output_buffer_bytes == 8e9

    def test_single_chunk(self):
        plan = allgather_plan(2, 1e6)
        assert plan.chunk_bytes == pytest.approx(0.5e6)

    def test_validation(self):
        with pytest.raises(DemandError):
            allgather_plan(1, 1e6)
        with pytest.raises(DemandError):
            allgather_plan(4, 0)
        with pytest.raises(DemandError):
            allgather_plan(4, 1e6, 0)


class TestAlltoallPlan:
    def test_geometry(self):
        plan = alltoall_plan(num_gpus=4, output_buffer_bytes=4e6,
                             chunks_per_pair=2)
        assert plan.chunk_bytes == pytest.approx(0.5e6)
        assert plan.chunks_per_source == 6  # 3 peers x 2 chunks
        assert plan.transfer_bytes == pytest.approx(3e6)

    def test_paper_notation_footnote(self):
        # Table 7 caption: "chunks" = chunks per destination, so the source
        # emits (N-1) x chunks distinct chunks in our ids.
        plan = alltoall_plan(8, 8e6, chunks_per_pair=1)
        assert plan.chunks_per_source == 7


class TestTransferSizeAxis:
    def test_allgather_axis(self):
        plan = from_transfer_size(4, 1e6, "allgather", chunks=2)
        assert plan.transfer_bytes == pytest.approx(1e6)
        assert plan.output_buffer_bytes == pytest.approx(4e6)

    def test_alltoall_axis(self):
        plan = from_transfer_size(4, 3e6, "alltoall", chunks=1)
        # transfer = per-pair x (N-1) -> per-pair = 1e6, output = N x per-pair
        assert plan.transfer_bytes == pytest.approx(3e6)
        assert plan.output_buffer_bytes == pytest.approx(4e6)

    def test_unknown_collective(self):
        with pytest.raises(DemandError):
            from_transfer_size(4, 1e6, "allfoo")


class TestAlgorithmicBandwidth:
    def test_definition(self):
        assert algorithmic_bandwidth(2e9, 0.5) == pytest.approx(4e9)

    def test_rejects_zero_time(self):
        with pytest.raises(DemandError):
            algorithmic_bandwidth(1e9, 0.0)


class TestSplitMergeInvariants:
    """Chunk-count conservation and byte-total preservation (randomized)."""

    def test_split_scales_count_and_conserves_bytes(self):
        import random

        rng = random.Random(7)
        for _ in range(200):
            gpus = rng.randint(2, 32)
            buffer_bytes = rng.uniform(1e3, 1e10)
            chunks = rng.randint(1, 8)
            factor = rng.randint(1, 6)
            maker = rng.choice([allgather_plan, alltoall_plan])
            plan = maker(gpus, buffer_bytes, chunks)
            fine = plan.split(factor)
            assert fine.chunks_per_source == plan.chunks_per_source * factor
            assert fine.chunk_bytes * fine.chunks_per_source == pytest.approx(
                plan.chunk_bytes * plan.chunks_per_source)
            assert fine.output_buffer_bytes == plan.output_buffer_bytes
            assert fine.transfer_bytes == plan.transfer_bytes

    def test_split_then_merge_roundtrips(self):
        import random

        rng = random.Random(11)
        for _ in range(200):
            gpus = rng.randint(2, 16)
            plan = allgather_plan(gpus, rng.uniform(1.0, 1e9),
                                  rng.randint(1, 5))
            factor = rng.randint(1, 9)
            back = plan.split(factor).merged(factor)
            assert back.chunks_per_source == plan.chunks_per_source
            assert back.chunk_bytes == pytest.approx(plan.chunk_bytes)
            assert back.output_buffer_bytes == plan.output_buffer_bytes
            assert back.transfer_bytes == plan.transfer_bytes

    def test_total_transfer_equals_chunk_total(self):
        # the invariant the solver relies on: scheduling units sum to the
        # bytes each GPU contributes, for both collective geometries
        for gpus in (2, 3, 8):
            for chunks in (1, 2, 5):
                ag = allgather_plan(gpus, 6e6, chunks)
                assert ag.chunk_bytes * ag.chunks_per_source \
                    == pytest.approx(ag.transfer_bytes)
                a2a = alltoall_plan(gpus, 6e6, chunks)
                assert a2a.chunk_bytes * a2a.chunks_per_source \
                    == pytest.approx(a2a.transfer_bytes)

    def test_merge_rejects_nondividing_count(self):
        plan = allgather_plan(4, 1e6, chunks_per_gpu=3)
        with pytest.raises(DemandError):
            plan.merged(2)

    def test_rejects_bad_factors(self):
        plan = allgather_plan(4, 1e6)
        with pytest.raises(DemandError):
            plan.split(0)
        with pytest.raises(DemandError):
            plan.merged(0)
