"""Unit tests for chunk-size arithmetic (output buffer ↔ chunk geometry)."""

import pytest

from repro.collectives import (algorithmic_bandwidth, allgather_plan,
                               alltoall_plan, from_transfer_size)
from repro.errors import DemandError


class TestAllgatherPlan:
    def test_geometry(self):
        plan = allgather_plan(num_gpus=8, output_buffer_bytes=8e9,
                              chunks_per_gpu=4)
        assert plan.transfer_bytes == pytest.approx(1e9)
        assert plan.chunk_bytes == pytest.approx(0.25e9)
        assert plan.chunks_per_source == 4
        assert plan.output_buffer_bytes == 8e9

    def test_single_chunk(self):
        plan = allgather_plan(2, 1e6)
        assert plan.chunk_bytes == pytest.approx(0.5e6)

    def test_validation(self):
        with pytest.raises(DemandError):
            allgather_plan(1, 1e6)
        with pytest.raises(DemandError):
            allgather_plan(4, 0)
        with pytest.raises(DemandError):
            allgather_plan(4, 1e6, 0)


class TestAlltoallPlan:
    def test_geometry(self):
        plan = alltoall_plan(num_gpus=4, output_buffer_bytes=4e6,
                             chunks_per_pair=2)
        assert plan.chunk_bytes == pytest.approx(0.5e6)
        assert plan.chunks_per_source == 6  # 3 peers x 2 chunks
        assert plan.transfer_bytes == pytest.approx(3e6)

    def test_paper_notation_footnote(self):
        # Table 7 caption: "chunks" = chunks per destination, so the source
        # emits (N-1) x chunks distinct chunks in our ids.
        plan = alltoall_plan(8, 8e6, chunks_per_pair=1)
        assert plan.chunks_per_source == 7


class TestTransferSizeAxis:
    def test_allgather_axis(self):
        plan = from_transfer_size(4, 1e6, "allgather", chunks=2)
        assert plan.transfer_bytes == pytest.approx(1e6)
        assert plan.output_buffer_bytes == pytest.approx(4e6)

    def test_alltoall_axis(self):
        plan = from_transfer_size(4, 3e6, "alltoall", chunks=1)
        # transfer = per-pair x (N-1) -> per-pair = 1e6, output = N x per-pair
        assert plan.transfer_bytes == pytest.approx(3e6)
        assert plan.output_buffer_bytes == pytest.approx(4e6)

    def test_unknown_collective(self):
        with pytest.raises(DemandError):
            from_transfer_size(4, 1e6, "allfoo")


class TestAlgorithmicBandwidth:
    def test_definition(self):
        assert algorithmic_bandwidth(2e9, 0.5) == pytest.approx(4e9)

    def test_rejects_zero_time(self):
        with pytest.raises(DemandError):
            algorithmic_bandwidth(1e9, 0.0)
