"""Tests for the topology design search (toposearch)."""

import pytest

from repro import collectives, topology
from repro.core import TecclConfig
from repro.errors import InfeasibleError, ModelError
from repro.toposearch import (DesignSpec, evaluate_topology, greedy_augment,
                              local_search, random_topology,
                              rank_link_upgrades)


def cfg(num_epochs=None, **kwargs):
    return TecclConfig(chunk_bytes=1.0, num_epochs=num_epochs, **kwargs)


class TestDesignSpec:
    def test_budget_default_is_ring_plus_slack(self):
        spec = DesignSpec(num_gpus=4, capacity=1.0)
        assert spec.budget == 8

    def test_too_small_budget_rejected(self):
        with pytest.raises(ModelError):
            DesignSpec(num_gpus=4, capacity=1.0, link_budget=3)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ModelError):
            DesignSpec(num_gpus=4, capacity=0.0)

    def test_one_gpu_rejected(self):
        with pytest.raises(ModelError):
            DesignSpec(num_gpus=1, capacity=1.0)


class TestRandomTopology:
    def test_strongly_connected(self):
        spec = DesignSpec(num_gpus=5, capacity=1.0, link_budget=10)
        topo = random_topology(spec, seed=1)
        topo.validate()  # raises if not strongly connected

    def test_respects_budget(self):
        spec = DesignSpec(num_gpus=5, capacity=1.0, link_budget=8)
        topo = random_topology(spec, seed=2)
        assert len(topo.links) <= 8

    def test_deterministic_per_seed(self):
        spec = DesignSpec(num_gpus=5, capacity=1.0)
        a = random_topology(spec, seed=9)
        b = random_topology(spec, seed=9)
        assert sorted(a.links) == sorted(b.links)


class TestEvaluateTopology:
    def test_ring_alltoall_scores_finite(self, ring4, atoa_ring4):
        score = evaluate_topology(ring4, atoa_ring4, cfg(12))
        assert 0 < score < float("inf")

    def test_infeasible_scores_infinite(self, ring4, atoa_ring4):
        # horizon of 1 epoch cannot finish a 4-ring alltoall
        score = evaluate_topology(ring4, atoa_ring4, cfg(1))
        assert score == float("inf")

    def test_more_capacity_never_worse(self, ring4, atoa_ring4):
        from repro.topology.transforms import scale_capacity

        slow = evaluate_topology(ring4, atoa_ring4, cfg(12))
        fast = evaluate_topology(scale_capacity(ring4, 2.0), atoa_ring4,
                                 cfg(12))
        assert fast <= slow + 1e-9


class TestLocalSearch:
    def test_search_never_degrades(self):
        spec = DesignSpec(num_gpus=4, capacity=1.0, link_budget=8)
        demand = collectives.alltoall(list(range(4)), 1)
        result = local_search(spec, demand, cfg(10), seed=0, max_iters=6,
                              patience=3)
        assert result.history[-1] <= result.history[0] + 1e-12
        assert result.evaluations <= 6

    def test_history_is_monotone(self):
        spec = DesignSpec(num_gpus=4, capacity=1.0, link_budget=8)
        demand = collectives.alltoall(list(range(4)), 1)
        result = local_search(spec, demand, cfg(10), seed=1, max_iters=6)
        for earlier, later in zip(result.history, result.history[1:]):
            assert later <= earlier + 1e-12

    def test_explicit_start(self, ring4):
        spec = DesignSpec(num_gpus=4, capacity=1.0, link_budget=8)
        demand = collectives.alltoall(list(range(4)), 1)
        result = local_search(spec, demand, cfg(10), seed=0, max_iters=3,
                              start=ring4)
        assert result.finish_time <= evaluate_topology(
            ring4, demand, cfg(10)) + 1e-12

    def test_bad_iters_rejected(self):
        spec = DesignSpec(num_gpus=4, capacity=1.0)
        demand = collectives.alltoall(list(range(4)), 1)
        with pytest.raises(ModelError):
            local_search(spec, demand, cfg(10), max_iters=0)


class TestGreedyAugment:
    def test_adding_links_helps_line_broadcast(self):
        """A 4-line broadcast improves when the search adds a shortcut
        from the root past the chain (0→3 halves the critical path)."""
        base = topology.line(4, capacity=1.0)
        spec = DesignSpec(num_gpus=4, capacity=1.0)
        demand = collectives.broadcast(0, list(range(4)), 1)
        result = greedy_augment(base, spec, demand, cfg(8), extra_links=1)
        baseline = evaluate_topology(base, demand, cfg(8))
        assert result.finish_time < baseline
        assert len(result.topology.links) == len(base.links) + 1

    def test_alltoall_never_degrades(self):
        """Symmetric ALLTOALL on a line: single directed additions cannot
        beat the in/out-degree bound at the chain ends, and greedy must
        recognise that and add nothing."""
        base = topology.line(4, capacity=1.0)
        spec = DesignSpec(num_gpus=4, capacity=1.0)
        demand = collectives.alltoall(list(range(4)), 1)
        result = greedy_augment(base, spec, demand, cfg(12), extra_links=2)
        baseline = evaluate_topology(base, demand, cfg(12))
        assert result.finish_time <= baseline + 1e-12

    def test_stops_when_nothing_helps(self, ring4):
        # a complete graph cannot be augmented
        full = topology.full_mesh(3, capacity=1.0)
        spec = DesignSpec(num_gpus=3, capacity=1.0)
        demand = collectives.alltoall(list(range(3)), 1)
        result = greedy_augment(full, spec, demand, cfg(8), extra_links=2)
        assert sorted(result.topology.links) == sorted(full.links)

    def test_zero_budget_rejected(self, ring4):
        spec = DesignSpec(num_gpus=4, capacity=1.0)
        demand = collectives.alltoall(list(range(4)), 1)
        with pytest.raises(ModelError):
            greedy_augment(ring4, spec, demand, cfg(10), extra_links=0)


class TestRankLinkUpgrades:
    def test_bottleneck_ranks_first(self):
        """On a line, the middle links carry all transit traffic — upgrading
        one of them must beat upgrading nothing-critical."""
        topo = topology.line(3, capacity=1.0)
        demand = collectives.alltoall(list(range(3)), 1)
        options = rank_link_upgrades(topo, demand, cfg(10), factor=4.0)
        assert len(options) == len(topo.links)
        assert options[0].improvement >= options[-1].improvement

    def test_improvements_bounded(self, ring4, atoa_ring4):
        options = rank_link_upgrades(ring4, atoa_ring4, cfg(12))
        for option in options:
            assert option.improvement <= 1.0 + 1e-9

    def test_bad_factor_rejected(self, ring4, atoa_ring4):
        with pytest.raises(ModelError):
            rank_link_upgrades(ring4, atoa_ring4, cfg(12), factor=1.0)

    def test_infeasible_baseline_raises(self, ring4, atoa_ring4):
        with pytest.raises(InfeasibleError):
            rank_link_upgrades(ring4, atoa_ring4, cfg(1))
