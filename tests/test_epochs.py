"""Unit tests for epoch duration, discretisation and horizon estimation."""

import pytest

from repro.collectives import allgather, alltoall
from repro.core import TecclConfig
from repro.core.config import EpochMode
from repro.core.epochs import (algorithm1_num_epochs, build_epoch_plan,
                               candidate_completion_times,
                               earliest_arrival_epochs, epoch_duration,
                               min_time_seconds, path_based_epoch_bound,
                               plan_with_tau)
from repro.errors import ModelError
from repro.topology import Topology, line, ndv2, ring


def hetero_topo() -> Topology:
    """Two links: 4 B/s fast and 1 B/s slow."""
    topo = Topology("hetero", num_nodes=3)
    topo.add_bidirectional(0, 1, 4.0)
    topo.add_bidirectional(1, 2, 1.0)
    return topo


class TestEpochDuration:
    def test_slowest_link(self):
        tau = epoch_duration(hetero_topo(), 4.0, EpochMode.SLOWEST_LINK)
        assert tau == pytest.approx(4.0)  # 4 B / 1 B/s

    def test_fastest_link(self):
        tau = epoch_duration(hetero_topo(), 4.0, EpochMode.FASTEST_LINK)
        assert tau == pytest.approx(1.0)  # 4 B / 4 B/s

    def test_multiplier(self):
        tau = epoch_duration(hetero_topo(), 4.0, EpochMode.FASTEST_LINK,
                             multiplier=2.0)
        assert tau == pytest.approx(2.0)

    def test_alpha_stretch_guard(self):
        # alpha = 300 s vs tau = 1 s -> ratio > 200 -> stretch by 5
        topo = Topology("a", num_nodes=2)
        topo.add_bidirectional(0, 1, 1.0, alpha=300.0)
        tau = epoch_duration(topo, 1.0, EpochMode.FASTEST_LINK)
        assert tau == pytest.approx(5.0)

    def test_rejects_bad_chunk(self):
        with pytest.raises(ModelError):
            epoch_duration(hetero_topo(), 0.0)


class TestEpochPlan:
    def test_fastest_mode_occupancy(self):
        cfg = TecclConfig(chunk_bytes=4.0, epoch_mode=EpochMode.FASTEST_LINK)
        plan = build_epoch_plan(hetero_topo(), cfg, num_epochs=8)
        assert plan.occupancy[(0, 1)] == 1
        assert plan.occupancy[(1, 2)] == 4  # slow link: 4 epochs per chunk
        assert plan.cap_chunks[(1, 2)] == pytest.approx(0.25)

    def test_slowest_mode_all_unit(self):
        cfg = TecclConfig(chunk_bytes=4.0, epoch_mode=EpochMode.SLOWEST_LINK)
        plan = build_epoch_plan(hetero_topo(), cfg, num_epochs=8)
        assert all(k == 1 for k in plan.occupancy.values())
        assert plan.cap_chunks[(0, 1)] == pytest.approx(4.0)

    def test_delay_epochs(self):
        topo = Topology("d", num_nodes=2)
        topo.add_bidirectional(0, 1, 1.0, alpha=2.5)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=4)
        assert plan.delay[(0, 1)] == 3  # ceil(2.5 / 1.0)
        assert plan.arrival_offset(0, 1) == 3

    def test_arrival_offset_combines(self):
        cfg = TecclConfig(chunk_bytes=4.0, epoch_mode=EpochMode.FASTEST_LINK)
        topo = hetero_topo()
        topo.links[(1, 2)] = topo.link(1, 2).with_alpha(2.0)
        plan = build_epoch_plan(topo, cfg, num_epochs=8)
        # kappa - 1 = 3 plus ceil(2/1) = 2
        assert plan.arrival_offset(1, 2) == 5

    def test_horizon_and_resize(self):
        plan = plan_with_tau(line(3), 1.0, tau=0.5, num_epochs=4)
        assert plan.horizon == pytest.approx(2.0)
        bigger = plan.with_num_epochs(10)
        assert bigger.num_epochs == 10
        assert bigger.tau == plan.tau

    def test_plan_with_tau_validation(self):
        with pytest.raises(ModelError):
            plan_with_tau(line(3), 1.0, tau=0.0, num_epochs=4)
        with pytest.raises(ModelError):
            plan_with_tau(line(3), 1.0, tau=1.0, num_epochs=0)


class TestReachability:
    def test_earliest_arrival_line(self):
        plan = plan_with_tau(line(4), 1.0, tau=1.0, num_epochs=8)
        dist = earliest_arrival_epochs(line(4), plan)
        assert dist[0][0] == 0
        assert dist[0][3] == 3

    def test_earliest_arrival_with_delay(self):
        topo = Topology("d", num_nodes=3)
        topo.add_bidirectional(0, 1, 1.0, alpha=1.5)
        topo.add_bidirectional(1, 2, 1.0)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=8)
        dist = earliest_arrival_epochs(topo, plan)
        assert dist[0][1] == 3  # Delta = 2, +1
        assert dist[0][2] == 4

    def test_min_time_seconds(self):
        topo = line(3, capacity=2.0, alpha=0.5)
        seconds = min_time_seconds(topo, 4.0)
        assert seconds[0][2] == pytest.approx(2 * (0.5 + 2.0))


class TestHorizonBounds:
    def test_path_bound_dominates_distance(self):
        topo = ring(6, capacity=1.0)
        demand = allgather(topo.gpus, 1)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=1)
        bound = path_based_epoch_bound(topo, demand, plan)
        assert bound >= 3  # farthest node on a 6-ring

    def test_bound_grows_with_demand(self):
        topo = ring(4, capacity=1.0)
        plan = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=1)
        small = path_based_epoch_bound(topo, alltoall(topo.gpus, 1), plan)
        large = path_based_epoch_bound(topo, alltoall(topo.gpus, 4), plan)
        assert large > small

    def test_candidates_geometric(self):
        topo = ring(4, capacity=1.0)
        times = candidate_completion_times(topo, allgather(topo.gpus, 1), 1.0,
                                           count=4)
        assert len(times) == 4
        assert times[1] == pytest.approx(2 * times[0])

    def test_algorithm1_feasible_bound(self):
        topo = ring(4, capacity=1.0)
        demand = alltoall(topo.gpus, 1)
        cfg = TecclConfig(chunk_bytes=1.0)
        bound = algorithm1_num_epochs(topo, demand, cfg)
        # the optimum is 2 epochs; Algorithm 1 must return at least that
        assert bound >= 2

    def test_algorithm1_on_switch_topology(self):
        topo = ndv2(2)
        demand = allgather(topo.gpus[:4], 1)
        cfg = TecclConfig(chunk_bytes=1e6)
        bound = algorithm1_num_epochs(topo, demand, cfg)
        assert bound >= 1


class TestAlphaStretchIteration:
    """The α > 200·τ guard must iterate (PR 4 satellite bugfix)."""

    def _alpha_topo(self, alpha: float) -> Topology:
        topo = Topology("a", num_nodes=2)
        topo.add_bidirectional(0, 1, 1.0, alpha=alpha)
        return topo

    def test_single_stretch_stays_bit_identical(self):
        # 200 < α/τ <= 1000: exactly one 5x stretch, as before the fix
        tau = epoch_duration(self._alpha_topo(300.0), 1.0,
                             EpochMode.FASTEST_LINK)
        assert tau == 1.0 * 5.0  # bit-identical to one multiplication

    def test_extreme_alpha_stretches_until_guard_holds(self):
        # α = 1e6·τ: one stretch (the old behaviour) leaves α = 200_000·τ,
        # still grid-bloating; the guard must iterate until α <= 200·τ
        tau = epoch_duration(self._alpha_topo(1e6), 1.0,
                             EpochMode.FASTEST_LINK)
        assert 1e6 <= 200.0 * tau
        assert tau == 5.0 ** 6  # the minimal power of 5 that satisfies it

    def test_no_stretch_below_ratio(self):
        tau = epoch_duration(self._alpha_topo(199.0), 1.0,
                             EpochMode.FASTEST_LINK)
        assert tau == pytest.approx(1.0)


class TestEpochPlanDocumentValidation:
    """EpochPlan.from_dict must reject malformed documents (PR 4)."""

    def _plan(self):
        cfg = TecclConfig(chunk_bytes=4.0)
        return build_epoch_plan(hetero_topo(), cfg, num_epochs=6)

    def test_roundtrip(self):
        plan = self._plan()
        back = plan.__class__.from_dict(plan.to_dict())
        assert back.tau == plan.tau
        assert back.num_epochs == plan.num_epochs
        assert back.cap_chunks == plan.cap_chunks
        assert back.occupancy == plan.occupancy
        assert back.delay == plan.delay

    def test_duplicate_links_rejected(self):
        doc = self._plan().to_dict()
        doc["links"].append(list(doc["links"][0]))
        with pytest.raises(ModelError, match="duplicate"):
            self._plan().__class__.from_dict(doc)

    def test_nan_capacity_rejected(self):
        doc = self._plan().to_dict()
        doc["links"][0][2] = float("nan")
        with pytest.raises(ModelError, match="capacity"):
            self._plan().__class__.from_dict(doc)

    def test_negative_capacity_rejected(self):
        doc = self._plan().to_dict()
        doc["links"][0][2] = -1.0
        with pytest.raises(ModelError, match="capacity"):
            self._plan().__class__.from_dict(doc)

    def test_zero_occupancy_rejected(self):
        doc = self._plan().to_dict()
        doc["links"][0][3] = 0
        with pytest.raises(ModelError, match="occupancy"):
            self._plan().__class__.from_dict(doc)

    def test_negative_delay_rejected(self):
        doc = self._plan().to_dict()
        doc["links"][0][4] = -1
        with pytest.raises(ModelError, match="delay"):
            self._plan().__class__.from_dict(doc)

    def test_bad_tau_rejected(self):
        doc = self._plan().to_dict()
        doc["tau"] = 0.0
        with pytest.raises(ModelError, match="tau"):
            self._plan().__class__.from_dict(doc)
