"""Integration tests chaining the extension subsystems end to end.

Each test exercises a realistic operator workflow across module borders:
calibrate → synthesize, fail → repair → re-verify, synthesize → lower →
interpret (for baselines too), and design-search over the new fabrics.
"""

import pytest

from repro import collectives, topology
from repro.analysis.calibration import apply_calibration, calibrate_topology
from repro.baselines import blink_broadcast, tree_allgather
from repro.core import TecclConfig, solve_lp, solve_milp, synthesize
from repro.core.decompose import decompose
from repro.core.pop import solve_lp_pop
from repro.core.solve import Method
from repro.failures import FailureEvent, repair_schedule
from repro.msccl import to_msccl_xml, verify_program
from repro.simulate import run_events, verify
from repro.solver import SolverOptions
from repro.toposearch import DesignSpec, greedy_augment


def cfg(num_epochs=None, **kwargs):
    return TecclConfig(chunk_bytes=1.0, num_epochs=num_epochs, **kwargs)


class TestCalibrateThenSynthesize:
    def test_noisy_calibration_preserves_schedule_quality(self):
        """Synthesis on a 2%-noise calibrated fabric must land within a
        few percent of synthesis on the declared fabric."""
        topo = topology.dgx1()
        fits = calibrate_topology(topo, noise=0.02, seed=11)
        calibrated = apply_calibration(topo, fits)
        config = TecclConfig(chunk_bytes=1e6, num_epochs=10,
                             solver=SolverOptions(mip_gap=0.05))
        demand = collectives.allgather(topo.gpus, 1)
        truth = solve_milp(topo, demand, config)
        fitted = solve_milp(calibrated, demand, config)
        # execute the *fitted* schedule on the *true* fabric: the real test
        # of calibration quality. Schedules are discrete objects — a small
        # parameter error can tip one routing decision — so the bound is
        # loose; the no-noise round-trip test pins the exact case.
        replayed = run_events(fitted.schedule, topo, demand).finish_time
        baseline = run_events(truth.schedule, topo, demand).finish_time
        assert replayed <= baseline * 1.5


class TestFailRepairVerify:
    def test_repair_result_simulates_clean(self):
        topo = topology.ring(4, capacity=1.0)
        demand = collectives.allgather(topo.gpus, 1)
        outcome = solve_milp(topo, demand, cfg(8))
        repair = repair_schedule(topo, demand, cfg(), outcome.schedule,
                                 outcome.plan, [FailureEvent(1, (0, 1))],
                                 method=Method.MILP)
        assert repair.synthesis is not None
        residual = repair.residual_demand
        report = run_events(repair.synthesis.schedule, repair.degraded,
                            residual)
        for s, c, d in residual.triples():
            assert (s, c, d) in report.delivered

    def test_repaired_program_exports_and_interprets(self):
        topo = topology.ring(4, capacity=1.0)
        demand = collectives.allgather(topo.gpus, 1)
        outcome = solve_milp(topo, demand, cfg(8))
        repair = repair_schedule(topo, demand, cfg(), outcome.schedule,
                                 outcome.plan, [FailureEvent(1, (1, 2))],
                                 method=Method.MILP)
        assert repair.synthesis is not None
        doc = to_msccl_xml(repair.synthesis.schedule, repair.degraded,
                           repair.residual_demand)
        report = verify_program(doc, repair.degraded,
                                repair.residual_demand, chunk_bytes=1.0)
        assert report.fired == report.total


class TestBaselinesThroughMscclPipeline:
    def test_tree_allgather_lowers_and_interprets(self, dgx1):
        config = TecclConfig(chunk_bytes=1e6)
        demand = collectives.allgather(dgx1.gpus, 1)
        schedule = tree_allgather(dgx1, config, chunks_per_gpu=1)
        doc = to_msccl_xml(schedule, dgx1, demand)
        report = verify_program(doc, dgx1, demand, chunk_bytes=1e6)
        assert not report.deadlocked

    def test_blink_broadcast_lowers_and_interprets(self, star3):
        config = TecclConfig(chunk_bytes=1.0)
        demand = collectives.broadcast(0, star3.gpus, 2)
        schedule = blink_broadcast(star3, config, root=0, num_chunks=2)
        doc = to_msccl_xml(schedule, star3, demand)
        report = verify_program(doc, star3, demand, chunk_bytes=1.0)
        assert not report.deadlocked


class TestPopThroughDecompose:
    def test_pop_schedule_decomposes_to_paths(self, ring4, atoa_ring4):
        pop = solve_lp_pop(ring4, atoa_ring4, cfg(12), num_partitions=2)
        strips = decompose(pop.schedule, ring4, pop.plan)
        assert strips
        # every strip walks existing links
        for strip in strips:
            nodes = strip.nodes
            for a, b in zip(nodes, nodes[1:]):
                assert ring4.has_link(a, b)


class TestDesignSearchOnFabrics:
    def test_augmenting_torus_never_degrades(self):
        base = topology.torus2d(2, 3, capacity=1e9, alpha=0.0)
        spec = DesignSpec(num_gpus=6, capacity=1e9)
        demand = collectives.broadcast(0, base.gpus, 1)
        config = TecclConfig(chunk_bytes=1e6, num_epochs=8,
                             solver=SolverOptions(mip_gap=0.05))
        result = greedy_augment(base, spec, demand, config, extra_links=1)
        from repro.toposearch import evaluate_topology

        assert result.finish_time <= evaluate_topology(
            base, demand, config) + 1e-12


class TestMultiTenantSimulation:
    @pytest.mark.slow
    def test_merged_tenants_schedule_simulates_clean(self):
        from repro.collectives import TenantDemand
        from repro.core import synthesize_multi_tenant

        topo = topology.internal1(2)
        gpus = topo.gpus
        tenants = [
            TenantDemand(collectives.allgather(gpus[:2], 1), priority=2.0,
                         name="hot"),
            TenantDemand(collectives.alltoall(gpus[2:], 1), priority=1.0,
                         name="cold"),
        ]
        config = TecclConfig(chunk_bytes=1e6,
                             solver=SolverOptions(time_limit=30))
        result = synthesize_multi_tenant(topo, tenants, config,
                                         method=Method.MILP)
        verify(result.schedule, topo, result.demand_used, result.plan)
