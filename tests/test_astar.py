"""Integration tests for the A* round decomposition (§4.2, Appendix D)."""

import pytest

from repro import collectives, topology
from repro.core import TecclConfig, solve_milp
from repro.core.astar import solve_astar
from repro.core.config import AStarConfig
from repro.errors import ModelError
from repro.simulate import verify


def cfg(**kwargs) -> TecclConfig:
    return TecclConfig(chunk_bytes=1.0, **kwargs)


class TestCorrectness:
    def test_ring_allgather_valid(self, ring4, ag_ring4):
        out = solve_astar(ring4, ag_ring4, cfg(),
                          AStarConfig(epochs_per_round=3))
        report = verify(out.schedule, ring4, ag_ring4, out.plan)
        assert report.ok
        assert out.num_rounds >= 1

    def test_multi_round_line(self):
        """A 6-node line forces multiple rounds at 3 epochs per round."""
        topo = topology.line(6, capacity=1.0)
        demand = collectives.broadcast(0, [5], 1)
        out = solve_astar(topo, demand, cfg(),
                          AStarConfig(epochs_per_round=3))
        assert out.num_rounds >= 2
        verify(out.schedule, topo, demand, out.plan)

    def test_progress_carries_across_rounds(self):
        topo = topology.line(5, capacity=1.0)
        demand = collectives.broadcast(0, [3, 4], 1)
        out = solve_astar(topo, demand, cfg(),
                          AStarConfig(epochs_per_round=2))
        verify(out.schedule, topo, demand, out.plan)
        # the chunk advances at least one hop per round
        assert out.num_rounds <= 5

    def test_with_alpha_delays(self):
        topo = topology.line(4, capacity=1.0, alpha=1.2)
        demand = collectives.broadcast(0, [3], 1)
        out = solve_astar(topo, demand, cfg(),
                          AStarConfig(epochs_per_round=4))
        verify(out.schedule, topo, demand, out.plan)

    def test_switch_topology(self, internal2x2):
        demand = collectives.allgather(internal2x2.gpus, 1)
        out = solve_astar(internal2x2, demand, TecclConfig(chunk_bytes=1e6))
        report = verify(out.schedule, internal2x2, demand, out.plan)
        assert report.ok

    def test_slow_link_occupancy_respected_across_rounds(self):
        """Regression: κ>1 transmissions must not overlap round boundaries.

        Found by hypothesis: a chunk occupying a slow link for 2 epochs at
        the end of round r collided with a round r+1 send on the same link.
        """
        topo = topology.Topology("mixed", num_nodes=3)
        topo.add_bidirectional(0, 1, 2.0)   # fast: sets tau
        topo.add_bidirectional(1, 2, 1.0)   # slow: kappa = 2
        demand = collectives.Demand.from_triples(
            [(0, c, 2) for c in range(4)])
        out = solve_astar(topo, demand, TecclConfig(chunk_bytes=2.0),
                          AStarConfig(epochs_per_round=3, max_rounds=32))
        report = verify(out.schedule, topo, demand, out.plan)
        assert report.ok, report.violations


class TestQualityVsOptimal:
    def test_astar_close_to_milp(self, ring4, ag_ring4):
        """§6.3: the optimal is better, but only by a bounded factor."""
        opt = solve_milp(ring4, ag_ring4, cfg(num_epochs=6))
        approx = solve_astar(ring4, ag_ring4, cfg(),
                             AStarConfig(epochs_per_round=3))
        assert approx.finish_time >= opt.finish_time - 1e-9
        assert approx.finish_time <= 3 * opt.finish_time

    def test_single_round_matches_milp_when_horizon_suffices(
            self, ring4, ag_ring4):
        opt = solve_milp(ring4, ag_ring4, cfg(num_epochs=6))
        one_round = solve_astar(ring4, ag_ring4, cfg(),
                                AStarConfig(epochs_per_round=6))
        assert one_round.num_rounds == 1
        assert one_round.schedule.finish_epoch <= 6
        assert one_round.finish_time <= opt.finish_time * 1.5 + 1e-9


class TestConfig:
    def test_round_must_exceed_link_delay(self):
        topo = topology.line(3, capacity=1.0, alpha=5.0)
        demand = collectives.broadcast(0, [2], 1)
        with pytest.raises(ModelError, match="epochs_per_round"):
            solve_astar(topo, demand, cfg(),
                        AStarConfig(epochs_per_round=2))

    def test_default_round_size_adapts(self):
        topo = topology.line(3, capacity=1.0, alpha=3.0)
        demand = collectives.broadcast(0, [2], 1)
        out = solve_astar(topo, demand, cfg())
        assert out.plan.num_epochs >= 4

    def test_config_validation(self):
        with pytest.raises(ModelError):
            AStarConfig(epochs_per_round=1)
        with pytest.raises(ModelError):
            AStarConfig(gamma=0.0)
        with pytest.raises(ModelError):
            AStarConfig(max_rounds=0)

    def test_round_stats_recorded(self, ring4, ag_ring4):
        out = solve_astar(ring4, ag_ring4, cfg(),
                          AStarConfig(epochs_per_round=3))
        assert len(out.rounds) == out.num_rounds
        assert all(r.solve_time >= 0 for r in out.rounds)
        assert out.solve_time == pytest.approx(
            sum(r.solve_time for r in out.rounds))
