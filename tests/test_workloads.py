"""Tests for the training-job workload generators."""

import pytest

from repro import collectives, topology
from repro.collectives.workloads import (CollectiveCall, bert_like_job,
                                         data_parallel_job, dlrm_like_job,
                                         gradient_buckets, moe_job,
                                         pipeline_job)
from repro.core import TecclConfig, synthesize
from repro.errors import DemandError
from repro.solver import SolverOptions

GPUS = list(range(4))


class TestGradientBuckets:
    def test_sizes_sum_to_model(self):
        sizes = gradient_buckets(340e6, dtype_bytes=2, bucket_bytes=25e6)
        assert sum(sizes) == pytest.approx(680e6)
        assert all(s > 0 for s in sizes)

    def test_all_but_last_full(self):
        sizes = gradient_buckets(100e6, dtype_bytes=2, bucket_bytes=30e6)
        assert sizes[:-1] == [30e6] * (len(sizes) - 1)
        assert sizes[-1] <= 30e6

    def test_small_model_single_bucket(self):
        assert gradient_buckets(1e6, dtype_bytes=4,
                                bucket_bytes=25e6) == [4e6]

    def test_validation(self):
        with pytest.raises(DemandError):
            gradient_buckets(0)


class TestDataParallel:
    def test_rs_ag_pairs_per_bucket(self):
        job = data_parallel_job(GPUS, model_params=30e6, dtype_bytes=2,
                                bucket_bytes=25e6)
        assert len(job.calls) == 2 * 3  # 60 MB → 3 buckets
        names = [c.name for c in job.calls]
        assert names[0].endswith("-rs") and names[1].endswith("-ag")

    def test_chunk_is_per_gpu_shard(self):
        job = data_parallel_job(GPUS, model_params=50e6, dtype_bytes=2,
                                bucket_bytes=100e6)
        [rs, ag] = job.calls
        assert rs.chunk_bytes == pytest.approx(100e6 / 4)

    def test_rs_has_no_copy_ag_has_copy(self):
        job = data_parallel_job(GPUS, model_params=10e6,
                                bucket_bytes=100e6)
        [rs, ag] = job.calls
        assert not rs.demand.benefits_from_copy()
        assert ag.demand.benefits_from_copy()

    def test_bert_preset(self):
        job = bert_like_job(GPUS)
        # 680 MB of gradients in 25 MB buckets → 28 buckets, 56 calls
        assert len(job.calls) == 56
        assert all(c.phase == "backward" for c in job.calls)

    def test_single_gpu_rejected(self):
        with pytest.raises(DemandError):
            data_parallel_job([0], model_params=1e6)


class TestMoe:
    def test_dispatch_and_combine_mirror(self):
        job = moe_job(GPUS, skew=0.3)
        dispatch, combine = job.calls
        fwd = {(s, d) for s, _, d in dispatch.demand.triples()}
        back = {(d, s) for s, _, d in combine.demand.triples()}
        assert fwd == back

    def test_skew_creates_imbalance(self):
        job = moe_job(GPUS, skew=0.8)
        dispatch = job.calls[0].demand
        loads = {}
        for s, c, d in dispatch.triples():
            loads[d] = loads.get(d, 0) + 1
        assert max(loads.values()) > min(loads.values())

    def test_uniform_when_no_skew(self):
        job = moe_job(GPUS, skew=0.0)
        dispatch = job.calls[0].demand
        loads = {}
        for s, c, d in dispatch.triples():
            loads[d] = loads.get(d, 0) + 1
        assert max(loads.values()) == min(loads.values())

    def test_validation(self):
        with pytest.raises(DemandError):
            moe_job(GPUS, skew=1.0)
        with pytest.raises(DemandError):
            moe_job([0])


class TestDlrm:
    def test_alltoall_heavy(self):
        job = dlrm_like_job(GPUS)
        assert [c.name for c in job.calls] == [
            "emb-forward", "emb-backward", "dense-rs", "dense-ag"]
        forward = job.by_phase("forward")
        assert len(forward) == 1
        assert not forward[0].demand.benefits_from_copy()

    def test_total_bytes_positive(self):
        job = dlrm_like_job(GPUS)
        assert job.total_bytes > 0


class TestPipeline:
    def test_stage_streams(self):
        job = pipeline_job([0, 1, 2], num_microbatches=3)
        activations, gradients = job.calls
        assert activations.demand.num_triples == 2 * 3
        # forward goes up the chain, backward down
        assert (0, 0, 1) in activations.demand.triples()
        assert (1, 0, 0) in gradients.demand.triples()

    def test_validation(self):
        with pytest.raises(DemandError):
            pipeline_job([0])
        with pytest.raises(DemandError):
            pipeline_job([0, 1], num_microbatches=0)


class TestWorkloadsSynthesize:
    """Every generated demand must be solvable on a real fabric."""

    def test_moe_dispatch_on_dgx1(self, dgx1):
        job = moe_job(dgx1.gpus, skew=0.5)
        call = job.calls[0]
        config = TecclConfig(chunk_bytes=call.chunk_bytes,
                             solver=SolverOptions(time_limit=30))
        result = synthesize(dgx1, call.demand, config)
        assert result.finish_time > 0

    def test_pipeline_on_line(self):
        topo = topology.line(4, capacity=1e9)
        job = pipeline_job(topo.gpus, num_microbatches=2)
        call = job.calls[0]
        config = TecclConfig(chunk_bytes=call.chunk_bytes)
        result = synthesize(topo, call.demand, config)
        assert result.finish_time > 0

    def test_workload_requires_calls(self):
        from repro.collectives.workloads import Workload

        with pytest.raises(DemandError):
            Workload(name="empty", calls=())

    def test_call_validates_chunk(self):
        with pytest.raises(DemandError):
            CollectiveCall(name="x",
                           demand=collectives.allgather(GPUS, 1),
                           chunk_bytes=0)
