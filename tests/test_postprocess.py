"""Unit tests for the reverse-DFS flow pruning (§3.1's post-processing)."""

import pytest

from repro import collectives, topology
from repro.core import TecclConfig
from repro.core.epochs import plan_with_tau
from repro.core.postprocess import prune_fractional, prune_sends
from repro.core.schedule import FlowSchedule, Schedule, Send
from repro.errors import ScheduleError


def send(epoch, src, dst, source=0, chunk=0):
    return Send(epoch=epoch, source=source, chunk=chunk, src=src, dst=dst)


@pytest.fixture
def line4():
    return topology.line(4, capacity=1.0)


@pytest.fixture
def plan(line4):
    return plan_with_tau(line4, 1.0, tau=1.0, num_epochs=8)


class TestPruneSends:
    def test_drops_useless_send(self, line4, plan):
        demand = collectives.Demand.from_triples([(0, 0, 1)])
        sched = Schedule(
            sends=[send(0, 0, 1), send(1, 1, 2)],  # second hop serves nobody
            tau=1.0, chunk_bytes=1.0, num_epochs=8)
        pruned = prune_sends(sched, demand, line4, plan,
                             delivered_epoch={(0, 0, 1): 0})
        assert pruned.num_sends == 1
        assert pruned.sends[0].dst == 1

    def test_keeps_relay_chain(self, line4, plan):
        demand = collectives.Demand.from_triples([(0, 0, 3)])
        sched = Schedule(
            sends=[send(0, 0, 1), send(1, 1, 2), send(2, 2, 3)],
            tau=1.0, chunk_bytes=1.0, num_epochs=8)
        pruned = prune_sends(sched, demand, line4, plan,
                             delivered_epoch={(0, 0, 3): 2})
        assert pruned.num_sends == 3

    def test_copy_shares_one_provider(self, plan):
        topo = topology.copy_star()
        demand = collectives.broadcast(0, [2, 3], 1)
        p = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=8)
        sched = Schedule(
            sends=[send(0, 0, 1), send(1, 1, 2), send(1, 1, 3),
                   send(2, 0, 1)],  # duplicate injection is useless
            tau=1.0, chunk_bytes=1.0, num_epochs=8)
        pruned = prune_sends(sched, demand, topo, p,
                             delivered_epoch={(0, 0, 2): 1, (0, 0, 3): 1})
        assert pruned.num_sends == 3

    def test_missing_provider_raises(self, line4, plan):
        demand = collectives.Demand.from_triples([(0, 0, 3)])
        sched = Schedule(sends=[send(0, 0, 1)], tau=1.0, chunk_bytes=1.0,
                         num_epochs=8)
        with pytest.raises(ScheduleError, match="never arrives"):
            prune_sends(sched, demand, line4, plan,
                        delivered_epoch={(0, 0, 3): 5})

    def test_switch_relay_must_be_exact(self, plan):
        topo = topology.star(3)  # hub 3 is a switch
        demand = collectives.Demand.from_triples([(0, 0, 1)])
        p = plan_with_tau(topo, 1.0, tau=1.0, num_epochs=8)
        # relay leaves the switch two epochs after arrival: invalid chain
        sched = Schedule(sends=[send(0, 0, 3), send(3, 3, 1)],
                         tau=1.0, chunk_bytes=1.0, num_epochs=8)
        with pytest.raises(ScheduleError, match="switch"):
            prune_sends(sched, demand, topo, p,
                        delivered_epoch={(0, 0, 1): 4})

    def test_respects_buffer_eviction(self, line4, plan):
        demand = collectives.Demand.from_triples([(0, 0, 2)])
        sched = Schedule(
            sends=[send(0, 0, 1), send(5, 1, 2)],
            tau=1.0, chunk_bytes=1.0, num_epochs=8)

        def holds(s, c, n, k):
            return not (n == 1 and k >= 4)  # evicted from node 1 at epoch 4

        with pytest.raises(ScheduleError):
            prune_sends(sched, demand, line4, plan,
                        delivered_epoch={(0, 0, 2): 6},
                        buffer_values=holds)


class TestPruneFractional:
    def test_drops_unread_flow(self, line4, plan):
        flows = {(0, 0, 1, 0): 1.0, (0, 1, 2, 1): 0.5}
        reads = {(0, 1, 0): 1.0}
        fs = FlowSchedule(flows=flows, reads=reads, tau=1.0, chunk_bytes=1.0,
                          num_epochs=8)
        pruned = prune_fractional(fs, line4, plan)
        assert (0, 1, 2, 1) not in pruned.flows
        assert pruned.flows[(0, 0, 1, 0)] == pytest.approx(1.0)

    def test_keeps_partial_flow(self, line4, plan):
        flows = {(0, 0, 1, 0): 1.0}
        reads = {(0, 1, 0): 0.5}  # only half the flow is consumed
        fs = FlowSchedule(flows=flows, reads=reads, tau=1.0, chunk_bytes=1.0,
                          num_epochs=8)
        pruned = prune_fractional(fs, line4, plan)
        assert pruned.flows[(0, 0, 1, 0)] == pytest.approx(0.5)

    def test_hold_capped_by_buffers(self, line4, plan):
        # flow arrives at pool 1 but is read at epoch 3 (pool 4): the hold
        # chain needs B > 0 at pools 1..3
        flows = {(0, 0, 1, 0): 1.0}
        reads = {(0, 1, 3): 1.0}
        fs = FlowSchedule(flows=flows, reads=reads, tau=1.0, chunk_bytes=1.0,
                          num_epochs=8)
        buffers = {(0, 1, k): 1.0 for k in range(1, 4)}
        pruned = prune_fractional(fs, line4, plan, buffers=buffers)
        assert pruned.flows[(0, 0, 1, 0)] == pytest.approx(1.0)

    def test_insufficient_supply_raises(self, line4, plan):
        fs = FlowSchedule(flows={}, reads={(0, 1, 0): 1.0}, tau=1.0,
                          chunk_bytes=1.0, num_epochs=8)
        with pytest.raises(ScheduleError, match="cannot supply"):
            prune_fractional(fs, line4, plan, buffers={})
