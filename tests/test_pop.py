"""Tests for POP-style partitioned LP solving."""

import pytest

from repro import collectives, topology
from repro.core import TecclConfig, solve_lp
from repro.core.pop import (merge_flow_schedules, partition_demand,
                            solve_lp_pop)
from repro.core.schedule import FlowSchedule
from repro.errors import ModelError


def cfg(num_epochs=None, **kwargs):
    return TecclConfig(chunk_bytes=1.0, num_epochs=num_epochs, **kwargs)


class TestPartitionDemand:
    def test_partitions_cover_demand(self):
        demand = collectives.alltoall(list(range(6)), 1)
        parts = partition_demand(demand, 3)
        together = sorted(
            t for p in parts for t in p.demand.triples())
        assert together == demand.triples()

    def test_shares_sum_to_one(self):
        demand = collectives.alltoall(list(range(5)), 2)
        parts = partition_demand(demand, 2)
        assert sum(p.share for p in parts) == pytest.approx(1.0)

    def test_sources_not_split_across_partitions(self):
        demand = collectives.alltoall(list(range(6)), 1)
        parts = partition_demand(demand, 3)
        seen: set[int] = set()
        for p in parts:
            sources = set(p.demand.sources)
            assert not (sources & seen)
            seen |= sources

    def test_balanced_loads(self):
        demand = collectives.alltoall(list(range(8)), 1)
        parts = partition_demand(demand, 4)
        loads = [p.demand.num_triples for p in parts]
        assert max(loads) - min(loads) <= 7  # one source's worth

    def test_deterministic_per_seed(self):
        demand = collectives.alltoall(list(range(6)), 1)
        a = partition_demand(demand, 2, seed=3)
        b = partition_demand(demand, 2, seed=3)
        assert [p.demand.triples() for p in a] == \
            [p.demand.triples() for p in b]

    def test_more_partitions_than_sources_rejected(self):
        demand = collectives.alltoall([0, 1], 1)
        with pytest.raises(ModelError):
            partition_demand(demand, 3)

    def test_single_partition_is_identity(self):
        demand = collectives.alltoall(list(range(4)), 1)
        parts = partition_demand(demand, 1)
        assert len(parts) == 1
        assert parts[0].share == pytest.approx(1.0)
        assert parts[0].demand.triples() == demand.triples()


class TestSolveLpPop:
    def test_delivers_full_demand(self, ring4, atoa_ring4):
        out = solve_lp_pop(ring4, atoa_ring4, cfg(12), num_partitions=2)
        for s, c, d in atoa_ring4.triples():
            commodity_mass = sum(
                v for (q, dst, _), v in out.schedule.reads.items()
                if q in (s, (s, c)) and dst == d)
            assert commodity_mass > 0

    def test_capacity_respected_after_merge(self, ring4, atoa_ring4):
        out = solve_lp_pop(ring4, atoa_ring4, cfg(12), num_partitions=2)
        plan = out.plan
        for (i, j) in ring4.links:
            for k in range(plan.num_epochs):
                load = out.schedule.link_load(i, j, k)
                assert load <= plan.cap_chunks[(i, j)] + 1e-6

    def test_never_better_than_monolithic(self, ring4, atoa_ring4):
        pop = solve_lp_pop(ring4, atoa_ring4, cfg(12), num_partitions=2)
        mono = solve_lp(ring4, atoa_ring4, cfg(12))
        assert pop.finish_time >= mono.finish_time - 1e-9

    def test_single_partition_matches_monolithic(self, ring4, atoa_ring4):
        pop = solve_lp_pop(ring4, atoa_ring4, cfg(12), num_partitions=1)
        mono = solve_lp(ring4, atoa_ring4, cfg(12))
        assert pop.finish_time == pytest.approx(mono.finish_time, rel=1e-6)

    def test_multicast_rejected(self, ring4, ag_ring4):
        with pytest.raises(ModelError):
            solve_lp_pop(ring4, ag_ring4, cfg(12))

    def test_auto_horizon(self, ring4, atoa_ring4):
        out = solve_lp_pop(ring4, atoa_ring4, cfg(), num_partitions=2)
        assert out.finish_time > 0

    def test_solve_times_reported(self, ring4, atoa_ring4):
        out = solve_lp_pop(ring4, atoa_ring4, cfg(12), num_partitions=2)
        assert out.parallel_solve_time <= out.serial_solve_time + 1e-12
        assert out.solve_time == out.parallel_solve_time

    def test_internal1_alltoall(self):
        topo = topology.internal1(2)
        demand = collectives.alltoall(topo.gpus, 1)
        config = TecclConfig(chunk_bytes=1e6)
        out = solve_lp_pop(topo, demand, config, num_partitions=2)
        mono = solve_lp(topo, demand, config)
        assert out.finish_time >= mono.finish_time - 1e-9
        # POP's promise: the quality gap stays moderate on granular demands
        assert out.finish_time <= 4 * mono.finish_time


class TestMergeFlowSchedules:
    def test_merge_sums_overlapping_keys(self):
        a = FlowSchedule(flows={("q", 0, 1, 0): 1.0}, reads={},
                         tau=1.0, chunk_bytes=1.0, num_epochs=2)
        b = FlowSchedule(flows={("q", 0, 1, 0): 0.5}, reads={},
                         tau=1.0, chunk_bytes=1.0, num_epochs=3)
        merged = merge_flow_schedules([a, b])
        assert merged.flows[("q", 0, 1, 0)] == pytest.approx(1.5)
        assert merged.num_epochs == 3

    def test_mismatched_tau_rejected(self):
        a = FlowSchedule(flows={}, reads={}, tau=1.0, chunk_bytes=1.0,
                         num_epochs=1)
        b = FlowSchedule(flows={}, reads={}, tau=2.0, chunk_bytes=1.0,
                         num_epochs=1)
        with pytest.raises(ModelError):
            merge_flow_schedules([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(ModelError):
            merge_flow_schedules([])
