"""Tests for the synthesize() facade: method routing, hyper remap, guards."""

import pytest

from repro import collectives, topology
from repro.core import TecclConfig
from repro.core.config import SwitchModel
from repro.core.solve import Method, synthesize
from repro.errors import ModelError


class TestHyperRemap:
    def test_demand_remapped_into_hyper_space(self):
        """With a switch in the middle of the id space, the transform
        renumbers GPUs; the facade must remap the demand accordingly."""
        topo = topology.Topology("mid-switch", num_nodes=4, switches={1})
        topo.add_bidirectional(0, 1, 1.0)
        topo.add_bidirectional(2, 1, 1.0)
        topo.add_bidirectional(3, 1, 1.0)
        demand = collectives.allgather([0, 2, 3], 1)
        cfg = TecclConfig(chunk_bytes=1.0, num_epochs=8,
                          switch_model=SwitchModel.HYPER_EDGE)
        result = synthesize(topo, demand, cfg, method=Method.MILP)
        assert result.hyper is not None
        work = result.topology_used
        assert work.num_nodes == 3
        # schedules use hyper-space ids 0..2
        for send in result.schedule.sends:
            assert 0 <= send.src < 3 and 0 <= send.dst < 3
        # demand_used endpoints live in hyper space too
        assert result.demand_used.endpoints <= {0, 1, 2}

    def test_priorities_with_hyper_rejected(self):
        topo = topology.internal2(2)
        demand = collectives.allgather(topo.gpus, 1)
        cfg = TecclConfig(chunk_bytes=1.0, num_epochs=8,
                          switch_model=SwitchModel.HYPER_EDGE,
                          priorities={(0, 0, 1): 2.0})
        with pytest.raises(ModelError, match="priorities"):
            synthesize(topo, demand, cfg, method=Method.MILP)

    def test_no_switches_means_no_transform(self, ring4):
        demand = collectives.allgather(ring4.gpus, 1)
        cfg = TecclConfig(chunk_bytes=1.0, num_epochs=8,
                          switch_model=SwitchModel.HYPER_EDGE)
        result = synthesize(ring4, demand, cfg, method=Method.MILP)
        assert result.hyper is None
        assert result.topology_used is ring4
        assert result.demand_used is demand


class TestMethodRouting:
    def test_lp_on_multicast_is_nocopy_mode(self, ring4):
        demand = collectives.allgather(ring4.gpus, 1)
        result = synthesize(ring4, demand,
                            TecclConfig(chunk_bytes=1.0, num_epochs=8),
                            method=Method.LP)
        # no-copy: total bytes strictly exceed the copy-enabled optimum
        milp = synthesize(ring4, demand,
                          TecclConfig(chunk_bytes=1.0, num_epochs=8),
                          method=Method.MILP)
        assert result.schedule.total_bytes() >= \
            milp.schedule.total_bytes() - 1e-9

    def test_unknown_method_rejected(self, ring4):
        demand = collectives.allgather(ring4.gpus, 1)
        with pytest.raises((ModelError, AttributeError)):
            synthesize(ring4, demand, TecclConfig(chunk_bytes=1.0),
                       method="nonsense")  # type: ignore[arg-type]

    def test_minimize_epochs_path(self, ring4):
        demand = collectives.alltoall(ring4.gpus, 1)
        result = synthesize(ring4, demand, TecclConfig(chunk_bytes=1.0),
                            method=Method.LP, minimize_epochs=True)
        assert result.plan.num_epochs == 2  # the known ring-4 optimum
