"""Property-based tests over the extension subsystems.

Same philosophy as :mod:`tests.test_properties`: random small instances,
invariants that must hold structurally — tree spans, packing disjointness,
partition covers, fit round-trips, perturbation sanity.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import collectives, topology
from repro.analysis.calibration import fit_alpha_beta, probe_link
from repro.baselines.blink_like import pack_arborescences, split_chunks
from repro.baselines.trees import binomial_tree, chain_tree, double_binary_trees
from repro.core.pop import merge_flow_schedules, partition_demand
from repro.core.schedule import FlowSchedule
from repro.simulate import PerturbationModel, perturbed_topology
from repro.topology.fabrics import hypercube, torus2d
from repro.topology.topology import Link

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# logical trees
# ----------------------------------------------------------------------
@st.composite
def member_lists(draw):
    n = draw(st.integers(min_value=2, max_value=16))
    offset = draw(st.integers(min_value=0, max_value=10))
    return [offset + i for i in range(n)]


class TestTreeProperties:
    @SETTINGS
    @given(member_lists(), st.integers(0, 15))
    def test_binomial_tree_spans_members(self, members, root_index):
        root = members[root_index % len(members)]
        tree = binomial_tree(root, members)
        assert sorted(tree.nodes) == sorted(members)
        assert len(tree.edges_bfs()) == len(members) - 1

    @SETTINGS
    @given(member_lists())
    def test_binomial_depth_logarithmic(self, members):
        tree = binomial_tree(members[0], members)
        assert tree.depth() <= math.ceil(math.log2(len(members)))

    @SETTINGS
    @given(member_lists())
    def test_chain_tree_is_path(self, members):
        tree = chain_tree(members[0], members)
        assert tree.depth() == len(members) - 1
        assert len(tree.edges_bfs()) == len(members) - 1

    @SETTINGS
    @given(member_lists())
    def test_double_trees_span(self, members):
        tree_a, tree_b = double_binary_trees(members)
        assert sorted(tree_a.nodes) == sorted(members)
        assert sorted(tree_b.nodes) == sorted(members)

    @SETTINGS
    @given(st.integers(min_value=1, max_value=8))
    def test_double_trees_complementary_for_even_counts(self, half):
        members = list(range(2 * half))
        tree_a, tree_b = double_binary_trees(members)
        assert not (set(tree_a.leaves()) & set(tree_b.leaves()))


# ----------------------------------------------------------------------
# Blink packing
# ----------------------------------------------------------------------
class TestPackingProperties:
    @SETTINGS
    @given(st.integers(min_value=1, max_value=40),
           st.lists(st.floats(min_value=0.1, max_value=10.0),
                    min_size=1, max_size=6))
    def test_split_chunks_sums_and_bounds(self, n, rates):
        shares = split_chunks(n, rates)
        assert sum(shares) == n
        assert all(s >= 0 for s in shares)
        assert len(shares) == len(rates)

    @SETTINGS
    @given(st.integers(min_value=3, max_value=7), st.integers(0, 100))
    def test_packing_disjoint_on_meshes(self, n, seed):
        topo = topology.full_mesh(n, capacity=1.0 + (seed % 3))
        trees = pack_arborescences(topo, seed % n, chunk_bytes=1.0,
                                   max_trees=4)
        used: set[tuple[int, int]] = set()
        for tree in trees:
            arcs = set(tree.arcs)
            assert not (arcs & used)
            used |= arcs
            assert tree.covered_gpus(topo) == set(topo.gpus)


# ----------------------------------------------------------------------
# POP partitioning
# ----------------------------------------------------------------------
@st.composite
def alltoall_demands(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    chunks = draw(st.integers(min_value=1, max_value=2))
    return collectives.alltoall(list(range(n)), chunks)


class TestPopProperties:
    @SETTINGS
    @given(alltoall_demands(), st.integers(min_value=1, max_value=3),
           st.integers(0, 50))
    def test_partitions_exactly_cover(self, demand, k, seed):
        parts = partition_demand(demand, k, seed=seed)
        together = sorted(t for p in parts for t in p.demand.triples())
        assert together == demand.triples()
        assert sum(p.share for p in parts) == pytest.approx(1.0)

    @SETTINGS
    @given(st.lists(st.floats(min_value=0.0, max_value=5.0),
                    min_size=1, max_size=8),
           st.lists(st.floats(min_value=0.0, max_value=5.0),
                    min_size=1, max_size=8))
    def test_merge_sums_mass(self, amounts_a, amounts_b):
        def sched(amounts, tag):
            flows = {(tag, 0, 1, k): v for k, v in enumerate(amounts)}
            return FlowSchedule(flows=flows, reads={}, tau=1.0,
                                chunk_bytes=1.0,
                                num_epochs=len(amounts) + 1)

        a, b = sched(amounts_a, "a"), sched(amounts_b, "b")
        merged = merge_flow_schedules([a, b])
        # FlowSchedule drops sub-tolerance entries; compare surviving mass
        assert sum(merged.flows.values()) == pytest.approx(
            sum(a.flows.values()) + sum(b.flows.values()))


# ----------------------------------------------------------------------
# calibration
# ----------------------------------------------------------------------
class TestCalibrationProperties:
    @SETTINGS
    @given(st.floats(min_value=1e6, max_value=1e11),
           st.floats(min_value=0.0, max_value=1e-3))
    def test_exact_probe_round_trips(self, capacity, alpha):
        link = Link(0, 1, capacity=capacity, alpha=alpha)
        fit = fit_alpha_beta(probe_link(link, [1e3, 1e5, 1e7]))
        assert fit.capacity == pytest.approx(capacity, rel=1e-6)
        assert fit.alpha == pytest.approx(alpha, rel=1e-3, abs=1e-12)


# ----------------------------------------------------------------------
# perturbation
# ----------------------------------------------------------------------
class TestPerturbationProperties:
    @SETTINGS
    @given(st.integers(min_value=3, max_value=8), st.integers(0, 1000),
           st.floats(min_value=0.0, max_value=0.3))
    def test_perturbed_fabric_stays_sane(self, n, seed, jitter):
        topo = topology.ring(n, capacity=1e9, alpha=1e-6)
        model = PerturbationModel(beta_jitter=jitter, alpha_jitter=jitter,
                                  congested_fraction=0.25)
        fabric = perturbed_topology(topo, model, seed=seed)
        assert sorted(fabric.links) == sorted(topo.links)
        for link in fabric.links.values():
            assert link.capacity > 0
            assert link.alpha >= 0


# ----------------------------------------------------------------------
# whole-pipeline properties (the most valuable invariants in the repo)
# ----------------------------------------------------------------------
@st.composite
def solvable_instances(draw):
    """A small strongly-connected fabric plus a modest demand."""
    n = draw(st.integers(min_value=3, max_value=5))
    topo = topology.ring(n, capacity=1.0)
    extra = draw(st.lists(st.tuples(st.integers(0, n - 1),
                                    st.integers(0, n - 1)), max_size=3))
    for (i, j) in extra:
        if i != j and not topo.has_link(i, j):
            topo.add_link(i, j, 1.0)
    kind = draw(st.sampled_from(["allgather", "broadcast", "alltoall"]))
    if kind == "allgather":
        demand = collectives.allgather(topo.gpus, 1)
    elif kind == "broadcast":
        demand = collectives.broadcast(0, topo.gpus, 1)
    else:
        demand = collectives.alltoall(topo.gpus, 1)
    return topo, demand


PIPE_SETTINGS = settings(max_examples=8, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])


class TestPipelineProperties:
    @PIPE_SETTINGS
    @given(solvable_instances())
    def test_export_then_interpret_always_delivers(self, case):
        """synthesize → lower → execute-as-program never deadlocks and
        always satisfies the demand (the end-to-end §6 pipeline)."""
        from repro.core import TecclConfig, solve_milp
        from repro.msccl import to_msccl_xml, verify_program
        from repro.solver import SolverOptions

        topo, demand = case
        cfg = TecclConfig(chunk_bytes=1.0, num_epochs=4 * topo.num_gpus,
                          solver=SolverOptions(time_limit=20))
        outcome = solve_milp(topo, demand, cfg)
        document = to_msccl_xml(outcome.schedule, topo, demand)
        report = verify_program(document, topo, demand, chunk_bytes=1.0)
        assert report.fired == report.total

    @PIPE_SETTINGS
    @given(solvable_instances(), st.integers(0, 3), st.integers(0, 10))
    def test_repair_after_random_failure_completes(self, case, fail_epoch,
                                                   link_index):
        """fail → re-home → re-synthesize always covers the residual
        demand whenever the degraded fabric is survivable."""
        from repro.core import Method, TecclConfig, solve_milp
        from repro.errors import InfeasibleError
        from repro.failures import (FailureEvent, is_survivable,
                                    repair_schedule)
        from repro.simulate import run_events
        from repro.solver import SolverOptions

        topo, demand = case
        cfg = TecclConfig(chunk_bytes=1.0, num_epochs=4 * topo.num_gpus,
                          solver=SolverOptions(time_limit=20))
        outcome = solve_milp(topo, demand, cfg)
        link = sorted(topo.links)[link_index % len(topo.links)]
        failures = [FailureEvent(fail_epoch, link)]
        if not is_survivable(topo, demand, failures):
            return  # partitioned: repair correctly refuses (tested elsewhere)
        repair = repair_schedule(topo, demand, cfg, outcome.schedule,
                                 outcome.plan, failures,
                                 method=Method.MILP)
        if repair.synthesis is None:
            assert repair.residual_demand.is_empty()
            return
        report = run_events(repair.synthesis.schedule, repair.degraded,
                            repair.residual_demand)
        for triple in repair.residual_demand.triples():
            assert triple in report.delivered


# ----------------------------------------------------------------------
# fabrics
# ----------------------------------------------------------------------
class TestFabricProperties:
    @SETTINGS
    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=5))
    def test_torus_degree(self, rows, cols):
        if rows * cols < 2:
            return
        topo = torus2d(rows, cols)
        expected = (2 if rows > 1 else 0) + (2 if cols > 1 else 0)
        # a dimension of exactly 2 merges the wrap link with the direct one
        if rows == 2:
            expected -= 1
        if cols == 2:
            expected -= 1
        for gpu in topo.gpus:
            assert len(topo.out_edges(gpu)) == expected
        topo.validate()

    @SETTINGS
    @given(st.integers(min_value=1, max_value=5))
    def test_hypercube_structure(self, dim):
        topo = hypercube(dim)
        assert topo.num_gpus == 2 ** dim
        for (a, b) in topo.links:
            assert bin(a ^ b).count("1") == 1
        assert len(topo.links) == dim * 2 ** dim
