"""Tests for the continuous-time event simulator."""

import pytest

from repro import collectives, topology
from repro.core import TecclConfig, solve_milp
from repro.core.schedule import Schedule, Send
from repro.errors import ScheduleError
from repro.simulate.events import quantisation_gap, run_events


def send(epoch, src, dst, source=0, chunk=0):
    return Send(epoch=epoch, source=source, chunk=chunk, src=src, dst=dst)


def sched(sends, num_epochs=8, chunk_bytes=1.0, tau=1.0):
    return Schedule(sends=sends, tau=tau, chunk_bytes=chunk_bytes,
                    num_epochs=num_epochs)


class TestEventExecution:
    def test_single_hop_timing(self):
        topo = topology.line(2, capacity=2.0, alpha=0.5)
        demand = collectives.Demand.from_triples([(0, 0, 1)])
        report = run_events(sched([send(0, 0, 1)], chunk_bytes=4.0),
                            topo, demand)
        # transmit 2 s + alpha 0.5 s
        assert report.finish_time == pytest.approx(2.5)

    def test_relay_pipelines_without_epoch_rounding(self):
        topo = topology.line(3, capacity=1.0, alpha=0.25)
        demand = collectives.Demand.from_triples([(0, 0, 2)])
        # epoch grid forces the relay to epoch 2 (Delta = 1), but in
        # continuous time the chunk is ready at 1.25 s
        schedule = sched([send(0, 0, 1), send(2, 1, 2)])
        report = run_events(schedule, topo, demand)
        assert report.finish_time == pytest.approx(1.25 + 1.25)
        grid = schedule.finish_time(topo)
        assert report.finish_time <= grid + 1e-9

    def test_link_serialisation(self):
        topo = topology.line(2, capacity=1.0)
        demand = collectives.Demand.from_triples([(0, 0, 1), (0, 1, 1)])
        schedule = sched([send(0, 0, 1), send(0, 0, 1, chunk=1)])
        report = run_events(schedule, topo, demand)
        # two unit chunks share one 1 B/s link: 2 s total
        assert report.finish_time == pytest.approx(2.0)
        assert report.link_busy[(0, 1)] == pytest.approx(2.0)

    def test_epoch_order_preserved_on_link(self):
        topo = topology.line(2, capacity=1.0)
        demand = collectives.Demand.from_triples([(0, 0, 1), (0, 1, 1)])
        schedule = sched([send(3, 0, 1), send(0, 0, 1, chunk=1)])
        report = run_events(schedule, topo, demand)
        # chunk 1 (epoch 0) transmits before chunk 0 (epoch 3)
        first = min(report.arrivals, key=lambda a: a.time)
        assert first.chunk == 1

    def test_deadlock_detected(self):
        topo = topology.line(3, capacity=1.0)
        demand = collectives.Demand.from_triples([(0, 0, 2)])
        # relay hop references a chunk that never reaches node 1
        with pytest.raises(ScheduleError, match="deadlock"):
            run_events(sched([send(0, 1, 2)]), topo, demand)

    def test_unmet_demand_detected(self):
        topo = topology.line(3, capacity=1.0)
        demand = collectives.Demand.from_triples([(0, 0, 2)])
        with pytest.raises(ScheduleError, match="unmet"):
            run_events(sched([send(0, 0, 1)]), topo, demand)

    def test_utilisation_fractions(self):
        topo = topology.line(2, capacity=1.0)
        demand = collectives.Demand.from_triples([(0, 0, 1)])
        report = run_events(sched([send(0, 0, 1)]), topo, demand)
        util = report.utilisation(topo)
        assert util[(0, 1)] == pytest.approx(1.0)
        assert util[(1, 0)] == pytest.approx(0.0)


class TestAgainstSolver:
    def test_event_time_never_exceeds_grid_estimate(self, dgx1):
        demand = collectives.allgather(dgx1.gpus, 1)
        out = solve_milp(dgx1, demand,
                         TecclConfig(chunk_bytes=25e3, num_epochs=10))
        gap = quantisation_gap(out.schedule, dgx1, demand)
        assert gap >= -1e-9  # events can only beat the rounded grid
        assert gap <= 0.9    # and the grid estimate is not wildly loose

    def test_event_delivery_matches_demand(self, ring4, ag_ring4):
        out = solve_milp(ring4, ag_ring4,
                         TecclConfig(chunk_bytes=1.0, num_epochs=6))
        report = run_events(out.schedule, ring4, ag_ring4)
        assert set(report.delivered) == set(ag_ring4.triples())


class TestDeterminism:
    """Event ordering must be a pure function of the schedule's send *set*.

    Regression for the float-equal-timestamp tie-break: with many sends
    becoming eligible at the same instant, the dispatch order (and hence the
    whole trace) must not depend on the order the sends were listed in.
    """

    def _trace(self, schedule, topo, demand):
        report = run_events(schedule, topo, demand)
        return (report.finish_time,
                [(a.time, a.source, a.chunk, a.node)
                 for a in report.arrivals],
                [(t.link, t.start, t.end, t.arrival, t.source, t.chunk)
                 for t in report.transmissions])

    def test_replay_twice_identical(self):
        import random

        topo = topology.ring(4, capacity=1.0, alpha=0.0)
        demand = collectives.allgather(topo.gpus, 1)
        from repro.baselines import tree_allgather

        schedule = tree_allgather(topo, TecclConfig(chunk_bytes=1.0), 1)
        first = self._trace(schedule, topo, demand)
        second = self._trace(schedule, topo, demand)
        assert first == second

        # shuffle the send list: the trace must not move
        for seed in range(5):
            shuffled = list(schedule.sends)
            random.Random(seed).shuffle(shuffled)
            permuted = Schedule(sends=shuffled, tau=schedule.tau,
                                chunk_bytes=schedule.chunk_bytes,
                                num_epochs=schedule.num_epochs)
            assert self._trace(permuted, topo, demand) == first

    def test_equal_timestamp_ties_are_ordered(self):
        # four sends all eligible at t=0 on four distinct links: equal
        # starts, so ordering falls to the identity tie-break
        topo = topology.ring(4, capacity=1.0, alpha=0.0)
        demand = collectives.Demand.from_triples(
            [(g, 0, (g + 1) % 4) for g in range(4)])
        sends = [send(0, g, (g + 1) % 4, source=g) for g in range(4)]
        report = run_events(sched(sends), topo, demand)
        starts = [(t.start, t.link) for t in report.transmissions]
        assert starts == sorted(starts)
        assert all(t.start == 0.0 for t in report.transmissions)
