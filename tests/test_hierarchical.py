"""Tests for hierarchical (chassis-decomposed) synthesis."""

import pytest

from repro import collectives, topology
from repro.core import (Method, TecclConfig, chassis_groups,
                        hierarchical_allgather, synthesize)
from repro.core.hierarchical import ChassisPlan, _induce
from repro.errors import DemandError, TopologyError
from repro.simulate import verify
from repro.solver import SolverOptions


def cfg(**kwargs):
    return TecclConfig(chunk_bytes=1e6,
                       solver=SolverOptions(mip_gap=0.2, time_limit=30),
                       **kwargs)


class TestChassisGroups:
    def test_consecutive_slices(self):
        topo = topology.internal2(3)
        plans = chassis_groups(topo, 2)
        assert len(plans) == 3
        assert plans[0].gpus == (0, 1)
        assert plans[0].leader == 0

    def test_indivisible_rejected(self):
        topo = topology.internal2(3)
        with pytest.raises(TopologyError):
            chassis_groups(topo, 4)

    def test_leader_must_be_member(self):
        with pytest.raises(DemandError):
            ChassisPlan(gpus=(0, 1), leader=5)


class TestInduce:
    def test_chassis_subfabric_keeps_local_links(self):
        topo = topology.ndv2(2)
        fabric = _induce(topo, list(range(8)), "c0")
        # all 32 intra-chassis NVLinks survive; the uplink switch keeps
        # only this chassis's two uplink pairs
        sub_gpu_links = [
            (a, b) for (a, b) in fabric.topology.links
            if not fabric.topology.is_switch(a)
            and not fabric.topology.is_switch(b)]
        assert len(sub_gpu_links) == 32

    def test_id_maps_are_inverse(self):
        topo = topology.internal2(2)
        fabric = _induce(topo, [0, 1], "c0")
        for old, new in fabric.to_sub.items():
            assert fabric.to_full[new] == old

    def test_dead_switch_dropped(self):
        # inducing on one GPU pair of a leaf-spine drops unreachable spines
        topo = topology.leaf_spine(2, 2, 1)
        fabric = _induce(topo, [0, 1], "pod0")
        fabric.topology.validate()


class TestHierarchicalAllgather:
    def test_phases_and_composition(self):
        topo = topology.internal2(2)
        plans = chassis_groups(topo, 2)
        out = hierarchical_allgather(topo, cfg(), chassis=plans)
        assert len(out.local_gather) == 2
        assert len(out.local_broadcast) == 2
        assert out.finish_time > 0
        assert out.parallel_solve_time <= out.serial_solve_time + 1e-12
        expected = (max(p.finish_time for p in out.local_gather)
                    + out.leader_exchange.finish_time
                    + max(p.finish_time for p in out.local_broadcast))
        assert out.finish_time == pytest.approx(expected)

    def test_every_phase_schedule_verifies(self):
        topo = topology.internal2(2)
        plans = chassis_groups(topo, 2)
        out = hierarchical_allgather(topo, cfg(), chassis=plans,
                                     method=Method.MILP)
        for phase in out.phases():
            schedule = phase.synthesis.schedule
            verify(schedule, phase.fabric.topology, phase.demand,
                   phase.synthesis.plan)

    def test_never_beats_flat_optimum(self):
        """The leader bottleneck must cost something (or tie)."""
        topo = topology.internal2(2)
        plans = chassis_groups(topo, 2)
        hier = hierarchical_allgather(topo, cfg(), chassis=plans)
        flat = synthesize(topo, collectives.allgather(topo.gpus, 1),
                          cfg(), method=Method.MILP)
        assert hier.finish_time >= flat.finish_time - 1e-9

    def test_explicit_leaders(self):
        topo = topology.internal2(2)
        plans = [ChassisPlan(gpus=(0, 1), leader=1),
                 ChassisPlan(gpus=(2, 3), leader=3)]
        out = hierarchical_allgather(topo, cfg(), chassis=plans)
        assert out.finish_time > 0

    def test_overlapping_chassis_rejected(self):
        topo = topology.internal2(2)
        plans = [ChassisPlan(gpus=(0, 1), leader=0),
                 ChassisPlan(gpus=(1, 2, 3), leader=1)]
        with pytest.raises(DemandError):
            hierarchical_allgather(topo, cfg(), chassis=plans)

    def test_partial_cover_rejected(self):
        topo = topology.internal2(2)
        plans = [ChassisPlan(gpus=(0, 1), leader=0),
                 ChassisPlan(gpus=(2,), leader=2)]
        with pytest.raises(DemandError):
            hierarchical_allgather(topo, cfg(), chassis=plans)

    def test_single_chassis_rejected(self):
        topo = topology.internal2(2)
        plans = [ChassisPlan(gpus=tuple(topo.gpus), leader=0)]
        with pytest.raises(DemandError):
            hierarchical_allgather(topo, cfg(), chassis=plans)

    def test_user_horizon_is_ignored_per_phase(self):
        """A flat-problem K must not poison the phase solves."""
        topo = topology.internal2(2)
        plans = chassis_groups(topo, 2)
        out = hierarchical_allgather(topo, cfg(num_epochs=3), chassis=plans)
        assert out.finish_time > 0


def _heterogeneous_plans():
    """3+2+1 chassis over internal2(3)'s six GPUs (unequal on purpose)."""
    return [ChassisPlan(gpus=(0, 1, 2), leader=0),
            ChassisPlan(gpus=(3, 4), leader=3),
            ChassisPlan(gpus=(5,), leader=5)]


class TestHeterogeneousChassisPayloads:
    """Regression: exchange/broadcast demand sized per chassis, not by max.

    The old formulas sized *every* leader's exchange payload by the
    largest chassis (``max(len(plan.gpus))``) and broadcast
    ``(G-1) * that`` into every chassis — leaders of smaller chassis were
    modeled forwarding chunks they do not have.
    """

    def test_exchange_payload_matches_each_chassis(self):
        topo = topology.internal2(3)
        out = hierarchical_allgather(topo, cfg(), chassis=_heterogeneous_plans())
        exchange = out.leader_exchange
        per_leader = {
            exchange.fabric.to_full[source]:
                len(exchange.demand.chunks_of(source))
            for source in exchange.demand.sources}
        # leader 0 fronts 3 GPUs, leader 3 fronts 2, leader 5 fronts 1
        assert per_leader == {0: 3, 3: 2, 5: 1}

    def test_broadcast_payload_is_sum_of_other_chassis(self):
        topo = topology.internal2(3)
        out = hierarchical_allgather(topo, cfg(), chassis=_heterogeneous_plans())
        remote = {}
        for phase in out.local_broadcast:
            (source,) = phase.demand.sources
            remote[phase.label] = len(phase.demand.chunks_of(source))
        # chassis 0 receives the 2+1 foreign chunks, chassis 1 the 3+1;
        # the single-GPU chassis has no local broadcast at all
        assert remote == {"broadcast@0": 3, "broadcast@1": 4}
        assert len(out.local_broadcast) == 2

    def test_strictly_faster_than_old_uniform_formula(self):
        from repro.collectives.patterns import allgather, broadcast
        from repro.core.hierarchical import _induce

        topo = topology.internal2(3)
        plans = _heterogeneous_plans()
        config = TecclConfig(chunk_bytes=1e6,
                             solver=SolverOptions(mip_gap=0.0,
                                                  time_limit=60))
        out = hierarchical_allgather(topo, config, chassis=plans)

        # reconstruct the old formula's phase 2/3 demands: a uniform
        # max-sized allgather and (G-1)*max broadcast into every chassis
        old_chunks = max(len(plan.gpus) for plan in plans)
        leader_fabric = _induce(topo, [p.leader for p in plans], "leaders")
        old_exchange = synthesize(
            leader_fabric.topology,
            allgather([leader_fabric.to_sub[p.leader] for p in plans],
                      old_chunks),
            config)
        old_broadcast = []
        for plan in plans:
            if len(plan.gpus) < 2:
                continue
            fabric = _induce(topo, list(plan.gpus), "c")
            demand = broadcast(fabric.to_sub[plan.leader],
                               [fabric.to_sub[g] for g in plan.gpus],
                               (len(plans) - 1) * old_chunks)
            old_broadcast.append(
                synthesize(fabric.topology, demand, config).finish_time)
        old_finish = (max(p.finish_time for p in out.local_gather)
                      + old_exchange.finish_time + max(old_broadcast))
        assert out.finish_time < old_finish


class TestFailFast:
    def test_degenerate_chassis_fail_before_any_solve(self, monkeypatch):
        """All-single-GPU chassis must be rejected pre-synthesis, not
        after paying for the leader-exchange solve."""
        import repro.core.hierarchical as hier

        calls = {"n": 0}

        def counting(*args, **kwargs):
            calls["n"] += 1
            raise AssertionError("a degenerate input reached the solver")

        monkeypatch.setattr(hier, "synthesize", counting)
        topo = topology.ring(4, capacity=1.0)
        plans = [ChassisPlan(gpus=(g,), leader=g) for g in topo.gpus]
        with pytest.raises(DemandError, match="multi-GPU chassis"):
            hierarchical_allgather(topo, cfg(), chassis=plans)
        assert calls["n"] == 0
