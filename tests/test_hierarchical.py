"""Tests for hierarchical (chassis-decomposed) synthesis."""

import pytest

from repro import collectives, topology
from repro.core import (Method, TecclConfig, chassis_groups,
                        hierarchical_allgather, synthesize)
from repro.core.hierarchical import ChassisPlan, _induce
from repro.errors import DemandError, TopologyError
from repro.simulate import verify
from repro.solver import SolverOptions


def cfg(**kwargs):
    return TecclConfig(chunk_bytes=1e6,
                       solver=SolverOptions(mip_gap=0.2, time_limit=30),
                       **kwargs)


class TestChassisGroups:
    def test_consecutive_slices(self):
        topo = topology.internal2(3)
        plans = chassis_groups(topo, 2)
        assert len(plans) == 3
        assert plans[0].gpus == (0, 1)
        assert plans[0].leader == 0

    def test_indivisible_rejected(self):
        topo = topology.internal2(3)
        with pytest.raises(TopologyError):
            chassis_groups(topo, 4)

    def test_leader_must_be_member(self):
        with pytest.raises(DemandError):
            ChassisPlan(gpus=(0, 1), leader=5)


class TestInduce:
    def test_chassis_subfabric_keeps_local_links(self):
        topo = topology.ndv2(2)
        fabric = _induce(topo, list(range(8)), "c0")
        # all 32 intra-chassis NVLinks survive; the uplink switch keeps
        # only this chassis's two uplink pairs
        sub_gpu_links = [
            (a, b) for (a, b) in fabric.topology.links
            if not fabric.topology.is_switch(a)
            and not fabric.topology.is_switch(b)]
        assert len(sub_gpu_links) == 32

    def test_id_maps_are_inverse(self):
        topo = topology.internal2(2)
        fabric = _induce(topo, [0, 1], "c0")
        for old, new in fabric.to_sub.items():
            assert fabric.to_full[new] == old

    def test_dead_switch_dropped(self):
        # inducing on one GPU pair of a leaf-spine drops unreachable spines
        topo = topology.leaf_spine(2, 2, 1)
        fabric = _induce(topo, [0, 1], "pod0")
        fabric.topology.validate()


class TestHierarchicalAllgather:
    def test_phases_and_composition(self):
        topo = topology.internal2(2)
        plans = chassis_groups(topo, 2)
        out = hierarchical_allgather(topo, cfg(), chassis=plans)
        assert len(out.local_gather) == 2
        assert len(out.local_broadcast) == 2
        assert out.finish_time > 0
        assert out.parallel_solve_time <= out.serial_solve_time + 1e-12
        expected = (max(p.finish_time for p in out.local_gather)
                    + out.leader_exchange.finish_time
                    + max(p.finish_time for p in out.local_broadcast))
        assert out.finish_time == pytest.approx(expected)

    def test_every_phase_schedule_verifies(self):
        topo = topology.internal2(2)
        plans = chassis_groups(topo, 2)
        out = hierarchical_allgather(topo, cfg(), chassis=plans,
                                     method=Method.MILP)
        for phase in out.phases():
            schedule = phase.synthesis.schedule
            verify(schedule, phase.fabric.topology, phase.demand,
                   phase.synthesis.plan)

    def test_never_beats_flat_optimum(self):
        """The leader bottleneck must cost something (or tie)."""
        topo = topology.internal2(2)
        plans = chassis_groups(topo, 2)
        hier = hierarchical_allgather(topo, cfg(), chassis=plans)
        flat = synthesize(topo, collectives.allgather(topo.gpus, 1),
                          cfg(), method=Method.MILP)
        assert hier.finish_time >= flat.finish_time - 1e-9

    def test_explicit_leaders(self):
        topo = topology.internal2(2)
        plans = [ChassisPlan(gpus=(0, 1), leader=1),
                 ChassisPlan(gpus=(2, 3), leader=3)]
        out = hierarchical_allgather(topo, cfg(), chassis=plans)
        assert out.finish_time > 0

    def test_overlapping_chassis_rejected(self):
        topo = topology.internal2(2)
        plans = [ChassisPlan(gpus=(0, 1), leader=0),
                 ChassisPlan(gpus=(1, 2, 3), leader=1)]
        with pytest.raises(DemandError):
            hierarchical_allgather(topo, cfg(), chassis=plans)

    def test_partial_cover_rejected(self):
        topo = topology.internal2(2)
        plans = [ChassisPlan(gpus=(0, 1), leader=0),
                 ChassisPlan(gpus=(2,), leader=2)]
        with pytest.raises(DemandError):
            hierarchical_allgather(topo, cfg(), chassis=plans)

    def test_single_chassis_rejected(self):
        topo = topology.internal2(2)
        plans = [ChassisPlan(gpus=tuple(topo.gpus), leader=0)]
        with pytest.raises(DemandError):
            hierarchical_allgather(topo, cfg(), chassis=plans)

    def test_user_horizon_is_ignored_per_phase(self):
        """A flat-problem K must not poison the phase solves."""
        topo = topology.internal2(2)
        plans = chassis_groups(topo, 2)
        out = hierarchical_allgather(topo, cfg(num_epochs=3), chassis=plans)
        assert out.finish_time > 0
