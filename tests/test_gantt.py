"""Tests for the continuous-time Gantt rendering."""

import pytest

from repro import collectives
from repro.analysis import render_gantt, render_progress, utilisation_summary
from repro.core import TecclConfig, solve_milp
from repro.errors import ScheduleError
from repro.simulate import run_events


def cfg(num_epochs=None, **kwargs):
    return TecclConfig(chunk_bytes=1.0, num_epochs=num_epochs, **kwargs)


@pytest.fixture
def report(ring4, ag_ring4):
    outcome = solve_milp(ring4, ag_ring4, cfg(8))
    return run_events(outcome.schedule, ring4, ag_ring4)


class TestTransmissions:
    def test_intervals_recorded(self, report):
        assert report.transmissions
        for t in report.transmissions:
            assert t.start <= t.end <= t.arrival + 1e-12

    def test_fifo_per_link(self, report):
        by_link: dict[tuple, list] = {}
        for t in report.transmissions:
            by_link.setdefault(t.link, []).append(t)
        for entries in by_link.values():
            for a, b in zip(entries, entries[1:]):
                assert b.start >= a.end - 1e-12  # the wire never overlaps

    def test_busy_matches_intervals(self, report):
        for link, busy in report.link_busy.items():
            interval_sum = sum(t.end - t.start
                               for t in report.transmissions
                               if t.link == link)
            assert busy == pytest.approx(interval_sum)


class TestRenderGantt:
    def test_renders_all_used_links(self, report, ring4):
        art = render_gantt(report, width=32)
        lines = art.splitlines()
        used = {t.link for t in report.transmissions}
        assert len(lines) == len(used) + 1  # header + one row per link
        for (i, j) in used:
            assert any(line.startswith(f"{i}->{j}") for line in lines)

    def test_busy_percent_in_range(self, report):
        art = render_gantt(report, width=32)
        for line in art.splitlines()[1:]:
            pct = float(line.rstrip("%").split()[-1])
            assert 0.0 <= pct <= 100.0 + 1e-9

    def test_link_filter(self, report):
        art = render_gantt(report, width=32, links=[(0, 1)])
        assert len(art.splitlines()) == 2

    def test_unknown_link_rejected(self, report):
        with pytest.raises(ScheduleError):
            render_gantt(report, links=[(99, 98)])

    def test_narrow_width_rejected(self, report):
        with pytest.raises(ScheduleError):
            render_gantt(report, width=4)


class TestRenderProgress:
    def test_rows_per_destination(self, report, ag_ring4):
        art = render_progress(report, ag_ring4, width=24)
        destinations = {d for _, _, d in ag_ring4.triples()}
        assert len(art.splitlines()) == len(destinations) + 1

    def test_ends_complete(self, report, ag_ring4):
        art = render_progress(report, ag_ring4, width=24)
        for line in art.splitlines()[1:]:
            assert line.rstrip().endswith("#")

    def test_monotone_deciles(self, report, ag_ring4):
        art = render_progress(report, ag_ring4, width=24)
        for line in art.splitlines()[1:]:
            row = line.split(None, 2)[-1]
            digits = [10 if ch == "#" else int(ch) for ch in row]
            assert digits == sorted(digits)


class TestUtilisationSummary:
    def test_lists_busiest_first(self, report):
        art = utilisation_summary(report, top=3)
        lines = art.splitlines()[1:]
        shares = [float(line.rstrip("%").split()[-1]) for line in lines]
        assert shares == sorted(shares, reverse=True)
        assert len(lines) <= 3
