"""SLO alert engine and explain-record unit tests.

Covers the declarative rule kinds (value / ratio / rate), the
flattening of registry snapshots, the rate ring, the edge-triggered
engine, and the ExplainRecord serialization round-trip the flight
recorder and ``teccl explain`` depend on.
"""

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs.alerts import (Alert, AlertEngine, AlertRule, SnapshotRing,
                              builtin_rules, flatten_snapshot)
from repro.obs.explain import ExplainRecord, solve_stats_subset
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.obs


# ----------------------------------------------------------------------
# flatten_snapshot
# ----------------------------------------------------------------------
class TestFlattenSnapshot:
    def test_counters_and_gauges_map_to_name(self):
        registry = MetricsRegistry()
        registry.counter("req_total").inc(4)
        registry.gauge("inflight").set(2.0)
        flat = flatten_snapshot(registry.snapshot())
        assert flat["req_total"] == 4.0
        assert flat["inflight"] == 2.0

    def test_histogram_expands_to_summary_series(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            hist.observe(value)
        flat = flatten_snapshot(registry.snapshot())
        assert flat["lat_seconds_count"] == 3.0
        assert flat["lat_seconds_sum"] == pytest.approx(2.55)
        assert "lat_seconds_p50" in flat
        assert "lat_seconds_p99" in flat

    def test_nan_quantiles_are_skipped(self):
        # an empty histogram has NaN quantiles; the flat view drops them
        registry = MetricsRegistry()
        registry.histogram("empty_seconds", buckets=(1.0,))
        flat = flatten_snapshot(registry.snapshot())
        assert flat["empty_seconds_count"] == 0.0
        assert not any(math.isnan(v) for v in flat.values())
        assert "empty_seconds_p99" not in flat

    def test_non_dict_entries_ignored(self):
        assert flatten_snapshot({"junk": 5, "ok": {"value": 1}}) == \
            {"ok": 1.0}


# ----------------------------------------------------------------------
# AlertRule kinds
# ----------------------------------------------------------------------
class TestAlertRule:
    def test_value_rule_fires_and_stays_quiet(self):
        rule = AlertRule(name="r", metric="errs", op=">", threshold=2)
        assert rule.evaluate({"errs": 3.0}) is not None
        assert rule.evaluate({"errs": 2.0}) is None

    def test_missing_metric_is_skipped_not_fired(self):
        rule = AlertRule(name="r", metric="absent", op=">", threshold=0)
        assert rule.evaluate({"other": 99.0}) is None

    def test_ratio_rule_hit_rate_style(self):
        # metric / (metric + denominator): the cache hit-rate shape
        rule = AlertRule(name="hits", metric="hits", denominator="misses",
                         kind="ratio", op="<", threshold=0.5)
        assert rule.evaluate({"hits": 1.0, "misses": 9.0}) is not None
        assert rule.evaluate({"hits": 9.0, "misses": 1.0}) is None

    def test_ratio_of_total(self):
        rule = AlertRule(name="fb", metric="fallbacks", denominator="total",
                         kind="ratio", ratio_of_total=True,
                         op=">", threshold=0.25)
        alert = rule.evaluate({"fallbacks": 1.0, "total": 2.0})
        assert alert.value == pytest.approx(0.5)

    def test_min_count_gates_early_life(self):
        rule = AlertRule(name="hits", metric="hits", denominator="misses",
                         kind="ratio", op="<", threshold=0.5, min_count=20)
        # only 10 observations: silent even though the ratio is terrible
        assert rule.evaluate({"hits": 1.0, "misses": 9.0}) is None
        assert rule.evaluate({"hits": 2.0, "misses": 18.0}) is not None

    def test_rate_rule_needs_a_ring(self):
        rule = AlertRule(name="r", metric="total", kind="rate",
                         op=">", threshold=1.0)
        assert rule.evaluate({"total": 50.0}, ring=None) is None
        ring = SnapshotRing()
        ring.sample({"total": 0.0}, now=100.0)
        ring.sample({"total": 40.0}, now=110.0)
        alert = rule.evaluate({"total": 40.0}, ring=ring)
        assert alert.value == pytest.approx(4.0)

    def test_validation_rejects_bad_rules(self):
        with pytest.raises(ObservabilityError):
            AlertRule(name="r", metric="m", op="!=", threshold=0)
        with pytest.raises(ObservabilityError):
            AlertRule(name="r", metric="m", op=">", threshold=0,
                      kind="median")
        with pytest.raises(ObservabilityError):
            AlertRule(name="r", metric="m", op=">", threshold=0,
                      kind="ratio")  # ratio without denominator

    def test_from_dict_roundtrip_and_rejections(self):
        doc = {"name": "r", "metric": "m", "op": ">", "threshold": 1.5,
               "severity": "critical"}
        rule = AlertRule.from_dict(doc)
        assert rule.threshold == 1.5
        assert rule.severity == "critical"
        with pytest.raises(ObservabilityError):
            AlertRule.from_dict({**doc, "bogus_key": 1})
        with pytest.raises(ObservabilityError):
            AlertRule.from_dict({"name": "r", "metric": "m"})

    def test_alert_to_dict_shape(self):
        rule = AlertRule(name="r", metric="m", op=">", threshold=1.0,
                         description="d")
        alert = Alert(rule=rule, value=2.0)
        doc = alert.to_dict()
        assert set(doc) == {"name", "severity", "metric", "value", "op",
                            "threshold", "description"}
        assert "m=2" in alert.render()


# ----------------------------------------------------------------------
# SnapshotRing
# ----------------------------------------------------------------------
class TestSnapshotRing:
    def test_rate_and_delta(self):
        ring = SnapshotRing()
        ring.sample({"c": 10.0}, now=0.0)
        ring.sample({"c": 25.0}, now=5.0)
        assert ring.rate("c") == pytest.approx(3.0)
        assert ring.delta("c") == pytest.approx(15.0)
        assert ring.rate("absent") is None

    def test_single_sample_has_no_rate(self):
        ring = SnapshotRing()
        ring.sample({"c": 10.0}, now=0.0)
        assert ring.rate("c") is None
        assert ring.delta("c") is None

    def test_capacity_bounds_the_window(self):
        ring = SnapshotRing(capacity=2)
        for step in range(5):
            ring.sample({"c": float(step)}, now=float(step))
        assert len(ring) == 2
        assert ring.delta("c") == pytest.approx(1.0)  # only the last two

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ObservabilityError):
            SnapshotRing(capacity=1)


# ----------------------------------------------------------------------
# AlertEngine
# ----------------------------------------------------------------------
class TestAlertEngine:
    def _snapshot(self, failures: int) -> dict:
        registry = MetricsRegistry()
        registry.counter("planner_conformance_failures_total").inc(failures)
        return registry.snapshot()

    def test_newly_fired_edge_trigger(self):
        engine = AlertEngine()
        assert engine.evaluate(self._snapshot(0), now=0.0) == []
        assert engine.newly_fired == []
        [alert] = engine.evaluate(self._snapshot(1), now=1.0)
        assert alert.rule.name == "conformance_failures"
        assert engine.newly_fired == ["conformance_failures"]
        # still firing, but no longer *newly* firing
        [alert] = engine.evaluate(self._snapshot(1), now=2.0)
        assert engine.newly_fired == []

    def test_custom_rules_replace_builtins(self):
        rule = AlertRule(name="only", metric="x", op=">=", threshold=1)
        engine = AlertEngine(rules=[rule])
        assert [r.name for r in engine.rules] == ["only"]
        [alert] = engine.evaluate({"x": {"value": 1}}, now=0.0)
        assert alert.rule.name == "only"

    def test_builtin_rules_are_the_roadmap_six(self):
        assert sorted(rule.name for rule in builtin_rules()) == [
            "cache_hit_rate_floor",
            "conformance_failures",
            "fleet_rollbacks",
            "serve_latency_p99_ceiling",
            "symmetry_fallback_rate",
            "wal_append_latency_p99",
        ]


# ----------------------------------------------------------------------
# ExplainRecord
# ----------------------------------------------------------------------
class TestExplainRecord:
    def test_roundtrip(self):
        record = ExplainRecord(
            source="solve", fingerprint="abc123", tag="t",
            warm_donor="donor9", conformance="ok", serve_time=0.25,
            phases={"planner.submit": 0.01},
            solve={"method": "milp", "stats": {"horizon_attempts": 2}})
        clone = ExplainRecord.from_dict(record.to_dict())
        assert clone == record

    def test_from_dict_ignores_unknown_and_defaults_missing(self):
        record = ExplainRecord.from_dict(
            {"source": "cache", "future_field": 1})
        assert record.source == "cache"
        assert record.conformance == "unchecked"
        assert record.phases == {}

    def test_render_mentions_the_evidence(self):
        record = ExplainRecord(
            source="solve", fingerprint="abc123", cache_hit=False,
            symmetry_collapsed=True, warm_donor="donor9",
            conformance="ok", serve_time=0.002,
            phases={"planner.submit": 0.001},
            solve={"method": "milp",
                   "stats": {"orbits": 4, "cols_reduced": 10}})
        text = record.render()
        assert "source        : solve" in text
        assert "abc123" in text
        assert "symmetry-collapsed" in text
        assert "donor9" in text
        assert "orbits" in text
        assert "planner.submit" in text

    def test_error_record_renders_error_line(self):
        record = ExplainRecord(source="error", error="boom")
        assert "error         : boom" in record.render()

    def test_solve_stats_subset_filters_to_scalars(self):
        stats = {"horizon_attempts": 3, "orbits": 4,
                 "matrix": [[1, 2]], "build_time": 0.5, "junk": object()}
        subset = solve_stats_subset(stats)
        assert subset == {"horizon_attempts": 3, "orbits": 4,
                          "build_time": 0.5}
        assert solve_stats_subset(None) == {}
