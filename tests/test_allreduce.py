"""Tests for the two-phase ALLREDUCE composition."""

import pytest

from repro import topology
from repro.collectives import ring_allreduce_time, synthesize_allreduce
from repro.core import Method, TecclConfig
from repro.errors import DemandError


def cfg(num_epochs=None, **kwargs):
    return TecclConfig(chunk_bytes=1.0, num_epochs=num_epochs, **kwargs)


class TestSynthesizeAllreduce:
    def test_phases_route_to_right_formulations(self, ring4):
        out = synthesize_allreduce(ring4, cfg(12))
        assert out.reduce_scatter.method is Method.LP
        assert out.allgather.method is Method.MILP

    def test_finish_time_is_sum_of_phases(self, ring4):
        out = synthesize_allreduce(ring4, cfg(12))
        assert out.finish_time == pytest.approx(
            out.reduce_scatter.finish_time + out.allgather.finish_time)
        assert out.finish_time > 0

    def test_beats_or_matches_ring_allreduce(self, ring4):
        out = synthesize_allreduce(ring4, cfg(12))
        # per-GPU input = N−1 distinct blocks of one chunk each
        ring_time = ring_allreduce_time(ring4, 1.0)
        # the two-phase barrier composition may not beat the ring on a
        # homogeneous ring (the ring *is* optimal there), but must be in
        # the same regime — and each phase individually is optimal
        assert out.finish_time <= 2 * ring_time + 1e-9

    def test_bus_bandwidth_positive(self, ring4):
        out = synthesize_allreduce(ring4, cfg(12))
        bw = out.bus_bandwidth(num_gpus=4, input_bytes=3.0)
        assert bw > 0

    def test_bus_bandwidth_validates(self, ring4):
        out = synthesize_allreduce(ring4, cfg(12))
        with pytest.raises(DemandError):
            out.bus_bandwidth(num_gpus=1, input_bytes=3.0)

    def test_single_gpu_rejected(self):
        topo = topology.line(2, capacity=1.0)
        from repro.topology.transforms import subset_gpus

        single = subset_gpus(topo, [0])
        with pytest.raises(DemandError):
            synthesize_allreduce(single, cfg(8))

    def test_dgx1_allreduce(self, dgx1):
        config = TecclConfig(chunk_bytes=1e6, num_epochs=10)
        out = synthesize_allreduce(dgx1, config)
        assert out.finish_time > 0
        assert out.solve_time > 0

    def test_multiple_chunks_per_pair(self, ring4):
        small = synthesize_allreduce(ring4, cfg(16), chunks_per_pair=1)
        large = synthesize_allreduce(ring4, cfg(16), chunks_per_pair=2)
        # more data cannot finish faster
        assert large.finish_time >= small.finish_time - 1e-9


class TestRingAllreduceTime:
    def test_closed_form(self):
        topo = topology.ring(5, capacity=2.0, alpha=0.5)
        t = ring_allreduce_time(topo, 4.0)
        assert t == pytest.approx(2 * 4 * (0.5 + 2.0))

    def test_explicit_ring_order(self, ring4):
        t = ring_allreduce_time(ring4, 1.0, ring=[0, 1, 2, 3])
        assert t == pytest.approx(2 * 3 * 1.0)
