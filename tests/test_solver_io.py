"""Tests for LP-format model export."""

import pytest

from repro.errors import ModelError
from repro.solver import Model, Sense, VarType, quicksum
from repro.solver.io import lp_statistics, save_lp, write_lp


@pytest.fixture
def toy_model():
    m = Model("toy", sense=Sense.MAXIMIZE)
    x = m.add_var(ub=4, name="x")
    y = m.add_var(vtype=VarType.BINARY, name="F[(0,0),0,1,2]")
    z = m.add_var(vtype=VarType.INTEGER, lb=1, ub=5, name="z")
    m.add_constr(x + 2 * y <= 6, name="cap[0,1]")
    m.add_constr(x - z >= -1)
    m.add_constr(y + z == 3)
    m.set_objective(x + 3 * y + z)
    return m


class TestWriteLp:
    def test_structure(self, toy_model):
        text = write_lp(toy_model)
        stats = lp_statistics(text)
        assert stats["sense"] == "maximize"
        assert stats["num_constraints"] == 3
        assert stats["num_binaries"] == 1
        assert stats["num_generals"] == 1

    def test_names_sanitised(self, toy_model):
        text = write_lp(toy_model)
        assert "[" not in text and "(" not in text

    def test_relations_rendered(self, toy_model):
        text = write_lp(toy_model)
        assert "<= 6" in text
        assert ">= -1" in text
        assert "= 3" in text

    def test_bounds_section(self, toy_model):
        text = write_lp(toy_model)
        assert "0 <= x <= 4" in text
        assert "1 <= z <= 5" in text

    def test_minimise_header(self):
        m = Model("min")
        x = m.add_var()
        m.set_objective(x)
        assert "Minimize" in write_lp(m)

    def test_empty_model_rejected(self):
        with pytest.raises(ModelError):
            write_lp(Model("empty"))

    def test_save_to_file(self, toy_model, tmp_path):
        path = tmp_path / "model.lp"
        save_lp(toy_model, path)
        assert lp_statistics(path.read_text())["num_constraints"] == 3

    def test_teccl_model_exports(self, ring4):
        from repro import collectives
        from repro.core import TecclConfig
        from repro.core.epochs import build_epoch_plan
        from repro.core.milp import MilpBuilder

        demand = collectives.allgather(ring4.gpus, 1)
        cfg = TecclConfig(chunk_bytes=1.0, num_epochs=6)
        plan = build_epoch_plan(ring4, cfg, 6)
        problem = MilpBuilder(ring4, demand, cfg, plan).build()
        stats = lp_statistics(write_lp(problem.model))
        assert stats["num_constraints"] == problem.model.num_constraints
        assert stats["num_binaries"] == sum(
            1 for v in problem.model.variables()
            if v.vtype is VarType.BINARY)


class TestLpStatistics:
    def test_garbage_rejected(self):
        with pytest.raises(ModelError):
            lp_statistics("hello world")

    def test_missing_sense_rejected(self):
        with pytest.raises(ModelError):
            lp_statistics("Subject To\n c0: x <= 1\nEnd")
