"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.msccl import parse_msccl_xml


class TestTopologies:
    def test_listing(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        for name in ("dgx1", "ndv2", "dgx2", "internal1", "internal2"):
            assert name in out


class TestSynth:
    def test_dgx1_allgather(self, capsys):
        code = main(["synth", "--topology", "dgx1",
                     "--collective", "allgather",
                     "--chunk-size", "25e3", "--epochs", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "method       : milp" in out
        assert "finish time" in out

    def test_alltoall_routes_to_lp(self, capsys):
        code = main(["synth", "--topology", "internal2", "--chassis", "2",
                     "--collective", "alltoall", "--chunk-size", "1e6"])
        assert code == 0
        assert "method       : lp" in capsys.readouterr().out

    def test_explicit_method_astar(self, capsys):
        code = main(["synth", "--topology", "internal2", "--chassis", "2",
                     "--collective", "allgather", "--chunk-size", "1e6",
                     "--method", "astar"])
        assert code == 0
        assert "method       : astar" in capsys.readouterr().out

    def test_export_writes_xml(self, tmp_path, capsys):
        target = tmp_path / "algo.xml"
        code = main(["synth", "--topology", "dgx1",
                     "--collective", "allgather",
                     "--chunk-size", "25e3", "--epochs", "10",
                     "--export", str(target)])
        assert code == 0
        parsed = parse_msccl_xml(target.read_text())
        assert parsed["attrs"]["coll"] == "allgather"

    def test_infeasible_reports_error(self, capsys):
        code = main(["synth", "--topology", "dgx1",
                     "--collective", "allgather",
                     "--chunk-size", "25e3", "--epochs", "1"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_arguments_rejected(self):
        with pytest.raises(SystemExit):
            main(["synth", "--topology", "nonsense"])

    def test_timeline_and_events_flags(self, capsys):
        code = main(["synth", "--topology", "dgx1",
                     "--collective", "allgather",
                     "--chunk-size", "25e3", "--epochs", "10",
                     "--timeline", "--events"])
        assert code == 0
        out = capsys.readouterr().out
        assert "event finish" in out
        assert "link" in out and "->" in out


class TestSweep:
    def test_chunk_size_sweep(self, capsys):
        code = main(["sweep", "--topology", "dgx1",
                     "--collective", "allgather",
                     "--chunk-sizes", "12.5e3,25e3",
                     "--time-limit", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best chunk size" in out
        assert out.count("\n") >= 4  # header + 2 rows + best line


class TestConformanceVerbs:
    def test_synth_check_reports_conformant(self, capsys):
        code = main(["synth", "--topology", "dgx1",
                     "--collective", "allgather",
                     "--chunk-size", "25e3", "--epochs", "10", "--check"])
        assert code == 0
        out = capsys.readouterr().out
        assert "conformance  : conformant" in out
        assert "replayed" in out and "claimed" in out

    def test_export_json_then_verify_schedule(self, tmp_path, capsys):
        target = tmp_path / "result.json"
        assert main(["synth", "--topology", "dgx1",
                     "--collective", "allgather",
                     "--chunk-size", "25e3", "--epochs", "10",
                     "--export-json", str(target)]) == 0
        capsys.readouterr()
        assert main(["verify", "--schedule", str(target)]) == 0
        out = capsys.readouterr().out
        assert "conformance  : conformant" in out
        assert "method       : milp" in out

    def test_verify_schedule_flags_corruption(self, tmp_path, capsys):
        import json

        target = tmp_path / "result.json"
        assert main(["synth", "--topology", "dgx1",
                     "--collective", "allgather",
                     "--chunk-size", "25e3", "--epochs", "10",
                     "--export-json", str(target)]) == 0
        document = json.loads(target.read_text())
        for send in document["schedule"]["sends"]:
            send[0] = 0  # collapse every send onto epoch 0
        target.write_text(json.dumps(document))
        capsys.readouterr()
        assert main(["verify", "--schedule", str(target)]) == 1
        out = capsys.readouterr().out
        assert "VIOLATIONS" in out
        assert "capacity" in out

    def test_verify_xml_still_needs_topology(self, tmp_path, capsys):
        xml = tmp_path / "algo.xml"
        assert main(["synth", "--topology", "dgx1",
                     "--collective", "allgather",
                     "--chunk-size", "25e3", "--epochs", "10",
                     "--export", str(xml)]) == 0
        capsys.readouterr()
        assert main(["verify", "--xml", str(xml)]) == 1
        assert "--topology" in capsys.readouterr().err
        assert main(["verify", "--xml", str(xml), "--topology", "dgx1",
                     "--chunk-size", "25e3"]) == 0
