"""CLI tests for the planner-service verbs: serve-batch and cache."""

import json

from repro.cli import main


def _write_requests(tmp_path, specs):
    path = tmp_path / "requests.json"
    path.write_text(json.dumps(specs), encoding="utf-8")
    return str(path)


BATCH = [
    {"topology": "dgx1", "collective": "allgather",
     "chunk_size": 25e3, "epochs": 10, "tag": "ag-a"},
    {"topology": "dgx1", "collective": "allgather",
     "chunk_size": 25e3, "epochs": 10, "tag": "ag-b"},
    {"topology": "dgx1", "collective": "alltoall",
     "chunk_size": 25e3, "tag": "a2a"},
]


class TestServeBatch:
    def test_batch_coalesces_and_caches(self, tmp_path, capsys):
        requests = _write_requests(tmp_path, BATCH)
        cache_dir = str(tmp_path / "cache")
        code = main(["serve-batch", "--requests", requests,
                     "--cache-dir", cache_dir, "--pool", "thread",
                     "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        # ag-a and ag-b are the same instance: one solves, one coalesces
        assert "solves       : 2 (1 coalesced)" in out
        assert "cache        : 0 hits / 3 misses" in out

        # the same batch again is served entirely from the on-disk cache
        code = main(["serve-batch", "--requests", requests,
                     "--cache-dir", cache_dir, "--pool", "inline"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cache        : 3 hits / 0 misses" in out
        assert "solves       : 0 (0 coalesced)" in out

    def test_full_plan_request_dialect(self, tmp_path, capsys):
        from repro import collectives, topology
        from repro.core import TecclConfig
        from repro.service import PlanRequest

        topo = topology.ring(4, capacity=1.0)
        request = PlanRequest(
            topology=topo,
            demand=collectives.allgather(topo.gpus, 1),
            config=TecclConfig(chunk_bytes=1.0, num_epochs=8),
            tag="explicit")
        requests = _write_requests(tmp_path, [request.to_dict()])
        code = main(["serve-batch", "--requests", requests,
                     "--pool", "inline"])
        assert code == 0
        assert "explicit" in capsys.readouterr().out

    def test_error_requests_reported_not_fatal(self, tmp_path, capsys):
        specs = BATCH[:1] + [
            {"topology": "dgx1", "collective": "allgather",
             "chunk_size": 25e3, "epochs": 1, "tag": "doomed"}]
        requests = _write_requests(tmp_path, specs)
        code = main(["serve-batch", "--requests", requests,
                     "--pool", "inline"])
        assert code == 1  # batch completed, but a request failed
        captured = capsys.readouterr()
        assert "error" in captured.out or "error" in captured.err
        assert "ag-a" in captured.out  # the good request was still served

    def test_bad_spec_rejected(self, tmp_path, capsys):
        requests = _write_requests(tmp_path, [{"topology": "nope"}])
        code = main(["serve-batch", "--requests", requests,
                     "--pool", "inline"])
        assert code == 1
        assert "unknown topology" in capsys.readouterr().err


class TestCacheVerb:
    def test_missing_directory_is_an_error_not_a_mkdir(self, tmp_path,
                                                       capsys):
        missing = tmp_path / "typo-dir"
        code = main(["cache", "--dir", str(missing)])
        assert code == 1
        assert "does not exist" in capsys.readouterr().err
        assert not missing.exists()  # inspection created nothing


    def test_stats_list_purge(self, tmp_path, capsys):
        requests = _write_requests(tmp_path, BATCH[:1])
        cache_dir = str(tmp_path / "cache")
        assert main(["serve-batch", "--requests", requests,
                     "--cache-dir", cache_dir, "--pool", "inline"]) == 0
        capsys.readouterr()

        assert main(["cache", "--dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries      : 1 (0 stale)" in out

        assert main(["cache", "--dir", cache_dir, "--action", "list"]) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out

        assert main(["cache", "--dir", cache_dir, "--action", "purge"]) == 0
        assert "purged" in capsys.readouterr().out
        assert main(["cache", "--dir", cache_dir]) == 0
        assert "entries      : 0" in capsys.readouterr().out
