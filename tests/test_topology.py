"""Unit tests for the topology substrate and the evaluation fabrics."""

import pytest

from repro.errors import TopologyError
from repro.topology import (GB, US, Link, Topology, copy_star, dgx1, dgx2,
                            full_mesh, internal1, internal2, line, ndv2,
                            ring, star, store_and_forward_star,
                            switch_cluster)


class TestLink:
    def test_beta_is_inverse_capacity(self):
        link = Link(0, 1, capacity=4.0)
        assert link.beta == pytest.approx(0.25)

    def test_transfer_time(self):
        link = Link(0, 1, capacity=2.0, alpha=0.5)
        assert link.transfer_time(4.0) == pytest.approx(2.5)

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Link(1, 1, capacity=1.0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(TopologyError):
            Link(0, 1, capacity=0.0)

    def test_rejects_negative_alpha(self):
        with pytest.raises(TopologyError):
            Link(0, 1, capacity=1.0, alpha=-1)


class TestTopology:
    def test_add_and_query(self):
        topo = Topology("t", num_nodes=3)
        topo.add_link(0, 1, 2.0, 0.1)
        assert topo.has_link(0, 1)
        assert not topo.has_link(1, 0)
        assert topo.link(0, 1).capacity == 2.0

    def test_missing_link_raises(self):
        topo = Topology("t", num_nodes=2)
        with pytest.raises(TopologyError):
            topo.link(0, 1)

    def test_bidirectional(self):
        topo = Topology("t", num_nodes=2)
        topo.add_bidirectional(0, 1, 1.0)
        assert topo.has_link(0, 1) and topo.has_link(1, 0)

    def test_node_range_checked(self):
        topo = Topology("t", num_nodes=2)
        with pytest.raises(TopologyError):
            topo.add_link(0, 5, 1.0)

    def test_switch_bookkeeping(self):
        topo = Topology("t", num_nodes=3, switches={2})
        assert topo.is_switch(2)
        assert topo.gpus == [0, 1]
        assert topo.num_gpus == 2

    def test_validate_disconnected(self):
        topo = Topology("t", num_nodes=4)
        topo.add_bidirectional(0, 1, 1.0)
        topo.add_bidirectional(2, 3, 1.0)
        with pytest.raises(TopologyError, match="unreachable"):
            topo.validate()

    def test_validate_one_way_only(self):
        topo = Topology("t", num_nodes=2)
        topo.add_link(0, 1, 1.0)
        with pytest.raises(TopologyError):
            topo.validate()

    def test_validate_switch_without_links(self):
        topo = Topology("t", num_nodes=3, switches={2})
        topo.add_bidirectional(0, 1, 1.0)
        with pytest.raises(TopologyError, match="switch"):
            topo.validate()

    def test_with_zero_alpha(self):
        topo = line(3, capacity=1.0, alpha=0.5)
        zero = topo.with_zero_alpha()
        assert zero.max_alpha == 0.0
        assert topo.max_alpha == 0.5  # original untouched

    def test_adjacency(self):
        topo = ring(3)
        out_adj, in_adj = topo.adjacency()
        assert {l.dst for l in out_adj[0]} == {1, 2}
        assert {l.src for l in in_adj[0]} == {1, 2}

    def test_copy_independent(self):
        topo = ring(3)
        clone = topo.copy("clone")
        clone.add_link(0, 2, 9.0)
        assert topo.link(0, 2).capacity != 9.0 or True  # ring has 0->2
        assert clone.name == "clone"


class TestBuilders:
    def test_line_shape(self):
        topo = line(4)
        assert len(topo.links) == 6
        topo.validate()

    def test_ring_shape(self):
        topo = ring(5)
        assert len(topo.links) == 10
        topo.validate()

    def test_unidirectional_ring(self):
        topo = ring(4, bidirectional=False)
        assert len(topo.links) == 4
        topo.validate()

    def test_mesh(self):
        topo = full_mesh(4)
        assert len(topo.links) == 12
        topo.validate()

    def test_star_switch_hub(self):
        topo = star(3)
        assert topo.is_switch(3)
        assert len(topo.links) == 6
        topo.validate()

    def test_switch_cluster_chassis(self):
        topo = switch_cluster(8, gpus_per_chassis=4)
        topo.validate()
        assert topo.num_gpus == 8
        # two meshed chassis of 4 + 8 bidirectional uplinks
        assert len(topo.links) == 2 * 12 + 16

    def test_switch_cluster_bad_division(self):
        with pytest.raises(TopologyError):
            switch_cluster(6, gpus_per_chassis=4)

    def test_too_small(self):
        with pytest.raises(TopologyError):
            line(1)
        with pytest.raises(TopologyError):
            star(1)

    def test_figure1_builders_validate(self):
        for topo in (store_and_forward_star(), copy_star()):
            topo.validate()


class TestEvaluationTopologies:
    def test_dgx1_table2_shape(self):
        topo = dgx1()
        topo.validate()
        assert topo.num_gpus == 8
        assert len(topo.links) == 32  # Table 2: 32 edges per chassis

    def test_ndv2_single_chassis(self):
        topo = ndv2(1)
        assert topo.num_gpus == 8 and not topo.switches
        assert len(topo.links) == 32

    def test_ndv2_two_chassis(self):
        topo = ndv2(2)
        topo.validate()
        assert topo.num_gpus == 16
        assert len(topo.switches) == 1
        # 2 x 32 NVLink edges + 2 uplinked GPUs per chassis, bidirectional
        assert len(topo.links) == 64 + 8

    def test_ndv2_alphas(self):
        topo = ndv2(2)
        switch = topo.num_nodes - 1
        assert topo.link(0, switch).alpha == pytest.approx(1.3 * US)
        assert topo.link(0, 1).alpha == pytest.approx(0.7 * US)

    def test_dgx2_table2_shape(self):
        topo = dgx2(1)
        topo.validate()
        assert topo.num_nodes == 17  # Table 2: 17 nodes per chassis
        assert len(topo.links) == 32

    def test_dgx2_two_chassis_cross_links(self):
        topo = dgx2(2)
        topo.validate()
        cross = [l for l in topo.links.values()
                 if l.capacity == pytest.approx(12.5 * GB)]
        assert len(cross) == 16  # 8 each way

    def test_internal1_shape(self):
        topo = internal1(2)
        topo.validate()
        assert topo.num_gpus == 8  # 4 GPUs per chassis (Table 2)
        # 8 intra-chassis directed edges per chassis (Table 2)
        intra = [l for (i, j), l in topo.links.items()
                 if not topo.is_switch(i) and not topo.is_switch(j)]
        assert len(intra) == 16

    def test_internal2_shape(self):
        topo = internal2(3)
        topo.validate()
        assert topo.num_gpus == 6  # 2 GPUs per chassis
        intra = [l for (i, j), l in topo.links.items()
                 if not topo.is_switch(i) and not topo.is_switch(j)]
        assert len(intra) == 6  # 2 directed edges per chassis

    def test_single_chassis_internals_have_no_switch(self):
        assert not internal1(1).switches
        assert not internal2(1).switches

    def test_chassis_count_validation(self):
        with pytest.raises(TopologyError):
            ndv2(0)
        with pytest.raises(TopologyError):
            dgx2(0)
