"""Smoke tests: the fast example scripts run end-to-end as documented.

The slow, sweep-style examples (`large_scale_astar.py`, `epoch_tuning.py`,
`multi_tenant_cluster.py`) are exercised implicitly by the benchmark suite's
equivalent workloads and stay out of the unit-test budget.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "method        : milp" in out
        assert "simulated     : ok=True" in out
        assert "msccl xml" in out

    def test_motivating_examples(self):
        out = run_example("motivating_examples.py")
        assert "TE-CCL schedule finishes: 8.0 s" in out
        assert "same optimum" in out
        assert "copy halves the broadcast" in out

    def test_failure_adaptation(self):
        out = run_example("failure_adaptation.py")
        assert "ring" in out and "broken" in out
        assert "re-planned" in out
        assert "seeded from the healthy solve" in out
        assert "validated on the degraded fabric" in out

    def test_fleet_control(self):
        out = run_example("fleet_control.py")
        assert "link 0->1 drops to 40% capacity" in out
        assert "replan" in out
        assert "conformance-vetted before activation" in out
        assert "zero non-conformant schedules activated: ok" in out

    def test_fleet_recovery(self):
        out = run_example("fleet_recovery.py")
        assert "lease acquired" in out
        assert "recovered 1 schedule(s)" in out
        assert "conformance_ok=True" in out
        assert "matches the pre-crash incumbent exactly" in out
        assert "fenced generation 2" in out
        assert "durable control plane: ok" in out

    def test_topology_design(self):
        out = run_example("topology_design.py")
        assert "greedy augmentation" in out
        assert "search never degraded the design: ok" in out

    def test_msccl_pipeline(self):
        out = run_example("msccl_pipeline.py")
        assert "instructions fired" in out
        assert "every demanded chunk delivered" in out
        assert "wire occupancy" in out

    def test_calibration_loop(self):
        out = run_example("calibration_loop.py")
        assert "links fitted" in out
        assert "calibration penalty" in out

    def test_allreduce_composition(self):
        out = run_example("allreduce_composition.py")
        assert "phase 1 (RS)   : lp" in out
        assert "phase 2 (AG)   : milp" in out
        assert "vs ring" in out

    def test_training_job_scheduling(self):
        out = run_example("training_job_scheduling.py")
        assert "== dlrm:" in out and "== moe:" in out
        assert out.count("step total") == 2

    def test_observability(self):
        out = run_example("observability.py")
        assert "synthesized   : milp" in out
        assert "leaf coverage" in out
        assert "chrome trace" in out
        assert "spans" in out

    def test_planner_service(self):
        out = run_example("planner_service.py")
        assert "cold solve" in out
        assert "hit=True" in out
        assert "1 hits" not in out  # two hits: the warm call + the rebuild
        assert "2 hits / 1 misses / 1 solves" in out

    @pytest.mark.parametrize("name", [
        "quickstart.py", "motivating_examples.py", "failure_adaptation.py",
        "multi_tenant_cluster.py", "large_scale_astar.py", "epoch_tuning.py",
        "topology_design.py", "msccl_pipeline.py", "calibration_loop.py",
        "congestion_study.py", "allreduce_composition.py",
        "training_job_scheduling.py", "planner_service.py",
        "observability.py",
    ])
    def test_examples_compile(self, name):
        source = (EXAMPLES / name).read_text(encoding="utf-8")
        compile(source, name, "exec")
