"""Fleet control plane: telemetry, estimator, controller, orchestrator.

The satellite-mandated scenarios live here too: a flapping link must not
trigger two replans within the estimator's cool-down window, and an
adapted schedule that fails conformance must roll back (the incumbent
stays active; a non-conformant schedule can never activate).
"""

import dataclasses

import pytest

from repro import collectives, topology
from repro.core import TecclConfig
from repro.errors import FleetError, ServiceError
from repro.fleet import (AdaptationController, CostGate, FabricEstimator,
                         FleetJob, FleetOrchestrator, LinkEvent, LinkHealth,
                         LinkSample, ScheduleRegistry, SyntheticTelemetry,
                         TraceTelemetry, predicted_finish)
from repro.service import Planner
from repro.topology.transforms import with_capacity_overrides

pytestmark = pytest.mark.fleet


def tiny_ring(n=4):
    return topology.ring(n, capacity=1.0)


def a2a_job(topo, name="a2a", chunks=1, priority=1.0):
    return FleetJob(name=name,
                    demand=collectives.alltoall(topo.gpus, chunks),
                    config=TecclConfig(chunk_bytes=1.0 / chunks),
                    priority=priority)


@pytest.fixture
def planner():
    with Planner(executor="inline") as p:
        yield p


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
class TestLinkSample:
    def test_roundtrip(self):
        sample = LinkSample(link=(0, 1), time=2.0, bandwidth=0.8,
                            latency=1e-6, loss=0.1)
        assert LinkSample.from_dict(sample.to_dict()) == sample

    def test_validation(self):
        with pytest.raises(FleetError):
            LinkSample(link=(0, 1), time=0.0, bandwidth=-1.0)
        with pytest.raises(FleetError):
            LinkSample(link=(0, 1), time=0.0, bandwidth=1.0, loss=1.5)
        with pytest.raises(FleetError):
            LinkSample.from_dict({"src": 0})

    def test_non_finite_fields_rejected(self):
        # NaN slips through ordinary comparisons and would poison the
        # estimator's EWMA for the link permanently
        for kwargs in ({"bandwidth": float("nan")},
                       {"bandwidth": float("inf")},
                       {"loss": float("nan")},
                       {"time": float("nan")}):
            with pytest.raises(FleetError):
                LinkSample(link=(0, 1), time=kwargs.pop("time", 0.0),
                           bandwidth=kwargs.pop("bandwidth", 1.0),
                           **kwargs)


class TestSyntheticTelemetry:
    def test_same_seed_same_stream(self):
        from repro.simulate import DriftModel

        topo = tiny_ring()
        streams = []
        for _ in range(2):
            source = SyntheticTelemetry(
                topo, drift=DriftModel(sigma=0.1), noise=0.05, seed=11)
            streams.append([s for _ in range(5) for s in source.poll()])
        assert streams[0] == streams[1]

    def test_scripted_degradation_window(self):
        topo = tiny_ring()
        source = SyntheticTelemetry(topo, events=[
            LinkEvent(at=1.0, link=(0, 1), factor=0.5, until=3.0)])
        by_step = [
            {s.link: s.bandwidth for s in source.poll()} for _ in range(4)]
        assert by_step[0][(0, 1)] == pytest.approx(1.0)
        assert by_step[1][(0, 1)] == pytest.approx(0.5)
        assert by_step[2][(0, 1)] == pytest.approx(0.5)
        assert by_step[3][(0, 1)] == pytest.approx(1.0)  # event ended
        # other links are untouched throughout
        assert all(step[(1, 2)] == pytest.approx(1.0) for step in by_step)

    def test_down_event(self):
        topo = tiny_ring()
        source = SyntheticTelemetry(topo, events=[
            LinkEvent(at=0.0, link=(2, 3), down=True)])
        samples = {s.link: s for s in source.poll()}
        assert samples[(2, 3)].bandwidth == 0.0
        assert samples[(2, 3)].loss == 1.0

    def test_unknown_event_link_rejected(self):
        with pytest.raises(FleetError):
            SyntheticTelemetry(tiny_ring(), events=[
                LinkEvent(at=0.0, link=(0, 9))])


class TestTraceTelemetry:
    def test_groups_by_time(self):
        samples = [LinkSample(link=(0, 1), time=t, bandwidth=1.0)
                   for t in (0.0, 0.0, 1.0)]
        source = TraceTelemetry(samples)
        assert len(source.poll()) == 2
        assert len(source.poll()) == 1
        assert source.poll() == [] and source.exhausted


# ----------------------------------------------------------------------
# estimator
# ----------------------------------------------------------------------
def feed(estimator, link, values, t0=0.0):
    out = []
    for i, value in enumerate(values):
        sample = LinkSample(link=link, time=t0 + float(i),
                            bandwidth=value,
                            loss=1.0 if value == 0.0 else 0.0)
        transition = estimator.observe(sample)
        if transition is not None:
            out.append(transition)
    return out


class TestEstimator:
    def test_healthy_fabric_never_transitions(self):
        topo = tiny_ring()
        estimator = FabricEstimator(topo)
        source = SyntheticTelemetry(topo)
        for _ in range(5):
            assert estimator.observe_all(source.poll()) == []
        assert estimator.snapshot()["health"]["healthy"] == len(topo.links)

    def test_degradation_detected_and_live_view_scaled(self):
        topo = tiny_ring()
        estimator = FabricEstimator(topo, smoothing=1.0)
        transitions = feed(estimator, (0, 1), [0.5, 0.5])
        assert [t.new for t in transitions] == [LinkHealth.DEGRADED]
        live = estimator.live_topology()
        assert live.links[(0, 1)].capacity == pytest.approx(0.5)
        assert live.links[(1, 2)].capacity == pytest.approx(1.0)

    def test_down_link_dropped_from_live_view(self):
        topo = tiny_ring()
        estimator = FabricEstimator(topo, smoothing=1.0)
        transitions = feed(estimator, (0, 1), [0.0, 0.0])
        assert transitions[-1].new is LinkHealth.DOWN
        assert (0, 1) not in estimator.live_topology().links

    def test_min_samples_holds_first_verdict(self):
        estimator = FabricEstimator(tiny_ring(), smoothing=1.0,
                                    min_samples=3)
        assert feed(estimator, (0, 1), [0.1, 0.1]) == []
        assert len(feed(estimator, (0, 1), [0.1], t0=2.0)) == 1

    def test_recovery_needs_margin(self):
        estimator = FabricEstimator(tiny_ring(), smoothing=1.0,
                                    degraded_below=0.8, recover_margin=0.1)
        feed(estimator, (0, 1), [0.5, 0.5])
        # hovering inside the margin band: still degraded
        assert feed(estimator, (0, 1), [0.85, 0.85], t0=2.0) == []
        # clearing the margin: healthy again
        recovered = feed(estimator, (0, 1), [0.95, 0.95], t0=4.0)
        assert [t.new for t in recovered] == [LinkHealth.HEALTHY]

    def test_cooldown_suppresses_flapping(self):
        """The satellite scenario: a flap yields one transition per window."""
        estimator = FabricEstimator(tiny_ring(), smoothing=1.0,
                                    min_samples=1, cooldown=10.0)
        flapping = [0.5, 1.0, 0.4, 1.0, 0.5, 1.0]
        transitions = feed(estimator, (0, 1), flapping)
        assert len(transitions) == 1  # only the first drop gets through
        # after the window the state can move again
        late = feed(estimator, (0, 1), [1.0], t0=20.0)
        assert [t.new for t in late] == [LinkHealth.HEALTHY]

    def test_unknown_link_rejected(self):
        estimator = FabricEstimator(tiny_ring())
        with pytest.raises(FleetError):
            estimator.observe(LinkSample(link=(0, 9), time=0.0,
                                         bandwidth=1.0))

    def test_frozen_degraded_link_keeps_positive_live_capacity(self):
        """Lost probes during a cooldown must not zero a live capacity."""
        estimator = FabricEstimator(tiny_ring(), smoothing=1.0,
                                    min_samples=1, cooldown=10.0)
        feed(estimator, (0, 1), [0.5])        # transition to DEGRADED
        feed(estimator, (0, 1), [0.0], t0=1)  # all probes lost, frozen
        live = estimator.live_topology()      # must not raise
        assert live.links[(0, 1)].capacity > 0

    def test_unrecoverable_threshold_combo_rejected(self):
        with pytest.raises(FleetError):
            FabricEstimator(tiny_ring(), degraded_below=0.95,
                            recover_margin=0.1)

    def test_degraded_factor_capped_at_declared_capacity(self):
        # a frozen DEGRADED link whose EWMA wandered above declared
        # capacity must not advertise bandwidth the fabric does not have
        estimator = FabricEstimator(tiny_ring(), smoothing=1.0,
                                    min_samples=1, cooldown=10.0)
        feed(estimator, (0, 1), [0.5])        # transition to DEGRADED
        feed(estimator, (0, 1), [1.3], t0=1)  # noise spike, still frozen
        assert estimator.live_topology().links[(0, 1)].capacity \
            == pytest.approx(1.0)


# ----------------------------------------------------------------------
# cost gate + prediction
# ----------------------------------------------------------------------
class TestCostGateAndPrediction:
    def test_gate_ignores_noise_and_acts_on_regressions(self):
        gate = CostGate(min_regression=0.1, amortize_iterations=100)
        assert not gate.should_replan(predicted=1.04, active=1.0,
                                      solve_cost=1.0)
        assert gate.should_replan(predicted=2.0, active=1.0, solve_cost=1.0)
        assert gate.should_replan(predicted=float("inf"), active=1.0,
                                  solve_cost=1.0)
        # a regression too small to amortise the solve is kept
        assert not gate.should_replan(predicted=1.2, active=1.0,
                                      solve_cost=1000.0)

    def test_predicted_finish_scales_with_worst_used_link(self, planner):
        topo = tiny_ring()
        request_demand = collectives.alltoall(topo.gpus, 1)
        from repro.core.solve import synthesize

        result = synthesize(topo, request_demand,
                            TecclConfig(chunk_bytes=1.0))
        live = with_capacity_overrides(topo, {(0, 1): 0.5})
        predicted = predicted_finish(result, topo, live)
        assert predicted == pytest.approx(result.finish_time / 0.5)
        # a dead used link breaks the schedule outright
        dead = with_capacity_overrides(topo, {}, drop=[(0, 1)])
        assert predicted_finish(result, topo, dead) == float("inf")


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def _result(self, topo):
        from repro.core.solve import synthesize

        return synthesize(topo, collectives.alltoall(topo.gpus, 1),
                          TecclConfig(chunk_bytes=1.0))

    def test_activation_requires_conformance_pass(self):
        registry = ScheduleRegistry()
        entry = registry.propose("job", self._result(tiny_ring()), 0.0)
        with pytest.raises(FleetError):
            registry.activate(entry)  # verdict still None
        entry.conformance_ok = False
        with pytest.raises(FleetError):
            registry.activate(entry)
        entry.conformance_ok = True
        assert registry.activate(entry).status.value == "active"

    def test_rollback_keeps_incumbent(self):
        registry = ScheduleRegistry()
        result = self._result(tiny_ring())
        first = registry.propose("job", result, 0.0)
        first.conformance_ok = True
        registry.activate(first)
        second = registry.propose("job", result, 1.0)
        second.conformance_ok = False
        registry.rollback(second, "failed replay")
        assert registry.active("job") is first
        counts = registry.counts()
        assert counts["active"] == 1 and counts["rolled_back"] == 1


# ----------------------------------------------------------------------
# controller
# ----------------------------------------------------------------------
class TestController:
    def test_end_to_end_adaptation(self, planner):
        topo = tiny_ring()
        source = SyntheticTelemetry(topo, events=[
            LinkEvent(at=1.0, link=(0, 1), factor=0.4)])
        daemon = AdaptationController(topo, source, planner)
        initial = daemon.add_job(a2a_job(topo))
        for _ in range(4):
            daemon.step()
        stats = daemon.stats()
        assert stats["transitions"] >= 1
        assert stats["replans"] >= 1 and stats["rollbacks"] == 0
        active = daemon.registry.active("a2a")
        assert active is not initial and active.conformance_ok is True
        assert planner.stats()["replans"] >= 1  # warm-seeded via the hook

    def test_flap_triggers_at_most_one_replan(self, planner):
        """Satellite: no two replans within the estimator's cool-down."""
        topo = tiny_ring()
        # two flaps inside one 10-second cool-down window
        source = SyntheticTelemetry(topo, events=[
            LinkEvent(at=1.0, link=(0, 1), factor=0.4, until=2.0),
            LinkEvent(at=3.0, link=(0, 1), factor=0.4, until=4.0)])
        estimator = FabricEstimator(topo, smoothing=1.0, min_samples=1,
                                    cooldown=10.0)
        daemon = AdaptationController(topo, source, planner,
                                      estimator=estimator)
        daemon.add_job(a2a_job(topo))
        for _ in range(6):
            daemon.step()
        stats = daemon.stats()
        assert stats["transitions"] == 1
        assert stats["replans"] == 1

    def test_rollback_on_nonconformant_replan(self, planner):
        """Satellite: a corrupted replan rolls back; incumbent survives."""

        class CorruptingPlanner(Planner):
            corrupt = False

            def plan_batch(self, requests, *, timeout=None, warm_from=None):
                responses = super().plan_batch(requests, timeout=timeout,
                                               warm_from=warm_from)
                if self.corrupt:
                    for response in responses:
                        # claim a finish the replay cannot reproduce
                        response.result = dataclasses.replace(
                            response.result,
                            finish_time=response.result.finish_time / 2)
                return responses

        topo = tiny_ring()
        source = SyntheticTelemetry(topo, events=[
            LinkEvent(at=1.0, link=(0, 1), factor=0.4)])
        with CorruptingPlanner(executor="inline") as corrupting:
            daemon = AdaptationController(topo, source, corrupting)
            incumbent = daemon.add_job(a2a_job(topo))
            corrupting.corrupt = True
            decisions = []
            for _ in range(4):
                decisions.extend(daemon.step())
            stats = daemon.stats()
            assert stats["rollbacks"] >= 1 and stats["replans"] == 0
            assert any(d.action == "rollback" for d in decisions)
            # the incumbent never left; nothing non-conformant activated
            assert daemon.registry.active("a2a") is incumbent
            for entry in daemon.registry.history:
                if entry.status.value in ("active", "retired"):
                    assert entry.conformance_ok is True

    def test_cost_gate_keep_decision(self, planner):
        topo = tiny_ring()
        source = SyntheticTelemetry(topo, events=[
            LinkEvent(at=1.0, link=(0, 1), factor=0.6)])
        daemon = AdaptationController(
            topo, source, planner,
            gate=CostGate(min_regression=10.0))  # nothing clears this bar
        daemon.add_job(a2a_job(topo))
        decisions = []
        for _ in range(4):
            decisions.extend(daemon.step())
        assert decisions and all(d.action == "keep" for d in decisions)
        assert daemon.stats()["replans"] == 0

    def test_failed_replan_keeps_incumbent(self, planner):
        # a bidirectional line partitions when the middle cable dies
        topo = topology.line(3, capacity=1.0)
        source = SyntheticTelemetry(topo, events=[
            LinkEvent(at=1.0, link=(0, 1), down=True),
            LinkEvent(at=1.0, link=(1, 0), down=True)])
        estimator = FabricEstimator(topo, smoothing=1.0)
        daemon = AdaptationController(topo, source, planner,
                                      estimator=estimator)
        incumbent = daemon.add_job(a2a_job(topo))
        decisions = []
        for _ in range(4):
            decisions.extend(daemon.step())
        assert any(d.action == "failed" for d in decisions)
        assert daemon.registry.active("a2a") is incumbent

    def test_regressions_measured_against_the_planning_fabric(self, planner):
        """A paid-for degradation must not inflate later regressions.

        After the job replans onto the degraded fabric, a second, milder
        event elsewhere must be gated on its *own* regression — against
        the declared fabric the old 0.3-capacity link would be charged
        again (3.3x predicted) and the gate could never keep.
        """
        topo = tiny_ring(6)
        source = SyntheticTelemetry(topo, events=[
            LinkEvent(at=1.0, link=(0, 1), factor=0.3),
            LinkEvent(at=3.0, link=(2, 3), factor=0.7)])
        estimator = FabricEstimator(topo, smoothing=1.0, min_samples=1)
        daemon = AdaptationController(
            topo, source, planner, estimator=estimator,
            gate=CostGate(min_regression=1.0))  # replan only on >= 2x
        daemon.add_job(a2a_job(topo))
        decisions = []
        for _ in range(5):
            decisions.extend(daemon.step())
        by_action = {d.action for d in decisions}
        assert "replan" in by_action  # the 0.3 event clears the 2x bar
        keeps = [d for d in decisions if d.action == "keep"]
        assert keeps, decisions  # the 0.7 event must NOT (1.43x < 2x)
        # the keep's prediction reflects only the new event's stretch
        assert keeps[-1].predicted == pytest.approx(
            keeps[-1].active_finish / 0.7)

    def test_recovery_probe_restores_the_fast_schedule(self, planner):
        """A healed link is exploited again, not ignored forever."""
        topo = tiny_ring()
        source = SyntheticTelemetry(topo, events=[
            LinkEvent(at=1.0, link=(0, 1), factor=0.3, until=3.0)])
        estimator = FabricEstimator(topo, smoothing=1.0, min_samples=1)
        daemon = AdaptationController(topo, source, planner,
                                      estimator=estimator)
        baseline = daemon.add_job(a2a_job(topo)).result.finish_time
        decisions = []
        for _ in range(5):
            decisions.extend(daemon.step())
        degraded = [d for d in decisions
                    if d.action == "replan" and d.new_finish > baseline]
        recovered = [d for d in decisions
                     if d.action == "replan" and "recovery" in d.reason]
        assert degraded and recovered
        # after recovery the fleet is back on the healthy-fabric optimum
        active = daemon.registry.active("a2a")
        assert active.result.finish_time == pytest.approx(baseline)

    def test_failed_admission_leaves_no_ghost_job(self):
        class ExplodingPlanner(Planner):
            def plan(self, request, **kwargs):
                raise ServiceError("solver pool on fire")

        topo = tiny_ring()
        with ExplodingPlanner(executor="inline") as exploding:
            daemon = AdaptationController(topo, SyntheticTelemetry(topo),
                                          exploding)
            with pytest.raises(ServiceError):
                daemon.add_job(a2a_job(topo))
            assert daemon.status()["jobs"] == {}  # no ghost admitted
        # the same name admits cleanly on a working planner
        with Planner(executor="inline") as working:
            daemon = AdaptationController(topo, SyntheticTelemetry(topo),
                                          working)
            daemon.add_job(a2a_job(topo))
            assert daemon.registry.active("a2a") is not None

    def test_duplicate_job_rejected(self, planner):
        topo = tiny_ring()
        daemon = AdaptationController(topo, SyntheticTelemetry(topo),
                                      planner)
        daemon.add_job(a2a_job(topo))
        with pytest.raises(FleetError):
            daemon.add_job(a2a_job(topo))

    def test_daemon_thread_lifecycle(self, planner):
        topo = tiny_ring()
        daemon = AdaptationController(topo, SyntheticTelemetry(topo),
                                      planner)
        daemon.add_job(a2a_job(topo))
        daemon.start(interval=0.01)
        with pytest.raises(FleetError):
            daemon.start(interval=0.01)
        import time

        time.sleep(0.15)
        daemon.stop()
        assert daemon.stats()["polls"] >= 2
        daemon.stop()  # idempotent

    def test_daemon_survives_step_exceptions(self, planner):
        class FlakySource(SyntheticTelemetry):
            blown = False

            def poll(self):
                if not self.blown:
                    type(self).blown = True
                    raise RuntimeError("collector hiccup")
                return super().poll()

        import time

        topo = tiny_ring()
        daemon = AdaptationController(topo, FlakySource(topo), planner)
        daemon.add_job(a2a_job(topo))
        daemon.start(interval=0.01)
        time.sleep(0.15)
        daemon.stop()
        stats = daemon.stats()
        assert stats["errors"] == 1
        assert "collector hiccup" in daemon.last_error
        assert stats["polls"] >= 1  # the loop kept ticking afterwards
        assert daemon.status()["last_error"] == daemon.last_error


# ----------------------------------------------------------------------
# orchestrator
# ----------------------------------------------------------------------
class TestOrchestrator:
    def test_priority_shares(self, planner):
        topo = tiny_ring()
        fleet = FleetOrchestrator(topo, SyntheticTelemetry(topo), planner)
        fleet.admit(a2a_job(topo, name="gold", priority=3.0))
        fleet.admit(a2a_job(topo, name="scavenger", chunks=2, priority=1.0))
        assert fleet.share("gold") == pytest.approx(0.75)
        assert fleet.share("scavenger") == pytest.approx(0.25)
        with pytest.raises(FleetError):
            fleet.share("nobody")

    def test_admission_rescales_incumbents(self, planner):
        topo = tiny_ring()
        fleet = FleetOrchestrator(topo, SyntheticTelemetry(topo), planner)
        solo = fleet.admit(a2a_job(topo, name="first"))
        solo_finish = solo.result.finish_time
        fleet.admit(a2a_job(topo, name="second", chunks=2))
        rescaled = fleet.registry.active("first")
        # half the capacity share: the same collective takes ~2x as long
        assert rescaled.result.finish_time == pytest.approx(2 * solo_finish)
        assert rescaled.conformance_ok is True

        fleet.retire("second")
        regrown = fleet.registry.active("first")
        assert regrown.result.finish_time == pytest.approx(solo_finish)

    def test_degradation_fans_out_across_jobs(self, planner):
        topo = tiny_ring()
        source = SyntheticTelemetry(topo, events=[
            LinkEvent(at=1.0, link=(0, 1), factor=0.3)])
        fleet = FleetOrchestrator(topo, source, planner)
        fleet.admit(a2a_job(topo, name="one"))
        fleet.admit(a2a_job(topo, name="two", chunks=2))
        admission_replans = fleet.stats()["replans"]
        for _ in range(4):
            fleet.step()
        stats = fleet.stats()
        # both jobs adapted in one degradation fan-out
        assert stats["replans"] - admission_replans == 2
        status = fleet.status()
        assert status["shares"] == {"one": 0.5, "two": 0.5}
        for name in ("one", "two"):
            assert fleet.registry.active(name).conformance_ok is True
