"""Tests for the MSCCL program interpreter (the runtime model)."""

import pytest

from repro import collectives, topology
from repro.core import TecclConfig, solve_milp
from repro.errors import ExportError, ScheduleError
from repro.msccl import (interpret, load_program, to_msccl_xml,
                         verify_program)


def cfg(num_epochs=None, **kwargs):
    return TecclConfig(chunk_bytes=1.0, num_epochs=num_epochs, **kwargs)


def exported_allgather(topo, config, num_epochs):
    demand = collectives.allgather(topo.gpus, 1)
    outcome = solve_milp(topo, demand, config)
    doc = to_msccl_xml(outcome.schedule, topo, demand)
    return demand, outcome, doc


class TestLoadProgram:
    def test_decodes_blocks_and_steps(self, ring4):
        demand, outcome, doc = exported_allgather(ring4, cfg(8), 8)
        program = load_program(doc)
        assert program.gpus == ring4.gpus
        assert program.num_instructions == 2 * outcome.schedule.num_sends

    def test_instructions_well_formed(self, ring4):
        _, _, doc = exported_allgather(ring4, cfg(8), 8)
        program = load_program(doc)
        for ins in program.instructions():
            assert ins.kind in ("s", "r")
            assert ins.peer >= 0
            assert ins.gpu != ins.peer

    def test_rejects_non_algo_document(self):
        with pytest.raises(ExportError):
            load_program("<notalgo/>")

    def test_rejects_foreign_document_without_identity(self):
        doc = ("<algo name='x' coll='c'><gpu id='0'>"
               "<tb id='0' send='1' recv='-1' chan='0'>"
               "<step s='0' type='s' depid='-1' deps='-1'/>"
               "</tb></gpu></algo>")
        with pytest.raises(ExportError):
            load_program(doc)


class TestInterpret:
    def test_allgather_executes_to_completion(self, ring4):
        demand, _, doc = exported_allgather(ring4, cfg(8), 8)
        program = load_program(doc)
        report = interpret(program, ring4, demand, chunk_bytes=1.0)
        assert not report.deadlocked
        assert report.fired == report.total
        for s, c, d in demand.triples():
            assert report.delivered(s, c, d)

    def test_finish_time_positive_and_plausible(self, ring4):
        demand, outcome, doc = exported_allgather(ring4, cfg(8), 8)
        program = load_program(doc)
        report = interpret(program, ring4, demand, chunk_bytes=1.0)
        # the runtime is event-driven (no epoch padding): it can only be
        # as fast or faster than the epoch-quantized schedule estimate
        assert 0 < report.finish_time <= outcome.finish_time + 1e-9

    def test_broadcast_on_switch_topology(self, star3):
        demand = collectives.broadcast(0, star3.gpus, 1)
        outcome = solve_milp(star3, demand, cfg(8))
        doc = to_msccl_xml(outcome.schedule, star3, demand)
        program = load_program(doc)
        report = interpret(program, star3, demand, chunk_bytes=1.0)
        assert not report.deadlocked
        for s, c, d in demand.triples():
            assert report.delivered(s, c, d)

    def test_alltoall_program(self, ring4, atoa_ring4):
        outcome = solve_milp(ring4, atoa_ring4, cfg(8))
        doc = to_msccl_xml(outcome.schedule, ring4, atoa_ring4)
        report = verify_program(doc, ring4, atoa_ring4, chunk_bytes=1.0)
        assert report.fired == report.total

    def test_deadlock_detected(self):
        """A receive whose send never fires must be reported, not hang."""
        doc = ("<algo name='x' coll='c' ngpus='2'>"
               "<gpu id='0'>"
               "<tb id='0' send='-1' recv='1' chan='0'>"
               "<step s='0' type='r' depid='-1' deps='-1'"
               " x_source='1' x_chunk='0'/>"
               "</tb></gpu>"
               "<gpu id='1'></gpu>"
               "</algo>")
        topo = topology.line(2, capacity=1.0)
        demand = collectives.Demand.from_triples([(1, 0, 0)])
        program = load_program(doc)
        report = interpret(program, topo, demand, chunk_bytes=1.0)
        assert report.deadlocked
        with pytest.raises(ScheduleError):
            verify_program(doc, topo, demand, chunk_bytes=1.0)

    def test_missing_delivery_detected(self, ring4):
        """Verifying against a *larger* demand than the program implements
        must fail."""
        demand_small = collectives.broadcast(0, [1], 1)
        outcome = solve_milp(ring4, demand_small, cfg(6))
        doc = to_msccl_xml(outcome.schedule, ring4, demand_small)
        demand_big = collectives.broadcast(0, [1, 2], 1)
        with pytest.raises(ScheduleError):
            verify_program(doc, ring4, demand_big, chunk_bytes=1.0)


class TestEndToEndPipeline:
    def test_dgx1_allgather_pipeline(self, dgx1):
        """synthesize → export → interpret on a real chassis."""
        config = TecclConfig(chunk_bytes=25e3, num_epochs=10)
        demand = collectives.allgather(dgx1.gpus, 1)
        outcome = solve_milp(dgx1, demand, config)
        doc = to_msccl_xml(outcome.schedule, dgx1, demand)
        report = verify_program(doc, dgx1, demand, chunk_bytes=25e3)
        assert report.finish_time > 0

    def test_heterogeneous_alpha_line(self):
        topo = topology.line(3, capacity=1.0, alpha=0.5)
        demand = collectives.allgather(topo.gpus, 1)
        outcome = solve_milp(topo, demand, cfg(10))
        doc = to_msccl_xml(outcome.schedule, topo, demand)
        report = verify_program(doc, topo, demand, chunk_bytes=1.0)
        # α must appear in the runtime estimate: 2 hops minimum for the
        # end-to-end chunks, each paying 0.5 s of latency plus 1 s of wire
        assert report.finish_time >= 3.0 - 1e-9
