"""Write-ahead persistence: framing, leases, recovery, round-trips.

The durability *unit* surface lives here (tier-1 fleet lane): WAL framing
and torn-tail truncation, generation-lease fencing, snapshot compaction,
in-process recovery semantics, and the satellite-mandated serialization
audit — every ``to_dict``/``from_dict`` (and ``to_wire``/``from_wire``)
pair the WAL depends on must be equality-stable for randomized instances.
The out-of-process SIGKILL crash sweep is ``test_fleet_recovery.py``
(``durability`` marker).
"""

import dataclasses
import json
import os
import random

import pytest

from repro import collectives, topology
from repro.core import TecclConfig
from repro.core.solve import Method, synthesize
from repro.errors import FleetError, ServiceError
from repro.fleet import (AdaptationController, FleetJob, GenerationLease,
                         LinkEvent, LinkHealth, LinkSample,
                         SyntheticTelemetry, WriteAheadLog,
                         atomic_write_json)
from repro.fleet.controller import AdaptationDecision, RegistryEntry, \
    ScheduleStatus
from repro.service import Planner
from repro.service.schema import PlanRequest, PlanResponse, \
    check_registry_state

pytestmark = pytest.mark.fleet


def tiny_ring(n=4):
    return topology.ring(n, capacity=1.0)


def a2a_job(topo, name="a2a", chunks=1, priority=1.0):
    return FleetJob(name=name,
                    demand=collectives.alltoall(topo.gpus, chunks),
                    config=TecclConfig(chunk_bytes=1.0 / chunks),
                    priority=priority)


@pytest.fixture
def planner():
    with Planner(executor="inline") as p:
        yield p


def make_controller(topo, planner, walpath, *, events=(), takeover=False,
                    compact_every=256):
    from repro.fleet import FabricEstimator

    source = SyntheticTelemetry(topo, events=list(events))
    wal = WriteAheadLog(walpath)
    wal.attach_lease(takeover=takeover)
    # smoothing=1.0 / min_samples=1 make the estimator memoryless given
    # the transition records, so recovery is exact (see the WAL docs)
    estimator = FabricEstimator(topo, smoothing=1.0, min_samples=1)
    return AdaptationController(topo, source, planner, wal=wal,
                                estimator=estimator,
                                compact_every=compact_every)


# ----------------------------------------------------------------------
# atomic JSON writes (satellite: --status-file)
# ----------------------------------------------------------------------
class TestAtomicWriteJson:
    def test_writes_valid_json_and_no_tmp_residue(self, tmp_path):
        target = tmp_path / "status.json"
        atomic_write_json(target, {"a": 1})
        assert json.loads(target.read_text(encoding="utf-8")) == {"a": 1}
        atomic_write_json(target, {"a": 2})
        assert json.loads(target.read_text(encoding="utf-8")) == {"a": 2}
        assert list(tmp_path.iterdir()) == [target]

    def test_replaces_never_truncates(self, tmp_path):
        # the old document stays intact until the rename lands
        target = tmp_path / "status.json"
        atomic_write_json(target, {"generation": 1})
        atomic_write_json(target, {"generation": 2})
        doc = json.loads(target.read_text(encoding="utf-8"))
        assert doc["generation"] == 2


# ----------------------------------------------------------------------
# framing and torn tails
# ----------------------------------------------------------------------
class TestWalFraming:
    def test_append_load_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.wal")
        wal.append("begin", {"op": "step", "index": 0}, now=1.5)
        wal.append("commit", {"op": "step", "index": 0}, now=1.5)
        wal.close()
        state = WriteAheadLog(tmp_path / "w.wal").load()
        assert [r["kind"] for r in state.records] == ["begin", "commit"]
        assert state.records[0]["data"] == {"op": "step", "index": 0}
        assert state.records[0]["now"] == 1.5
        assert state.records[0]["seq"] == 1
        assert state.uncommitted == [] and state.torn_bytes == 0

    def test_torn_tail_detected_and_truncated(self, tmp_path):
        path = tmp_path / "w.wal"
        wal = WriteAheadLog(path)
        wal.append("begin", {"op": "step", "index": 0})
        wal.append("commit", {"op": "step", "index": 0})
        wal.close()
        intact = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b"000000ffdeadbeef {\"seq\": 3, \"tru")  # torn
        state = WriteAheadLog(path).load()
        assert len(state.records) == 2
        assert state.torn_bytes > 0
        # appending truncates the torn tail away first
        wal2 = WriteAheadLog(path)
        wal2.append("begin", {"op": "step", "index": 1})
        wal2.close()
        records = WriteAheadLog(path).load().uncommitted
        assert [r["kind"] for r in records] == ["begin"]
        assert records[0]["seq"] == 3  # seq resumed, not restarted
        assert path.stat().st_size > intact

    def test_checksum_mismatch_stops_the_scan(self, tmp_path):
        path = tmp_path / "w.wal"
        wal = WriteAheadLog(path)
        wal.append("commit", {"op": "step", "index": 0})
        wal.append("commit", {"op": "step", "index": 1})
        wal.close()
        raw = bytearray(path.read_bytes())
        flip = raw.index(b'"index":0') + 8  # corrupt the first body
        raw[flip] ^= 0xFF
        path.write_bytes(bytes(raw))
        state = WriteAheadLog(path).load()
        assert state.records == []  # nothing after the bad frame is trusted

    def test_missing_file_is_empty_state(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "absent.wal")
        state = wal.load()
        assert state.snapshot is None and state.records == []
        assert not wal.has_state()

    def test_aborted_transaction_mid_log_is_discarded(self, tmp_path):
        # an admission that failed and was compensated (abort marker)
        # must not be replayed even though a later operation committed
        path = tmp_path / "w.wal"
        wal = WriteAheadLog(path)
        wal.append("begin", {"op": "admit", "job": "ghost"})
        wal.append("job_admit", {"name": "ghost"})
        wal.append("abort", {"op": "admit", "job": "ghost"})
        wal.append("begin", {"op": "step", "index": 0})
        wal.append("commit", {"op": "step", "index": 0})
        wal.close()
        state = WriteAheadLog(path).load()
        assert [r["kind"] for r in state.records] == ["begin", "commit"]
        assert [r["kind"] for r in state.uncommitted] \
            == ["begin", "job_admit", "abort"]

    def test_unmatched_begin_mid_log_is_discarded(self, tmp_path):
        # a fenced writer cannot even append its abort marker; the buried
        # open transaction is detected by the next begin and discarded
        path = tmp_path / "w.wal"
        wal = WriteAheadLog(path)
        wal.append("begin", {"op": "admit", "job": "ghost"})
        wal.append("job_admit", {"name": "ghost"})
        wal.append("begin", {"op": "step", "index": 0})
        wal.append("commit", {"op": "step", "index": 0})
        wal.close()
        state = WriteAheadLog(path).load()
        assert [r["kind"] for r in state.records] == ["begin", "commit"]
        assert [r["kind"] for r in state.uncommitted] \
            == ["begin", "job_admit"]


# ----------------------------------------------------------------------
# generation leases (fencing)
# ----------------------------------------------------------------------
class TestGenerationLease:
    def test_takeover_bumps_generation_and_fences(self, tmp_path):
        path = tmp_path / "w.wal"
        old = WriteAheadLog(path)
        assert old.attach_lease() == 1
        old.append("begin", {"op": "step", "index": 0})
        new = WriteAheadLog(path)
        assert new.attach_lease(takeover=True) == 2
        assert old.fenced() and not new.fenced()
        with pytest.raises(FleetError, match="fenced"):
            old.append("commit", {"op": "step", "index": 0})
        with pytest.raises(FleetError, match="fenced"):
            old.compact({"registry_state_version": 1})
        new.append("begin", {"op": "step", "index": 0})  # the winner writes

    def test_live_holder_refused_without_takeover(self, tmp_path):
        lease = GenerationLease(tmp_path / "l.lease")
        atomic_write_json(lease.path, {"generation": 7, "pid": 1})  # init
        with pytest.raises(FleetError, match="--takeover"):
            lease.acquire()
        assert lease.acquire(takeover=True) == 8

    def test_dead_holder_reacquired_without_takeover(self, tmp_path):
        lease = GenerationLease(tmp_path / "l.lease")
        # a pid that cannot exist: max_pid is bounded well below 2**31
        atomic_write_json(lease.path, {"generation": 3, "pid": 2**31 - 7})
        assert lease.acquire() == 4

    def test_fence_lost_during_append_leaves_no_record(self, tmp_path):
        # a takeover landing between append's pre-check and its fsync is
        # caught by the post-fsync re-check: the already-durable record
        # is truncated back off and the append still raises
        path = tmp_path / "w.wal"
        old = WriteAheadLog(path)
        old.attach_lease()
        old.append("begin", {"op": "step", "index": 0})
        old.append("commit", {"op": "step", "index": 0})
        new = WriteAheadLog(path)
        real_fenced = old.fenced
        state = {"first": True}

        def fenced():
            if state["first"]:  # the pre-check: lease not yet bumped
                state["first"] = False
                new.attach_lease(takeover=True)
                return False
            return real_fenced()

        old.fenced = fenced
        with pytest.raises(FleetError, match="fenced"):
            old.append("activate", {"job": "a2a", "seq": 1})
        records = WriteAheadLog(path).load().records
        assert [r["kind"] for r in records] == ["begin", "commit"]
        old.close()

    def test_release_only_by_owner(self, tmp_path):
        path = tmp_path / "l.lease"
        a, b = GenerationLease(path), GenerationLease(path)
        a.acquire()
        b.acquire(takeover=True)
        a.release()  # a no longer owns it: must not delete b's lease
        assert b.check()
        b.release()
        assert not path.exists()


# ----------------------------------------------------------------------
# compaction
# ----------------------------------------------------------------------
class TestCompaction:
    def test_compact_snapshots_then_truncates(self, tmp_path, planner):
        topo = tiny_ring()
        daemon = make_controller(topo, planner, tmp_path / "w.wal")
        daemon.add_job(a2a_job(topo))
        daemon.step()
        wal = daemon.wal
        assert wal.records_written > 0
        wal.compact(daemon.registry_state())
        assert wal.snapshot_path.exists()
        state = WriteAheadLog(wal.path).load()
        assert state.records == []  # log truncated
        check_registry_state(state.snapshot)  # snapshot is trustworthy
        wal.close()

    def test_compact_refuses_malformed_state(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.wal")
        with pytest.raises(ServiceError):
            wal.compact({"registry_state_version": 999})
        assert not wal.snapshot_path.exists()

    def test_controller_compacts_periodically(self, tmp_path, planner):
        topo = tiny_ring()
        daemon = make_controller(topo, planner, tmp_path / "w.wal",
                                 compact_every=4)
        daemon.add_job(a2a_job(topo))  # 5 records >= 4: compacts
        assert daemon.wal.compactions >= 1
        for _ in range(3):
            daemon.step()
        assert daemon.wal.compactions >= 2
        daemon.wal.close()


# ----------------------------------------------------------------------
# recovery semantics (in-process; the SIGKILL sweep is out-of-process)
# ----------------------------------------------------------------------
class TestRecovery:
    def test_recover_rehydrates_jobs_schedules_and_clocks(
            self, tmp_path, planner):
        topo = tiny_ring()
        events = [LinkEvent(at=2.0, link=(0, 1), factor=0.4)]
        daemon = make_controller(topo, planner, tmp_path / "w.wal",
                                 events=events)
        daemon.add_job(a2a_job(topo))
        for _ in range(5):
            daemon.step()
        before = daemon.registry.active("a2a")
        est_before = daemon.estimator.estimate((0, 1))
        daemon.wal.close()

        fresh = make_controller(topo, planner, tmp_path / "w.wal",
                                takeover=True)
        provenance = fresh.recover()
        assert provenance["recovered"] and provenance["generation"] == 2
        assert provenance["entries_recovered"] == 1
        assert provenance["entries_dropped"] == []
        after = fresh.registry.active("a2a")
        assert after is not None and after.conformance_ok is True
        assert after.result.finish_time == before.result.finish_time
        assert sorted(fresh.jobs) == ["a2a"]
        assert fresh._step_index == 5 and fresh.now == daemon.now
        est_after = fresh.estimator.estimate((0, 1))
        assert est_after.health is est_before.health
        assert est_after.last_transition == est_before.last_transition
        # recovery immediately re-compacts: double replay cannot exist
        assert fresh.wal.snapshot_path.exists()
        assert WriteAheadLog(fresh.wal.path).load().records == []
        assert fresh.status()["recovery"]["recovered"] is True
        fresh.wal.close()

    def test_uncommitted_tail_is_discarded(self, tmp_path, planner):
        topo = tiny_ring()
        daemon = make_controller(topo, planner, tmp_path / "w.wal")
        daemon.add_job(a2a_job(topo))
        daemon.step()
        # crash mid-operation: a begin with no commit
        daemon.wal.append("begin", {"op": "step", "index": 1})
        daemon.wal.append("job_admit",
                          a2a_job(tiny_ring(), name="ghost").to_dict())
        daemon.wal.close()

        fresh = make_controller(topo, planner, tmp_path / "w.wal",
                                takeover=True)
        provenance = fresh.recover()
        assert provenance["records_discarded"] == 2
        assert sorted(fresh.jobs) == ["a2a"]  # the ghost never joined
        assert fresh._step_index == 1
        fresh.wal.close()

    def test_failed_admission_is_never_resurrected(self, tmp_path,
                                                   planner):
        # a failed admission journals an abort; even after later
        # operations commit, recovery must not replay the buried
        # job_admit and resurrect the ghost (which would permanently
        # block re-admission)
        topo = tiny_ring()
        daemon = make_controller(topo, planner, tmp_path / "w.wal")
        daemon.add_job(a2a_job(topo))
        vet = daemon._vet
        daemon._vet = lambda result: False  # force the admission to fail
        with pytest.raises(FleetError, match="conformance"):
            daemon.add_job(a2a_job(topo, name="ghost"))
        daemon._vet = vet
        assert "ghost" not in daemon.jobs  # in-memory compensation
        daemon.step()  # a later committed operation buries the abort
        daemon.wal.close()

        fresh = make_controller(topo, planner, tmp_path / "w.wal",
                                takeover=True)
        fresh.recover()
        assert sorted(fresh.jobs) == ["a2a"]  # the ghost never joined
        # and re-admission is not blocked
        entry = fresh.add_job(a2a_job(topo, name="ghost"))
        assert entry.status is ScheduleStatus.ACTIVE
        fresh.wal.close()

    def test_plan_missing_replans_dropped_incumbent(self, tmp_path,
                                                    planner):
        # a recovered job whose incumbent failed re-vetting stays
        # admitted but scheduleless; plan_missing is the path back
        topo = tiny_ring()
        daemon = make_controller(topo, planner, tmp_path / "w.wal")
        daemon.add_job(a2a_job(topo))
        daemon.wal.close()

        fresh = make_controller(topo, planner, tmp_path / "w.wal",
                                takeover=True)
        vet = fresh._vet
        fresh._vet = lambda result: False  # oracle refuses the recovery
        provenance = fresh.recover()
        fresh._vet = vet
        assert provenance["entries_recovered"] == 0
        assert sorted(fresh.jobs) == ["a2a"]
        assert fresh.registry.active("a2a") is None
        planned = fresh.plan_missing()
        assert set(planned) == {"a2a"}
        entry = fresh.registry.active("a2a")
        assert entry is not None and entry.conformance_ok is True
        assert fresh.plan_missing() == {}  # idempotent: nothing missing
        fresh.wal.close()

    def test_nonconformant_recovery_dropped_never_activated(
            self, tmp_path, planner):
        topo = tiny_ring()
        daemon = make_controller(topo, planner, tmp_path / "w.wal")
        daemon.add_job(a2a_job(topo))
        daemon.wal.close()

        # tamper with the durable schedule: claim a finish time the
        # conformance replay cannot reproduce
        wal = WriteAheadLog(tmp_path / "w.wal")
        state = wal.load()
        source = state.snapshot["entries"] if state.snapshot \
            else [r["data"] for r in state.records
                  if r["kind"] == "propose"]
        entry = RegistryEntry.from_wire(source[-1])
        entry.result = dataclasses.replace(
            entry.result, finish_time=entry.result.finish_time / 2)
        forged = [r for r in state.records if r["kind"] != "propose"]
        wal.path.unlink()
        wal2 = WriteAheadLog(tmp_path / "w.wal")
        wal2.attach_lease(takeover=True)
        for record in forged:
            if record["kind"] == "job_admit":
                wal2.append("job_admit", record["data"])
                wal2.append("propose", entry.to_wire())
            else:
                wal2.append(record["kind"], record["data"])
        wal2.close()

        fresh = make_controller(topo, planner, tmp_path / "w.wal",
                                takeover=True)
        provenance = fresh.recover()
        assert provenance["entries_recovered"] == 0
        assert [d["reason"] for d in provenance["entries_dropped"]] \
            == ["failed conformance replay"]
        assert fresh.registry.active("a2a") is None
        rolled = [e for e in fresh.registry.history
                  if e.status is ScheduleStatus.ROLLED_BACK]
        assert rolled and rolled[0].conformance_ok is False
        assert fresh.metrics.snapshot()[
            "fleet_recovery_dropped_total"]["value"] == 1
        fresh.wal.close()

    def test_recover_requires_wal_and_fresh_controller(
            self, tmp_path, planner):
        topo = tiny_ring()
        source = SyntheticTelemetry(topo, events=[])
        bare = AdaptationController(topo, source, planner)
        with pytest.raises(FleetError, match="needs a WAL"):
            bare.recover()
        daemon = make_controller(topo, planner, tmp_path / "w.wal")
        daemon.add_job(a2a_job(topo))
        with pytest.raises(FleetError, match="fresh controller"):
            daemon.recover()
        daemon.wal.close()

    def test_fenced_daemon_cannot_activate(self, tmp_path, planner):
        """Acceptance: after takeover the old generation never activates."""
        topo = tiny_ring()
        events = [LinkEvent(at=2.0, link=(0, 1), factor=0.4)]
        old = make_controller(topo, planner, tmp_path / "w.wal",
                              events=events)
        old.add_job(a2a_job(topo))
        replans_before = old.stats()["replans"]

        new_wal = WriteAheadLog(tmp_path / "w.wal")
        new_wal.attach_lease(takeover=True)  # fence the old daemon

        # the degrade event would normally drive a replan + activation;
        # the write-ahead append refuses instead, so nothing activates
        incumbent = old.registry.active("a2a")
        with pytest.raises(FleetError, match="fenced"):
            for _ in range(4):
                old.step()
        assert old.stats()["replans"] == replans_before
        assert old.registry.active("a2a") is incumbent
        old.wal.close()
        new_wal.close()

    def test_fenced_remove_job_keeps_the_job(self, tmp_path, planner):
        # removal is write-ahead like admission: a refused journal append
        # must leave memory and durable state agreeing the job is present
        topo = tiny_ring()
        daemon = make_controller(topo, planner, tmp_path / "w.wal")
        daemon.add_job(a2a_job(topo))
        other = WriteAheadLog(daemon.wal.path)
        other.attach_lease(takeover=True)  # fence the daemon
        with pytest.raises(FleetError, match="fenced"):
            daemon.remove_job("a2a")
        assert "a2a" in daemon.jobs
        assert daemon.registry.active("a2a") is not None
        daemon.wal.close()
        other.close()

    def test_fenced_daemon_loop_yields(self, tmp_path, planner):
        topo = tiny_ring()
        old = make_controller(topo, planner, tmp_path / "w.wal")
        old.add_job(a2a_job(topo))
        new_wal = WriteAheadLog(tmp_path / "w.wal")
        new_wal.attach_lease(takeover=True)
        old.start(interval=0.01)
        old._thread.join(timeout=5.0)  # the loop notices and exits itself
        assert not old._thread.is_alive()
        assert "fenced" in (old.last_error or "")
        old.stop()
        old.wal.close()
        new_wal.close()


# ----------------------------------------------------------------------
# satellite: serialization round-trip audit
# ----------------------------------------------------------------------
def _rand_config(rng):
    return TecclConfig(chunk_bytes=rng.choice([0.25, 0.5, 1.0, 2.0]))


def _rand_job(rng, topo):
    return FleetJob(
        name=f"job-{rng.randrange(1000)}",
        demand=collectives.alltoall(topo.gpus, rng.choice([1, 2])),
        config=_rand_config(rng),
        method=rng.choice([Method.AUTO, Method.LP, Method.MILP]),
        priority=rng.choice([0.5, 1.0, 2.0]))


def _rand_decision(rng):
    return AdaptationDecision(
        job=f"job-{rng.randrange(1000)}",
        time=rng.uniform(0, 100),
        action=rng.choice(["replan", "keep", "rollback", "failed"]),
        reason="audit",
        predicted=rng.choice([None, rng.uniform(0, 1), float("inf")]),
        active_finish=rng.choice([None, rng.uniform(0, 1)]),
        new_finish=rng.choice([None, rng.uniform(0, 1)]),
        solve_time=rng.choice([None, rng.uniform(0, 1)]))


class TestRoundTripAudit:
    """``from_dict(to_dict(x)) == x`` for everything the WAL persists.

    Each case also pushes the document through an actual JSON encode /
    decode — the WAL stores bytes, so a round-trip that only works on
    live dicts (tuples, enum members, numpy scalars) would still lose
    data on disk.
    """

    def _json(self, doc):
        return json.loads(json.dumps(doc))

    def test_fleet_job_roundtrip_randomized(self):
        rng = random.Random(1234)
        topo = tiny_ring()
        for _ in range(25):
            job = _rand_job(rng, topo)
            back = FleetJob.from_dict(self._json(job.to_dict()))
            assert back == job

    def test_adaptation_decision_roundtrip_randomized(self):
        rng = random.Random(99)
        for _ in range(50):
            decision = _rand_decision(rng)
            back = AdaptationDecision.from_dict(
                self._json(decision.to_dict()))
            assert back == decision

    def test_link_sample_roundtrip_randomized(self):
        rng = random.Random(7)
        for _ in range(50):
            sample = LinkSample(
                link=(rng.randrange(8), rng.randrange(8)),
                time=rng.uniform(0, 50), bandwidth=rng.uniform(0, 2),
                latency=rng.uniform(0, 1e-5), loss=rng.uniform(0, 1))
            assert LinkSample.from_dict(self._json(sample.to_dict())) \
                == sample

    def test_registry_entry_wire_roundtrip(self):
        from repro.core.solve import SynthesisResult

        topo = tiny_ring()
        result = synthesize(topo, collectives.alltoall(topo.gpus, 1),
                            TecclConfig(chunk_bytes=1.0))
        # the raw solver `outcome` is documented-lossy (solver internals);
        # the WAL only ever persists the serialized form, so the audit
        # compares against the canonical post-serialization result
        result = SynthesisResult.from_dict(result.to_dict())
        rng = random.Random(42)
        for status in ScheduleStatus:
            entry = RegistryEntry(
                job="a2a", result=result, status=status,
                time=rng.uniform(0, 10),
                conformance_ok=rng.choice([None, True, False]),
                note="audit", fabric=rng.choice([None, topo]),
                seq=rng.randrange(100))
            back = RegistryEntry.from_wire(self._json(entry.to_wire()))
            assert back == entry

    def test_plan_request_response_roundtrip(self, planner):
        topo = tiny_ring()
        request = PlanRequest(topology=topo,
                              demand=collectives.alltoall(topo.gpus, 1),
                              config=TecclConfig(chunk_bytes=1.0),
                              minimize_epochs=True, tag="audit")
        assert PlanRequest.from_dict(self._json(request.to_dict())) \
            == request
        response = planner.plan(request)
        back = PlanResponse.from_dict(self._json(response.to_dict()))
        assert back == response
        failed = PlanResponse(fingerprint="ab" * 32, error="boom")
        assert PlanResponse.from_dict(self._json(failed.to_dict())) \
            == failed

    def test_registry_state_roundtrips_through_json(
            self, tmp_path, planner):
        topo = tiny_ring()
        daemon = make_controller(topo, planner, tmp_path / "w.wal",
                                 events=[LinkEvent(at=1.0, link=(0, 1),
                                                   factor=0.4)])
        daemon.add_job(a2a_job(topo))
        for _ in range(3):
            daemon.step()
        state = daemon.registry_state()
        assert check_registry_state(self._json(state)) == self._json(state)
        daemon.wal.close()


# ----------------------------------------------------------------------
# satellite: stop() promptness and step atomicity
# ----------------------------------------------------------------------
class TestDaemonStop:
    def test_stop_returns_promptly_from_a_long_interval(self, planner):
        import time

        topo = tiny_ring()
        source = SyntheticTelemetry(topo, events=[])
        daemon = AdaptationController(topo, source, planner)
        daemon.start(interval=60.0)  # Event.wait, so stop() need not wait
        begin = time.monotonic()
        daemon.stop()
        assert time.monotonic() - begin < 5.0
        assert daemon._thread is None

    def test_stop_never_interleaves_with_a_half_finished_step(
            self, planner):
        import time

        topo = tiny_ring()
        log = []

        class SlowSource(SyntheticTelemetry):
            def poll(self):
                log.append("enter")
                time.sleep(0.05)
                samples = super().poll()
                log.append("exit")
                return samples

        daemon = AdaptationController(topo, SlowSource(topo, events=[]),
                                      planner)
        daemon.start(interval=0.001)
        time.sleep(0.12)  # let at least one slow step get in flight
        daemon.stop()
        log.append("stopped")
        stopped = log.index("stopped")
        before = log[:stopped]
        # every step that started before stop() returned also finished
        # before it (stop joins the thread; the step holds _op_lock)
        assert before.count("enter") == before.count("exit")
        assert "enter" not in log[stopped + 1:]

    def test_sync_step_serialized_against_admission(self, planner):
        # _op_lock: step() and add_job() can race from different threads
        # without interleaving half-applied state
        import threading

        topo = tiny_ring()
        source = SyntheticTelemetry(topo, events=[])
        daemon = AdaptationController(topo, source, planner)
        daemon.add_job(a2a_job(topo))
        errors = []

        def stepper():
            try:
                for _ in range(5):
                    daemon.step()
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        def admitter():
            try:
                for index in range(3):
                    daemon.add_job(a2a_job(topo, name=f"j{index}"))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=stepper),
                   threading.Thread(target=admitter)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert sorted(daemon.jobs) == ["a2a", "j0", "j1", "j2"]
        assert daemon.registry.active_jobs() == ["a2a", "j0", "j1", "j2"]
