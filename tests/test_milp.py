"""Integration tests for the general MILP formulation (§3.1).

Each test solves a small instance where the optimum is known by hand and
checks both the solver's answer and the simulator's independent validation.
"""

import pytest

from repro import collectives, topology
from repro.core import TecclConfig, solve_milp
from repro.core.config import EpochMode, SwitchModel
from repro.core.epochs import build_epoch_plan
from repro.core.milp import MilpBuilder
from repro.errors import InfeasibleError, ModelError
from repro.simulate import simulate, verify
from repro.solver import SolverOptions
from repro.topology import to_hyper_edges


def cfg(num_epochs=None, **kwargs) -> TecclConfig:
    return TecclConfig(chunk_bytes=1.0, num_epochs=num_epochs, **kwargs)


class TestBroadcastLine:
    def test_two_hops_two_epochs(self, line3):
        demand = collectives.broadcast(0, [1, 2], 1)
        out = solve_milp(line3, demand, cfg(4))
        assert out.schedule.finish_epoch == 1
        verify(out.schedule, line3, demand, out.plan)

    def test_horizon_too_short_is_infeasible(self, line3):
        demand = collectives.broadcast(0, [2], 1)
        with pytest.raises(InfeasibleError):
            solve_milp(line3, demand, cfg(1))

    def test_exact_minimum_horizon_feasible(self, line3):
        demand = collectives.broadcast(0, [2], 1)
        out = solve_milp(line3, demand, cfg(2))
        assert out.schedule.finish_epoch == 1


class TestRingAllgather:
    def test_optimal_finish(self, ring4, ag_ring4):
        out = solve_milp(ring4, ag_ring4, cfg(6))
        # bidirectional 4-ring: farthest chunk needs 2 hops; every node can
        # receive its 3 chunks over 2 in-links in 2 epochs.
        assert out.schedule.finish_epoch == 1
        report = verify(out.schedule, ring4, ag_ring4, out.plan)
        assert report.finish_time == pytest.approx(out.finish_time)

    def test_prune_removes_noise(self, ring4, ag_ring4):
        out = solve_milp(ring4, ag_ring4, cfg(8))
        assert out.schedule.num_sends <= out.raw_schedule.num_sends
        verify(out.schedule, ring4, ag_ring4, out.plan)

    def test_copy_reduces_bytes_on_wire(self, ring4, ag_ring4):
        out = solve_milp(ring4, ag_ring4, cfg(6))
        # lower bound: every GPU must receive 3 chunks => >= 12 arrivals
        assert out.schedule.num_sends >= 12
        # with copy nothing needs to be sent twice on any link
        per_link = {}
        for send in out.schedule.sends:
            key = (send.commodity, send.link)
            per_link[key] = per_link.get(key, 0) + 1
        assert all(v == 1 for v in per_link.values())


class TestAlphaDelay:
    def test_forwarding_waits_for_alpha(self):
        topo = topology.line(3, capacity=1.0, alpha=1.5)
        demand = collectives.broadcast(0, [2], 1)
        out = solve_milp(topo, demand, cfg(8))
        verify(out.schedule, topo, demand, out.plan)
        hops = sorted(out.schedule.sends)
        # alpha=1.5, tau=1 -> Delta=2: second hop at epoch >= first + 3
        assert hops[1].epoch >= hops[0].epoch + 3

    def test_figure_1a_pipelining(self):
        """The Fig. 1(a) example: TE-CCL overlaps the slow-alpha branch.

        Both chunks reach h3 simultaneously (that is the example's design),
        so the correct finish is alpha2 + 3*beta — one beta less than the
        traditional max-path-delay estimate of alpha2 + 4*beta.
        """
        topo = topology.alpha_motivation_line()
        demand = collectives.Demand.from_triples([(0, 0, 4), (5, 0, 4)])
        config = TecclConfig(chunk_bytes=1e9, num_epochs=12)
        out = solve_milp(topo, demand, config)
        report = verify(out.schedule, topo, demand, out.plan)
        alpha1, beta = 1.0, 1.0
        alpha2 = 2 * beta + 3 * alpha1
        assert report.finish_time <= alpha2 + 3 * beta + 1e-6
        # and strictly beats the naive TE estimate
        assert report.finish_time < alpha2 + 4 * beta


class TestSwitchModels:
    def test_switch_copy_allgather(self, star3):
        demand = collectives.allgather(star3.gpus, 1)
        out = solve_milp(star3, demand, cfg(6))
        report = verify(out.schedule, star3, demand, out.plan)
        assert report.ok
        # 6 fan-out deliveries over 3 dst links need >= 2 fan-out epochs, so
        # the collective finishes at epoch 2 (inject at 0/1, fan out at 1/2).
        assert out.schedule.finish_epoch == 2
        # SHArP-style copy: strictly fewer injections than the 6 a
        # copy-less switch would need
        into_switch = [s for s in out.schedule.sends if s.dst == 3]
        assert 3 <= len(into_switch) < 6

    def test_switch_no_copy_needs_more_sends(self, star3):
        demand = collectives.allgather(star3.gpus, 1)
        with_copy = solve_milp(star3, demand, cfg(8))
        no_copy = solve_milp(star3, demand,
                             cfg(8, switch_model=SwitchModel.NO_COPY))
        assert no_copy.schedule.num_sends >= with_copy.schedule.num_sends
        # without copy each GPU must inject its chunk twice
        into_switch = [s for s in no_copy.schedule.sends if s.dst == 3]
        assert len(into_switch) == 6

    def test_no_copy_finish_not_better(self, star3):
        demand = collectives.allgather(star3.gpus, 1)
        with_copy = solve_milp(star3, demand, cfg(8))
        no_copy = solve_milp(star3, demand,
                             cfg(8, switch_model=SwitchModel.NO_COPY))
        assert no_copy.finish_time >= with_copy.finish_time - 1e-9

    def test_hyper_edge_model(self):
        topo = topology.star(3)
        demand = collectives.allgather(topo.gpus, 1)
        hyper = to_hyper_edges(topo)
        config = cfg(6, switch_model=SwitchModel.HYPER_EDGE)
        out = solve_milp(hyper.topology, demand, config,
                         hyper_groups=hyper.groups)
        plan = out.plan
        # per-epoch usage of the switch's hyper-edges never exceeds the limit
        for k in range(plan.num_epochs):
            used = sum(1 for s in out.schedule.sends if s.epoch == k)
            assert used <= hyper.groups[0].usage_limit

    def test_hyper_edge_rejects_untransformed_topology(self, star3):
        demand = collectives.allgather(star3.gpus, 1)
        with pytest.raises(ModelError, match="hyper-edge"):
            solve_milp(star3, demand,
                       cfg(6, switch_model=SwitchModel.HYPER_EDGE))


class TestStoreAndForward:
    def test_disabling_buffers_keeps_quality(self, ring4, ag_ring4):
        """Figure 9's claim: buffers change solver time, not quality."""
        with_sf = solve_milp(ring4, ag_ring4, cfg(6))
        without = solve_milp(ring4, ag_ring4,
                             cfg(6, store_and_forward=False))
        assert without.schedule.finish_epoch == with_sf.schedule.finish_epoch
        verify(without.schedule, ring4, ag_ring4, without.plan)

    def test_relay_is_immediate_without_sf(self):
        topo = topology.line(4, capacity=1.0)
        demand = collectives.broadcast(0, [3], 1)
        out = solve_milp(topo, demand, cfg(8, store_and_forward=False))
        hops = sorted(out.schedule.sends)
        for a, b in zip(hops, hops[1:]):
            assert b.epoch == a.epoch + 1  # no waiting allowed


class TestLimitedBuffers:
    def test_relay_buffer_limit_respected(self):
        """Appendix B: cap the relay buffer and check B stays within it."""
        topo = topology.line(3, capacity=2.0)
        demand = collectives.Demand.from_triples(
            [(0, c, 2) for c in range(4)])
        out = solve_milp(topo, demand, cfg(8, buffer_limit_chunks=1))
        verify(out.schedule, topo, demand, out.plan)
        # node 1 relays every chunk but may hold at most 1 at a time:
        # count, per epoch, chunks that arrived at 1 but not yet left
        arrivals = {}
        departures = {}
        for send in out.schedule.sends:
            if send.dst == 1:
                arrivals[send.chunk] = send.epoch + 1
            if send.src == 1:
                departures[send.chunk] = send.epoch
        for k in range(8):
            holding = sum(
                1 for c in arrivals
                if arrivals[c] <= k < departures.get(c, 10**9))
            assert holding <= 1 + 1  # in-flight chunk leaves next epoch

    def test_unlimited_default(self, ring4, ag_ring4):
        out = solve_milp(ring4, ag_ring4, cfg(6))
        assert out.result.status.has_solution


class TestEpochModes:
    def test_fastest_vs_slowest_quality(self):
        """Figure 8: finer epochs give equal-or-better schedules."""
        topo = topology.Topology("h", num_nodes=3)
        topo.add_bidirectional(0, 1, 4.0)
        topo.add_bidirectional(1, 2, 1.0)
        demand = collectives.broadcast(0, [1, 2], 2)
        fast = solve_milp(topo, demand, TecclConfig(
            chunk_bytes=4.0, num_epochs=20,
            epoch_mode=EpochMode.FASTEST_LINK))
        slow = solve_milp(topo, demand, TecclConfig(
            chunk_bytes=4.0, num_epochs=8,
            epoch_mode=EpochMode.SLOWEST_LINK))
        assert fast.finish_time <= slow.finish_time + 1e-9

    def test_windowed_capacity_respected(self):
        topo = topology.Topology("h", num_nodes=2)
        topo.add_bidirectional(0, 1, 1.0)
        # tau set by a "virtual" fast link via multiplier < 1
        config = TecclConfig(chunk_bytes=4.0, num_epochs=16,
                             epoch_mode=EpochMode.SLOWEST_LINK,
                             epoch_multiplier=0.25)
        demand = collectives.Demand.from_triples([(0, c, 1) for c in range(2)])
        out = solve_milp(topo, demand, config)
        verify(out.schedule, topo, demand, out.plan)
        # slow link fits one chunk per 4 epochs
        epochs = sorted(s.epoch for s in out.schedule.sends)
        assert epochs[1] - epochs[0] >= 4


class TestVariableBandwidth:
    def test_capacity_fn_blocks_epochs(self):
        topo = topology.line(2, capacity=1.0)
        demand = collectives.Demand.from_triples([(0, 0, 1)])

        def capacity_fn(i, j, k):
            return 1.0 if k >= 3 else 1e-9  # link dark until epoch 3

        config = TecclConfig(chunk_bytes=1.0, num_epochs=6,
                             epoch_mode=EpochMode.SLOWEST_LINK,
                             capacity_fn=capacity_fn)
        out = solve_milp(topo, demand, config)
        assert all(s.epoch >= 3 for s in out.schedule.sends)

    def test_capacity_fn_requires_unit_occupancy(self):
        topo = topology.Topology("h", num_nodes=3)
        topo.add_bidirectional(0, 1, 4.0)
        topo.add_bidirectional(1, 2, 1.0)
        config = TecclConfig(chunk_bytes=4.0, num_epochs=4,
                             epoch_mode=EpochMode.FASTEST_LINK,
                             capacity_fn=lambda i, j, k: 1.0)
        demand = collectives.broadcast(0, [2], 1)
        with pytest.raises(ModelError, match="time-varying"):
            solve_milp(topo, demand, config)


class TestPriorities:
    def test_high_priority_tenant_finishes_first(self):
        # one relay link, two competing transfers: priority breaks the tie
        topo = topology.line(2, capacity=1.0)
        demand = collectives.Demand.from_triples([(0, 0, 1), (0, 1, 1)])
        high_on_1 = cfg(4, priorities={(0, 1, 1): 10.0, (0, 0, 1): 1.0})
        out = solve_milp(topo, demand, high_on_1)
        first = min(out.schedule.sends)
        assert first.chunk == 1

    def test_weights_default_to_one(self):
        config = cfg(4)
        assert config.weight(0, 0, 1) == 1.0


class TestEarlyStop:
    def test_gap_limited_solution_still_valid(self, dgx1):
        demand = collectives.allgather(dgx1.gpus, 1)
        config = TecclConfig(chunk_bytes=25e3, num_epochs=10,
                             solver=SolverOptions(mip_gap=0.3))
        out = solve_milp(dgx1, demand, config)
        verify(out.schedule, dgx1, demand, out.plan)

    def test_objective_prefers_early_delivery(self, line3):
        demand = collectives.broadcast(0, [1], 1)
        out = solve_milp(line3, demand, cfg(6))
        # delivery could happen at any epoch; the objective forces epoch 0
        assert out.delivered_epoch[(0, 0, 1)] == 0


class TestBuilderInternals:
    def test_variable_elimination_shrinks_model(self, ring4, ag_ring4):
        plan = build_epoch_plan(ring4, cfg(6), 6)
        tight = MilpBuilder(ring4, ag_ring4, cfg(6), plan).build()
        # a chunk cannot be 3+ hops away after 1 epoch: F vars must be
        # fewer than the dense count
        dense = (ag_ring4.num_commodities * len(ring4.links) * 6)
        assert len(tight.f_vars) < dense

    def test_unreachable_destination_raises(self):
        topo = topology.line(2, capacity=1.0)
        demand = collectives.Demand.from_triples([(0, 0, 1)])
        plan = build_epoch_plan(topo, cfg(4), 4)
        builder = MilpBuilder(topo, demand, cfg(4), plan)
        problem = builder.build()
        assert problem.model.num_vars > 0
