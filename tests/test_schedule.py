"""Unit tests for Schedule / FlowSchedule invariants and cost math."""

import pytest

from repro.core.schedule import FlowSchedule, Schedule, Send
from repro.errors import ScheduleError
from repro.topology import line


def send(epoch, src, dst, source=0, chunk=0):
    return Send(epoch=epoch, source=source, chunk=chunk, src=src, dst=dst)


class TestSend:
    def test_ordering_by_epoch(self):
        assert send(0, 0, 1) < send(1, 0, 1)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ScheduleError):
            send(-1, 0, 1)

    def test_accessors(self):
        s = send(2, 3, 4, source=1, chunk=5)
        assert s.commodity == (1, 5)
        assert s.link == (3, 4)


class TestSchedule:
    def test_beyond_horizon_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule(sends=[send(5, 0, 1)], tau=1.0, chunk_bytes=1.0,
                     num_epochs=3)

    def test_parameter_validation(self):
        with pytest.raises(ScheduleError):
            Schedule(sends=[], tau=0.0, chunk_bytes=1.0, num_epochs=1)
        with pytest.raises(ScheduleError):
            Schedule(sends=[], tau=1.0, chunk_bytes=0.0, num_epochs=1)

    def test_finish_epoch(self):
        sched = Schedule(sends=[send(0, 0, 1), send(3, 1, 2)], tau=1.0,
                         chunk_bytes=1.0, num_epochs=5)
        assert sched.finish_epoch == 3
        assert Schedule(sends=[], tau=1.0, chunk_bytes=1.0,
                        num_epochs=1).finish_epoch == -1

    def test_finish_time_alpha_beta(self):
        topo = line(3, capacity=2.0, alpha=0.5)
        sched = Schedule(sends=[send(1, 0, 1)], tau=1.0, chunk_bytes=4.0,
                         num_epochs=3)
        # 1 * tau + 4/2 + 0.5
        assert sched.finish_time(topo) == pytest.approx(3.5)

    def test_groupings(self):
        sends = [send(0, 0, 1), send(0, 1, 2), send(1, 0, 1)]
        sched = Schedule(sends=sends, tau=1.0, chunk_bytes=1.0, num_epochs=3)
        assert len(sched.sends_by_epoch()[0]) == 2
        assert len(sched.sends_on_link(0, 1)) == 2
        assert sched.links_used() == {(0, 1), (1, 2)}

    def test_total_bytes(self):
        sched = Schedule(sends=[send(0, 0, 1)] * 1, tau=1.0,
                         chunk_bytes=7.0, num_epochs=1)
        assert sched.total_bytes() == pytest.approx(7.0)

    def test_shift_and_merge(self):
        a = Schedule(sends=[send(0, 0, 1)], tau=1.0, chunk_bytes=1.0,
                     num_epochs=2)
        b = a.shifted(3)
        assert b.sends[0].epoch == 3
        merged = a.merged_with(b)
        assert merged.num_sends == 2
        assert merged.num_epochs == 5

    def test_merge_rejects_mismatched(self):
        a = Schedule(sends=[], tau=1.0, chunk_bytes=1.0, num_epochs=1)
        b = Schedule(sends=[], tau=2.0, chunk_bytes=1.0, num_epochs=1)
        with pytest.raises(ScheduleError):
            a.merged_with(b)

    def test_shift_rejects_negative(self):
        a = Schedule(sends=[], tau=1.0, chunk_bytes=1.0, num_epochs=1)
        with pytest.raises(ScheduleError):
            a.shifted(-1)


class TestFlowSchedule:
    def test_tolerance_filter(self):
        fs = FlowSchedule(flows={(0, 0, 1, 0): 1e-12, (0, 0, 1, 1): 0.5},
                          reads={(0, 1, 1): 0.5}, tau=1.0, chunk_bytes=1.0,
                          num_epochs=3)
        assert len(fs.flows) == 1

    def test_finish_epoch(self):
        fs = FlowSchedule(flows={(0, 0, 1, 2): 1.0}, reads={(0, 1, 3): 1.0},
                          tau=1.0, chunk_bytes=1.0, num_epochs=5)
        assert fs.finish_epoch == 3

    def test_link_load_sums_commodities(self):
        fs = FlowSchedule(flows={(0, 0, 1, 0): 0.5, (1, 0, 1, 0): 0.25},
                          reads={}, tau=1.0, chunk_bytes=1.0, num_epochs=2)
        assert fs.link_load(0, 1, 0) == pytest.approx(0.75)

    def test_finish_time_serialises_link_load(self):
        topo = line(3, capacity=2.0, alpha=0.0)
        fs = FlowSchedule(flows={(0, 0, 1, 0): 0.5, (1, 0, 1, 0): 0.5},
                          reads={}, tau=1.0, chunk_bytes=4.0, num_epochs=2)
        # both half-chunks share epoch 0: 0 + (1.0 * 4)/2 = 2.0
        assert fs.finish_time(topo) == pytest.approx(2.0)

    def test_delivered(self):
        fs = FlowSchedule(flows={}, reads={(0, 1, 0): 0.5, (0, 1, 2): 0.5},
                          tau=1.0, chunk_bytes=1.0, num_epochs=3)
        assert fs.delivered(0, 1) == pytest.approx(1.0)

    def test_total_bytes(self):
        fs = FlowSchedule(flows={(0, 0, 1, 0): 1.5}, reads={}, tau=1.0,
                          chunk_bytes=2.0, num_epochs=1)
        assert fs.total_bytes() == pytest.approx(3.0)
