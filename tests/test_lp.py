"""Integration tests for the LP formulation (§4.1) and its scaling hooks."""

import pytest

from repro import collectives, topology
from repro.core import TecclConfig
from repro.core.config import EpochMode
from repro.core.epochs import build_epoch_plan
from repro.core.lp import (LpBuilder, build_commodities, lp_feasible_horizon,
                           minimize_epochs_lp, solve_lp)
from repro.errors import InfeasibleError

TOL = 1e-6


def cfg(num_epochs=None, **kwargs) -> TecclConfig:
    return TecclConfig(chunk_bytes=1.0, num_epochs=num_epochs, **kwargs)


class TestCommodities:
    def test_alltoall_aggregates_by_source(self):
        demand = collectives.alltoall([0, 1, 2], 2)
        commodities = build_commodities(demand)
        assert len(commodities) == 3
        q0 = next(q for q in commodities if q.key == 0)
        assert q0.supply == pytest.approx(4.0)  # 2 peers x 2 chunks
        assert q0.sinks == {1: 2.0, 2: 2.0}

    def test_multicast_uses_per_chunk_multiplicity(self):
        demand = collectives.allgather([0, 1, 2], 1)
        commodities = build_commodities(demand)
        assert len(commodities) == 3
        q = commodities[0]
        assert isinstance(q.key, tuple)
        assert q.supply == pytest.approx(2.0)  # one physical copy per sink

    def test_aggregation_can_be_disabled(self):
        demand = collectives.alltoall([0, 1, 2], 1)
        commodities = build_commodities(demand, aggregate=False)
        assert len(commodities) == 6  # one per (source, chunk)


class TestRingAlltoall:
    def test_optimal_two_epochs(self, ring4, atoa_ring4):
        best = minimize_epochs_lp(ring4, atoa_ring4, cfg())
        # each GPU ships 3 chunks over 2 out-links: 2 epochs optimal
        assert best.plan.num_epochs == 2
        assert best.finish_time == pytest.approx(2.0)

    def test_demands_fully_met(self, ring4, atoa_ring4):
        out = solve_lp(ring4, atoa_ring4, cfg(4))
        for q in build_commodities(atoa_ring4):
            for d, amount in q.sinks.items():
                assert out.schedule.delivered(q.key, d) == pytest.approx(
                    amount, abs=TOL)

    def test_capacity_respected(self, ring4, atoa_ring4):
        out = solve_lp(ring4, atoa_ring4, cfg(4))
        plan = out.plan
        for (i, j) in ring4.links:
            for k in range(plan.num_epochs):
                assert out.schedule.link_load(i, j, k) <= \
                    plan.cap_chunks[(i, j)] + TOL

    def test_pruned_not_heavier_than_raw(self, ring4, atoa_ring4):
        out = solve_lp(ring4, atoa_ring4, cfg(6))
        assert out.schedule.total_bytes() <= \
            out.raw_schedule.total_bytes() + TOL


class TestFractionalSplitting:
    def test_lp_splits_across_parallel_paths(self):
        """Two disjoint 2-hop paths: the LP halves the chunk across them."""
        topo = topology.Topology("par", num_nodes=4)
        topo.add_bidirectional(0, 1, 1.0)
        topo.add_bidirectional(1, 3, 1.0)
        topo.add_bidirectional(0, 2, 1.0)
        topo.add_bidirectional(2, 3, 1.0)
        demand = collectives.Demand.from_triples([(0, 0, 3), (0, 1, 3)])
        best = minimize_epochs_lp(topo, demand, cfg())
        # 2 chunks over 2 disjoint 2-hop paths: 2 epochs, not 3
        assert best.plan.num_epochs == 2

    def test_fastest_epoch_mode_fractional_caps(self):
        topo = topology.Topology("h", num_nodes=3)
        topo.add_bidirectional(0, 1, 4.0)
        topo.add_bidirectional(1, 2, 1.0)
        demand = collectives.Demand.from_triples([(0, 0, 2)])
        config = TecclConfig(chunk_bytes=4.0, num_epochs=12,
                             epoch_mode=EpochMode.FASTEST_LINK)
        out = solve_lp(topo, demand, config)
        # slow link carries 0.25 chunks/epoch; LP must respect that
        plan = out.plan
        for k in range(plan.num_epochs):
            assert out.schedule.link_load(1, 2, k) <= 0.25 + TOL


class TestNoCopyMulticast:
    def test_multicast_multiplicity(self):
        """LP-as-no-copy: the source pays one injection per destination."""
        topo = topology.copy_star()
        demand = collectives.broadcast(0, [2, 3, 4], 1)
        out = solve_lp(topo, demand, cfg(8), aggregate=False)
        injected = sum(v for (q, i, j, k), v in out.schedule.flows.items()
                       if i == 0)
        assert injected == pytest.approx(3.0, abs=TOL)

    def test_no_copy_slower_than_milp(self):
        from repro.core import solve_milp

        topo = topology.copy_star()
        demand = collectives.broadcast(0, [2, 3, 4], 1)
        with_copy = solve_milp(topo, demand, cfg(8))
        without = solve_lp(topo, demand, cfg(8), aggregate=False)
        # Figure 1(c): 2 s with copy vs 4 s without
        assert with_copy.finish_time == pytest.approx(2.0)
        assert without.finish_time == pytest.approx(4.0)


class TestSwitchTopologies:
    def test_alltoall_through_switch(self, star3):
        demand = collectives.alltoall(star3.gpus, 1)
        out = solve_lp(star3, demand, cfg(8))
        # nothing may terminate at the switch
        for (q, i, j, k), v in out.schedule.flows.items():
            assert v > 0
        for q in build_commodities(demand):
            for d, amount in q.sinks.items():
                assert out.schedule.delivered(q.key, d) == pytest.approx(
                    amount, abs=TOL)

    def test_internal2_alltoall(self, internal2x2):
        demand = collectives.alltoall(internal2x2.gpus, 1)
        config = TecclConfig(chunk_bytes=1e6)
        out = solve_lp(internal2x2, demand, config)
        assert out.finish_time > 0
        assert out.result.status.has_solution


class TestHorizonMachinery:
    def test_infeasible_horizon_raises(self, line3):
        demand = collectives.Demand.from_triples([(0, 0, 2)])
        with pytest.raises(InfeasibleError):
            solve_lp(line3, demand, cfg(1))

    def test_feasibility_probe(self, ring4, atoa_ring4):
        config = cfg()
        assert lp_feasible_horizon(ring4, atoa_ring4, config, tau=1.0,
                                   num_epochs=4)
        assert not lp_feasible_horizon(ring4, atoa_ring4, config, tau=1.0,
                                       num_epochs=1)

    def test_minimize_epochs_raises_when_impossible(self, line3):
        demand = collectives.Demand.from_triples([(0, 0, 2)])
        with pytest.raises(InfeasibleError):
            minimize_epochs_lp(line3, demand, cfg(), max_epochs=1)


class TestBufferLimitLp:
    def test_zero_relay_buffer_forces_streaming(self):
        topo = topology.line(3, capacity=1.0)
        demand = collectives.Demand.from_triples([(0, 0, 2), (0, 1, 2)])
        out = solve_lp(topo, demand, cfg(8, buffer_limit_chunks=0.0))
        # all demand delivered even though node 1 cannot hold mass
        assert out.schedule.delivered(0, 2) == pytest.approx(2.0, abs=TOL)
        # streaming: inflow into node 1 during epoch k equals outflow at k+1
        inflow = {k: v for (q, i, j, k), v in out.schedule.flows.items()
                  if j == 1}
        outflow = {k: v for (q, i, j, k), v in out.schedule.flows.items()
                   if i == 1}
        for k, v in inflow.items():
            assert outflow.get(k + 1, 0.0) == pytest.approx(v, abs=TOL)


class TestStoreAndForwardLp:
    def test_relay_without_buffering(self):
        topo = topology.line(3, capacity=1.0)
        demand = collectives.Demand.from_triples([(0, 0, 2), (0, 1, 2)])
        out = solve_lp(topo, demand, cfg(8, store_and_forward=False))
        assert out.schedule.delivered(0, 2) == pytest.approx(2.0, abs=TOL)


class TestObjectiveShape:
    def test_reads_happen_as_early_as_possible(self, ring4, atoa_ring4):
        out = solve_lp(ring4, atoa_ring4, cfg(6))
        # direct neighbours can be served at epoch 0; the 1/(k+1) objective
        # must exploit that
        early = sum(v for (q, d, k), v in out.schedule.reads.items()
                    if k == 0)
        assert early > 0
