"""Tests for α–β calibration (fit, probe, round-trip)."""

import pytest

from repro import topology
from repro.analysis.calibration import (AlphaBetaFit, Measurement,
                                        apply_calibration,
                                        calibrate_topology,
                                        calibration_error, fit_alpha_beta,
                                        probe_link)
from repro.errors import ModelError
from repro.topology.topology import Link


class TestMeasurement:
    def test_rejects_bad_values(self):
        with pytest.raises(ModelError):
            Measurement(size_bytes=0, seconds=1.0)
        with pytest.raises(ModelError):
            Measurement(size_bytes=1.0, seconds=0)


class TestFit:
    def test_exact_fit_recovers_parameters(self):
        link = Link(0, 1, capacity=2e9, alpha=1e-6)
        measurements = probe_link(link, [1e3, 1e5, 1e6, 1e7])
        fit = fit_alpha_beta(measurements)
        assert fit.alpha == pytest.approx(1e-6, rel=1e-6)
        assert fit.capacity == pytest.approx(2e9, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_fit_close(self):
        link = Link(0, 1, capacity=1e9, alpha=5e-6)
        measurements = probe_link(link, [1e4 * 2 ** i for i in range(10)],
                                  noise=0.02, seed=1)
        fit = fit_alpha_beta(measurements)
        assert fit.capacity == pytest.approx(1e9, rel=0.15)
        assert fit.r_squared > 0.95

    def test_negative_alpha_clamped(self):
        # times that extrapolate to a negative intercept
        measurements = [Measurement(10.0, 0.9), Measurement(20.0, 2.0)]
        fit = fit_alpha_beta(measurements)
        assert fit.alpha == 0.0

    def test_decreasing_times_rejected(self):
        measurements = [Measurement(10.0, 2.0), Measurement(20.0, 1.0)]
        with pytest.raises(ModelError):
            fit_alpha_beta(measurements)

    def test_single_size_rejected(self):
        measurements = [Measurement(10.0, 1.0), Measurement(10.0, 1.1)]
        with pytest.raises(ModelError):
            fit_alpha_beta(measurements)

    def test_too_few_rejected(self):
        with pytest.raises(ModelError):
            fit_alpha_beta([Measurement(10.0, 1.0)])

    def test_predict(self):
        fit = AlphaBetaFit(alpha=1.0, beta=0.5, r_squared=1.0)
        assert fit.predict(4.0) == pytest.approx(3.0)

    def test_capacity_requires_positive_beta(self):
        fit = AlphaBetaFit(alpha=1.0, beta=0.0, r_squared=1.0)
        with pytest.raises(ModelError):
            _ = fit.capacity


class TestProbe:
    def test_noise_free_probe_is_exact(self):
        link = Link(0, 1, capacity=1e9, alpha=1e-6)
        for m in probe_link(link, [1e3, 1e6]):
            assert m.seconds == pytest.approx(link.transfer_time(m.size_bytes))

    def test_deterministic_per_seed(self):
        link = Link(0, 1, capacity=1e9, alpha=1e-6)
        a = probe_link(link, [1e3, 1e6], noise=0.1, seed=5)
        b = probe_link(link, [1e3, 1e6], noise=0.1, seed=5)
        assert [m.seconds for m in a] == [m.seconds for m in b]

    def test_negative_noise_rejected(self):
        link = Link(0, 1, capacity=1e9)
        with pytest.raises(ModelError):
            probe_link(link, [1e3], noise=-0.1)


class TestTopologyCalibration:
    def test_round_trip_noise_free(self, dgx1):
        fits = calibrate_topology(dgx1)
        calibrated = apply_calibration(dgx1, fits)
        for key, link in dgx1.links.items():
            fitted = calibrated.link(*key)
            assert fitted.capacity == pytest.approx(link.capacity, rel=1e-6)
            assert fitted.alpha == pytest.approx(link.alpha, abs=1e-12)

    def test_errors_small_under_noise(self):
        topo = topology.ndv2(1)
        fits = calibrate_topology(topo, noise=0.01, seed=2)
        errors = calibration_error(topo, fits)
        for alpha_err, cap_err in errors.values():
            assert cap_err < 0.2

    def test_partial_calibration_keeps_declared(self, ring4):
        fits = calibrate_topology(ring4)
        del fits[(0, 1)]
        calibrated = apply_calibration(ring4, fits)
        assert calibrated.link(0, 1).capacity == ring4.link(0, 1).capacity
