"""Tests for whole-step workload synthesis (steptime)."""

import pytest

from repro import topology
from repro.collectives import (data_parallel_job, pipeline_job,
                               synthesize_workload)
from repro.core import TecclConfig
from repro.solver import SolverOptions


def cfg():
    return TecclConfig(chunk_bytes=1.0,  # overridden per call
                       solver=SolverOptions(mip_gap=0.2, time_limit=30))


@pytest.fixture
def bucketed_job():
    # 3 identical 25 MB buckets → 3 RS + 3 AG, only 2 distinct syntheses
    return data_parallel_job(list(range(4)), model_params=37.5e6,
                             dtype_bytes=2, bucket_bytes=25e6)


class TestSynthesizeWorkload:
    def test_all_calls_scheduled(self, ring4, bucketed_job):
        report = synthesize_workload(ring4, bucketed_job, cfg())
        assert len(report.scheduled) == len(bucketed_job.calls)
        assert report.total_time > 0

    def test_dedup_identical_buckets(self, ring4, bucketed_job):
        report = synthesize_workload(ring4, bucketed_job, cfg())
        fresh = [s for s in report.scheduled if not s.reused]
        # full buckets share a synthesis; the ragged last bucket differs
        assert len(fresh) < len(report.scheduled)
        assert report.dedup_ratio > 0

    def test_dedup_off_solves_everything(self, ring4, bucketed_job):
        report = synthesize_workload(ring4, bucketed_job, cfg(),
                                     dedupe=False)
        assert all(not s.reused for s in report.scheduled)
        assert report.dedup_ratio == 0

    def test_reused_calls_share_synthesis_object(self, ring4, bucketed_job):
        report = synthesize_workload(ring4, bucketed_job, cfg())
        rs_calls = [s for s in report.scheduled
                    if s.call.name.endswith("-rs")
                    and s.call.chunk_bytes == report.scheduled[0]
                    .call.chunk_bytes]
        if len(rs_calls) >= 2:
            assert rs_calls[1].synthesis is rs_calls[0].synthesis

    def test_phase_accounting(self, ring4):
        job = pipeline_job(list(ring4.gpus), num_microbatches=2)
        report = synthesize_workload(ring4, job, cfg())
        assert report.phase_time("forward") > 0
        assert report.phase_time("backward") > 0
        assert report.phase_time("forward") + report.phase_time(
            "backward") == pytest.approx(report.total_time)

    def test_solve_time_counts_fresh_only(self, ring4, bucketed_job):
        report = synthesize_workload(ring4, bucketed_job, cfg())
        fresh_sum = sum(s.synthesis.solve_time
                        for s in report.scheduled if not s.reused)
        assert report.solve_time == pytest.approx(fresh_sum)

    def test_slowest_call(self, ring4, bucketed_job):
        report = synthesize_workload(ring4, bucketed_job, cfg())
        slowest = report.slowest_call()
        assert slowest.finish_time == max(
            s.finish_time for s in report.scheduled)

    def test_on_dgx1(self, dgx1):
        job = data_parallel_job(dgx1.gpus, model_params=10e6,
                                bucket_bytes=100e6)
        report = synthesize_workload(dgx1, job, cfg())
        assert report.total_time > 0
        assert report.workload_name == "data-parallel"
