"""Warm vs cold re-solving: the incremental engine's end-to-end payoff.

Three production re-solve loops, cold (build + solve from scratch per
attempt, the pre-PR-4 behaviour) against warm (one growing model, bound
restrictions, seeded horizons):

* **Horizon search** — the §6 ``minimize_epochs`` binary search at Table-4
  scale, run with a generous search bound (the paper's Algorithm-1-style
  bounds are deliberately loose). The cold bisection pays one expensive
  *feasible* solve per halving of the bound; the warm search anchors at
  the cheap path estimate on one shared model and its cost is independent
  of the bound. This is the acceptance headline: >= 2x end to end.
* **POP retries** — partitioned solves sharing one growing model per
  partition across horizon attempts.
* **Replanning** — a perturbed fabric re-solved seeded by the prior
  result (`replan`), against a from-scratch `synthesize`.

Publishes ``benchmarks/results/BENCH_warm_start.json`` with the build/solve
splits and asserts the speedup and the warm==cold result agreement.
"""

import time

import pytest

from _common import write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig
from repro.core.epochs import build_epoch_plan, path_based_epoch_bound
from repro.core.lp import minimize_epochs_lp
from repro.core.pop import solve_lp_pop
from repro.core.solve import synthesize
from repro.failures import replan
from repro.solver import SolverOptions


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - start


def test_warm_start_speedup(benchmark):
    table = Table("Warm vs cold re-solving (incremental engine, PR 4)",
                  columns=["cold s", "warm s", "speedup", "K cold",
                           "K warm", "warm solves"])
    results: dict[str, dict] = {}

    # -- headline: multi-attempt horizon search at Table-4 scale ---------
    topo = topology.internal1(4)
    demand = collectives.alltoall(topo.gpus, 1)
    config = TecclConfig(chunk_bytes=1e6,
                         solver=SolverOptions(time_limit=120))
    probe = build_epoch_plan(topo, config, num_epochs=1)
    # a generous bound, as the paper's binary-search procedure uses: the
    # search must be correct for any bound, and its cost should not
    # depend on the bound's looseness (warm) the way bisection does (cold)
    bound = 4 * path_based_epoch_bound(topo, demand, probe)
    warm, warm_s = _timed(minimize_epochs_lp, topo, demand, config,
                          max_epochs=bound)
    cold, cold_s = _timed(minimize_epochs_lp, topo, demand, config,
                          max_epochs=bound, incremental=False)
    assert warm.plan.num_epochs == cold.plan.num_epochs
    assert warm.result.objective == pytest.approx(cold.result.objective,
                                                  rel=1e-6)
    results["horizon_search"] = {
        "topology": topo.name, "gpus": len(topo.gpus),
        "search_bound": bound,
        "k_star": warm.plan.num_epochs,
        "cold_s": cold_s, "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "warm_solves": warm.result.stats.get("horizon_solves"),
        "warm_build_s": warm.result.stats.get("build_time"),
        "cold_final_build_s": cold.result.stats.get("build_time"),
    }
    table.add("horizon search (Table-4)", **{
        "cold s": round(cold_s, 2), "warm s": round(warm_s, 2),
        "speedup": round(cold_s / warm_s, 2),
        "K cold": cold.plan.num_epochs, "K warm": warm.plan.num_epochs,
        "warm solves": warm.result.stats.get("horizon_solves")})

    # -- POP retries: shared growing models across horizon attempts ------
    pop_topo = topology.internal2(8)
    pop_demand = collectives.alltoall(pop_topo.gpus, 1)
    pop_config = TecclConfig(chunk_bytes=1e6,
                             solver=SolverOptions(time_limit=120))
    warm_pop, warm_pop_s = _timed(solve_lp_pop, pop_topo, pop_demand,
                                  pop_config, num_partitions=2)
    cold_pop, cold_pop_s = _timed(solve_lp_pop, pop_topo, pop_demand,
                                  pop_config, num_partitions=2,
                                  incremental=False)
    assert warm_pop.plan.num_epochs == cold_pop.plan.num_epochs
    assert warm_pop.attempts == cold_pop.attempts
    results["pop_retries"] = {
        "topology": pop_topo.name, "gpus": len(pop_topo.gpus),
        "attempts": warm_pop.attempts,
        "cold_s": cold_pop_s, "warm_s": warm_pop_s,
        "speedup": cold_pop_s / warm_pop_s,
    }
    table.add("POP partitioned", **{
        "cold s": round(cold_pop_s, 2), "warm s": round(warm_pop_s, 2),
        "speedup": round(cold_pop_s / warm_pop_s, 2),
        "K cold": cold_pop.plan.num_epochs,
        "K warm": warm_pop.plan.num_epochs,
        "warm solves": warm_pop.attempts})

    # -- replanning a perturbed fabric, seeded by the prior solution -----
    ring = topology.ring(16, capacity=1.0)
    ring_demand = collectives.alltoall(ring.gpus, 1)
    ring_config = TecclConfig(chunk_bytes=1.0,
                              solver=SolverOptions(time_limit=120))
    prior = synthesize(ring, ring_demand, ring_config)
    perturbed = topology.scale_capacity(ring, 0.8,
                                        name="ring16-renegotiated")
    seeded, seeded_s = _timed(replan, prior, perturbed, ring_demand,
                              ring_config)
    scratch, scratch_s = _timed(synthesize, perturbed, ring_demand,
                                ring_config)
    results["replan"] = {
        "topology": perturbed.name,
        "cold_s": scratch_s, "warm_s": seeded_s,
        "speedup": scratch_s / seeded_s,
        "k_seeded": seeded.plan.num_epochs,
        "k_cold": scratch.plan.num_epochs,
        "seeded_finish": seeded.finish_time,
        "cold_finish": scratch.finish_time,
    }
    table.add("replan (perturbed fabric)", **{
        "cold s": round(scratch_s, 2), "warm s": round(seeded_s, 2),
        "speedup": round(scratch_s / seeded_s, 2),
        "K cold": scratch.plan.num_epochs,
        "K warm": seeded.plan.num_epochs, "warm solves": 1})

    write_result(
        "warm_start", table.render(),
        json_name="BENCH_warm_start",
        data={
            "scenarios": results,
            "note": "cold = fresh build+solve per attempt; warm = one "
                    "growing model with bound-restricted probes and "
                    "seeded horizons (PR 4). The horizon-search speedup "
                    "is the acceptance headline (>= 2x).",
        },
        phases={f"{scenario}_{kind}": results[scenario][f"{kind}_s"]
                for scenario in results for kind in ("cold", "warm")})

    # the PR's acceptance bar, re-asserted on every bench run
    assert warm_s * 2 <= cold_s, results["horizon_search"]

    # representative single solve for pytest-benchmark tracking
    benchmark.pedantic(
        lambda: minimize_epochs_lp(
            topology.ring(8, capacity=1.0),
            collectives.alltoall(list(range(8)), 1),
            TecclConfig(chunk_bytes=1.0)),
        rounds=1, iterations=1)
