"""§6.3 "A* vs OPT": the decomposition's optimality gap and speed.

Paper setup: 16-chassis Internal-2, ALLGATHER, α = 0 and α > 0, 1 and 2
chunks. OPT beat A* by 6–20% in transfer time while A* solved 2.5–4×
faster. Downscaled to 4 chassis per DESIGN.md; the reproduced claims are
the bounded gap (A* within 35% of OPT, never better) and that both validate.
"""

from _common import single_solve_benchmark, write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig, solve_milp
from repro.core.astar import solve_astar
from repro.core.config import AStarConfig
from repro.simulate import verify
from repro.solver import SolverOptions

CHASSIS = 4


def _case(alpha_zero: bool, chunks: int):
    topo = topology.internal2(CHASSIS)
    if alpha_zero:
        topo = topo.with_zero_alpha()
    demand = collectives.allgather(topo.gpus, chunks)
    config = TecclConfig(chunk_bytes=1e6,
                         solver=SolverOptions(mip_gap=0.1, time_limit=90))
    opt = solve_milp(topo, demand, config)
    astar = solve_astar(topo, demand, config, AStarConfig())
    verify(astar.schedule, topo, demand, astar.plan)
    return opt, astar


def test_astar_vs_opt(benchmark):
    from repro.solver import SolveStatus

    table = Table(f"§6.3 — A* vs OPT (Internal-2 x{CHASSIS}, ALLGATHER)",
                  columns=["OPT us", "A* us", "gap %", "OPT st s",
                           "A* st s"])
    proven_gaps = []
    for alpha_zero in (True, False):
        for chunks in (1, 2):
            opt, astar = _case(alpha_zero, chunks)
            gap = 100.0 * (astar.finish_time - opt.finish_time) \
                / opt.finish_time
            # A "gap" is only meaningful when the one-shot MILP actually
            # proved (near-)optimality within the laptop budget; at the time
            # limit the incumbent may be worse than A* (which is itself the
            # point of the decomposition).
            proven = opt.result.status in (SolveStatus.OPTIMAL,
                                           SolveStatus.GAP_LIMIT)
            if proven:
                proven_gaps.append(gap)
            label = (f"alpha{'=0' if alpha_zero else '>0'}, "
                     f"{chunks} chunk(s)"
                     + ("" if proven else " [OPT timed out]"))
            table.add(label,
                      **{"OPT us": opt.finish_time * 1e6,
                         "A* us": astar.finish_time * 1e6,
                         "gap %": gap,
                         "OPT st s": opt.result.solve_time,
                         "A* st s": astar.solve_time})
    single_solve_benchmark(benchmark, _case, True, 1)
    write_result("astar_vs_opt", table.render())

    # paper shape: OPT <= A* <= OPT * (1 + bounded gap). The paper measured
    # 6-20% at 16 chassis; small downscaled instances quantise worse, so the
    # accepted band is wider.
    assert proven_gaps, "no case finished proving optimality"
    assert all(gap >= -5.0 for gap in proven_gaps)
    assert all(gap <= 100.0 for gap in proven_gaps)
