"""End-to-end fleet adaptation: the control plane's acceptance bench.

A seeded fabric-wide congestion event (every link of a ring renegotiated to
70% capacity — the cloud-fabric scenario of §5.4) hits a fleet of four
recurring alltoall jobs, two of which are replicas of each other. The
:class:`~repro.fleet.AdaptationController` must

* detect the event from telemetry (EWMA crosses the degraded threshold),
* replan every affected job warm through the planner service, and
* activate only conformance-vetted schedules.

The headline assertion compares the *total adaptation wall time* (polling,
estimation, gating, warm solves, conformance vetting, activation) against
cold re-synthesis of every affected job from scratch — what an operator
without the control plane would run. The fleet wins twice: replicas
deduplicate onto one solve through the planner's fingerprint cache, and
each distinct solve is horizon-seeded by the job's active schedule. The
bar is >= 2x, re-asserted on every run.

Publishes ``benchmarks/results/BENCH_fleet_adaptation.json``.
"""

import time

import pytest

from _common import write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig
from repro.core.solve import synthesize
from repro.fleet import (AdaptationController, FleetJob, LinkEvent,
                         SyntheticTelemetry)
from repro.service import Planner

pytestmark = pytest.mark.fleet

#: the fabric-wide renegotiation factor (cross-tenant congestion)
CONGESTION_FACTOR = 0.7
#: telemetry polls the scenario runs for (the event lands at t=2)
STEPS = 6


def _fleet_jobs(topo):
    """Four recurring jobs: two replica pairs at two chunk granularities."""
    coarse = TecclConfig(chunk_bytes=1.0)
    fine = TecclConfig(chunk_bytes=0.5)
    return [
        FleetJob("a2a/rep0", collectives.alltoall(topo.gpus, 1), coarse),
        FleetJob("a2a/rep1", collectives.alltoall(topo.gpus, 1), coarse),
        FleetJob("fine/rep0", collectives.alltoall(topo.gpus, 2), fine),
        FleetJob("fine/rep1", collectives.alltoall(topo.gpus, 2), fine),
    ]


def test_fleet_adaptation_speedup(benchmark):
    topo = topology.ring(12, capacity=1.0)
    events = [LinkEvent(at=2.0, link=key, factor=CONGESTION_FACTOR)
              for key in topo.links]
    source = SyntheticTelemetry(topo, events=events, seed=7)

    with Planner(executor="inline") as planner:
        daemon = AdaptationController(topo, source, planner)
        admit_start = time.perf_counter()
        for job in _fleet_jobs(topo):
            daemon.add_job(job)
        admission_s = time.perf_counter() - admit_start

        warm_wall = 0.0
        decisions = []
        for _ in range(STEPS):
            t0 = time.perf_counter()
            step_decisions = daemon.step()
            if step_decisions:
                warm_wall += time.perf_counter() - t0
                decisions.extend(step_decisions)

        stats = daemon.stats()
        planner_stats = planner.stats()
        registry = daemon.registry
        live = daemon.estimator.live_topology()

        # the operator-without-a-control-plane baseline: re-synthesize
        # every affected job from scratch on the degraded fabric
        cold_wall = 0.0
        for name in sorted(daemon.jobs):
            job = daemon.jobs[name]
            t0 = time.perf_counter()
            synthesize(live, job.demand, job.config, method=job.method)
            cold_wall += time.perf_counter() - t0

    # -- the event was detected and every affected job replanned warm ----
    assert stats["transitions"] >= 1, stats
    assert stats["replans"] == len(daemon.jobs), (stats, decisions)
    assert stats["rollbacks"] == 0 and stats["failed"] == 0, stats
    replan_decisions = [d for d in decisions if d.action == "replan"]
    assert len(replan_decisions) == len(daemon.jobs)

    # -- zero non-conformant schedules ever activated --------------------
    for entry in registry.history:
        if entry.status.value in ("active", "retired"):
            assert entry.conformance_ok is True, entry.to_dict()
    for name in registry.active_jobs():
        assert registry.active(name).conformance_ok is True

    # -- replicas deduplicated onto one solve each ----------------------
    assert planner_stats["solves"] <= 2 + len(daemon.jobs) // 2, \
        planner_stats

    # -- the acceptance bar: adaptation >= 2x faster than cold -----------
    speedup = cold_wall / warm_wall
    assert warm_wall * 2 <= cold_wall, {
        "warm_wall_s": warm_wall, "cold_wall_s": cold_wall,
        "speedup": speedup}

    table = Table("Fleet adaptation vs cold re-synthesis (PR 5)",
                  columns=["warm s", "cold s", "speedup", "jobs",
                           "solves", "rollbacks"])
    table.add("fabric-wide congestion", **{
        "warm s": round(warm_wall, 2), "cold s": round(cold_wall, 2),
        "speedup": round(speedup, 2), "jobs": len(daemon.jobs),
        "solves": planner_stats["solves"] - 2,  # minus the 2 admission solves
        "rollbacks": stats["rollbacks"]})
    write_result(
        "fleet_adaptation", table.render(),
        json_name="BENCH_fleet_adaptation",
        phases={"admission": admission_s, "warm_adaptation": warm_wall,
                "cold_resynthesis": cold_wall},
        data={
            "topology": topo.name,
            "jobs": sorted(daemon.jobs),
            "congestion_factor": CONGESTION_FACTOR,
            "admission_s": admission_s,
            "warm_wall_s": warm_wall,
            "cold_wall_s": cold_wall,
            "speedup": speedup,
            "adaptation_solve_time_s": stats["adaptation_solve_time"],
            "transitions": stats["transitions"],
            "replans": stats["replans"],
            "rollbacks": stats["rollbacks"],
            "planner": {k: planner_stats[k] for k in
                        ("requests", "hits", "misses", "solves",
                         "coalesced", "replans")},
            "decisions": [str(d) for d in decisions],
            "note": "warm = full control-plane path (poll, estimate, "
                    "gate, warm solve, conformance vet, activate); cold "
                    "= from-scratch synthesize of every affected job on "
                    "the degraded fabric. The >= 2x bar is the PR's "
                    "acceptance criterion.",
        })

    # representative single adaptation for pytest-benchmark tracking
    def one_adaptation():
        small = topology.ring(8, capacity=1.0)
        src = SyntheticTelemetry(
            small, events=[LinkEvent(at=1.0, link=(0, 1), factor=0.5)])
        with Planner(executor="inline") as small_planner:
            ctl = AdaptationController(small, src, small_planner)
            ctl.add_job(FleetJob(
                "a2a", collectives.alltoall(small.gpus, 1),
                TecclConfig(chunk_bytes=1.0)))
            for _ in range(4):
                ctl.step()
            return ctl.stats()["replans"]

    assert benchmark.pedantic(one_adaptation, rounds=1, iterations=1) >= 1
