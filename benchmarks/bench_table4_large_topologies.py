"""Table 4: the scale frontier — topologies TACCL cannot synthesize.

Paper setup: Internal-1/2 at 64–256 GPUs; ALLGATHER via A*, ALLTOALL via the
LP, with the epoch multiplier (EM) coarsening the grid on the largest cells.
Downscaled per DESIGN.md (16–32 GPUs) — the reproduced claims are that
(1) the A* and LP paths complete and validate at sizes where the one-shot
MILP is impractical, and (2) EM > 1 trades schedule quality for solver time.
"""

from _common import MILP_TIME_LIMIT, single_solve_benchmark, write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig
from repro.core.astar import solve_astar
from repro.core.config import AStarConfig
from repro.core.lp import solve_lp
from repro.simulate import verify
from repro.solver import SolverOptions


def _astar_allgather(topo):
    demand = collectives.allgather(topo.gpus, 1)
    config = TecclConfig(
        chunk_bytes=1e6,
        solver=SolverOptions(mip_gap=0.3, time_limit=MILP_TIME_LIMIT))
    out = solve_astar(topo, demand, config, AStarConfig())
    verify(out.schedule, topo, demand, out.plan)
    return out


def _lp_alltoall(topo, em: float):
    demand = collectives.alltoall(topo.gpus, 1)
    config = TecclConfig(chunk_bytes=1e6, epoch_multiplier=em,
                         solver=SolverOptions(time_limit=MILP_TIME_LIMIT))
    return solve_lp(topo, demand, config)


def test_table4_scale_frontier(benchmark):
    table = Table("Table 4 — large topologies (downscaled; EM = epoch "
                  "multiplier; build s = model construction via the "
                  "vectorized COO path)",
                  columns=["GPUs", "EM", "build s", "solver s", "finish us"])

    cells = [
        ("Internal1 AG (A*)", topology.internal1(4), "astar", 1.0),
        ("Internal2 AG (A*)", topology.internal2(8), "astar", 1.0),
        ("Internal1 AtoA", topology.internal1(4), "lp", 1.0),
        ("Internal2 AtoA", topology.internal2(8), "lp", 1.0),
        ("Internal2 AtoA", topology.internal2(8), "lp", 2.0),
    ]
    quality: dict[tuple[str, float], float] = {}
    for label, topo, method, em in cells:
        if method == "astar":
            out = _astar_allgather(topo)
            solver_time, finish = out.solve_time, out.finish_time
            build_time = float("nan")  # A* builds per round (expr path)
        else:
            out = _lp_alltoall(topo, em)
            solver_time, finish = out.solve_time, out.finish_time
            quality[(label + topo.name, em)] = finish
            build_time = out.result.stats.get("build_time", float("nan"))
            assert out.result.stats.get("construction") == "coo"
            # the tentpole claim: construction is a small fraction of solve
            assert build_time < max(0.25 * solver_time, 1.0)
        table.add(f"{label} x{topo.num_gpus} EM{em:g}",
                  **{"GPUs": topo.num_gpus, "EM": em, "build s": build_time,
                     "solver s": solver_time, "finish us": finish * 1e6})
        assert solver_time < MILP_TIME_LIMIT * 4

    single_solve_benchmark(benchmark, _lp_alltoall, topology.internal2(4),
                           1.0)
    write_result("table4_large_topologies", table.render())

    # EM trade-off: coarser epochs never improve the schedule
    fine = quality[("Internal2 AtoA" + "Internal2x8", 1.0)]
    coarse = quality[("Internal2 AtoA" + "Internal2x8", 2.0)]
    assert coarse >= fine - 1e-9
