"""Model construction micro-benchmark: expression path vs COO bulk path.

The scale claim of Table 4 depends on model *construction* staying cheap
relative to the HiGHS solve — the term-by-term ``LinExpr``/``quicksum``
build is exactly the Python-object wall that pushed TACCL to sketches and
the paper to Gurobi's batch APIs. This bench times both construction paths
of the LP/MILP builders on the (downscaled) Table-4 instances, asserts the
vectorized path's ≥5× advantage, checks objective parity end-to-end, and
writes ``benchmarks/results/BENCH_model_build.json`` so future PRs can
track construction-time regressions.
"""

import math
import time

from _common import write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig
from repro.core.epochs import build_epoch_plan, path_based_epoch_bound
from repro.core.lp import LpBuilder
from repro.core.milp import MilpBuilder
from repro.solver import SolverOptions
from repro.solver.model import compiled_equal

#: (label, topology factory, collective, formulation, solve for parity?)
CELLS = (
    ("Internal1 AtoA LP", lambda: topology.internal1(4), "alltoall", "lp",
     True),
    ("Internal2 AtoA LP", lambda: topology.internal2(8), "alltoall", "lp",
     False),
    ("Internal2 AG MILP", lambda: topology.internal2(4), "allgather", "milp",
     False),
    ("Ring16 AG MILP", lambda: topology.ring(16, capacity=1.0, alpha=0.0),
     "allgather", "milp", False),
)


def _build_pair(kind, topo, demand, config, plan):
    cls = LpBuilder if kind == "lp" else MilpBuilder
    start = time.perf_counter()
    expr_problem = cls(topo, demand, config, plan,
                       construction="expr").build()
    expr_time = time.perf_counter() - start
    start = time.perf_counter()
    coo_problem = cls(topo, demand, config, plan, construction="coo").build()
    coo_time = time.perf_counter() - start
    return expr_problem, expr_time, coo_problem, coo_time


def test_model_build_speed(benchmark):
    table = Table("Model construction — expression vs vectorized COO path",
                  columns=["vars", "rows", "expr s", "coo s", "speedup",
                           "solve s"])
    records = []
    speedups = {}
    for label, factory, collective, kind, solve_parity in CELLS:
        topo = factory()
        chunk_bytes = 1.0 if topo.max_alpha == 0 else 1e6
        demand = (collectives.alltoall(topo.gpus, 1)
                  if collective == "alltoall"
                  else collectives.allgather(topo.gpus, 1))
        config = TecclConfig(chunk_bytes=chunk_bytes,
                             solver=SolverOptions(time_limit=120))
        probe = build_epoch_plan(topo, config, num_epochs=1)
        horizon = path_based_epoch_bound(topo, demand, probe)
        plan = build_epoch_plan(topo, config, num_epochs=horizon)

        expr_problem, expr_time, coo_problem, coo_time = _build_pair(
            kind, topo, demand, config, plan)
        assert compiled_equal(expr_problem.model.compile(),
                              coo_problem.model.compile()), label

        solve_time = float("nan")
        if solve_parity:
            expr_result = expr_problem.model.solve(config.solver)
            start = time.perf_counter()
            coo_result = coo_problem.model.solve(config.solver)
            solve_time = time.perf_counter() - start
            assert abs(expr_result.objective
                       - coo_result.objective) < 1e-6, label

        speedup = expr_time / coo_time if coo_time else float("inf")
        speedups[label] = speedup
        table.add(f"{label} x{topo.num_gpus}",
                  **{"vars": coo_problem.model.num_vars,
                     "rows": coo_problem.model.num_constraints,
                     "expr s": expr_time, "coo s": coo_time,
                     "speedup": speedup, "solve s": solve_time})
        records.append({
            "instance": label, "gpus": topo.num_gpus,
            "formulation": kind,
            "num_vars": coo_problem.model.num_vars,
            "num_rows": coo_problem.model.num_constraints,
            "build_expr_s": expr_time, "build_coo_s": coo_time,
            "speedup": speedup,
            "solve_s": None if math.isnan(solve_time) else solve_time,
        })

    write_result(
        "model_build", table.render(),
        json_name="BENCH_model_build",
        data={"instances": records,
              "note": "build/solve split for construction-time "
                      "regression tracking (PR 2)"},
        phases={"build_expr": sum(r["build_expr_s"] for r in records),
                "build_coo": sum(r["build_coo_s"] for r in records)})

    # the acceptance claim: ≥5× faster construction on the Table-4 sizes
    assert max(speedups.values()) >= 5.0, speedups
    # and every large instance must improve substantially
    assert all(s >= 2.0 for label, s in speedups.items()
               if "Internal2" in label), speedups

    # representative build for pytest-benchmark tracking
    topo = topology.internal2(4)
    demand = collectives.allgather(topo.gpus, 1)
    config = TecclConfig(chunk_bytes=1e6)
    probe = build_epoch_plan(topo, config, num_epochs=1)
    plan = build_epoch_plan(
        topo, config,
        num_epochs=path_based_epoch_bound(topo, demand, probe))
    benchmark.pedantic(
        lambda: MilpBuilder(topo, demand, config, plan,
                            construction="coo").build(),
        rounds=3, iterations=1)
