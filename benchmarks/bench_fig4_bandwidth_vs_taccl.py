"""Figure 4: algorithmic-bandwidth improvement of TE-CCL over TACCL.

Paper claim: TE-CCL matches or beats TACCL everywhere (minimum −5% on one
Internal-1 cell, typically ≥ 0%), with improvements exploding into the
hundreds/thousands of percent for small output buffers, where TACCL's
α-blind routing and split scheduling fall apart. TACCL is also infeasible
on some cells (the X marks). Downscaling (DESIGN.md): three topology
families, three buffer decades.
"""

from _common import (single_solve_benchmark, taccl_comparison_grid,
                     teccl_allgather, write_result)
from repro import topology
from repro.analysis import Table, human_bytes, improvement_pct


def test_fig4_bandwidth_improvement(benchmark):
    grid = taccl_comparison_grid()
    single_solve_benchmark(
        benchmark, teccl_allgather, topology.internal2(2), 1e6)

    table = Table("Figure 4 — algo bandwidth improvement over TACCL-like "
                  "(100·(TECCL−TACCL)/TACCL %)",
                  columns=["TECCL GB/s", "TACCL GB/s", "improv %"])
    improvements = {}
    for cell in grid:
        label = (f"{cell.topo_label} "
                 f"{'AG' if cell.collective == 'allgather' else 'AtoA'} "
                 f"{human_bytes(cell.output_buffer)}")
        if cell.taccl.infeasible:
            table.add(label,
                      **{"TECCL GB/s": cell.teccl.algo_bandwidth / 1e9,
                         "TACCL GB/s": None, "improv %": None})
            continue
        pct = improvement_pct(cell.teccl.algo_bandwidth,
                              cell.taccl.algo_bandwidth)
        improvements[(cell.topo_label, cell.collective,
                      cell.output_buffer)] = pct
        table.add(label,
                  **{"TECCL GB/s": cell.teccl.algo_bandwidth / 1e9,
                     "TACCL GB/s": cell.taccl.algo_bandwidth / 1e9,
                     "improv %": pct})
    write_result("fig4_bandwidth_vs_taccl", table.render())

    assert improvements, "TACCL-like failed on every cell"
    # paper shape 1: the LP (run to completion) never loses materially on
    # ALLTOALL (paper min 0.18%; a few % of event-executor noise allowed)
    atoa = [pct for (_, coll, _), pct in improvements.items()
            if coll == "alltoall"]
    assert atoa and min(atoa) >= -10.0
    # paper shape 2: ALLGATHER uses the paper's 30% early stop, whose own
    # Table 8 shows cells as low as -20% — bound the loss accordingly
    assert min(improvements.values()) >= -30.0
    # paper shape 3: somewhere the win is large (paper: 100s-1000s %)
    assert max(improvements.values()) >= 40.0
