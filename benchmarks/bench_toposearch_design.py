"""§1's design loop: topology search with TE-CCL as the inner optimizer.

The paper motivates TE-CCL partly as the optimizer that co-design tools
(TopoOpt-style) call many times inside their searches. This bench runs that
outer loop end to end: greedy link augmentation of a degraded base fabric
and what-if upgrade ranking, every candidate scored by an actual synthesis.
The asserted shape: the search strictly improves the base design, and the
upgrade ranking puts a bottleneck link first.
"""

import pytest

from _common import single_solve_benchmark, write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig
from repro.solver import SolverOptions
from repro.toposearch import (DesignSpec, evaluate_topology, greedy_augment,
                              rank_link_upgrades)

CHUNK_BYTES = 1e6


def _config():
    return TecclConfig(chunk_bytes=CHUNK_BYTES,
                       solver=SolverOptions(mip_gap=0.1, time_limit=20))


def _augment():
    base = topology.line(6, capacity=25e9, alpha=0.7e-6, name="line6")
    spec = DesignSpec(num_gpus=6, capacity=25e9, alpha=0.7e-6)
    demand = collectives.broadcast(0, list(range(6)), 1)
    return base, greedy_augment(base, spec, demand, _config(),
                                extra_links=2), demand


def test_toposearch_design(benchmark):
    base, result, demand = _augment()
    baseline = evaluate_topology(base, demand, _config())

    table = Table("Topology design — greedy augmentation of a 6-GPU line "
                  "(broadcast)", columns=["links", "finish us"])
    table.add("base line6", **{"links": len(base.links),
                               "finish us": baseline * 1e6})
    table.add("augmented", **{"links": len(result.topology.links),
                              "finish us": result.finish_time * 1e6})

    upgrades = rank_link_upgrades(base, demand, _config(), factor=2.0)
    for option in upgrades[:3]:
        table.add(f"upgrade {option.link[0]}->{option.link[1]} x2",
                  **{"links": len(base.links),
                     "finish us": option.finish_time * 1e6})
    single_solve_benchmark(benchmark, _augment)
    write_result("toposearch_design", table.render())

    assert result.finish_time < baseline, \
        "greedy augmentation failed to improve the line"
    assert upgrades[0].improvement >= upgrades[-1].improvement