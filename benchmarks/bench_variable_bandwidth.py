"""§5 "Modeling variable bandwidth": planning through a known outage.

The paper's variable-bandwidth hook takes a per-epoch capacity matrix. The
operationally interesting case is a *scheduled* outage: a link is known to
go away at epoch F (maintenance, a draining tenant). Three strategies:

* **anticipate** — one synthesis with the §5 capacity function (full
  capacity before F, zero after): the schedule rushes traffic over the
  doomed link while it lasts;
* **restart** — synthesize obliviously on the clean fabric, hit the
  failure, and checkpoint-restart repair (:mod:`repro.failures`);
* **conservative** — pretend the link never existed and synthesize on the
  statically degraded fabric.

Asserted shape: anticipate ≤ both alternatives — knowing the future in the
model beats both reacting to it and over-provisioning for it.
"""

import pytest

from _common import single_solve_benchmark, write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig, solve_milp
from repro.failures import (FailureEvent, degraded_capacity_fn,
                            degraded_topology, repair_schedule)
from repro.solver import SolverOptions

CHUNK_BYTES = 1.0
FAIL_EPOCH = 2
DEAD = [FailureEvent(FAIL_EPOCH, (0, 1)), FailureEvent(FAIL_EPOCH, (1, 0))]


def _cfg(topo=None, capacity_fn=None, num_epochs=12):
    return TecclConfig(chunk_bytes=CHUNK_BYTES, num_epochs=num_epochs,
                       capacity_fn=capacity_fn,
                       solver=SolverOptions(time_limit=30))


def _scenario():
    topo = topology.ring(4, capacity=1.0)
    demand = collectives.allgather(topo.gpus, 2)  # 2 chunks: ~6 epochs

    anticipate = solve_milp(
        topo, demand, _cfg(capacity_fn=degraded_capacity_fn(topo, DEAD)))

    oblivious = solve_milp(topo, demand, _cfg())
    from repro.core.solve import Method

    restart = repair_schedule(topo, demand, _cfg(num_epochs=None),
                              oblivious.schedule, oblivious.plan, DEAD,
                              method=Method.MILP)

    conservative = solve_milp(degraded_topology(topo, DEAD), demand, _cfg())
    return anticipate, restart, conservative


def test_variable_bandwidth(benchmark):
    anticipate, restart, conservative = _scenario()
    table = Table(
        f"Variable bandwidth — AG on ring4, cable (0,1) dies at epoch "
        f"{FAIL_EPOCH}", columns=["finish s"])
    table.add("anticipate (§5 capacity fn)",
              **{"finish s": anticipate.finish_time})
    table.add("restart (fail + repair)", **{"finish s": restart.total_time})
    table.add("conservative (never use it)",
              **{"finish s": conservative.finish_time})
    single_solve_benchmark(benchmark, _scenario)
    write_result("variable_bandwidth", table.render())

    assert anticipate.finish_time <= restart.total_time + 1e-9
    assert anticipate.finish_time <= conservative.finish_time + 1e-9