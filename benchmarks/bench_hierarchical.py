"""Ablation: hierarchical (chassis-decomposed) synthesis vs flat synthesis.

A third scaling lever besides the LP and A*: NCCL-style phase decomposition
with TE-CCL solving each phase. The trade to measure: the leader bottleneck
costs schedule quality, but the per-phase problems are chassis-sized — the
parallel solve path stops growing with the chassis count while the flat
MILP blows up. (This is also the quantitative argument for why the paper's
*flat* formulations matter: hierarchy is not free.)
"""

import pytest

from _common import single_solve_benchmark, write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import (Method, TecclConfig, chassis_groups,
                        hierarchical_allgather, synthesize)
from repro.solver import SolverOptions

CHUNK_BYTES = 1e6


def _cfg():
    return TecclConfig(chunk_bytes=CHUNK_BYTES,
                       solver=SolverOptions(mip_gap=0.2, time_limit=30))


def _hier(num_chassis: int):
    topo = topology.internal2(num_chassis)
    plans = chassis_groups(topo, 2)
    return topo, hierarchical_allgather(topo, _cfg(), chassis=plans)


def test_hierarchical_vs_flat(benchmark):
    table = Table("Hierarchical vs flat — Internal-2 ALLGATHER",
                  columns=["finish us", "solve s (par)", "solve s (ser)"])
    quality_ok = True
    for num_chassis in (2, 4):
        topo, hier = _hier(num_chassis)
        flat = synthesize(topo, collectives.allgather(topo.gpus, 1),
                          _cfg(), method=Method.MILP)
        table.add(f"{num_chassis}ch flat",
                  **{"finish us": flat.finish_time * 1e6,
                     "solve s (par)": flat.solve_time,
                     "solve s (ser)": flat.solve_time})
        table.add(f"{num_chassis}ch hierarchical",
                  **{"finish us": hier.finish_time * 1e6,
                     "solve s (par)": hier.parallel_solve_time,
                     "solve s (ser)": hier.serial_solve_time})
        quality_ok &= hier.finish_time >= flat.finish_time - 1e-9
    single_solve_benchmark(benchmark, _hier, 4)
    write_result("hierarchical_vs_flat", table.render())
    assert quality_ok, "hierarchy must not beat the flat optimum"