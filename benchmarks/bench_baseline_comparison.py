"""Ablation: TE-CCL against the full hand-algorithm baseline zoo.

Not a paper table per se — the paper compares against TACCL and SCCL (its
synthesizer peers) and discusses rings, trees and Blink in §2.1/§7. This
bench completes that discussion quantitatively: on the same fabric and
demand, TE-CCL's MILP must match or beat the ring, shortest-path-first,
binomial-tree and Blink spanning-tree schedules, all executed through the
same continuous-time event simulator.
"""

import pytest

from _common import single_solve_benchmark, write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.baselines import (blink_allgather, ring_allgather,
                             shortest_path_schedule, tree_allgather)
from repro.core import TecclConfig, solve_milp
from repro.errors import TopologyError
from repro.simulate import run_events
from repro.solver import SolverOptions

CHUNK_BYTES = 1e6


def _teccl_finish(topo, demand):
    config = TecclConfig(chunk_bytes=CHUNK_BYTES,
                         solver=SolverOptions(mip_gap=0.1, time_limit=45))
    outcome = solve_milp(topo, demand, config)
    return run_events(outcome.schedule, topo, demand).finish_time


def _baselines(topo, demand, chunks):
    config = TecclConfig(chunk_bytes=CHUNK_BYTES)
    rows = {}
    rows["shortest-path"] = run_events(
        shortest_path_schedule(topo, demand, config), topo,
        demand).finish_time
    try:
        rows["ring"] = run_events(
            ring_allgather(topo, config, chunks), topo, demand).finish_time
    except TopologyError:
        rows["ring"] = float("inf")  # no Hamiltonian GPU ring
    rows["binomial-trees"] = run_events(
        tree_allgather(topo, config, chunks), topo, demand).finish_time
    rows["blink-trees"] = run_events(
        blink_allgather(topo, config, chunks), topo, demand).finish_time
    return rows


def test_baseline_comparison(benchmark):
    fabrics = [
        ("DGX1", topology.dgx1()),
        ("ring8", topology.ring(8, capacity=25e9, alpha=0.7e-6)),
        ("Internal1 2ch", topology.internal1(2)),
    ]
    table = Table(
        "Baselines — ALLGATHER finish time (event-simulated, us)",
        columns=["te-ccl", "shortest-path", "ring", "binomial", "blink"])
    winners_ok = True
    for label, topo in fabrics:
        demand = collectives.allgather(topo.gpus, 1)
        ours = _teccl_finish(topo, demand)
        rows = _baselines(topo, demand, 1)
        table.add(label, **{
            "te-ccl": ours * 1e6,
            "shortest-path": rows["shortest-path"] * 1e6,
            "ring": rows["ring"] * 1e6,
            "binomial": rows["binomial-trees"] * 1e6,
            "blink": rows["blink-trees"] * 1e6})
        winners_ok &= all(ours <= v + 1e-9 for v in rows.values())
    single_solve_benchmark(
        benchmark, _teccl_finish, topology.dgx1(),
        collectives.allgather(topology.dgx1().gpus, 1))
    write_result("baseline_comparison", table.render())
    assert winners_ok, "a hand algorithm beat the MILP optimum"
