"""§6 "Unexplored avenues": the effect of congestion on collective latency.

The paper leaves congestion sensitivity as an open question; this bench
answers the laptop-scale version of it. A TE-CCL schedule and the classic
ring schedule are both synthesized against the clean fabric, then executed
(continuous time, fixed routes — MSCCL programs cannot re-route) across a
fleet of perturbed fabrics with jittered links and a congested subset. The
asserted shape: TE-CCL keeps its advantage under congestion — its mean and
p95 finish times stay at or below the ring's.
"""

import pytest

from _common import single_solve_benchmark, write_result
from repro import topology
from repro.analysis import Table
from repro.baselines import ring_allgather, ring_demand
from repro.core import TecclConfig, solve_milp
from repro.simulate import PerturbationModel, congestion_robustness
from repro.solver import SolverOptions

CHUNK_BYTES = 1e6
TRIALS = 25
MODEL = PerturbationModel(beta_jitter=0.1, alpha_jitter=0.1,
                          congested_fraction=0.25, congestion_factor=2.0)


def _robustness(topo, demand, schedule):
    return congestion_robustness(schedule, topo, demand, model=MODEL,
                                 trials=TRIALS, seed=7)


def test_congestion_robustness(benchmark):
    topo = topology.ring(8, capacity=25e9, alpha=0.7e-6)
    demand = ring_demand(topo)
    config = TecclConfig(chunk_bytes=CHUNK_BYTES,
                         solver=SolverOptions(mip_gap=0.1, time_limit=45))
    teccl = solve_milp(topo, demand, config).schedule
    ring_sched = ring_allgather(topo, TecclConfig(chunk_bytes=CHUNK_BYTES))

    ours = _robustness(topo, demand, teccl)
    theirs = _robustness(topo, demand, ring_sched)

    table = Table(
        f"Congestion robustness — AG on ring8, {TRIALS} perturbed trials "
        "(25% links at half capacity, 10% jitter)",
        columns=["clean us", "mean us", "p95 us", "mean slowdown"])
    for label, report in (("te-ccl", ours), ("ring", theirs)):
        table.add(label, **{
            "clean us": report.baseline * 1e6,
            "mean us": report.mean * 1e6,
            "p95 us": report.p95 * 1e6,
            "mean slowdown": report.mean_slowdown})
    single_solve_benchmark(benchmark, _robustness, topo, demand, teccl)
    write_result("congestion_robustness", table.render())

    # congestion hurts everyone...
    assert ours.mean_slowdown >= 1.0
    # ...but must not erase TE-CCL's advantage
    assert ours.mean <= theirs.mean * 1.05
    assert ours.p95 <= theirs.p95 * 1.10
