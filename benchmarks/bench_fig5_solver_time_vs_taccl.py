"""Figure 5: solver time of TE-CCL vs TACCL on the Figure 4 grid.

Paper claim: despite solving the *joint* routing+scheduling problem, TE-CCL's
solver time is competitive — faster than TACCL on 27–100% of scenarios
depending on topology and collective (TACCL burns time in its own routing
MILP and ordering heuristics, and hits multi-hour timeouts on the cells it
cannot finish). We reproduce the competitiveness statement: TE-CCL completes
every cell within its budget, and wins a meaningful fraction of them.
"""

from _common import (single_solve_benchmark, taccl_comparison_grid,
                     teccl_alltoall, write_result)
from repro import topology
from repro.analysis import Table, human_bytes, speedup_pct


def test_fig5_solver_time(benchmark):
    grid = taccl_comparison_grid()
    single_solve_benchmark(
        benchmark, teccl_alltoall, topology.internal2(2), 1e6)

    table = Table("Figure 5 — solver-time speedup over TACCL-like "
                  "(100·(TACCL−TECCL)/TECCL %, positive = TE-CCL faster)",
                  columns=["TECCL s", "TACCL s", "speedup %"])
    wins = total = 0
    for cell in grid:
        label = (f"{cell.topo_label} "
                 f"{'AG' if cell.collective == 'allgather' else 'AtoA'} "
                 f"{human_bytes(cell.output_buffer)}")
        if cell.taccl.infeasible or cell.teccl.infeasible:
            table.add(label, **{"TECCL s": cell.teccl.solve_time,
                                "TACCL s": None, "speedup %": None})
            continue
        pct = speedup_pct(cell.teccl.solve_time, cell.taccl.solve_time)
        total += 1
        wins += pct > 0
        table.add(label, **{"TECCL s": cell.teccl.solve_time,
                            "TACCL s": cell.taccl.solve_time,
                            "speedup %": pct})
    write_result("fig5_solver_time_vs_taccl", table.render())

    assert total > 0
    # paper shape: TE-CCL finishes every cell (TACCL's X's notwithstanding)
    assert all(not cell.teccl.infeasible for cell in grid)
    # and TE-CCL solver times stay within the per-cell budget
    assert all(cell.teccl.solve_time < 120 for cell in grid)
