"""Figure 1 (motivating examples): α-modeling, store-and-forward, copy.

Paper claims reproduced here:
  (a) the correct finish of the two-source example is α2 + 3β, one β below
      the traditional max-path-delay estimate;
  (b) store-and-forward buffers do not change the optimum of the 3-source
      funnel;
  (c) copy finishes the 1-source/3-destination star in 2 s vs 4 s without.
"""

import pytest

from _common import single_solve_benchmark, write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig, solve_lp, solve_milp
from repro.simulate import verify


def _fig1a():
    topo = topology.alpha_motivation_line()
    demand = collectives.Demand.from_triples([(0, 0, 4), (5, 0, 4)])
    out = solve_milp(topo, demand, TecclConfig(chunk_bytes=1e9,
                                               num_epochs=12))
    verify(out.schedule, topo, demand, out.plan)
    return out


def test_fig1_motivating_examples(benchmark):
    table = Table("Figure 1 — motivating examples (paper §2.2)",
                  columns=["paper", "measured"])

    out_a = single_solve_benchmark(benchmark, _fig1a)
    alpha2, beta = 5.0, 1.0
    table.add("(a) two-source finish s",
              paper=alpha2 + 3 * beta, measured=out_a.finish_time)
    assert out_a.finish_time == pytest.approx(alpha2 + 3 * beta)

    topo_b = topology.store_and_forward_star()
    demand_b = collectives.gather(4, [0, 1, 2], 1)
    with_sf = solve_milp(topo_b, demand_b,
                         TecclConfig(chunk_bytes=1.0, num_epochs=6))
    without_sf = solve_milp(topo_b, demand_b,
                            TecclConfig(chunk_bytes=1.0, num_epochs=6,
                                        store_and_forward=False))
    table.add("(b) funnel finish s (SF on)", paper=3.0,
              measured=with_sf.finish_time)
    table.add("(b) funnel finish s (SF off)", paper=3.0,
              measured=without_sf.finish_time)
    assert with_sf.finish_time == pytest.approx(without_sf.finish_time)

    topo_c = topology.copy_star()
    demand_c = collectives.broadcast(0, [2, 3, 4], 1)
    cfg = TecclConfig(chunk_bytes=1.0, num_epochs=8)
    with_copy = solve_milp(topo_c, demand_c, cfg)
    no_copy = solve_lp(topo_c, demand_c, cfg, aggregate=False)
    table.add("(c) star finish s (copy)", paper=2.0,
              measured=with_copy.finish_time)
    table.add("(c) star finish s (no copy)", paper=4.0,
              measured=no_copy.finish_time)
    assert with_copy.finish_time == pytest.approx(2.0)
    assert no_copy.finish_time == pytest.approx(4.0)

    write_result("fig1_motivation", table.render())
