"""Ablation: reachability-based variable elimination (DESIGN.md).

Not a paper figure — an ablation of this implementation's main scaling
device. The MILP skips every ``F``/``B``/``R`` variable whose epoch is
earlier than the commodity's shortest-path arrival at that node; the bound
is exact, so the optimum is untouched while the model shrinks substantially
(the deeper the topology, the bigger the cut). This bench solves the same
instance with elimination on and off and asserts equal objective at a
strictly smaller model.
"""

from _common import single_solve_benchmark, write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig
from repro.core.epochs import build_epoch_plan
from repro.core.milp import MilpBuilder
from repro.solver import SolverOptions


def _solve(topo, demand, num_epochs: int, tighten: bool):
    config = TecclConfig(chunk_bytes=1e6, num_epochs=num_epochs,
                         tighten=tighten,
                         solver=SolverOptions(time_limit=120))
    plan = build_epoch_plan(topo, config, num_epochs)
    problem = MilpBuilder(topo, demand, config, plan).build()
    result = problem.model.solve(config.solver)
    return problem, result


def test_ablation_variable_elimination(benchmark):
    cases = [
        ("Internal2 4ch AG", topology.internal2(4), 14),
        ("NDv2 1ch AG", topology.ndv2(1), 8),
    ]
    table = Table("Ablation — reachability variable elimination",
                  columns=["vars on", "vars off", "cut %", "st on s",
                           "st off s"])
    for label, topo, epochs in cases:
        demand = collectives.allgather(topo.gpus, 1)
        tight_problem, tight_result = _solve(topo, demand, epochs, True)
        dense_problem, dense_result = _solve(topo, demand, epochs, False)
        vars_on = tight_problem.model.num_vars
        vars_off = dense_problem.model.num_vars
        table.add(label,
                  **{"vars on": vars_on, "vars off": vars_off,
                     "cut %": 100.0 * (vars_off - vars_on) / vars_off,
                     "st on s": tight_result.solve_time,
                     "st off s": dense_result.solve_time})
        # the elimination is exact: objectives must agree
        assert tight_result.objective == \
            dense_result.objective or abs(
                tight_result.objective - dense_result.objective) <= \
            1e-6 * max(1.0, abs(dense_result.objective))
        assert vars_on < vars_off

    single_solve_benchmark(
        benchmark, _solve, topology.internal2(4),
        collectives.allgather(topology.internal2(4).gpus, 1), 14, True)
    write_result("ablation_tighten", table.render())
