"""Durability overhead guard: the WAL must be cheap, recovery fast.

Write-ahead persistence rides the fleet daemon's every tick, so its cost
is a standing tax on the control plane. Two numbers are held to a bar:

* **WAL overhead per decision** — every decision adds one durable record
  to the step that produced it, so the bar is the measured cost of one
  ``append`` (fsync off: the crash sweep covers durability; this bench
  isolates the bookkeeping cost) over the latency of a *decision-carrying*
  step — one that polls, estimates, gates, and warm-replans. The ratio
  must stay under ``OVERHEAD_BUDGET``.
* **recovery time vs registry size** — rehydrate controllers whose WALs
  hold growing registries (more jobs → more durable schedules, each
  re-vetted through the conformance oracle on recovery); reported as a
  table and asserted to stay under ``RECOVERY_BUDGET_S`` at the largest
  size, so recovery can never become the new outage.

Publishes ``benchmarks/results/BENCH_fleet_recovery.json``.
"""

import statistics
import time

import pytest

from _common import write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig
from repro.fleet import (AdaptationController, FabricEstimator, FleetJob,
                         SyntheticTelemetry, WriteAheadLog)
from repro.service import Planner

pytestmark = pytest.mark.fleet

#: one decision's durable record must cost < 5% of the step that made it
OVERHEAD_BUDGET = 0.05
#: recovering the largest registry must finish within this wall budget
RECOVERY_BUDGET_S = 5.0
#: append microbench iterations (medians over batches)
APPENDS = 2000
#: registry sizes (jobs) for the recovery scaling axis
FLEET_SIZES = (1, 4, 8)


def _controller(topo, planner, wal=None):
    source = SyntheticTelemetry(topo, events=[])
    return AdaptationController(
        topo, source, planner, wal=wal,
        estimator=FabricEstimator(topo, smoothing=1.0, min_samples=1))


def _append_cost_s(tmp_path) -> float:
    """Median cost of one durable append of a decision-sized record."""
    record = {"job": "job-0", "time": 3.0, "action": "replan",
              "reason": "warm replan on the live fabric",
              "predicted": 1.5, "active_finish": 1.0,
              "new_finish": 1.2, "solve_time": 0.004}
    wal = WriteAheadLog(tmp_path / "append.wal", fsync=False)
    batches = []
    for _ in range(10):
        start = time.perf_counter()
        for _ in range(APPENDS // 10):
            wal.append("decision", record, now=3.0)
        batches.append((time.perf_counter() - start) / (APPENDS // 10))
    wal.close()
    return statistics.median(batches)


def _decision_step_s(topo, config) -> float:
    """Latency of a step that carries a decision (poll → gate → replan)."""
    from repro.fleet import LinkEvent

    times = []
    for _ in range(5):
        source = SyntheticTelemetry(topo, events=[
            LinkEvent(at=2.0, link=(0, 1), factor=0.4)])
        with Planner(executor="inline") as planner:
            daemon = _controller_from(topo, planner, source)
            daemon.add_job(FleetJob(
                name="job", demand=collectives.alltoall(topo.gpus, 1),
                config=config))
            for _ in range(4):
                start = time.perf_counter()
                decisions = daemon.step()
                elapsed = time.perf_counter() - start
                if decisions:
                    times.append(elapsed)
    return statistics.median(times)


def _controller_from(topo, planner, source, wal=None):
    return AdaptationController(
        topo, source, planner, wal=wal,
        estimator=FabricEstimator(topo, smoothing=1.0, min_samples=1))


def test_wal_overhead_and_recovery_scaling(tmp_path, benchmark):
    topo = topology.ring(8, capacity=1.0)
    config = TecclConfig(chunk_bytes=1.0)

    # -- axis 1: per-decision journaling cost vs step latency -----------
    append_s = _append_cost_s(tmp_path)
    step_s = _decision_step_s(topo, config)
    overhead = append_s / step_s

    # -- axis 2: recovery time vs registry size -------------------------
    table = Table(title="fleet WAL: recovery wall time vs registry size",
                  columns=["jobs", "entries", "recover ms"])
    recovery_rows = []
    for size in FLEET_SIZES:
        walpath = tmp_path / f"recover-{size}.wal"
        with Planner(executor="inline") as planner:
            wal = WriteAheadLog(walpath, fsync=False)
            wal.attach_lease()
            daemon = _controller(topo, planner, wal=wal)
            for index in range(size):
                daemon.add_job(FleetJob(
                    name=f"job-{index}",
                    demand=collectives.alltoall(topo.gpus, 1),
                    config=config))
            for _ in range(3):
                daemon.step()
            wal.close()
        with Planner(executor="inline") as planner:
            wal = WriteAheadLog(walpath, fsync=False)
            wal.attach_lease(takeover=True)
            fresh = _controller(topo, planner, wal=wal)
            start = time.perf_counter()
            provenance = fresh.recover()
            recover_s = time.perf_counter() - start
            wal.close()
        assert provenance["entries_recovered"] == size
        table.add(f"{size}-job fleet", jobs=size,
                  entries=len(provenance["entries_dropped"]) + size,
                  **{"recover ms": round(recover_s * 1e3, 2)})
        recovery_rows.append({"jobs": size, "recover_s": recover_s})

    # one representative recovery registered with pytest-benchmark
    with Planner(executor="inline") as planner:
        wal = WriteAheadLog(tmp_path / f"recover-{FLEET_SIZES[-1]}.wal",
                            fsync=False)
        wal.attach_lease(takeover=True)

        def recover_once():
            fresh = _controller(topo, planner, wal=wal)
            return fresh.recover()

        benchmark(recover_once)
        wal.close()

    text = table.render() + (
        f"\n\nper-decision : append {append_s * 1e6:.1f} us vs "
        f"decision step {step_s * 1e3:.3f} ms -> overhead "
        f"{100 * overhead:.2f}% (budget {100 * OVERHEAD_BUDGET:.0f}%)")
    write_result(
        "BENCH_fleet_recovery", text,
        data={
            "append_s": append_s,
            "decision_step_s": step_s,
            "wal_overhead": overhead,
            "overhead_budget": OVERHEAD_BUDGET,
            "recovery": recovery_rows,
            "recovery_budget_s": RECOVERY_BUDGET_S,
        })

    assert overhead <= OVERHEAD_BUDGET, (
        f"one durable decision record costs {100 * overhead:.2f}% of a "
        f"decision-carrying step (budget {100 * OVERHEAD_BUDGET:.0f}%)")
    assert recovery_rows[-1]["recover_s"] <= RECOVERY_BUDGET_S
    # recovery work scales with registry size, not WAL history: the
    # per-job cost at the largest fleet must stay within ~4x of the
    # smallest (re-vetting dominates; superlinear growth means replaying
    # history per entry snuck in)
    per_job = [row["recover_s"] / row["jobs"] for row in recovery_rows]
    assert per_job[-1] <= per_job[0] * 4.0
