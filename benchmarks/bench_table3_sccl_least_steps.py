"""Table 3: TE-CCL vs SCCL ``least-steps`` on a DGX1, 25 KB chunks.

Paper numbers (µs): AG 1 chunk — SCCL 3.4 vs TE-CCL 4; AG 2 — 5.1 vs 5;
AG 3 — 8 vs 6.1; AtoA 1 — 3.4 vs 4. The claim is the *ordering*: the
barrier costs SCCL once there is more than one chunk to pipeline, while
TE-CCL loses slightly at one chunk (epoch quantisation, no pipelining to
exploit). Solver-time-wise, SCCL's search blows up with chunk count.
"""

import pytest

from _common import single_solve_benchmark, write_result
from repro import collectives, topology
from repro.baselines import sccl_least_steps
from repro.core import TecclConfig, solve_milp
from repro.simulate import run_events
from repro.solver import SolverOptions

CHUNK = 25e3  # bytes, the paper's Table 3 setting
K = 16        # paper uses K = 10 at its epoch grid; ours is finer


def _teccl(topo, demand):
    config = TecclConfig(chunk_bytes=CHUNK, num_epochs=K,
                         solver=SolverOptions(mip_gap=0.05, time_limit=60))
    out = solve_milp(topo, demand, config)
    # compare in continuous time, like the paper's hardware-validated CTs
    finish = run_events(out.schedule, topo, demand).finish_time
    return out, finish


def test_table3_dgx1_vs_sccl(benchmark):
    topo = topology.dgx1()
    rows = []
    scenarios = [("AG", c, collectives.allgather(topo.gpus, c))
                 for c in (1, 2, 3)]
    scenarios.append(("AtoA", 1, collectives.alltoall(topo.gpus, 1)))

    for kind, chunks, demand in scenarios:
        config = TecclConfig(chunk_bytes=CHUNK)
        sccl = sccl_least_steps(topo, demand, config)
        ours = _teccl(topo, demand)
        rows.append((kind, chunks, sccl, ours))

    single_solve_benchmark(
        benchmark, _teccl, topo, collectives.allgather(topo.gpus, 1))

    from repro.analysis import Table

    table = Table("Table 3 — SCCL least-steps vs TE-CCL (DGX1, 25 KB chunks)",
                  columns=["SCCL us", "TECCL us", "SCCL st s", "TECCL st s"])
    for kind, chunks, sccl, (out, finish) in rows:
        table.add(f"{kind}, {chunks} chunk(s)",
                  **{"SCCL us": sccl.finish_time * 1e6,
                     "TECCL us": finish * 1e6,
                     "SCCL st s": sccl.solve_time,
                     "TECCL st s": out.result.solve_time})
    write_result("table3_sccl_least_steps", table.render())

    by_key = {(kind, chunks): (sccl, finish)
              for kind, chunks, sccl, (out, finish) in rows}
    # multi-chunk ALLGATHER: pipelining beats the barrier (paper: 3 chunks,
    # 8 vs 6.1 µs; 2 chunks roughly tie)
    sccl3, ours3 = by_key[("AG", 3)]
    assert ours3 < sccl3.finish_time
    sccl2, ours2 = by_key[("AG", 2)]
    assert ours2 <= sccl2.finish_time * 1.1
    # single chunk: SCCL's barrier costs nothing; TE-CCL must stay close
    sccl1, ours1 = by_key[("AG", 1)]
    assert sccl1.finish_time <= ours1 * 1.5
