"""Parallel decomposition solving: fan-out and dedup payoff (PR 7).

Three scenarios, each checked for *identity* with the sequential path —
the whole point of the shared sub-solve layer is that concurrency and
dedup are pure scheduling changes, never result changes:

* **Hierarchical dedup (headline)** — two fat symmetric chassis on
  Internal2: the gather and broadcast solves are canonically identical
  across chassis, so the fingerprint cache pays for each once. This is
  where the end-to-end >= 1.5x acceptance bar is asserted — the saved
  solves dominate the (unique, shared) leader-exchange solve.
* **Hierarchical dedup at G=4** — the symmetric 4-chassis acceptance
  shape: 9 phase instances collapse to 3 distinct solves (3x fewer,
  >= 2x asserted). Here the exchange MILP dominates wall clock, so the
  claim is the solve-count reduction, not elapsed time.
* **POP thread fan-out** — Table-4-style Internal2 ALLTOALL at 4
  partitions, sequential vs threaded. Identity and conformance are
  asserted unconditionally; the >= 1.5x wall-clock bar only on hosts
  with >= 2 CPUs (scipy's HiGHS releases the GIL, but one core cannot
  overlap anything — the artifact records the gate that applied).

Publishes ``benchmarks/results/BENCH_pop_parallel.json``.
"""

import os
import time

import pytest

from _common import write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig
from repro.core.hierarchical import chassis_groups, hierarchical_allgather
from repro.core.pop import solve_lp_pop
from repro.simulate import check_flow, check_result
from repro.solver import SolverOptions


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - start


def _assert_hier_identical(seq, fast):
    assert fast.finish_time == pytest.approx(seq.finish_time)
    for a, b in zip(seq.phases(), fast.phases()):
        assert a.label == b.label
        assert b.synthesis.schedule.to_dict() == \
            a.synthesis.schedule.to_dict()


def _assert_hier_conformant(outcome):
    for phase in outcome.phases():
        if phase.synthesis.hyper is None:
            report = check_result(phase.synthesis,
                                  topology=phase.fabric.topology,
                                  demand=phase.demand)
        else:
            report = check_result(phase.synthesis)
        assert report.ok, (phase.label, report.violations[:3])


def _hier_scenario(topo, group: int, chunks_per_gpu: int) -> dict:
    config = TecclConfig(chunk_bytes=1e6,
                         solver=SolverOptions(time_limit=120))
    chassis = chassis_groups(topo, group)
    seq, seq_s = _timed(hierarchical_allgather, topo, config,
                        chassis=chassis, chunks_per_gpu=chunks_per_gpu,
                        dedup=False)
    ded, ded_s = _timed(hierarchical_allgather, topo, config,
                        chassis=chassis, chunks_per_gpu=chunks_per_gpu,
                        parallel=True, dedup=True)
    _assert_hier_identical(seq, ded)
    _assert_hier_conformant(ded)
    return {
        "topology": topo.name, "chassis": len(chassis),
        "gpus_per_chassis": group, "chunks_per_gpu": chunks_per_gpu,
        "seq_s": seq_s, "dedup_s": ded_s, "speedup": seq_s / ded_s,
        "seq_solves": seq.sub_solves, "dedup_solves": ded.sub_solves,
        "dedup_hits": ded.dedup_hits,
        "solve_reduction": seq.sub_solves / ded.sub_solves,
        "finish_time": ded.finish_time,
    }


def test_parallel_decomposition_speedup(benchmark):
    table = Table("Parallel decomposition solving (PR 7)",
                  columns=["seq s", "par s", "speedup", "solves seq",
                           "solves par", "hits"])
    results: dict[str, dict] = {}

    # -- headline: fat symmetric chassis, dedup pays for the duplicates --
    results["hier_dedup_wall"] = _hier_scenario(
        topology.internal2(4), group=4, chunks_per_gpu=1)
    row = results["hier_dedup_wall"]
    table.add("hier dedup (2x4 chassis)", **{
        "seq s": round(row["seq_s"], 2), "par s": round(row["dedup_s"], 2),
        "speedup": round(row["speedup"], 2),
        "solves seq": row["seq_solves"], "solves par": row["dedup_solves"],
        "hits": row["dedup_hits"]})

    # -- acceptance shape: symmetric G=4, 9 instances -> 3 solves --------
    results["hier_dedup_solves"] = _hier_scenario(
        topology.internal2(4), group=2, chunks_per_gpu=2)
    row = results["hier_dedup_solves"]
    table.add("hier dedup (4x2 chassis)", **{
        "seq s": round(row["seq_s"], 2), "par s": round(row["dedup_s"], 2),
        "speedup": round(row["speedup"], 2),
        "solves seq": row["seq_solves"], "solves par": row["dedup_solves"],
        "hits": row["dedup_hits"]})

    # -- POP thread fan-out on a Table-4-style instance ------------------
    pop_topo = topology.internal2(8)
    pop_demand = collectives.alltoall(pop_topo.gpus, 1)
    pop_config = TecclConfig(chunk_bytes=1e6,
                             solver=SolverOptions(time_limit=120))
    seq_pop, seq_pop_s = _timed(solve_lp_pop, pop_topo, pop_demand,
                                pop_config, num_partitions=4)
    par_pop, par_pop_s = _timed(solve_lp_pop, pop_topo, pop_demand,
                                pop_config, num_partitions=4,
                                parallel=True, jobs=4)
    assert par_pop.attempts == seq_pop.attempts
    assert par_pop.schedule.flows == seq_pop.schedule.flows
    assert par_pop.schedule.reads == seq_pop.schedule.reads
    report = check_flow(par_pop.schedule, pop_topo, pop_demand,
                        par_pop.plan, config=pop_config)
    assert report.ok, report.violations[:3]
    multi_cpu = (os.cpu_count() or 1) >= 2
    results["pop_fanout"] = {
        "topology": pop_topo.name, "gpus": len(pop_topo.gpus),
        "partitions": 4, "attempts": par_pop.attempts,
        "seq_s": seq_pop_s, "par_s": par_pop_s,
        "speedup": seq_pop_s / par_pop_s,
        "wall_clock_asserted": multi_cpu,
        "note": ("wall-clock bar asserted" if multi_cpu else
                 "single-CPU host: threads cannot overlap solver work; "
                 "identity and conformance asserted, wall clock not"),
    }
    table.add("POP fan-out (4 partitions)", **{
        "seq s": round(seq_pop_s, 2), "par s": round(par_pop_s, 2),
        "speedup": round(seq_pop_s / par_pop_s, 2),
        "solves seq": 4, "solves par": 4, "hits": 0})

    write_result(
        "pop_parallel", table.render(),
        json_name="BENCH_pop_parallel",
        data={
            "scenarios": results,
            "note": "every parallel/deduped result is asserted "
                    "schedule-identical to its sequential twin and "
                    "conformance-clean before any timing claim.",
        },
        phases={f"{scenario}_{kind}": results[scenario][kind]
                for scenario, kinds in (
                    ("hier_dedup_wall", ("seq_s", "dedup_s")),
                    ("hier_dedup_solves", ("seq_s", "dedup_s")),
                    ("pop_fanout", ("seq_s", "par_s")))
                for kind in kinds})

    # the PR's acceptance bars, re-asserted on every bench run
    assert results["hier_dedup_wall"]["speedup"] >= 1.5, results
    assert results["hier_dedup_solves"]["solve_reduction"] >= 2.0, results
    if multi_cpu:
        assert results["pop_fanout"]["speedup"] >= 1.5, results

    # representative single solve for pytest-benchmark tracking
    benchmark.pedantic(
        lambda: hierarchical_allgather(
            topology.internal2(2),
            TecclConfig(chunk_bytes=1e6,
                        solver=SolverOptions(mip_gap=0.2, time_limit=30)),
            chassis=chassis_groups(topology.internal2(2), 2),
            parallel=True, dedup=True),
        rounds=1, iterations=1)
