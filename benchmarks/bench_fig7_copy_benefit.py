"""Figure 7: the benefit of in-network copy by transfer size.

Paper claim: for the largest transfers, copy cuts the ALLGATHER finish time
by ~50% (DGX1, Internal-1 with and without α) or ~12.5% (Internal-2); for
small transfers copy buys nothing because there is spare capacity to ship
duplicates directly. "Copy off" is modelled exactly as the paper's ablation:
the conservation-equality LP with per-destination supply multiplicity
(DESIGN.md's no-copy substitution).
"""

import pytest

from _common import single_solve_benchmark, write_result
from repro import collectives, topology
from repro.analysis import Table, human_bytes
from repro.core import TecclConfig, solve_lp, solve_milp
from repro.solver import SolverOptions

#: per-GPU transfer sizes; the paper uses 4 chunks — 2 keeps the MILPs
#: laptop-sized without touching the crossover (DESIGN.md downscaling)
SMALL, LARGE = 40e3, 8e6
CHUNKS = 2


def _run(topo, transfer_bytes, copy: bool):
    demand = collectives.allgather(topo.gpus, CHUNKS)
    config = TecclConfig(
        chunk_bytes=transfer_bytes / CHUNKS,
        solver=SolverOptions(mip_gap=0.15, time_limit=45))
    if copy:
        return solve_milp(topo, demand, config).finish_time
    return solve_lp(topo, demand, config, aggregate=False).finish_time


def test_fig7_copy_benefit(benchmark):
    topologies = [
        ("DGX1", topology.dgx1()),
        ("Internal1 (a=0)", topology.internal1(2).with_zero_alpha()),
        ("Internal1", topology.internal1(2)),
        ("Internal2", topology.internal2(2)),
    ]
    table = Table("Figure 7 — collective finish time, copy vs no-copy (AG, "
                  f"{CHUNKS} chunks)",
                  columns=["copy us", "nocopy us", "reduction %"])
    reductions: dict[tuple[str, float], float] = {}
    for label, topo in topologies:
        for size in (SMALL, LARGE):
            with_copy = _run(topo, size, copy=True)
            without = _run(topo, size, copy=False)
            pct = 100.0 * (without - with_copy) / without
            reductions[(label, size)] = pct
            table.add(f"{label} {human_bytes(size)}",
                      **{"copy us": with_copy * 1e6,
                         "nocopy us": without * 1e6,
                         "reduction %": pct})
    single_solve_benchmark(benchmark, _run, topology.internal2(2), LARGE,
                           True)
    write_result("fig7_copy_benefit", table.render())

    for label, _ in topologies:
        # copy never hurts (small numerical/quantisation slack allowed)
        assert reductions[(label, SMALL)] >= -5.0
        assert reductions[(label, LARGE)] >= -5.0
        # the benefit grows with the transfer size (paper's crossover)
        assert reductions[(label, LARGE)] >= reductions[(label, SMALL)] - 5.0
    # somewhere the paper's headline ~50% shows up
    assert max(reductions[(label, LARGE)]
               for label, _ in topologies) >= 25.0
