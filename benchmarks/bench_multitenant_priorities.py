"""§5 "Use in multi-tenant clusters": priorities steer completion order.

The paper's claim: summing tenant demands into one matrix keeps capacity
sound, and weighting the objective's read rewards by tenant priority biases
the schedule toward finishing the high-priority tenant first. This bench
runs two equal ALLGATHER tenants on one fabric twice — equal priorities,
then 8:1 — and reports each tenant's last-delivery epoch. The asserted
shape: under 8:1 the favoured tenant finishes no later than it did under
equal priorities, and no later than its rival.
"""

import pytest

from _common import single_solve_benchmark, write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig, solve_milp
from repro.solver import SolverOptions

CHUNK_BYTES = 1e6


def _tenant_finish_epochs(topo, priority_a: float, priority_b: float):
    """Solve the merged two-tenant problem; per-tenant last delivery epoch.

    Both tenants run an ALLGATHER over *all* GPUs, so they contend for
    every link — the regime where priorities must decide who waits.
    """
    gpus = topo.gpus
    demand_a = collectives.allgather(gpus, 1)
    demand_b = collectives.allgather(gpus, 1)
    merged, renames = demand_a.union_disjoint(demand_b)
    weights = {t: priority_a for t in demand_a.triples()}
    for original in demand_b.triples():
        weights[renames[original]] = priority_b
    config = TecclConfig(chunk_bytes=CHUNK_BYTES, priorities=weights,
                         solver=SolverOptions(time_limit=45))
    outcome = solve_milp(topo, merged, config)

    b_triples = set(renames.values())
    finish = {"A": 0, "B": 0}
    for triple, epoch in outcome.delivered_epoch.items():
        tenant = "B" if triple in b_triples else "A"
        finish[tenant] = max(finish[tenant], epoch)
    return finish


def test_multitenant_priorities(benchmark):
    topo = topology.internal1(2)
    equal = _tenant_finish_epochs(topo, 1.0, 1.0)
    skewed = _tenant_finish_epochs(topo, 8.0, 1.0)

    table = Table("Multi-tenant priorities — last delivery epoch per tenant",
                  columns=["tenant A", "tenant B"])
    table.add("equal 1:1", **{"tenant A": equal["A"],
                              "tenant B": equal["B"]})
    table.add("skewed 8:1", **{"tenant A": skewed["A"],
                               "tenant B": skewed["B"]})
    single_solve_benchmark(benchmark, _tenant_finish_epochs, topo, 8.0, 1.0)
    write_result("multitenant_priorities", table.render())

    # priority must not hurt the favoured tenant...
    assert skewed["A"] <= equal["A"]
    # ...and the favoured tenant must not trail its rival
    assert skewed["A"] <= skewed["B"]
