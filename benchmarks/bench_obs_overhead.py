"""Observability overhead guard: disabled tracing must cost ≤ 2%.

The tracing layer rides every hot path (model build families, solver
calls, the planner's serve steps), so its *disabled* cost is a standing
tax on everything — the design promise is "zero-overhead by default":
``span()`` checks one module global and hands back a shared no-op when
no tracer is configured.  This bench holds that promise to a number on
the bench_model_build workload (the Internal2-4ch ALLGATHER MILP COO
build, the construction path PR 2 optimised):

* **analytic bound** — spans the workload emits × the measured cost of
  one disabled ``span()`` round-trip, over the build's wall time.  This
  is the assertion: the instrumentation's worst-case share of the build
  must stay under ``OVERHEAD_BUDGET``.
* **A/B wall clock** — disabled vs enabled-to-memory medians, reported
  (not asserted: at micro scale the A/B delta is dominated by run-to-run
  build noise, which is exactly why the analytic bound is the guard).
* **flight recorder** — the always-on ring (``rspan()`` at coarse sites)
  must also fit the budget: recorded events per end-to-end solve × the
  measured on-cost of one ``rspan()`` ring append, over the solve's wall
  time.  Asserted, because "always on" is only tenable if it is free.

Publishes ``benchmarks/results/BENCH_obs_overhead.json``.
"""

import statistics
import time

from _common import write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig
from repro.core.epochs import build_epoch_plan, path_based_epoch_bound
from repro.core.milp import MilpBuilder
from repro.core.solve import synthesize
from repro.obs import (MemorySink, configure, disable, disable_recorder,
                       get_recorder, get_tracer, rspan, span)

#: build repetitions per timing (median taken)
REPEATS = 5
#: disabled-``span()`` microbench iterations
NOOP_CALLS = 200_000
#: recorder-on ``rspan()`` microbench iterations (ring appends are
#: pricier than no-ops; fewer reps keep the bench quick)
RSPAN_CALLS = 50_000
#: the acceptance bar: disabled tracing ≤ 2% of the workload — and the
#: always-on recorder's share of an end-to-end solve
OVERHEAD_BUDGET = 0.02


def _workload():
    """The bench_model_build representative: Internal2-4ch AG MILP, COO."""
    topo = topology.internal2(4)
    demand = collectives.allgather(topo.gpus, 1)
    config = TecclConfig(chunk_bytes=1e6)
    probe = build_epoch_plan(topo, config, num_epochs=1)
    plan = build_epoch_plan(
        topo, config,
        num_epochs=path_based_epoch_bound(topo, demand, probe))
    return lambda: MilpBuilder(topo, demand, config, plan,
                               construction="coo").build()


def _median_s(fn, repeats: int = REPEATS) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _noop_span_cost_s() -> float:
    """Cost of one full disabled ``with span(...)`` round-trip."""
    start = time.perf_counter()
    for _ in range(NOOP_CALLS):
        with span("bench.noop", probe=1):
            pass
    return (time.perf_counter() - start) / NOOP_CALLS


def _rspan_cost_s(calls: int) -> float:
    """Cost of one ``with rspan(...)`` round-trip in the current mode."""
    start = time.perf_counter()
    for _ in range(calls):
        with rspan("bench.rnoop", probe=1):
            pass
    return (time.perf_counter() - start) / calls


def _solve_workload():
    """A fast end-to-end solve crossing every coarse ``rspan()`` site."""
    topo = topology.dgx1()
    demand = collectives.allgather(topo.gpus, 1)
    config = TecclConfig(chunk_bytes=1e6)
    return lambda: synthesize(topo, demand, config)


def _measure_recorder() -> dict:
    """Flight-recorder on/off measurements on an end-to-end solve.

    The recorder rings coarse ``rspan()`` sites only, so the MILP build
    microworkload never touches it — the honest denominator is a full
    ``synthesize`` crossing the planner-facing sites.
    """
    solve = _solve_workload()
    solve()  # warm caches outside the timed region

    recorder = get_recorder()  # (re-)enables the ring
    rspan_on_s = _rspan_cost_s(RSPAN_CALLS)
    disable_recorder()
    try:
        rspan_off_s = _rspan_cost_s(NOOP_CALLS)
        solve_off_s = _median_s(solve)
    finally:
        recorder = get_recorder()
    recorder.clear()
    solve_on_s = _median_s(solve)
    # ring growth across the timed repeats → recorded events per solve
    events_per_solve = len(recorder.snapshot()) // REPEATS
    assert events_per_solve >= 2, recorder.snapshot()  # synthesize + leaf
    return {
        "recorder_off_solve_s": solve_off_s,
        "recorder_on_solve_s": solve_on_s,
        "recorder_events_per_solve": events_per_solve,
        "rspan_on_s": rspan_on_s,
        "rspan_off_s": rspan_off_s,
        "recorder_analytic_overhead":
            events_per_solve * rspan_on_s / solve_off_s,
        "recorder_ab_overhead": solve_on_s / solve_off_s - 1.0,
    }


def test_disabled_tracer_overhead(benchmark):
    assert get_tracer() is None, "tracer must start disabled"
    build = _workload()
    build()  # warm imports and numpy caches outside the timed region

    disabled_s = _median_s(build)
    noop_s = _noop_span_cost_s()

    # count the spans one traced build emits
    sink = MemorySink()
    configure(sink)
    try:
        enabled_s = _median_s(build)
    finally:
        disable()
    spans_per_build = sum(1 for r in sink.records
                          if r.get("kind") == "span") // REPEATS
    assert spans_per_build >= 9, sink.records  # milp.build + families

    analytic_overhead = spans_per_build * noop_s / disabled_s
    ab_overhead = enabled_s / disabled_s - 1.0
    rec = _measure_recorder()

    table = Table("Tracing overhead on the MILP COO build (Internal2 4ch)",
                  columns=["value"])
    table.add("disabled build s", value=disabled_s)
    table.add("enabled (memory) build s", value=enabled_s)
    table.add("spans per build", value=spans_per_build)
    table.add("noop span us", value=noop_s * 1e6)
    table.add("analytic overhead %", value=100 * analytic_overhead)
    table.add("A/B delta %", value=100 * ab_overhead)
    table.add("recorder-off solve s", value=rec["recorder_off_solve_s"])
    table.add("recorder-on solve s", value=rec["recorder_on_solve_s"])
    table.add("recorded events/solve",
              value=rec["recorder_events_per_solve"])
    table.add("rspan on us", value=rec["rspan_on_s"] * 1e6)
    table.add("rspan off us", value=rec["rspan_off_s"] * 1e6)
    table.add("recorder analytic overhead %",
              value=100 * rec["recorder_analytic_overhead"])
    write_result(
        "obs_overhead", table.render(),
        json_name="BENCH_obs_overhead",
        data={
            "workload": "internal2(4)/allgather MILP coo build",
            "disabled_build_s": disabled_s,
            "enabled_memory_build_s": enabled_s,
            "spans_per_build": spans_per_build,
            "noop_span_s": noop_s,
            "analytic_overhead": analytic_overhead,
            "ab_overhead": ab_overhead,
            "budget": OVERHEAD_BUDGET,
            "recorder_workload": "dgx1/allgather end-to-end synthesize",
            **rec,
            "note": "analytic = spans/build x disabled-span cost / build "
                    "time; recorder analytic = events/solve x recorder-on "
                    "rspan cost / solve time; both asserted against the "
                    "budget",
        },
        phases={"disabled_build": disabled_s,
                "enabled_build": enabled_s,
                "recorder_off_solve": rec["recorder_off_solve_s"],
                "recorder_on_solve": rec["recorder_on_solve_s"]})

    # the acceptance bar: disabled instrumentation ≤ 2% of the workload
    assert analytic_overhead <= OVERHEAD_BUDGET, {
        "spans_per_build": spans_per_build, "noop_span_s": noop_s,
        "disabled_build_s": disabled_s, "overhead": analytic_overhead}
    # and the always-on flight recorder ≤ 2% of an end-to-end solve
    assert rec["recorder_analytic_overhead"] <= OVERHEAD_BUDGET, rec

    # representative disabled build for pytest-benchmark tracking
    benchmark.pedantic(build, rounds=3, iterations=1)
