"""Ablation: POP client splitting versus the monolithic LP (§4 scaling).

The paper scales the copy-free case with one big LP; POP [21] (cited as an
alternative scaling family) trades optimality for embarrassingly parallel
subproblems. This bench quantifies that trade on the ALLTOALL LP: finish
time degradation and the parallel-solve speedup as the partition count
grows. The expected shape: quality degrades gently (ALLTOALL is granular —
POP's sweet spot) while the critical-path solve time drops.
"""

import pytest

from _common import single_solve_benchmark, write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig, solve_lp
from repro.core.pop import solve_lp_pop
from repro.solver import SolverOptions

CHUNK_BYTES = 1e6
PARTITIONS = (2, 4)


def _config(num_epochs=None):
    return TecclConfig(chunk_bytes=CHUNK_BYTES, num_epochs=num_epochs,
                       solver=SolverOptions(time_limit=60))


def test_ablation_pop(benchmark):
    fabrics = [
        ("Internal1 2ch", topology.internal1(2)),
        ("Internal2 4ch", topology.internal2(4)),
    ]
    table = Table("POP ablation — ALLTOALL LP, finish time and solve time",
                  columns=["finish us", "quality x", "solve s",
                           "parallel s"])
    quality_ok = True
    for label, topo in fabrics:
        demand = collectives.alltoall(topo.gpus, 1)
        mono = solve_lp(topo, demand, _config())
        table.add(f"{label} k=1",
                  **{"finish us": mono.finish_time * 1e6,
                     "quality x": 1.0,
                     "solve s": mono.solve_time,
                     "parallel s": mono.solve_time})
        for k in PARTITIONS:
            pop = solve_lp_pop(topo, demand,
                               _config(mono.plan.num_epochs * k),
                               num_partitions=k)
            quality = pop.finish_time / mono.finish_time
            quality_ok &= quality >= 1.0 - 1e-9
            table.add(f"{label} k={k}",
                      **{"finish us": pop.finish_time * 1e6,
                         "quality x": quality,
                         "solve s": pop.serial_solve_time,
                         "parallel s": pop.parallel_solve_time})
    single_solve_benchmark(
        benchmark, solve_lp_pop, topology.internal2(4),
        collectives.alltoall(topology.internal2(4).gpus, 1),
        _config(), num_partitions=2)
    write_result("ablation_pop", table.render())
    assert quality_ok, "POP must never beat the monolithic optimum"
