"""Table 8 (Appendix H): the raw NDv2 2-chassis numbers.

Paper columns: epoch duration (ED), collective time (CT), solver time (ST),
algorithmic bandwidth (AB), for ALLTOALL at the optimal and max epoch
durations and ALLGATHER at optimal / early-stop-30% / max epoch durations,
against TACCL. Reproduced on a three-point output-buffer sweep; the asserted
shapes are (1) AB monotonically degrades as buffers shrink (α takes over),
(2) early stop trades ≤ 30% quality for solver time, (3) max-epoch (slowest
link) solves faster than optimal-epoch at equal or worse CT.
"""

from _common import (EARLY_STOP_GAP, _event_finish_integral,
                     single_solve_benchmark, taccl_run, teccl_allgather,
                     teccl_alltoall, write_result)
from repro import collectives, topology
from repro.analysis import Table, human_bytes
from repro.collectives import allgather_plan
from repro.core import TecclConfig
from repro.core.config import EpochMode, SwitchModel
from repro.core.solve import Method, synthesize
from repro.solver import SolverOptions

BUFFERS = (1e6, 64e3, 4e3)


def _ag_max_epoch(topo, output_buffer):
    plan = allgather_plan(topo.num_gpus, output_buffer, 1)
    config = TecclConfig(
        chunk_bytes=plan.chunk_bytes, epoch_mode=EpochMode.SLOWEST_LINK,
        switch_model=SwitchModel.HYPER_EDGE,
        solver=SolverOptions(mip_gap=EARLY_STOP_GAP, time_limit=60))
    demand = collectives.allgather(topo.gpus, 1)
    result = synthesize(topo, demand, config, method=Method.MILP)
    return result, _event_finish_integral(result)


def test_table8_ndv2_two_chassis(benchmark):
    topo = topology.ndv2(2)
    table = Table("Table 8 — NDv2 2-chassis raw numbers",
                  columns=["CT us", "ST s", "AB GB/s", "TACCL AB"])
    ab = {}
    for buffer_bytes in BUFFERS:
        taccl = taccl_run(topo, "alltoall", buffer_bytes)
        atoa = teccl_alltoall(topo, buffer_bytes)
        ab[("AtoA", buffer_bytes)] = atoa.algo_bandwidth
        table.add(f"AtoA opt {human_bytes(buffer_bytes)}",
                  **{"CT us": atoa.finish_time * 1e6,
                     "ST s": atoa.solve_time,
                     "AB GB/s": atoa.algo_bandwidth / 1e9,
                     "TACCL AB": None if taccl.infeasible
                     else taccl.algo_bandwidth / 1e9})

        taccl_ag = taccl_run(topo, "allgather", buffer_bytes)
        ag_opt = teccl_allgather(topo, buffer_bytes, gap=0.02,
                                 time_limit=60)
        ag_es = teccl_allgather(topo, buffer_bytes, gap=EARLY_STOP_GAP,
                                time_limit=60)
        ag_max_result, ag_max_finish = _ag_max_epoch(topo, buffer_bytes)
        ab[("AG opt", buffer_bytes)] = ag_opt.algo_bandwidth
        ab[("AG es", buffer_bytes)] = ag_es.algo_bandwidth
        ab[("AG max", buffer_bytes)] = buffer_bytes / ag_max_finish
        for label, run in (("AG opt", ag_opt), ("AG ES30", ag_es)):
            table.add(f"{label} {human_bytes(buffer_bytes)}",
                      **{"CT us": run.finish_time * 1e6,
                         "ST s": run.solve_time,
                         "AB GB/s": run.algo_bandwidth / 1e9,
                         "TACCL AB": None if taccl_ag.infeasible
                         else taccl_ag.algo_bandwidth / 1e9})
        table.add(f"AG maxED {human_bytes(buffer_bytes)}",
                  **{"CT us": ag_max_finish * 1e6,
                     "ST s": ag_max_result.solve_time,
                     "AB GB/s": buffer_bytes / ag_max_finish / 1e9,
                     "TACCL AB": None if taccl_ag.infeasible
                     else taccl_ag.algo_bandwidth / 1e9})

    single_solve_benchmark(benchmark, teccl_alltoall, topo, BUFFERS[0])
    write_result("table8_ndv2_full", table.render())

    # shape 1: bandwidth decays as buffers shrink (Table 8's AB columns)
    for kind in ("AtoA", "AG es"):
        series = [ab[(kind, b)] for b in BUFFERS]
        assert series[0] >= series[-1]
    # shape 2: early stop within 30% of the tight-gap run
    for b in BUFFERS:
        assert ab[("AG es", b)] >= ab[("AG opt", b)] * 0.65
    # shape 3: the coarse grid never beats the fine one
    for b in BUFFERS:
        assert ab[("AG max", b)] <= ab[("AG opt", b)] * 1.25
