"""Benchmark-suite configuration.

The benches live outside ``testpaths`` and are invoked explicitly::

    pytest benchmarks/ --benchmark-only

Each bench prints its paper-shaped table and also writes it under
``benchmarks/results/`` so EXPERIMENTS.md can reference stable artifacts.
"""

import sys
from pathlib import Path

# make `import _common` work regardless of invocation directory
sys.path.insert(0, str(Path(__file__).parent))
