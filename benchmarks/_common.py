"""Shared machinery for the evaluation benchmarks.

Every bench regenerates one table or figure from the paper: it sweeps the
paper's parameter grid (downscaled where DESIGN.md says so), prints a
paper-shaped table, asserts the qualitative claim, and registers one
representative solve with pytest-benchmark. Expensive grids are cached per
process so sibling benches (Figure 4 and Figure 5 share a grid) pay once.
"""

from __future__ import annotations

import functools
import json
import os
import pathlib
import platform
import subprocess
import time
from dataclasses import dataclass

from repro import collectives, topology
from repro.baselines import taccl_like
from repro.collectives import allgather_plan, alltoall_plan
from repro.core import TecclConfig
from repro.core.config import EpochMode, SwitchModel
from repro.core.decompose import decompose, strips_to_events
from repro.core.lp import solve_lp
from repro.core.milp import solve_milp
from repro.core.solve import Method, synthesize
from repro.errors import InfeasibleError
from repro.simulate import run_events
from repro.solver import SolverOptions

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: paper: 2 h Gurobi timeout; scaled to the laptop budget
MILP_TIME_LIMIT = 60.0
#: the paper's ALLGATHER early-stop gap (§6.1)
EARLY_STOP_GAP = 0.3
#: cap on per-hop delay in epochs; beyond this the grid is coarsened via the
#: epoch multiplier (the paper's EM / "α dominates" guard, §6)
MAX_DELAY_EPOCHS = 10


def auto_epoch_multiplier(topo, chunk_bytes: float, hyper: bool) -> float:
    """EM large enough that α never exceeds MAX_DELAY_EPOCHS epochs.

    Mirrors the paper's practice: for tiny chunks α dominates, so a coarse
    grid loses nothing but keeps the model small (§6: "we increase the epoch
    duration ... since α dominates this does not materially impact the
    solution").
    """
    from repro.topology import to_hyper_edges

    work = to_hyper_edges(topo).topology if (hyper and topo.switches) \
        else topo
    base = chunk_bytes / work.max_capacity  # raw fastest-link τ, unguarded
    alpha = work.max_alpha
    if alpha <= MAX_DELAY_EPOCHS * base:
        return 1.0
    return alpha / (MAX_DELAY_EPOCHS * base)


#: version of the JSON artifact envelope below; bump on breaking changes
BENCH_SCHEMA_VERSION = 1


def _git_rev() -> str | None:
    """Current commit hash, or None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def bench_envelope(bench: str, data, *,
                   phases: dict | None = None) -> dict:
    """The common JSON-artifact envelope every bench publishes under.

    ``data`` is the bench-specific payload (unchanged from what each bench
    used to write at top level); the envelope adds the provenance a future
    regression hunt needs — schema version, commit, host/python, wall-clock
    timestamp, and coarse per-phase timings in seconds.
    """
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": bench,
        "created_unix": time.time(),
        "git_rev": _git_rev(),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "phases": dict(phases or {}),
        "data": data,
    }


def write_result(name: str, text: str, *, data=None,
                 phases: dict | None = None,
                 json_name: str | None = None) -> None:
    """Publish a bench: the rendered table always, a JSON artifact opt-in.

    With ``data``, also writes ``results/{json_name or name}.json`` holding
    :func:`bench_envelope` around it (``phases`` maps phase name → seconds).
    When the JSON stem differs from ``name``, the same text summary is
    written under the JSON stem too, so a ``results/*.json`` can never be
    refreshed while its human-readable twin goes stale.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print("\n" + text)
    if data is not None:
        stem = json_name or name
        (RESULTS_DIR / f"{stem}.json").write_text(
            json.dumps(bench_envelope(stem, data, phases=phases),
                       indent=2) + "\n", encoding="utf-8")
        if stem != name:
            (RESULTS_DIR / f"{stem}.txt").write_text(text + "\n",
                                                     encoding="utf-8")


@dataclass
class RunResult:
    """One solver run: collective time, solver time, algorithmic bandwidth."""

    finish_time: float
    solve_time: float
    algo_bandwidth: float
    infeasible: bool = False

    @staticmethod
    def failed() -> "RunResult":
        return RunResult(finish_time=float("inf"), solve_time=float("inf"),
                         algo_bandwidth=0.0, infeasible=True)


def teccl_allgather(topo, output_buffer: float, *, chunks: int = 1,
                    gap: float = EARLY_STOP_GAP,
                    time_limit: float = MILP_TIME_LIMIT,
                    hyper: bool = True, num_epochs: int | None = None,
                    ) -> RunResult:
    """TE-CCL MILP ALLGATHER under the TACCL-fair hyper-edge model."""
    plan = allgather_plan(topo.num_gpus, output_buffer, chunks)
    config = TecclConfig(
        chunk_bytes=plan.chunk_bytes, num_epochs=num_epochs,
        epoch_multiplier=auto_epoch_multiplier(topo, plan.chunk_bytes, hyper),
        switch_model=(SwitchModel.HYPER_EDGE if hyper and topo.switches
                      else SwitchModel.COPY),
        solver=SolverOptions(mip_gap=gap, time_limit=time_limit))
    demand = collectives.allgather(topo.gpus, chunks)
    try:
        result = synthesize(topo, demand, config, method=Method.MILP)
    except InfeasibleError:
        return RunResult.failed()
    finish = _event_finish_integral(result)
    return RunResult(finish_time=finish,
                     solve_time=result.solve_time,
                     algo_bandwidth=output_buffer / finish)


def teccl_alltoall(topo, output_buffer: float, *, chunks: int = 1,
                   hyper: bool = True, epoch_multiplier: float | None = None,
                   num_epochs: int | None = None) -> RunResult:
    """TE-CCL LP ALLTOALL (single-shot; the 1/(k+1) objective makes the
    pruned finish time near-minimal without the paper's binary search)."""
    plan = alltoall_plan(topo.num_gpus, output_buffer, chunks)
    if epoch_multiplier is None:
        epoch_multiplier = auto_epoch_multiplier(topo, plan.chunk_bytes,
                                                 hyper)
    config = TecclConfig(
        chunk_bytes=plan.chunk_bytes, num_epochs=num_epochs,
        epoch_multiplier=epoch_multiplier,
        # §5: "the LP is not sensitive to these settings" — the coarse grid
        # keeps every link at >= 1 chunk/epoch and the model laptop-sized.
        epoch_mode=EpochMode.SLOWEST_LINK,
        switch_model=(SwitchModel.HYPER_EDGE if hyper and topo.switches
                      else SwitchModel.COPY),
        solver=SolverOptions(time_limit=MILP_TIME_LIMIT))
    demand = collectives.alltoall(topo.gpus, chunks)
    try:
        result = synthesize(topo, demand, config, method=Method.LP)
    except InfeasibleError:
        return RunResult.failed()
    finish = _event_finish_fractional(result)
    return RunResult(finish_time=finish,
                     solve_time=result.solve_time,
                     algo_bandwidth=output_buffer / finish)


def taccl_run(topo, collective: str, output_buffer: float, *,
              chunks: int = 1, seed: int = 0) -> RunResult:
    """The TACCL-like baseline on the same geometry."""
    if collective == "allgather":
        plan = allgather_plan(topo.num_gpus, output_buffer, chunks)
        demand = collectives.allgather(topo.gpus, chunks)
    else:
        plan = alltoall_plan(topo.num_gpus, output_buffer, chunks)
        demand = collectives.alltoall(topo.gpus, chunks)
    config = TecclConfig(chunk_bytes=plan.chunk_bytes)
    try:
        outcome = taccl_like(topo, demand, config, seed=seed)
    except InfeasibleError:
        return RunResult.failed()
    finish = run_events(outcome.schedule, outcome.topology,
                        outcome.demand).finish_time
    return RunResult(finish_time=finish,
                     solve_time=outcome.solve_time,
                     algo_bandwidth=output_buffer / finish)


def _event_finish_integral(result) -> float:
    """Continuous-time finish of an integral schedule (no epoch rounding).

    Every comparison in the benches uses the event executor on both sides so
    that the coarse grids the laptop budget forces on TE-CCL do not bias the
    α accounting (the paper's fine grids make the distinction moot).
    """
    topo = result.topology_used
    return run_events(result.schedule, topo, result.demand_used).finish_time


def _event_finish_fractional(result) -> float:
    """Continuous-time finish of an LP schedule via strips → unit chunks."""
    strips = decompose(result.schedule, result.topology_used, result.plan)
    schedule, synth_demand = strips_to_events(strips, result.plan)
    return run_events(schedule, result.topology_used,
                      synth_demand).finish_time


# ----------------------------------------------------------------------
# the Figure 4 / Figure 5 shared grid
# ----------------------------------------------------------------------
#: (label, topology builder) — the paper's four families, downscaled
GRID_TOPOLOGIES = (
    ("NDv2 2ch", lambda: topology.ndv2(2)),
    ("Internal1 2ch", lambda: topology.internal1(2)),
    ("Internal2 4ch", lambda: topology.internal2(4)),
)

#: output-buffer sweep (paper: 1 KB – 1 GB; downscaled to three decades)
GRID_BUFFERS = (1e3, 1e6, 64e6)


@dataclass
class GridCell:
    topo_label: str
    collective: str
    output_buffer: float
    teccl: RunResult
    taccl: RunResult


@functools.lru_cache(maxsize=1)
def taccl_comparison_grid() -> tuple[GridCell, ...]:
    """Run TE-CCL and TACCL-like over the shared grid exactly once."""
    cells: list[GridCell] = []
    for label, build in GRID_TOPOLOGIES:
        topo = build()
        for collective in ("allgather", "alltoall"):
            for buffer_bytes in GRID_BUFFERS:
                if collective == "allgather":
                    ours = teccl_allgather(topo, buffer_bytes)
                else:
                    ours = teccl_alltoall(topo, buffer_bytes)
                theirs = taccl_run(topo, collective, buffer_bytes)
                cells.append(GridCell(
                    topo_label=label, collective=collective,
                    output_buffer=buffer_bytes, teccl=ours, taccl=theirs))
    return tuple(cells)


def single_solve_benchmark(benchmark, fn, *args, **kwargs):
    """Register one representative solve with pytest-benchmark (1 round —
    TE-CCL solves are deterministic and seconds-long, repetition buys
    nothing)."""
    return benchmark.pedantic(lambda: fn(*args, **kwargs),
                              rounds=1, iterations=1)


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - start
