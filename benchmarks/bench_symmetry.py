"""Symmetry reduction end-to-end benchmark on symmetric Table-4 instances.

The quotient construction (``repro.core.symmetry``) solves one variable and
constraint block per automorphism orbit and lifts the reduced solution back
to the full fabric, replay-vetted by the conformance oracle. This bench
times the full LP pipeline with ``symmetry=off`` vs ``symmetry=on`` on the
symmetric members of the Table-4 family (uniform ring, 2-D torus), asserts
the ≥2× end-to-end win and objective parity, and publishes per-orbit
variable/constraint counts to ``benchmarks/results/BENCH_symmetry.json``
so future PRs can track compression regressions.
"""

from _common import timed, write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig
from repro.core.lp import solve_lp
from repro.simulate import check_flow
from repro.solver import SolverOptions

#: (label, topology factory) — symmetric fabrics at Table-4 scale
CELLS = (
    ("Ring16 AtoA LP", lambda: topology.ring(16, capacity=1.0, alpha=0.0)),
    ("Torus4x4 AtoA LP", lambda: topology.torus2d(4, 4, capacity=1.0,
                                                  alpha=0.0)),
)


def _config(mode: str) -> TecclConfig:
    return TecclConfig(chunk_bytes=1.0,
                       solver=SolverOptions(symmetry=mode, time_limit=300))


def test_symmetry_speedup(benchmark):
    table = Table("Symmetry reduction — full vs quotient LP, end to end",
                  columns=["cols", "cols/orbit", "rows", "rows/orbit",
                           "gens", "off s", "on s", "speedup"])
    records = []
    speedups = {}
    for label, factory in CELLS:
        topo = factory()
        demand = collectives.alltoall(topo.gpus, 1)

        full, off_time = timed(solve_lp, topo, demand, _config("off"))
        reduced, on_time = timed(solve_lp, topo, demand, _config("on"))

        stats = reduced.result.stats
        assert stats.get("symmetry_generators", 0) > 0, label
        assert stats.get("symmetry_conformant") is True, label
        # the quotient restriction is exact: equal LP optimum
        assert abs(reduced.result.objective - full.result.objective) \
            <= 1e-7 * max(1.0, abs(full.result.objective)), label
        report = check_flow(reduced.schedule, topo, demand, reduced.plan,
                            config=_config("on"))
        assert report.ok, (label, [str(v) for v in report.violations[:3]])

        speedup = off_time / on_time if on_time else float("inf")
        speedups[label] = speedup
        table.add(label,
                  **{"cols": stats["symmetry_cols_full"],
                     "cols/orbit": stats["symmetry_cols_reduced"],
                     "rows": stats["symmetry_rows_full"],
                     "rows/orbit": stats["symmetry_rows_reduced"],
                     "gens": stats["symmetry_generators"],
                     "off s": off_time, "on s": on_time,
                     "speedup": speedup})
        records.append({
            "instance": label, "gpus": topo.num_gpus,
            "cols_full": stats["symmetry_cols_full"],
            "cols_reduced": stats["symmetry_cols_reduced"],
            "rows_full": stats["symmetry_rows_full"],
            "rows_reduced": stats["symmetry_rows_reduced"],
            "generators": stats["symmetry_generators"],
            "orbits": stats["symmetry_orbits"],
            "solve_off_s": off_time, "solve_on_s": on_time,
            "speedup": speedup,
            "objective": reduced.result.objective,
        })

    write_result(
        "symmetry", table.render(),
        json_name="BENCH_symmetry",
        data={"instances": records,
              "note": "quotient-vs-full LP wall clock and per-orbit "
                      "model sizes on symmetric fabrics (PR 9)"},
        phases={"solve_off": sum(r["solve_off_s"] for r in records),
                "solve_on": sum(r["solve_on_s"] for r in records)})

    # the acceptance claim: ≥2× end to end on symmetric Table-4 instances
    assert max(speedups.values()) >= 2.0, speedups

    # representative quotient solve for pytest-benchmark tracking
    topo = topology.ring(16, capacity=1.0, alpha=0.0)
    demand = collectives.alltoall(topo.gpus, 1)
    benchmark.pedantic(lambda: solve_lp(topo, demand, _config("on")),
                       rounds=1, iterations=1)
