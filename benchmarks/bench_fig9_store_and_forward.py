"""Figure 9: store-and-forward buffers — solver time, not solution quality.

Paper claim ("a somewhat surprising result"): disabling intermediate
buffering does not change the achieved transfer time of ALLGATHER-style
collectives (nodes interleave consuming and forwarding), it only changes
how fast the solver finds the optimum (speedups of 61–71% on Internal-1
(α=0) and DGX1, a slowdown on Internal-1 with α).
"""

from _common import single_solve_benchmark, write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig, solve_milp
from repro.solver import SolverOptions


def _run(topo, store_and_forward: bool):
    demand = collectives.allgather(topo.gpus, 1)
    config = TecclConfig(
        chunk_bytes=1e6, store_and_forward=store_and_forward,
        solver=SolverOptions(time_limit=60))
    out = solve_milp(topo, demand, config)
    return out.finish_time, out.result.solve_time


def test_fig9_store_and_forward(benchmark):
    topologies = [
        ("Internal1 a=0", topology.internal1(2).with_zero_alpha()),
        ("Internal1", topology.internal1(2)),
        ("Internal2", topology.internal2(2)),
        ("DGX1", topology.dgx1()),
    ]
    table = Table("Figure 9 — buffers on/off "
                  "(100·(without−with)/without %)",
                  columns=["with us", "without us", "transfer %",
                           "solver %"])
    deltas = []
    for label, topo in topologies:
        with_ct, with_st = _run(topo, True)
        without_ct, without_st = _run(topo, False)
        transfer_pct = 100.0 * (without_ct - with_ct) / without_ct
        solver_pct = 100.0 * (without_st - with_st) / without_st
        deltas.append(transfer_pct)
        table.add(label, **{"with us": with_ct * 1e6,
                            "without us": without_ct * 1e6,
                            "transfer %": transfer_pct,
                            "solver %": solver_pct})
    single_solve_benchmark(benchmark, _run, topology.internal2(2), True)
    write_result("fig9_store_and_forward", table.render())

    # the headline: solution quality unchanged (|Δ| within quantisation)
    assert all(abs(pct) <= 5.0 for pct in deltas)
