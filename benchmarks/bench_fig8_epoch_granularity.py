"""Figure 8: small (fastest-link) vs large (slowest-link) epochs.

Paper claim: large epochs solve faster but produce worse schedules on
fabrics with heterogeneous bandwidth (NDv2/DGX2, where fast links are 4–10×
the slow ones); on near-homogeneous Internal-1 the quality gap vanishes.
"""

from _common import single_solve_benchmark, write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig
from repro.core.config import EpochMode, SwitchModel
from repro.core.solve import Method, synthesize
from repro.errors import InfeasibleError
from repro.solver import SolverOptions

BUFFER_PER_GPU = 1e6


def _run(topo, gpus, collective, mode):
    if collective == "AG":
        demand = collectives.allgather(gpus, 1)
        method = Method.MILP
    else:
        demand = collectives.alltoall(gpus, 1)
        method = Method.LP
    config = TecclConfig(
        chunk_bytes=BUFFER_PER_GPU, epoch_mode=mode,
        switch_model=SwitchModel.HYPER_EDGE if topo.switches
        else SwitchModel.COPY,
        solver=SolverOptions(mip_gap=0.2, time_limit=60))
    result = synthesize(topo, demand, config, method=method)
    return result.finish_time, result.solve_time


def test_fig8_epoch_granularity(benchmark):
    cases = [
        ("Internal1 2ch", topology.internal1(2), None),
        ("NDv2 2ch", topology.ndv2(2), 6),  # GPU subset keeps the MILP fast
    ]
    table = Table("Figure 8 — small vs large epochs "
                  "(100·(small−large)/large %)",
                  columns=["transfer %", "solver %"])
    quality: dict[tuple[str, str], float] = {}
    for label, topo, max_gpus in cases:
        gpus = topo.gpus[:max_gpus] if max_gpus else topo.gpus
        for collective in ("AG", "AtoA"):
            try:
                small_ct, small_st = _run(topo, gpus, collective,
                                          EpochMode.FASTEST_LINK)
                large_ct, large_st = _run(topo, gpus, collective,
                                          EpochMode.SLOWEST_LINK)
            except InfeasibleError:
                table.add(f"{label} {collective}", **{"transfer %": None,
                                                      "solver %": None})
                continue
            transfer_pct = 100.0 * (small_ct - large_ct) / large_ct
            solver_pct = 100.0 * (small_st - large_st) / large_st
            quality[(label, collective)] = transfer_pct
            table.add(f"{label} {collective}",
                      **{"transfer %": transfer_pct,
                         "solver %": solver_pct})
    single_solve_benchmark(benchmark, _run, topology.internal1(2),
                           topology.internal1(2).gpus, "AG",
                           EpochMode.FASTEST_LINK)
    write_result("fig8_epoch_granularity", table.render())

    # paper shape: small epochs never materially worse...
    assert all(pct <= 10.0 for pct in quality.values())
    # ...and strictly better somewhere on the heterogeneous fabric
    ndv2 = [pct for (label, _), pct in quality.items()
            if label.startswith("NDv2")]
    assert ndv2 and min(ndv2) <= 0.0
