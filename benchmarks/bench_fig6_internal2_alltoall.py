"""Figure 6: ALLTOALL on Internal-2 across chassis counts, vs TACCL.

Paper claim: on Internal-2 ALLTOALL, TE-CCL is faster than TACCL *and*
produces better schedules at every chassis count (2–32 in the paper; 2–8
here per DESIGN.md's downscaling), with the bandwidth advantage largest at
small buffers (up to 12,322%).
"""

from _common import (single_solve_benchmark, taccl_run, teccl_alltoall,
                     write_result)
from repro import topology
from repro.analysis import Table, improvement_pct, speedup_pct

CHASSIS = (2, 4, 8)
BUFFER = 1e6  # a mid-sweep output buffer


def test_fig6_internal2_alltoall(benchmark):
    rows = []
    for chassis in CHASSIS:
        topo = topology.internal2(chassis)
        ours = teccl_alltoall(topo, BUFFER)
        theirs = taccl_run(topo, "alltoall", BUFFER)
        rows.append((chassis, ours, theirs))
    single_solve_benchmark(
        benchmark, teccl_alltoall, topology.internal2(2), BUFFER)

    table = Table("Figure 6 — Internal-2 ALLTOALL vs TACCL-like (1M buffer)",
                  columns=["TECCL us", "TACCL us", "bw improv %",
                           "st speedup %"])
    improvements = []
    for chassis, ours, theirs in rows:
        if theirs.infeasible or ours.infeasible:
            table.add(f"{chassis} ch AtoA",
                      **{"TECCL us": ours.finish_time * 1e6,
                         "TACCL us": None, "bw improv %": None,
                         "st speedup %": None})
            continue
        bw = improvement_pct(ours.algo_bandwidth, theirs.algo_bandwidth)
        st = speedup_pct(ours.solve_time, theirs.solve_time)
        improvements.append(bw)
        table.add(f"{chassis} ch AtoA",
                  **{"TECCL us": ours.finish_time * 1e6,
                     "TACCL us": theirs.finish_time * 1e6,
                     "bw improv %": bw, "st speedup %": st})
    write_result("fig6_internal2_alltoall", table.render())

    # paper shape: higher quality at every chassis count
    assert improvements and all(bw >= -1.0 for bw in improvements)
    # TE-CCL (the LP) completed everywhere
    assert all(not ours.infeasible for _, ours, _ in rows)
