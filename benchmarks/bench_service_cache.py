"""Planner service: cold solve vs cache hit vs coalesced-request latency.

The service's claim (ISSUE 1, mirroring the paper's amortisation story) is
quantitative: a cache hit must be at least an order of magnitude cheaper
than the cold solve it replaces, and N concurrent identical requests must
cost one solve, not N. This bench measures all three serving paths on one
DGX-1 ALLGATHER instance and emits both the human table and a machine-read
JSON artifact (``benchmarks/results/service_cache.json``).
"""

import threading
import time

from _common import single_solve_benchmark, write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig
from repro.service import Planner, PlanRequest
from repro.solver import SolverOptions

#: concurrent identical requests in the coalescing wave
WAVE = 6


def _request(tag: str = "") -> PlanRequest:
    topo = topology.dgx1()
    return PlanRequest(
        topology=topo,
        demand=collectives.allgather(topo.gpus, 2),
        config=TecclConfig(chunk_bytes=25e3, num_epochs=14,
                           solver=SolverOptions(time_limit=60.0)),
        tag=tag)


def _timed_plan(planner: Planner, tag: str):
    start = time.perf_counter()
    response = planner.plan(_request(tag))
    return response, time.perf_counter() - start


def test_service_cache_latency(benchmark, tmp_path):
    # --- cold solve, then memory hit, then disk hit (fresh planner) -------
    cache_dir = tmp_path / "schedule-cache"
    with Planner(executor="thread", max_workers=WAVE,
                 cache_dir=cache_dir) as planner:
        cold, cold_s = _timed_plan(planner, "cold")
        hit, hit_s = _timed_plan(planner, "hit")
        assert not cold.cache_hit and hit.cache_hit
        assert planner.stats()["solves"] == 1
    with Planner(executor="thread", cache_dir=cache_dir) as planner:
        disk, disk_s = _timed_plan(planner, "disk")
        assert disk.cache_hit
        assert planner.stats()["solves"] == 0

    # --- coalescing wave: N concurrent identical requests, no cache ------
    with Planner(executor="thread", max_workers=WAVE) as planner:
        barrier = threading.Barrier(WAVE)
        latencies = [0.0] * WAVE

        def serve(i: int) -> None:
            barrier.wait()
            start = time.perf_counter()
            planner.plan(_request(f"wave-{i}"))
            latencies[i] = time.perf_counter() - start

        wave_start = time.perf_counter()
        threads = [threading.Thread(target=serve, args=(i,))
                   for i in range(WAVE)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wave_s = time.perf_counter() - wave_start
        wave_stats = planner.stats()
    assert wave_stats["solves"] == 1
    assert wave_stats["coalesced"] == WAVE - 1

    # --- report ----------------------------------------------------------
    speedup_mem = cold_s / hit_s
    speedup_disk = cold_s / disk_s
    table = Table("Planner service — serving-path latency (DGX-1 AG, "
                  "2 chunks)",
                  columns=["latency ms", "vs cold"])
    table.add("cold solve", **{"latency ms": cold_s * 1e3, "vs cold": 1.0})
    table.add("memory hit", **{"latency ms": hit_s * 1e3,
                               "vs cold": speedup_mem})
    table.add("disk hit", **{"latency ms": disk_s * 1e3,
                             "vs cold": speedup_disk})
    table.add(f"coalesced wave of {WAVE}",
              **{"latency ms": wave_s * 1e3, "vs cold": cold_s / wave_s})
    payload = {
        "bench": "service_cache",
        "instance": "dgx1/allgather/2x25e3",
        "cold_s": cold_s,
        "memory_hit_s": hit_s,
        "disk_hit_s": disk_s,
        "wave_requests": WAVE,
        "wave_s": wave_s,
        "wave_solves": wave_stats["solves"],
        "wave_coalesced": wave_stats["coalesced"],
        "memory_hit_speedup": speedup_mem,
        "disk_hit_speedup": speedup_disk,
    }
    write_result(
        "service_cache", table.render(),
        data=payload,
        phases={"cold_solve": cold_s, "memory_hit": hit_s,
                "disk_hit": disk_s, "coalesced_wave": wave_s})

    # the acceptance bar: a hit is >= 10x cheaper than the solve it replaces
    assert speedup_mem >= 10.0
    assert speedup_disk >= 10.0
    # a coalesced wave costs about one solve, not WAVE solves
    assert wave_s < cold_s * 3.0

    single_solve_benchmark(
        benchmark, lambda: Planner(executor="inline").plan(_request()))
