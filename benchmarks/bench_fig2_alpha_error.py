"""Figure 2: relative error of an α-blind bandwidth estimate vs transfer size.

Paper setup: a proprietary 2-chassis topology (8 GPUs) with α = 0.6 µs
GPU–GPU and 0.75 µs GPU–switch; the error reaches ~100× (10,000%) for the
smallest transfers and vanishes for large ones. We run the Internal-1
stand-in (same per-chassis shape and α values) over four decades of
transfer size and assert the same monotone explosion.
"""

from _common import single_solve_benchmark, write_result
from repro import collectives, topology
from repro.analysis import Table, alpha_blind_error, human_bytes
from repro.core import TecclConfig

#: per-GPU transfer sizes (paper: 10 KB .. 10 MB region shows the knee)
TRANSFER_SIZES = (1e3, 1e4, 1e5, 1e6, 1e7)


def _point(topo, size):
    demand = collectives.allgather(topo.gpus, 1)
    config = TecclConfig(chunk_bytes=size, num_epochs=10)
    return alpha_blind_error(topo, demand, config)


def test_fig2_alpha_error_curve(benchmark):
    topo = topology.internal1(2)  # 8 GPUs, α = 0.6/0.75 µs (Table 2/Fig 2)
    points = []
    for size in TRANSFER_SIZES:
        points.append(_point(topo, size))
    single_solve_benchmark(benchmark, _point, topo, TRANSFER_SIZES[2])

    table = Table("Figure 2 — α-blind relative error in algo bandwidth",
                  columns=["est us", "actual us", "error %"])
    for size, point in zip(TRANSFER_SIZES, points):
        table.add(f"transfer {human_bytes(size)}",
                  **{"est us": point.estimated_finish * 1e6,
                     "actual us": point.actual_finish * 1e6,
                     "error %": point.relative_error_pct})
    write_result("fig2_alpha_error", table.render())

    errors = [p.relative_error_pct for p in points]
    # paper shape: error decays monotonically with transfer size...
    assert all(a >= b - 1e-6 for a, b in zip(errors, errors[1:]))
    # ...explodes for tiny transfers (paper: up to ~10,000%)...
    assert errors[0] > 100.0
    # ...and is negligible once β·S dominates α.
    assert errors[-1] < 10.0
