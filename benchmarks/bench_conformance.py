"""Conformance sweep benchmark: the oracle over every producer, as data.

Runs the randomized cross-producer harness (the same sweep
``tests/test_conformance.py`` asserts on) and publishes
``benchmarks/results/BENCH_conformance.json``: per-producer replay counts,
violation totals, and the replayed-vs-claimed finish-time deltas for the
producers that state an objective. A regression anywhere in the producer
stack — a constraint dropped from a formulation, a baseline booking over
capacity, a serialisation bug in the cache path — shows up here as a
non-zero violation count or a widening finish delta.
"""

import time

from _common import write_result
from repro.analysis import Table
from repro.simulate import PRODUCERS, sweep

SEEDS = range(32)


def test_conformance_sweep(benchmark):
    start = time.perf_counter()
    records = sweep(SEEDS)
    sweep_time = time.perf_counter() - start

    table = Table("Conformance sweep — every producer, randomized instances",
                  columns=["replays", "skips", "violations", "|finish Δ|max",
                           "claims"])
    summary = {}
    for name in PRODUCERS:
        mine = [r for r in records if r.producer == name]
        replayed = [r for r in mine if not r.skipped]
        deltas = [abs(r.finish_delta) for r in replayed
                  if r.finish_delta is not None]
        violations = sum(r.num_violations for r in replayed)
        summary[name] = {
            "replays": len(replayed),
            "skips": len(mine) - len(replayed),
            "violations": violations,
            "claims_compared": len(deltas),
            "max_abs_finish_delta": max(deltas, default=0.0),
        }
        table.add(name, **{
            "replays": len(replayed),
            "skips": len(mine) - len(replayed),
            "violations": violations,
            "|finish Δ|max": max(deltas, default=0.0),
            "claims": len(deltas)})

    write_result(
        "conformance", table.render(),
        json_name="BENCH_conformance",
        data={
            "seeds": len(SEEDS),
            "sweep_time_s": sweep_time,
            "producers": summary,
            "total_replays": sum(s["replays"] for s in summary.values()),
            "total_violations": sum(s["violations"]
                                    for s in summary.values()),
            "note": "cross-producer conformance replay; zero violations "
                    "and float-tight finish agreement are the invariants "
                    "(PR 3)",
        },
        phases={"sweep": sweep_time})

    # the PR's acceptance bar, re-asserted on every bench run
    assert sum(s["violations"] for s in summary.values()) == 0, summary
    deep = [n for n, s in summary.items() if s["replays"] >= 20]
    assert len(deep) >= 8, summary
    for name in ("milp", "lp", "pop"):
        assert summary[name]["claims_compared"] >= 20

    # representative single replay for pytest-benchmark tracking
    from repro.simulate.harness import random_instance, run_producer

    topo, demand, config = random_instance(0)
    benchmark(lambda: run_producer("milp", topo, demand, config, 0))
