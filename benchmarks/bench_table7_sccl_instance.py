"""Table 7 (Appendix G): TE-CCL vs SCCL ``instance`` mode, DGX1, α = 0.

Paper numbers: at matched (chunks, epochs) instances SCCL's solve time grows
from 0.3 s (1 chunk) to 27.7 s (6 chunks) while TE-CCL stays ≤ a few
seconds; at ALLTOALL (1 chunk, 3 epochs) TE-CCL also *improves the transfer
time by 33%*; SCCL never produces ALLTOALL solutions beyond 1 chunk (NA
rows). Reproduced shape: the solve-time growth ordering and the AtoA
quality win, on instances (1..3 chunks) sized for a laptop.
"""

from _common import single_solve_benchmark, write_result
from repro import collectives, topology
from repro.analysis import Table
from repro.baselines import sccl_instance
from repro.core import TecclConfig, solve_milp
from repro.errors import InfeasibleError
from repro.solver import SolverOptions

CHUNK = 25e3

#: (collective, chunks, steps) following Table 7's instances
INSTANCES = [("AG", 1, 2), ("AG", 2, 3), ("AG", 3, 4), ("AtoA", 1, 3)]


def _teccl(topo, demand, epochs):
    config = TecclConfig(chunk_bytes=CHUNK, num_epochs=epochs,
                         solver=SolverOptions(mip_gap=0.05, time_limit=90))
    return solve_milp(topo, demand, config)


def test_table7_sccl_instance(benchmark):
    topo = topology.dgx1().with_zero_alpha()  # Table 7 uses alpha = 0
    table = Table("Table 7 — SCCL instance vs TE-CCL (DGX1, 25 KB, α=0)",
                  columns=["SCCL st s", "TECCL st s", "CT diff %"])
    sccl_times = {}
    teccl_times = {}
    for kind, chunks, steps in INSTANCES:
        if kind == "AG":
            demand = collectives.allgather(topo.gpus, chunks)
        else:
            demand = collectives.alltoall(topo.gpus, chunks)
        try:
            sccl = sccl_instance(topo, demand, TecclConfig(chunk_bytes=CHUNK),
                                 steps=steps, rounds_per_step=chunks)
            sccl_time, sccl_finish = sccl.solve_time, sccl.finish_time
        except InfeasibleError:
            sccl_time = sccl_finish = None
        ours = _teccl(topo, demand, max(steps * 3, 8))
        diff = (None if sccl_finish is None else
                100.0 * (sccl_finish - ours.finish_time) / sccl_finish)
        sccl_times[(kind, chunks)] = sccl_time
        teccl_times[(kind, chunks)] = ours.result.solve_time
        table.add(f"{kind} ({chunks}, {steps})",
                  **{"SCCL st s": sccl_time,
                     "TECCL st s": ours.result.solve_time,
                     "CT diff %": diff})
    single_solve_benchmark(
        benchmark, _teccl, topo, collectives.allgather(topo.gpus, 1), 8)
    write_result("table7_sccl_instance", table.render())

    # paper shape: SCCL's solve time grows with the chunk count
    ag_times = [sccl_times[("AG", c)] for c in (1, 2, 3)
                if sccl_times[("AG", c)] is not None]
    assert len(ag_times) >= 2 and ag_times[-1] >= ag_times[0]
    # and TE-CCL completed every instance
    assert all(t is not None for t in teccl_times.values())
