#!/usr/bin/env python3
"""Quickstart: synthesize an ALLGATHER schedule for a DGX1 box.

Covers the full TE-CCL pipeline in ~40 lines:

1. pick a topology and a collective demand,
2. synthesize a schedule (the facade auto-selects the MILP, since
   ALLGATHER benefits from in-network copy),
3. validate it with the independent α–β simulator,
4. lower it to MSCCL XML, ready for a GPU runtime.

Run:  python examples/quickstart.py
"""

from repro import collectives, topology
from repro.collectives import allgather_plan
from repro.core import TecclConfig
from repro.core.solve import synthesize
from repro.msccl import to_msccl_xml
from repro.simulate import verify

# 1. an 8-GPU DGX1 and the demand: every GPU gathers every GPU's buffer.
topo = topology.dgx1()
demand = collectives.allgather(topo.gpus, chunks_per_gpu=1)

# 25 KB chunks, the size the paper uses to make the α-cost visible (Table 3).
plan = allgather_plan(num_gpus=8, output_buffer_bytes=8 * 25e3)
config = TecclConfig(chunk_bytes=plan.chunk_bytes, num_epochs=10)

# 2. synthesize
result = synthesize(topo, demand, config)
print(f"method        : {result.method.value}")
print(f"epoch duration: {result.plan.tau * 1e6:.2f} us")
print(f"sends         : {result.schedule.num_sends}")
print(f"finish time   : {result.finish_time * 1e6:.2f} us")
print(f"algo bandwidth: "
      f"{result.algorithmic_bandwidth(plan.output_buffer_bytes) / 1e9:.2f} "
      "GB/s")

# 3. validate against the simulator (raises on any violation)
report = verify(result.schedule, topo, demand, result.plan)
print(f"simulated     : ok={report.ok}, "
      f"finish={report.finish_time * 1e6:.2f} us")

# 4. lower to MSCCL
xml = to_msccl_xml(result.schedule, topo, demand,
                   name="dgx1-allgather", collective="allgather")
print(f"msccl xml     : {len(xml.splitlines())} lines "
      f"(first: {xml.splitlines()[1][:60]}...)")
