#!/usr/bin/env python3
"""Scaling to multi-chassis clouds: LP for ALLTOALL, A* for ALLGATHER (§4).

Sweeps the Internal-2 stand-in from 2 to 8 chassis and reports, per size,
the LP's ALLTOALL solve (optimal, scalable) and the A* decomposition's
ALLGATHER solve (near-optimal, scalable) — the paper's Table 4 recipe in
laptop-sized form.

Run:  python examples/large_scale_astar.py
"""

import time

from repro import collectives, topology
from repro.analysis import Table
from repro.core import TecclConfig
from repro.core.astar import solve_astar
from repro.core.config import AStarConfig
from repro.core.lp import solve_lp
from repro.simulate import verify
from repro.solver import SolverOptions

table = Table("Scaling on Internal-2 (paper: Table 4, downsized)",
              columns=["GPUs", "AtoA LP s", "AtoA us", "AG A* s", "AG us",
                       "rounds"])

for chassis in (2, 4, 8):
    topo = topology.internal2(chassis)
    gpus = topo.num_gpus
    config = TecclConfig(chunk_bytes=1e6,
                         solver=SolverOptions(mip_gap=0.2, time_limit=120))

    start = time.perf_counter()
    lp = solve_lp(topo, collectives.alltoall(topo.gpus, 1), config)
    lp_time = time.perf_counter() - start

    ag_demand = collectives.allgather(topo.gpus, 1)
    start = time.perf_counter()
    astar = solve_astar(topo, ag_demand, config, AStarConfig())
    astar_time = time.perf_counter() - start
    verify(astar.schedule, topo, ag_demand, astar.plan)

    table.add(f"Internal2 x{chassis}",
              **{"GPUs": gpus,
                 "AtoA LP s": lp_time,
                 "AtoA us": lp.finish_time * 1e6,
                 "AG A* s": astar_time,
                 "AG us": astar.finish_time * 1e6,
                 "rounds": astar.num_rounds})

table.show()
print("A* schedules verified against the simulator at every size.")
