#!/usr/bin/env python3
"""Topology design with TE-CCL in the loop (the paper's §1 design loop).

An operator has a 6-GPU pod wired as a line and budget for two more cables.
Where should they go? Every candidate is scored by actually synthesizing the
collective — the workload TE-CCL's scalability argument targets (TopoOpt-
style co-design calls the optimizer many times per search).

The script runs three levels of the loop:

1. what-if: which *existing* cable, upgraded 2x, buys the most?
2. greedy augmentation: spend 2 new cables, one at a time;
3. local search: redesign the whole fabric under the same link budget.

Run:  python examples/topology_design.py
"""

from repro import collectives, topology
from repro.core import TecclConfig
from repro.solver import SolverOptions
from repro.toposearch import (DesignSpec, evaluate_topology, greedy_augment,
                              local_search, rank_link_upgrades)

CAPACITY = 25e9        # 200 Gbps cables
ALPHA = 0.7e-6
config = TecclConfig(chunk_bytes=1e6,
                     solver=SolverOptions(mip_gap=0.1, time_limit=20))

base = topology.line(6, capacity=CAPACITY, alpha=ALPHA, name="pod-line6")
demand = collectives.broadcast(0, base.gpus, 1)
baseline = evaluate_topology(base, demand, config)
print(f"base fabric   : {base!r}")
print(f"broadcast time: {baseline * 1e6:.2f} us\n")

# 1. what-if upgrades of existing cables
print("what-if: upgrade one existing cable 2x")
for option in rank_link_upgrades(base, demand, config, factor=2.0)[:3]:
    print(f"  {option.link[0]}->{option.link[1]}: "
          f"{option.finish_time * 1e6:.2f} us "
          f"({100 * option.improvement:+.1f}%)")

# 2. greedy augmentation: two extra cables
spec = DesignSpec(num_gpus=6, capacity=CAPACITY, alpha=ALPHA)
augmented = greedy_augment(base, spec, demand, config, extra_links=2)
added = sorted(set(augmented.topology.links) - set(base.links))
print(f"\ngreedy augmentation (+2 cables): {added}")
print(f"  broadcast time: {augmented.finish_time * 1e6:.2f} us "
      f"({100 * augmented.improvement_over(baseline):.1f}% faster)")

# 3. full redesign under the same link budget as the augmented fabric
spec = DesignSpec(num_gpus=6, capacity=CAPACITY, alpha=ALPHA,
                  link_budget=len(augmented.topology.links))
searched = local_search(spec, demand, config, seed=0, max_iters=12,
                        patience=6, start=augmented.topology)
print(f"\nlocal search ({searched.evaluations} synthesizer calls): "
      f"{searched.finish_time * 1e6:.2f} us")
assert searched.finish_time <= augmented.finish_time + 1e-12
print("search never degraded the design: ok")
