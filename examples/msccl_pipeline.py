#!/usr/bin/env python3
"""The full deployment pipeline: synthesize → lower → execute → inspect.

Mirrors the paper's §6 "Platform" flow. The schedule is synthesized for a
DGX1, lowered to an MSCCL-style program (threadblocks + FIFO channels +
dependencies), executed by the runtime *interpreter* — which validates the
lowering independently of the solver — and finally rendered as a wall-clock
Gantt chart of wire occupancy.

Run:  python examples/msccl_pipeline.py
"""

from repro import collectives, topology
from repro.analysis import render_gantt, render_progress
from repro.core import TecclConfig, solve_milp
from repro.msccl import load_program, to_msccl_xml, verify_program
from repro.simulate import run_events

topo = topology.dgx1()
demand = collectives.allgather(topo.gpus, chunks_per_gpu=1)
config = TecclConfig(chunk_bytes=25e3, num_epochs=10)

# synthesize and lower
outcome = solve_milp(topo, demand, config)
document = to_msccl_xml(outcome.schedule, topo, demand,
                        name="dgx1-allgather", collective="allgather")
program = load_program(document)
print(f"schedule      : {outcome.schedule!r}")
print(f"program       : {program.num_instructions} instructions over "
      f"{len(program.blocks)} threadblocks on {len(program.gpus)} ranks")

# execute the program the way the MSCCL runtime would
report = verify_program(document, topo, demand, chunk_bytes=25e3)
print(f"interpreter   : {report.fired}/{report.total} instructions fired, "
      f"finish {report.finish_time * 1e6:.2f} us")
print("delivery      : every demanded chunk delivered\n")

# wall-clock view of what the wires did
events = run_events(outcome.schedule, topo, demand)
print("wire occupancy (event-simulated):")
print(render_gantt(events, width=56, links=sorted(
    events.link_busy, key=lambda k: -events.link_busy[k])[:6]))
print("\ndelivery progress per GPU:")
print(render_progress(events, demand, width=56))
