#!/usr/bin/env python3
"""Planner service: fingerprint, cache, and coalesce schedule synthesis.

The paper's economics: a schedule is synthesized once and reused across
millions of training iterations. This example runs that loop explicitly:

1. build a plan request (topology + demand + config, as data),
2. serve it cold through a `Planner` — the solve pool runs `synthesize`
   and archives the result in a two-tier cache,
3. serve it again — a cache hit, orders of magnitude cheaper,
4. rebuild the *same* instance from scratch in a different insertion
   order — the canonical fingerprint still recognises it,
5. print the serving stats a production operator would watch.

Run:  python examples/planner_service.py
"""

import time

from repro import collectives, topology
from repro.core import TecclConfig
from repro.service import Planner, PlanRequest, fingerprint_request

topo = topology.dgx1()
request = PlanRequest(
    topology=topo,
    demand=collectives.allgather(topo.gpus, 1),
    config=TecclConfig(chunk_bytes=25e3, num_epochs=10),
    tag="dgx1-allgather")

with Planner(executor="thread", max_workers=2) as planner:
    # 2. cold: fingerprints, misses the cache, solves, archives.
    start = time.perf_counter()
    cold = planner.plan(request)
    cold_ms = (time.perf_counter() - start) * 1e3
    print(f"cold solve    : {cold_ms:.2f} ms "
          f"(finish {cold.result.finish_time * 1e6:.2f} us, "
          f"method {cold.result.method.value})")

    # 3. warm: identical request, served from the cache.
    start = time.perf_counter()
    warm = planner.plan(request)
    warm_ms = (time.perf_counter() - start) * 1e3
    print(f"cache hit     : {warm_ms:.2f} ms "
          f"(hit={warm.cache_hit}, {cold_ms / warm_ms:.0f}x faster)")

    # 4. the fingerprint is canonical: rebuild the fabric link-by-link in a
    #    different order and the request still hits.
    rebuilt = topology.Topology("rebuilt-by-hand", num_nodes=8)
    for (src, dst), link in sorted(topo.links.items(), reverse=True):
        rebuilt.add_link(src, dst, link.capacity, link.alpha)
    equivalent = PlanRequest(
        topology=rebuilt,
        demand=collectives.allgather(list(range(8)), 1),
        config=TecclConfig(chunk_bytes=25e3, num_epochs=10),
        tag="rebuilt")
    assert fingerprint_request(
        rebuilt, equivalent.demand, equivalent.config) == warm.fingerprint
    again = planner.plan(equivalent)
    print(f"equivalent    : hit={again.cache_hit} "
          f"(fingerprint {again.fingerprint[:16]}...)")

    # 5. the operator's dashboard.
    stats = planner.stats()
    print(f"stats         : {stats['hits']} hits / {stats['misses']} misses"
          f" / {stats['solves']} solves")
