#!/usr/bin/env python3
"""Multi-tenant scheduling on a shared NDv2 fabric (§5).

Two training jobs share one two-chassis NDv2 cluster: a production job
running an ALLGATHER (priority 5) and a best-effort job running an
ALLTOALL (priority 1). TE-CCL merges the demands into one optimization —
the capacity constraints arbitrate the shared links, and the weighted
objective finishes the production tenant first.

Run:  python examples/multi_tenant_cluster.py
"""

from repro import collectives, topology
from repro.collectives import TenantDemand
from repro.core import TecclConfig
from repro.core.solve import Method, synthesize_multi_tenant
from repro.solver import SolverOptions

topo = topology.ndv2(2)
# keep the example snappy: 2 GPUs per chassis participate in each job
production_gpus = [0, 1, 8, 9]
besteffort_gpus = [2, 3, 10, 11]

tenants = [
    TenantDemand(collectives.allgather(production_gpus, 1),
                 priority=5.0, name="production"),
    TenantDemand(collectives.alltoall(besteffort_gpus, 1),
                 priority=1.0, name="best-effort"),
]

config = TecclConfig(chunk_bytes=1e6, num_epochs=24,
                     solver=SolverOptions(mip_gap=0.1, time_limit=120))
result = synthesize_multi_tenant(topo, tenants, config, method=Method.MILP)

print(f"fabric          : {topo!r}")
print(f"merged schedule : {result.schedule!r}")
print(f"overall finish  : {result.finish_time * 1e6:.1f} us")

# per-tenant completion: the last delivery epoch of each tenant's chunks
outcome = result.outcome
by_tenant = {"production": 0.0, "best-effort": 0.0}
for (s, c, d), epoch in outcome.delivered_epoch.items():
    tenant = "production" if s in production_gpus else "best-effort"
    finish = (epoch + 1) * result.plan.tau
    by_tenant[tenant] = max(by_tenant[tenant], finish)
for tenant, finish in by_tenant.items():
    print(f"  {tenant:<12}: done by {finish * 1e6:.1f} us")
if by_tenant["production"] <= by_tenant["best-effort"]:
    print("priority honoured: production finishes no later than best-effort")
