#!/usr/bin/env python3
"""Adapting a collective to link failures (§1: "This new mode of thinking
provides an opportunity to improve other aspects of machine learning
collectives such as topology design and adapting to failures").

A DGX1 loses one NVLink pair mid-training. Ring-based schedules (NCCL-style)
break outright — the ring through the dead link no longer exists — while
TE-CCL just re-plans on the degraded fabric and routes around the failure at
a modest bandwidth cost. The re-plan goes through ``replan``: the healthy
schedule seeds the re-solve (its achieved finish time sizes the new model,
far tighter than the cold horizon bound) and the result is replayed through
the conformance oracle before it is trusted.

Run:  python examples/failure_adaptation.py
"""

from dataclasses import replace

from repro import collectives, topology
from repro.baselines import find_ring
from repro.core import TecclConfig, synthesize
from repro.errors import TopologyError
from repro.failures import replan
from repro.simulate import verify
from repro.topology import without_links

healthy = topology.dgx1()
demand = collectives.allgather(healthy.gpus, 1)
config = TecclConfig(chunk_bytes=25e3, num_epochs=14)

baseline = synthesize(healthy, demand, config)
print(f"healthy fabric : finish {baseline.finish_time * 1e6:6.2f} us "
      f"({baseline.schedule.num_sends} sends)")

# kill three of the four cross-quad NVLink pairs: only 3<->7 still bridges
# the quads, so no GPU-only ring can exist any more
dead = [(0, 4), (4, 0), (1, 5), (5, 1), (2, 6), (6, 2)]
degraded = without_links(healthy, dead, name="DGX1-deg")
print(f"failure        : links 0-4, 1-5, 2-6 down "
      f"({len(degraded.links)} of {len(healthy.links)} links left)")

ring = find_ring(healthy)
try:
    find_ring(degraded)
    print("ring baseline  : still finds a ring (failure missed the ring)")
except TopologyError:
    print(f"ring baseline  : ring {ring} is broken -> NCCL-style schedule "
          "unusable")

# replan seeds the degraded-fabric solve from the healthy schedule and
# gates the result on a conformance replay — warm, and vetted. The fixed
# horizon is dropped so the warm hint sizes the new model.
adapted = replan(baseline, degraded, demand,
                 replace(config, num_epochs=None))
verify(adapted.schedule, degraded, demand, adapted.plan)
slowdown = 100 * (adapted.finish_time - baseline.finish_time) \
    / baseline.finish_time
print(f"re-planned     : finish {adapted.finish_time * 1e6:6.2f} us "
      f"({adapted.schedule.num_sends} sends, {slowdown:+.1f}% vs healthy, "
      f"K={adapted.plan.num_epochs} seeded from the healthy solve)")
print("schedule validated on the degraded fabric")
