#!/usr/bin/env python3
"""Durable fleet control: crash the daemon, recover, hand off a generation.

The control plane's state — active schedules, pending probes, cool-down
clocks — survives its process. Every lifecycle transition is appended to a
write-ahead log *before* it is applied, so this script can simulate the
worst case: a daemon that dies mid-flight, a fresh one that rehydrates
from the log (re-vetting every recovered schedule through the conformance
oracle before re-activation), and finally a generation takeover that
fences the old daemon so it can never activate a schedule again.

Run:  python examples/fleet_recovery.py
"""

import tempfile
from pathlib import Path

from repro import collectives, topology
from repro.core import TecclConfig
from repro.errors import FleetError
from repro.fleet import (AdaptationController, FabricEstimator, FleetJob,
                         LinkEvent, SyntheticTelemetry, WriteAheadLog)
from repro.service import Planner

topo = topology.ring(8, capacity=1.0)
demand = collectives.alltoall(topo.gpus, 1)
config = TecclConfig(chunk_bytes=1.0)
walpath = Path(tempfile.mkdtemp()) / "fleet.wal"

# ----------------------------------------------------------------------
# generation 1: admit a job, adapt to congestion, then "crash"
# ----------------------------------------------------------------------
source = SyntheticTelemetry(
    topo, events=[LinkEvent(at=2.0, link=(0, 1), factor=0.4)])
wal = WriteAheadLog(walpath)
generation = wal.attach_lease()
print(f"generation {generation}  : lease acquired, journaling to "
      f"{walpath.name}")

with Planner(executor="inline") as planner:
    daemon = AdaptationController(
        topo, source, planner, wal=wal,
        estimator=FabricEstimator(topo, smoothing=1.0, min_samples=1))
    daemon.add_job(FleetJob(name="alltoall", demand=demand, config=config))
    for _ in range(4):
        daemon.step()
    before = daemon.registry.active("alltoall")
    print(f"generation {generation}  : alltoall active at "
          f"{before.result.finish_time:.2f} s "
          f"({daemon.stats()['replans']} replan after congestion)")
# no graceful shutdown: the WAL is simply abandoned, as a SIGKILL would

# ----------------------------------------------------------------------
# generation 2: take over the lease and recover from the log
# ----------------------------------------------------------------------
source2 = SyntheticTelemetry(topo, events=[])
wal2 = WriteAheadLog(walpath)
generation = wal2.attach_lease(takeover=True)
with Planner(executor="inline") as planner:
    daemon2 = AdaptationController(
        topo, source2, planner, wal=wal2,
        estimator=FabricEstimator(topo, smoothing=1.0, min_samples=1))
    provenance = daemon2.recover()
    after = daemon2.registry.active("alltoall")
    print(f"generation {generation}  : recovered "
          f"{provenance['entries_recovered']} schedule(s), "
          f"{provenance['steps_completed']} steps already committed, "
          f"{len(provenance['entries_dropped'])} dropped")
    print(f"generation {generation}  : recovered schedule re-vetted "
          f"through the conformance oracle "
          f"(conformance_ok={after.conformance_ok})")
    assert after.result.finish_time == before.result.finish_time
    print(f"generation {generation}  : finish time matches the pre-crash "
          f"incumbent exactly: {after.result.finish_time:.2f} s")

    # the estimator's flap-suppression clock resumed too
    estimate = daemon2.estimator.estimate((0, 1))
    print(f"generation {generation}  : link 0->1 still "
          f"{estimate.health.value}, cool-down clock at "
          f"t={estimate.last_transition:g}")

    # --------------------------------------------------------------
    # generation 3 fences generation 2: the old daemon cannot activate
    # --------------------------------------------------------------
    wal3 = WriteAheadLog(walpath)
    wal3.attach_lease(takeover=True)
    try:
        daemon2.step()
        raise SystemExit("the fenced generation was allowed to write!")
    except FleetError:
        print("generation 3  : fenced generation 2; its next durable "
              "write was refused, so it can never activate again")
    wal3.close()
wal2.close()
print("durable control plane: ok")
