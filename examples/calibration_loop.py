#!/usr/bin/env python3
"""Closing the α–β loop: probe → fit → synthesize → validate.

The paper takes α and β as inputs and "does not provide an independent
method for computing these values" (§5). This example is that method: probe
every link of an NDv2 chassis with a ladder of transfer sizes (the probe is
synthetic here — on real hardware it would be a ping-pong benchmark), fit
``t = α + β·S`` per link, and synthesize on the *fitted* fabric. The
schedule is then replayed on the true fabric to show the calibration error
does not leak into schedule quality.

Run:  python examples/calibration_loop.py
"""

from repro import collectives, topology
from repro.analysis import (calibrate_topology, calibration_error,
                            apply_calibration)
from repro.core import TecclConfig, solve_milp
from repro.simulate import run_events
from repro.solver import SolverOptions

truth = topology.ndv2(1)
print(f"fabric        : {truth!r}")

# 1. probe with 3% measurement jitter and fit every link
fits = calibrate_topology(truth, noise=0.03, seed=42)
errors = calibration_error(truth, fits)
worst_cap = max(cap for _, cap in errors.values())
mean_r2 = sum(f.r_squared for f in fits.values()) / len(fits)
print(f"calibration   : {len(fits)} links fitted, "
      f"mean R^2 = {mean_r2:.4f}, worst capacity error = "
      f"{100 * worst_cap:.1f}%")

# 2. synthesize on the fitted fabric
fitted = apply_calibration(truth, fits)
demand = collectives.allgather(truth.gpus, chunks_per_gpu=1)
config = TecclConfig(chunk_bytes=25e3, num_epochs=10,
                     solver=SolverOptions(mip_gap=0.05))
from_fit = solve_milp(fitted, demand, config)
from_truth = solve_milp(truth, demand, config)

# 3. replay both schedules on the TRUE fabric — the honest comparison
replay_fit = run_events(from_fit.schedule, truth, demand).finish_time
replay_truth = run_events(from_truth.schedule, truth, demand).finish_time
print(f"schedule from fitted fabric : {replay_fit * 1e6:.2f} us on truth")
print(f"schedule from true fabric   : {replay_truth * 1e6:.2f} us on truth")
print(f"calibration penalty         : "
      f"{100 * (replay_fit / replay_truth - 1):+.2f}%")
