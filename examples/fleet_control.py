#!/usr/bin/env python3
"""The fleet control plane closing the loop: telemetry → estimate → replan.

A ring of 8 GPUs runs a recurring alltoall. Mid-stream, cross-tenant
congestion drags one link to 40% of its declared bandwidth. Nobody calls
``replan`` — the daemon does: synthetic telemetry reports the slowdown, the
EWMA estimator (with hysteresis, so one noisy probe cannot thrash the
planner) reclassifies the link as degraded, the cost gate decides the
predicted finish-time regression is worth a re-solve, and the controller
warm-replans through the planner service. The adapted schedule is replayed
through the conformance oracle *before* it replaces the incumbent — the
registry refuses to activate anything else.

Run:  python examples/fleet_control.py
"""

from repro import collectives, topology
from repro.core import TecclConfig
from repro.fleet import (AdaptationController, FleetJob, LinkEvent,
                         SyntheticTelemetry)
from repro.service import Planner

topo = topology.ring(8, capacity=1.0)
demand = collectives.alltoall(topo.gpus, 1)
config = TecclConfig(chunk_bytes=1.0)

# congestion arrives at t=2 on link 0->1 and stays
source = SyntheticTelemetry(
    topo, events=[LinkEvent(at=2.0, link=(0, 1), factor=0.4)])

with Planner(executor="inline") as planner:
    daemon = AdaptationController(topo, source, planner)
    entry = daemon.add_job(FleetJob(name="alltoall", demand=demand,
                                    config=config))
    print(f"admitted       : alltoall, finish "
          f"{entry.result.finish_time:.2f} s per iteration "
          f"(method {entry.result.method.value})")
    print("degradation    : link 0->1 drops to 40% capacity at t=2")

    for step in range(6):
        for decision in daemon.step():
            print(f"daemon         : {decision}")

    stats = daemon.stats()
    active = daemon.registry.active("alltoall")
    estimate = daemon.estimator.estimate((0, 1))
    planner_stats = planner.stats()

print(f"estimator      : link 0->1 is {estimate.health.value} "
      f"(measured at {100 * estimate.factor:.0f}% of declared)")
print(f"adapted        : finish {active.result.finish_time:.2f} s on the "
      f"live fabric, conformance-vetted before activation")
print(f"bookkeeping    : {stats['transitions']} transition(s), "
      f"{stats['replans']} replan(s), {stats['rollbacks']} rollback(s), "
      f"{planner_stats['replans']} warm-seeded solve(s)")
assert stats["rollbacks"] == 0 and active.conformance_ok is True
print("zero non-conformant schedules activated: ok")
