#!/usr/bin/env python3
"""Tuning epoch duration and chunk size (§5 "Important Considerations").

The MILP's schedule quality and solve time both hinge on the epoch grid:
fastest-link epochs give finer schedules but more variables; the epoch
multiplier (Table 4's "EM") coarsens the grid to trade quality for speed.
This example sweeps both knobs on a two-chassis NDv2 ALLGATHER and prints
the trade-off table.

Run:  python examples/epoch_tuning.py
"""

from repro import collectives, topology
from repro.analysis import Table, human_bytes
from repro.core import TecclConfig
from repro.core.config import EpochMode
from repro.core.solve import Method, synthesize
from repro.solver import SolverOptions

topo = topology.ndv2(2)
gpus = topo.gpus[:6]  # a slice keeps the sweep interactive
demand = collectives.allgather(gpus, 1)

table = Table("Epoch granularity on NDv2 (paper: Figure 8 / Table 4's EM)",
              columns=["tau us", "K", "solve s", "finish us"])

for label, mode, em, epochs in [
        ("fastest, EM=1", EpochMode.FASTEST_LINK, 1.0, 28),
        ("fastest, EM=2", EpochMode.FASTEST_LINK, 2.0, 14),
        ("slowest, EM=1", EpochMode.SLOWEST_LINK, 1.0, 8),
]:
    config = TecclConfig(chunk_bytes=1e6, num_epochs=epochs,
                         epoch_mode=mode, epoch_multiplier=em,
                         solver=SolverOptions(mip_gap=0.1, time_limit=120))
    result = synthesize(topo, demand, config, method=Method.MILP)
    table.add(label,
              **{"tau us": result.plan.tau * 1e6,
                 "K": result.plan.num_epochs,
                 "solve s": result.solve_time,
                 "finish us": result.finish_time * 1e6})

table.show()

print("Chunk-size sweep (1 MB output buffer, chunks per GPU varied):")
for chunks in (1, 2, 4):
    per_gpu = 1e6 / len(gpus)
    config = TecclConfig(chunk_bytes=per_gpu / chunks, num_epochs=30,
                         solver=SolverOptions(mip_gap=0.1, time_limit=120))
    demand_c = collectives.allgather(gpus, chunks)
    result = synthesize(topo, demand_c, config, method=Method.MILP)
    print(f"  {chunks} chunk(s) of {human_bytes(per_gpu / chunks):<6}"
          f" finish {result.finish_time * 1e6:8.2f} us"
          f"   solve {result.solve_time:6.2f} s")
