#!/usr/bin/env python3
"""Scheduling a real training step: the paper's motivating jobs, end to end.

§1 motivates TE-CCL with concrete jobs — BERT (11% GPU idle) and DeepLight
(63% idle). This example builds those jobs' actual communication from model
arithmetic (`repro.collectives.workloads`), synthesizes each distinct
collective on a DGX1, and totals the step's communication time against the
textbook ring — the quantity that idleness percentage comes from.

Run:  python examples/training_job_scheduling.py
"""

from repro import topology
from repro.baselines import ring_allgather_time
from repro.collectives import dlrm_like_job, moe_job
from repro.core import TecclConfig, synthesize
from repro.solver import SolverOptions

topo = topology.dgx1()

for job in (dlrm_like_job(topo.gpus), moe_job(topo.gpus, skew=0.5)):
    print(f"== {job.name}: {len(job.calls)} collectives, "
          f"{job.total_bytes / 1e6:.1f} MB per step ==")
    total = 0.0
    for call in job.calls:
        config = TecclConfig(chunk_bytes=call.chunk_bytes,
                             solver=SolverOptions(mip_gap=0.2,
                                                  time_limit=30))
        result = synthesize(topo, call.demand, config)
        total += result.finish_time
        print(f"  {call.name:<14} {call.phase:<9} "
              f"{call.total_bytes / 1e6:>8.2f} MB  "
              f"{result.method.value:<5} "
              f"{result.finish_time * 1e6:>9.2f} us")
    print(f"  {'step total':<14} {'':<9} {'':>11}  "
          f"{'':<5} {total * 1e6:>9.2f} us\n")

# reference point: what one full-buffer ring ALLGATHER would cost
ring = ring_allgather_time(topo, 1e6)
print(f"(reference: 1 MB-chunk ring ALLGATHER on this box = "
      f"{ring * 1e6:.2f} us)")
