#!/usr/bin/env python3
"""ALLREDUCE as a synthesized two-phase composition (RS + AG).

The paper handles ALLREDUCE "via its constituent collectives": a
REDUCESCATTER (ALLTOALL-shaped, routed to the scalable LP) followed by an
ALLGATHER (multicast, routed to the MILP), with the reduction arithmetic
as the barrier between them. This example synthesizes both phases on a
DGX1 and compares against the closed-form ring ALLREDUCE.

Run:  python examples/allreduce_composition.py
"""

from repro import topology
from repro.collectives import ring_allreduce_time, synthesize_allreduce
from repro.core import TecclConfig
from repro.solver import SolverOptions

topo = topology.dgx1()
config = TecclConfig(chunk_bytes=1e6,
                     solver=SolverOptions(mip_gap=0.1, time_limit=30))

out = synthesize_allreduce(topo, config, chunks_per_pair=1)
print(f"fabric         : {topo!r}")
print(f"phase 1 (RS)   : {out.reduce_scatter.method.value}, "
      f"{out.reduce_scatter.finish_time * 1e6:.2f} us")
print(f"phase 2 (AG)   : {out.allgather.method.value}, "
      f"{out.allgather.finish_time * 1e6:.2f} us")
print(f"total          : {out.finish_time * 1e6:.2f} us "
      f"(solver: {out.solve_time:.2f} s)")

input_bytes = (topo.num_gpus - 1) * config.chunk_bytes
bw = out.bus_bandwidth(topo.num_gpus, input_bytes)
print(f"bus bandwidth  : {bw / 1e9:.2f} GB/s")

ring_time = ring_allreduce_time(topo, config.chunk_bytes)
print(f"ring allreduce : {ring_time * 1e6:.2f} us (closed form)")
print(f"vs ring        : {ring_time / out.finish_time:.2f}x")
