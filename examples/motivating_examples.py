#!/usr/bin/env python3
"""Figure 1, executed: the three modelling gaps TE-CCL closes.

(a) α-delay  — the max-path-delay estimate traditional TE uses is wrong;
(b) store-and-forward — buffers widen the solution space (solver speed),
    without changing the optimum;
(c) copy     — multicast demands finish 2× faster when the network may
    duplicate chunks.

Run:  python examples/motivating_examples.py
"""

from repro import collectives, topology
from repro.core import TecclConfig, solve_lp, solve_milp
from repro.simulate import verify


def figure_1a() -> None:
    print("— Figure 1(a): modelling the α delay —")
    topo = topology.alpha_motivation_line()
    # s1 (node 0) and s2 (node 5) each send one 1 GB chunk to d (node 4)
    demand = collectives.Demand.from_triples([(0, 0, 4), (5, 0, 4)])
    out = solve_milp(topo, demand, TecclConfig(chunk_bytes=1e9,
                                               num_epochs=12))
    report = verify(out.schedule, topo, demand, out.plan)
    alpha1 = beta = 1.0
    alpha2 = 2 * beta + 3 * alpha1
    print(f"  traditional TE estimate : alpha2 + 4 beta = {alpha2 + 4:.1f} s")
    print(f"  correct estimate        : alpha2 + 3 beta = {alpha2 + 3:.1f} s")
    print(f"  TE-CCL schedule finishes: {report.finish_time:.1f} s\n")


def figure_1b() -> None:
    print("— Figure 1(b): store-and-forward —")
    topo = topology.store_and_forward_star()
    demand = collectives.gather(4, [0, 1, 2], 1)  # 3 sources -> d via h
    cfg = TecclConfig(chunk_bytes=1.0, num_epochs=6)
    with_buffers = solve_milp(topo, demand, cfg)
    without = solve_milp(topo, demand, TecclConfig(
        chunk_bytes=1.0, num_epochs=6, store_and_forward=False))
    print(f"  with buffers   : finish {with_buffers.finish_time:.0f} s "
          f"(solver {with_buffers.solve_time * 1e3:.1f} ms)")
    print(f"  without buffers: finish {without.finish_time:.0f} s "
          f"(solver {without.solve_time * 1e3:.1f} ms)")
    print("  -> same optimum; buffers only change the search space\n")


def figure_1c() -> None:
    print("— Figure 1(c): in-network copy —")
    topo = topology.copy_star()
    demand = collectives.broadcast(0, [2, 3, 4], 1)
    cfg = TecclConfig(chunk_bytes=1.0, num_epochs=8)
    with_copy = solve_milp(topo, demand, cfg)
    no_copy = solve_lp(topo, demand, cfg, aggregate=False)
    print(f"  with copy   : {with_copy.finish_time:.0f} s "
          f"({with_copy.schedule.num_sends} sends)")
    print(f"  without copy: {no_copy.finish_time:.0f} s "
          f"({no_copy.schedule.total_bytes():.0f} bytes on the wire)")
    print("  -> copy halves the broadcast, exactly as the figure claims\n")


if __name__ == "__main__":
    figure_1a()
    figure_1b()
    figure_1c()
