#!/usr/bin/env python3
"""Observability: trace one synthesize call end-to-end.

Covers the full tracing loop:

1. configure a JSONL trace sink (one line per span),
2. synthesize a schedule — every phase (model families, solver backend,
   schedule extraction) records a span under the ``synthesize`` root,
3. summarize the trace: per-phase totals, self time, and *leaf
   coverage* — the share of the root's wall time the instrumented
   phases account for,
4. export a Chrome trace-event file, loadable as a flame chart in
   chrome://tracing or https://ui.perfetto.dev,
5. dump the always-on flight recorder — the bounded ring of recent
   coarse spans and decision events that needs no configuration at
   all — and pretty-print the snapshot.

Run:  python examples/observability.py
"""

import tempfile
from pathlib import Path

from repro import collectives, obs, topology
from repro.core import TecclConfig
from repro.core.solve import synthesize

workdir = Path(tempfile.mkdtemp(prefix="teccl-obs-"))
trace_path = workdir / "synthesize.trace.jsonl"

# 1. turn tracing on for this process (span() is a no-op without this)
obs.configure(trace_path)

# 2. a traced synthesis: DGX1 ALLGATHER through the MILP
topo = topology.dgx1()
demand = collectives.allgather(topo.gpus, chunks_per_gpu=1)
result = synthesize(topo, demand, TecclConfig(chunk_bytes=1e6))
obs.disable()
print(f"synthesized   : {result.method.value}, "
      f"finish {result.finish_time * 1e6:.2f} us")

# 3. summarize: which phases ate the wall clock?
events = obs.read_events(trace_path)
summary = obs.summarize(events)
top = list(summary["phases"].items())[:4]
for name, entry in top:
    print(f"phase         : {name:<28} {entry['total'] * 1e3:8.2f} ms "
          f"(self {entry['self'] * 1e3:.2f} ms)")
print(f"spans         : {summary['num_spans']}")
print(f"leaf coverage : {100 * summary['coverage']:.1f}% of the "
      "synthesize root is accounted for by instrumented phases")

# 4. a Perfetto-loadable flame chart
chrome_path = obs.write_chrome_trace(events, workdir / "synthesize.json")
n_events = len(obs.chrome_trace(events)["traceEvents"])
print(f"chrome trace  : {chrome_path} ({n_events} events; load in "
      "https://ui.perfetto.dev)")

# 5. the flight recorder rode along the whole time: coarse spans
# (synthesize, extraction) and decision events land in a bounded ring
# with zero configuration — the post-incident "what just happened"
# buffer. Dump it to JSONL and render the snapshot.
dump_path = obs.get_recorder().dump(workdir / "flight.jsonl")
flight = obs.read_dump(dump_path)  # header record first, then the ring
print(f"flight dump   : {dump_path} ({len(flight) - 1} ring events)")
print(obs.format_flight(flight, limit=6))
