#!/usr/bin/env python3
"""Congestion sensitivity: the paper's §6 "unexplored avenue", explored.

A TE-CCL schedule and the textbook ring schedule are synthesized against a
clean 8-GPU ring, then both are executed — routes frozen, as a real MSCCL
program would be — across 30 perturbed fabrics where a quarter of the links
run at half capacity and everything jitters by 10%. The question the paper
leaves open: does the optimizer's advantage survive congestion it never
planned for?

Run:  python examples/congestion_study.py
"""

from repro import topology
from repro.baselines import ring_allgather, ring_demand
from repro.core import TecclConfig, solve_milp
from repro.simulate import PerturbationModel, congestion_robustness
from repro.solver import SolverOptions

topo = topology.ring(8, capacity=25e9, alpha=0.7e-6)
demand = ring_demand(topo)
config = TecclConfig(chunk_bytes=1e6,
                     solver=SolverOptions(mip_gap=0.1, time_limit=30))

teccl = solve_milp(topo, demand, config).schedule
ring_sched = ring_allgather(topo, TecclConfig(chunk_bytes=1e6))

model = PerturbationModel(beta_jitter=0.10, alpha_jitter=0.10,
                          congested_fraction=0.25, congestion_factor=2.0)
print(f"fabric        : {topo!r}")
print(f"perturbation  : 25% links at half capacity, 10% jitter, 30 trials\n")
print(f"{'scheduler':<10} {'clean us':>10} {'mean us':>10} {'p95 us':>10} "
      f"{'slowdown':>9}")
results = {}
for label, schedule in (("te-ccl", teccl), ("ring", ring_sched)):
    report = congestion_robustness(schedule, topo, demand, model=model,
                                   trials=30, seed=1)
    results[label] = report
    print(f"{label:<10} {report.baseline * 1e6:>10.2f} "
          f"{report.mean * 1e6:>10.2f} {report.p95 * 1e6:>10.2f} "
          f"{report.mean_slowdown:>8.2f}x")

advantage_clean = results["ring"].baseline / results["te-ccl"].baseline
advantage_mean = results["ring"].mean / results["te-ccl"].mean
print(f"\nTE-CCL advantage: {advantage_clean:.2f}x clean, "
      f"{advantage_mean:.2f}x under congestion")
