#!/usr/bin/env python3
"""Lint: no stray ``print()`` calls in library code under ``src/``.

Library output belongs on the tracer/metrics registry (``repro.obs``) or
behind an explicit presentation surface — stray prints corrupt machine
consumers of the CLI (``--json`` modes, status files piped to tools).

Walks the AST (so ``print(...)`` inside docstrings and string literals
does not false-positive) and flags every call whose function is the bare
name ``print``.  Two escape hatches:

* ``ALLOWED_FILES`` — whole files whose job *is* terminal output
  (the CLI front-end).
* a trailing ``# lint: allow-print`` comment on the offending line, for
  deliberate presentation helpers.

Exit status 0 when clean, 1 with a findings listing otherwise.
"""

import ast
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# Whole files whose purpose is terminal output.
ALLOWED_FILES = frozenset({
    "repro/cli.py",
})

WAIVER = "# lint: allow-print"


def find_prints(path: pathlib.Path) -> list[tuple[int, str]]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [(exc.lineno or 0, f"syntax error: {exc.msg}")]
    lines = source.splitlines()
    findings = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"):
            line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
            if WAIVER in line:
                continue
            findings.append((node.lineno, line.strip()))
    return findings


def main() -> int:
    failures = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if rel in ALLOWED_FILES:
            continue
        for lineno, text in find_prints(path):
            failures.append(f"{path.relative_to(REPO)}:{lineno}: {text}")
    if failures:
        print(f"{len(failures)} stray print() call(s) in library code "
              "(route output through repro.obs, the CLI, or add "
              f"'{WAIVER}'):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"print-lint: clean ({len(ALLOWED_FILES)} file(s) allowlisted)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
