#!/usr/bin/env python3
"""Aggregate ``benchmarks/results/BENCH_*.json`` envelopes into one table.

Every benchmark publishes a versioned envelope (``benchmarks/_common.py``:
schema_version / bench / created_unix / git_rev / host / phases / data).
This tool folds whatever envelopes are present into a single *trajectory*
view — one row per benchmark, its phase timings flattened alongside —
so a weekly CI run (or a developer after an optimisation PR) can see the
whole suite's perf posture at a glance and diff it across revisions.

Usage::

    python tools/bench_trajectory.py [--results DIR] [--json FILE]

Exit status 0 when at least one envelope parsed, 1 when the results
directory holds none (an empty trajectory usually means the bench lane
never ran — fail loudly rather than upload an empty artifact).
"""

import argparse
import datetime
import glob
import json
import os
import sys

#: envelope fields every row reports
_ROW_FIELDS = ("bench", "git_rev", "created", "phases")


def load_envelopes(results_dir: str) -> list[dict]:
    """Parse every ``BENCH_*.json`` envelope under *results_dir*.

    Malformed or pre-envelope files are skipped with a note on stderr —
    the trajectory must not go down because one lane wrote garbage.
    """
    envelopes = []
    for path in sorted(glob.glob(os.path.join(results_dir, "BENCH_*.json"))):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipped {path}: {exc}", file=sys.stderr)
            continue
        if not isinstance(doc, dict) or "bench" not in doc:
            print(f"skipped {path}: not a bench envelope", file=sys.stderr)
            continue
        envelopes.append(doc)
    return envelopes


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def trajectory_rows(envelopes: list[dict]) -> list[dict]:
    """One row per envelope: identity, age, and flattened phase timings."""
    rows = []
    for env in envelopes:
        created = env.get("created_unix")
        stamp = "?"
        if isinstance(created, (int, float)):
            stamp = datetime.datetime.fromtimestamp(
                created, tz=datetime.timezone.utc).strftime("%Y-%m-%d")
        phases = env.get("phases") or {}
        rows.append({
            "bench": str(env.get("bench", "?")),
            "git_rev": str(env.get("git_rev", "?"))[:12],
            "created": stamp,
            "phases": {name: float(dur) for name, dur in phases.items()
                       if isinstance(dur, (int, float))},
        })
    return rows


def render(rows: list[dict]) -> str:
    lines = [f"{'bench':<32} {'rev':<13} {'date':<11} phases"]
    for row in rows:
        phases = "  ".join(
            f"{name}={_fmt_seconds(dur)}"
            for name, dur in sorted(row["phases"].items())) or "-"
        lines.append(f"{row['bench']:<32} {row['git_rev']:<13} "
                     f"{row['created']:<11} {phases}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="aggregate bench envelopes into one trajectory table")
    parser.add_argument(
        "--results",
        default=os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "benchmarks", "results"),
        help="directory holding BENCH_*.json (default: repo's "
             "benchmarks/results)")
    parser.add_argument("--json", dest="json_out", metavar="FILE",
                        default=None,
                        help="also write the rows as a JSON document")
    args = parser.parse_args(argv)

    envelopes = load_envelopes(args.results)
    if not envelopes:
        print(f"no bench envelopes under {args.results}", file=sys.stderr)
        return 1
    rows = trajectory_rows(envelopes)
    print(render(rows))
    if args.json_out:
        doc = {"trajectory_version": 1, "rows": rows}
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2)
        print(f"wrote {args.json_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
