"""Lowering schedules to MSCCL-style XML (and back), plus a runtime model.

:mod:`repro.msccl.export` turns schedules into MSCCL algorithm documents;
:mod:`repro.msccl.interpreter` executes those documents the way the MSCCL
runtime would (threadblocks, FIFO channels, dependencies), independently
validating the whole synthesis → lowering pipeline.
"""

from repro.msccl.export import (collapse_switch_hops, parse_msccl_xml,
                                roundtrip_schedule, schedule_from_msccl_xml,
                                to_msccl_xml)
from repro.msccl.interpreter import (Instruction, InterpretationReport,
                                     Program, interpret, load_program,
                                     verify_program)

__all__ = ["to_msccl_xml", "parse_msccl_xml", "schedule_from_msccl_xml",
           "collapse_switch_hops", "roundtrip_schedule",
           "Program", "Instruction", "InterpretationReport",
           "load_program", "interpret", "verify_program"]
