"""An MSCCL program interpreter: the runtime half of the paper's pipeline.

The paper lowers TE-CCL schedules into MSCCL programs and lets the MSCCL
runtime execute them on hardware (§6 "Platform"). This module is a model of
that runtime: it executes an exported XML document *as a program* — per-GPU
threadblocks stepping through send/receive instructions, FIFO channel
matching, cross-threadblock dependencies — rather than replaying the
schedule's epoch grid. That makes it an independent validation of the
lowering itself: a bug in threadblock assignment, step ordering, or
dependency emission shows up here as a deadlock or a missing chunk even
when the source schedule was perfectly valid.

Execution semantics (mirroring the MSCCL runtime):

* steps within one threadblock execute strictly in order;
* a send fires once its threadblock reaches it, its declared dependency
  (``depid``/``deps``) has fired, and the chunk is locally present;
* each connection (sender GPU → receiver GPU) is a FIFO: the k-th receive
  on it consumes the k-th send, and transfers on one connection serialize;
* a receive fires once its threadblock reaches it and its matched send's
  data has arrived.

Timing uses the α–β model over the physical path between the peers (direct
link, or the shortest path when the export collapsed a switch relay).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from repro.baselines.shortest_path import shortest_path
from repro.collectives.demand import Demand
from repro.errors import ExportError, ScheduleError
from repro.topology.topology import Topology


@dataclass(frozen=True)
class Instruction:
    """One decoded MSCCL step."""

    gpu: int
    tb: int
    index: int
    kind: str  # "s" or "r"
    peer: int
    source: int
    chunk: int
    dep_tb: int
    dep_step: int

    @property
    def key(self) -> tuple[int, int, int]:
        return (self.gpu, self.tb, self.index)


@dataclass
class Program:
    """A decoded MSCCL program: instructions grouped per threadblock."""

    name: str
    collective: str
    blocks: dict[tuple[int, int], list[Instruction]]

    @property
    def gpus(self) -> list[int]:
        return sorted({gpu for gpu, _ in self.blocks})

    @property
    def num_instructions(self) -> int:
        return sum(len(steps) for steps in self.blocks.values())

    def instructions(self) -> list[Instruction]:
        return [ins for _, steps in sorted(self.blocks.items())
                for ins in steps]


def load_program(document: str) -> Program:
    """Decode an MSCCL XML document into an executable :class:`Program`.

    Only the runtime-relevant attributes are read (the ``x_*`` timing
    extensions are deliberately ignored — the interpreter must not peek at
    the schedule it is supposed to validate).
    """
    root = ET.fromstring(document)
    if root.tag != "algo":
        raise ExportError(f"expected <algo>, got <{root.tag}>")
    blocks: dict[tuple[int, int], list[Instruction]] = {}
    for gpu_el in root.findall("gpu"):
        gpu = int(gpu_el.get("id"))
        for tb_el in gpu_el.findall("tb"):
            tb = int(tb_el.get("id"))
            send_peer = int(tb_el.get("send", "-1"))
            recv_peer = int(tb_el.get("recv", "-1"))
            steps: list[Instruction] = []
            for st in sorted(tb_el.findall("step"),
                             key=lambda e: int(e.get("s"))):
                kind = st.get("type")
                if kind not in ("s", "r"):
                    raise ExportError(f"unsupported step type {kind!r}")
                peer = send_peer if kind == "s" else recv_peer
                if peer < 0:
                    raise ExportError(
                        f"step of type {kind!r} in tb {tb} of gpu {gpu} "
                        "has no matching peer")
                source = st.get("x_source")
                chunk = st.get("x_chunk")
                if source is None or chunk is None:
                    raise ExportError(
                        "step lacks chunk identity attributes; only "
                        "documents exported by repro.msccl are executable")
                steps.append(Instruction(
                    gpu=gpu, tb=tb, index=int(st.get("s")), kind=kind,
                    peer=peer, source=int(source), chunk=int(chunk),
                    dep_tb=int(st.get("depid", "-1")),
                    dep_step=int(st.get("deps", "-1"))))
            blocks[(gpu, tb)] = steps
    if not blocks:
        raise ExportError("document has no threadblocks")
    return Program(name=root.get("name", "msccl"),
                   collective=root.get("coll", "custom"), blocks=blocks)


@dataclass
class InterpretationReport:
    """What one program execution produced."""

    finish_time: float
    fired: int
    total: int
    #: per GPU, the set of (source, chunk) pairs it holds at the end
    holdings: dict[int, set[tuple[int, int]]]
    #: instructions that could not fire (non-empty means deadlock)
    stuck: list[Instruction] = field(default_factory=list)

    @property
    def deadlocked(self) -> bool:
        return bool(self.stuck)

    def delivered(self, source: int, chunk: int, dst: int) -> bool:
        return (source, chunk) in self.holdings.get(dst, set())


class _Connection:
    """FIFO channel between one ordered GPU pair.

    Entries are ``(arrival_time, source, chunk)``; the chunk identity lets
    the receiver detect a mis-ordered lowering (k-th receive expecting a
    different chunk than the k-th send shipped).
    """

    def __init__(self, alpha: float, beta_time: float):
        self.alpha = alpha
        self.beta_time = beta_time
        self.free_at = 0.0
        self.sent: list[tuple[float, int, int]] = []
        self.consumed = 0

    def transmit(self, ready: float, source: int, chunk: int) -> float:
        """Serialize a send; returns its data arrival time."""
        start = max(ready, self.free_at)
        self.free_at = start + self.beta_time  # next send may pipeline β
        arrival = start + self.beta_time + self.alpha
        self.sent.append((arrival, source, chunk))
        return arrival

    def head(self) -> tuple[float, int, int] | None:
        if self.consumed >= len(self.sent):
            return None
        return self.sent[self.consumed]

    def consume(self) -> None:
        self.consumed += 1


def _path_costs(topology: Topology, src: int, dst: int,
                chunk_bytes: float) -> tuple[float, float]:
    """(α, β·S) along the physical route between two ranks."""
    if topology.has_link(src, dst):
        link = topology.link(src, dst)
        return link.alpha, chunk_bytes / link.capacity
    path = shortest_path(topology, src, dst, chunk_bytes)
    alpha = sum(topology.link(a, b).alpha for a, b in zip(path, path[1:]))
    beta_time = sum(chunk_bytes / topology.link(a, b).capacity
                    for a, b in zip(path, path[1:]))
    return alpha, beta_time


def interpret(program: Program, topology: Topology, demand: Demand, *,
              chunk_bytes: float) -> InterpretationReport:
    """Execute the program to completion (or deadlock).

    Fixpoint loop: repeatedly fire every enabled instruction, tracking per-
    threadblock progress, per-connection FIFOs, chunk availability times
    and the completion time of every instruction. Terminates because each
    pass either fires at least one instruction or stops.
    """
    holdings: dict[int, set[tuple[int, int]]] = {
        g: set() for g in program.gpus}
    available: dict[tuple[int, int, int], float] = {}
    for s in demand.sources:
        if s in holdings:
            for c in demand.chunks_of(s):
                holdings[s].add((s, c))
                available[(s, s, c)] = 0.0

    connections: dict[tuple[int, int], _Connection] = {}

    def connection(src: int, dst: int) -> _Connection:
        if (src, dst) not in connections:
            alpha, beta_time = _path_costs(topology, src, dst, chunk_bytes)
            connections[(src, dst)] = _Connection(alpha, beta_time)
        return connections[(src, dst)]

    pc: dict[tuple[int, int], int] = {key: 0 for key in program.blocks}
    finish: dict[tuple[int, int, int], float] = {}
    fired = 0
    finish_time = 0.0

    def dep_ready(ins: Instruction) -> float | None:
        """Finish time of the declared dependency; None when unmet."""
        if ins.dep_tb < 0:
            return 0.0
        return finish.get((ins.gpu, ins.dep_tb, ins.dep_step))

    progress = True
    while progress:
        progress = False
        for key, steps in sorted(program.blocks.items()):
            while pc[key] < len(steps):
                ins = steps[pc[key]]
                prev_done = (finish[(ins.gpu, ins.tb, ins.index - 1)]
                             if ins.index > 0 else 0.0)
                dep_done = dep_ready(ins)
                if dep_done is None:
                    break
                if ins.kind == "s":
                    data = available.get((ins.gpu, ins.source, ins.chunk))
                    if data is None:
                        break
                    ready = max(prev_done, dep_done, data)
                    arrival = connection(ins.gpu, ins.peer).transmit(
                        ready, ins.source, ins.chunk)
                    finish[ins.key] = arrival
                else:
                    chan = connection(ins.peer, ins.gpu)
                    head = chan.head()
                    if head is None:
                        break
                    arrival, sent_source, sent_chunk = head
                    if (sent_source, sent_chunk) != (ins.source, ins.chunk):
                        raise ScheduleError(
                            f"FIFO mismatch on {ins.peer}->{ins.gpu}: "
                            f"receive expects chunk ({ins.source},"
                            f"{ins.chunk}) but the channel delivers "
                            f"({sent_source},{sent_chunk})")
                    chan.consume()
                    done = max(prev_done, dep_done, arrival)
                    finish[ins.key] = done
                    holdings[ins.gpu].add((ins.source, ins.chunk))
                    current = available.get(
                        (ins.gpu, ins.source, ins.chunk))
                    if current is None or done < current:
                        available[(ins.gpu, ins.source, ins.chunk)] = done
                finish_time = max(finish_time, finish[ins.key])
                pc[key] += 1
                fired += 1
                progress = True

    stuck = [steps[pc[key]]
             for key, steps in sorted(program.blocks.items())
             if pc[key] < len(steps)]
    return InterpretationReport(finish_time=finish_time, fired=fired,
                                total=program.num_instructions,
                                holdings=holdings, stuck=stuck)


def verify_program(document: str, topology: Topology, demand: Demand, *,
                   chunk_bytes: float) -> InterpretationReport:
    """Execute an exported program and check it satisfies the demand.

    Raises :class:`ScheduleError` on deadlock or on any demanded triple the
    execution failed to deliver — the end-to-end check of the synthesis →
    export → runtime pipeline.
    """
    program = load_program(document)
    report = interpret(program, topology, demand, chunk_bytes=chunk_bytes)
    if report.deadlocked:
        preview = ", ".join(
            f"gpu{i.gpu}/tb{i.tb}/step{i.index}:{i.kind}"
            for i in report.stuck[:5])
        raise ScheduleError(
            f"program deadlocked with {len(report.stuck)} blocked "
            f"threadblocks ({preview}, ...)")
    missing = [(s, c, d) for s, c, d in demand.triples()
               if not report.delivered(s, c, d)]
    if missing:
        raise ScheduleError(
            f"program left {len(missing)} triples undelivered, e.g. "
            f"{missing[:5]}")
    return report
