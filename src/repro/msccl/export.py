"""Export schedules to MSCCL-style XML (§6: "We convert our solution into
MSCCL, which can then port it into a schedule that runs on the hardware").

The emitted document follows the MSCCL algorithm format: one ``<gpu>`` per
rank, one ``<tb>`` (threadblock) per peer/direction, ordered ``<step>``
entries of type send (``s``), receive (``r``) or receive-copy-send (``rcs``),
with cross-threadblock dependencies expressing the chunk-availability order
the schedule requires.

Switch hops are collapsed first: MSCCL programs run on GPUs, so a relay
``gpu → switch → gpu`` becomes a single logical send at the first hop's epoch
(the switch is the transport, not a rank) — the same lowering the paper's
pipeline performs.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from xml.dom import minidom

from repro.collectives.demand import Demand
from repro.core.schedule import Schedule, Send
from repro.errors import ExportError
from repro.topology.topology import Topology


@dataclass(frozen=True)
class _Step:
    epoch: int
    kind: str  # "s" send, "r" recv
    peer: int
    source: int
    chunk: int


def collapse_switch_hops(schedule: Schedule, topology: Topology) -> Schedule:
    """Merge (gpu→switch, switch→gpu) send pairs into direct logical sends."""
    if not topology.switches:
        return schedule
    into_switch: dict[tuple[int, int, int, int], list[Send]] = {}
    out_of_switch: list[Send] = []
    direct: list[Send] = []
    for send in schedule.sends:
        if topology.is_switch(send.dst):
            into_switch.setdefault(
                (send.source, send.chunk, send.dst, send.epoch), []
            ).append(send)
        elif topology.is_switch(send.src):
            out_of_switch.append(send)
        else:
            direct.append(send)
    merged: list[Send] = list(direct)
    for out in sorted(out_of_switch):
        # find the matching inbound hop: same commodity, into this switch,
        # at the latest epoch strictly before the relay epoch
        candidates = [
            s for (src_s, c, sw, k), sends in into_switch.items()
            if (src_s, c, sw) == (out.source, out.chunk, out.src)
            and k < out.epoch
            for s in sends]
        if not candidates:
            raise ExportError(
                f"relay {out} has no inbound hop to collapse")
        inbound = max(candidates, key=lambda s: s.epoch)
        merged.append(Send(epoch=inbound.epoch, source=out.source,
                           chunk=out.chunk, src=inbound.src, dst=out.dst))
    return Schedule(sends=sorted(merged), tau=schedule.tau,
                    chunk_bytes=schedule.chunk_bytes,
                    num_epochs=schedule.num_epochs)


def to_msccl_xml(schedule: Schedule, topology: Topology, demand: Demand,
                 *, name: str = "teccl", collective: str = "custom",
                 ) -> str:
    """Serialize a schedule as an MSCCL algorithm document."""
    flat = collapse_switch_hops(schedule, topology)
    gpus = sorted({s.src for s in flat.sends} | {s.dst for s in flat.sends}
                  | set(demand.endpoints))
    for g in gpus:
        if topology.is_switch(g):
            raise ExportError(f"node {g} is a switch; cannot emit a rank")

    chunks_per_source = {s: max(demand.chunks_of(s), default=0) + 1
                         for s in demand.sources}
    chunk_index: dict[tuple[int, int], int] = {}
    offset = 0
    for s in sorted(chunks_per_source):
        for c in range(chunks_per_source[s]):
            chunk_index[(s, c)] = offset + c
        offset += chunks_per_source[s]
    total_chunks = offset

    # steps per gpu per peer/direction
    steps: dict[int, dict[tuple[str, int], list[_Step]]] = {
        g: {} for g in gpus}
    for send in sorted(flat.sends):
        steps[send.src].setdefault(("s", send.dst), []).append(
            _Step(send.epoch, "s", send.dst, send.source, send.chunk))
        steps[send.dst].setdefault(("r", send.src), []).append(
            _Step(send.epoch, "r", send.src, send.source, send.chunk))

    algo = ET.Element("algo", {
        "name": name, "proto": "Simple", "nchannels": "1",
        "nchunksperloop": str(max(total_chunks, 1)),
        "ngpus": str(len(gpus)), "coll": collective,
        "inplace": "0",
    })
    for g in gpus:
        gpu_el = ET.SubElement(algo, "gpu", {
            "id": str(g),
            "i_chunks": str(chunks_per_source.get(g, 0)),
            "o_chunks": str(max(total_chunks, 1)),
            "s_chunks": "0",
        })
        # map (kind, peer) -> tb id, deterministic order
        tb_ids = {key: tb for tb, key in enumerate(sorted(steps[g]))}
        # Where does this gpu first hold each chunk? A gpu may receive the
        # same chunk on several threadblocks (transit copies); a forwarding
        # send must depend on the EARLIEST-epoch receive — depending on a
        # later one can create a circular wait (send→recv→peer→this send),
        # which the repro.msccl.interpreter surfaces as a deadlock.
        first_recv: dict[tuple[int, int], tuple[int, int, int]] = {}
        for key, tb in sorted(tb_ids.items(), key=lambda kv: kv[1]):
            if key[0] != "r":
                continue
            for idx, step in enumerate(sorted(steps[g][key],
                                              key=lambda st: st.epoch)):
                candidate = (step.epoch, tb_ids[key], idx)
                current = first_recv.get((step.source, step.chunk))
                if current is None or candidate < current:
                    first_recv[(step.source, step.chunk)] = candidate
        recv_location = {chunk: (tb, idx)
                         for chunk, (_, tb, idx) in first_recv.items()}
        for key, tb in sorted(tb_ids.items(), key=lambda kv: kv[1]):
            kind, peer = key
            tb_el = ET.SubElement(gpu_el, "tb", {
                "id": str(tb),
                "send": str(peer) if kind == "s" else "-1",
                "recv": str(peer) if kind == "r" else "-1",
                "chan": "0",
            })
            ordered = sorted(steps[g][key], key=lambda st: st.epoch)
            for idx, step in enumerate(ordered):
                dep_tb, dep_step = -1, -1
                if kind == "s" and step.source != g:
                    loc = recv_location.get((step.source, step.chunk))
                    if loc is None:
                        raise ExportError(
                            f"gpu {g} sends chunk ({step.source},"
                            f"{step.chunk}) it never receives")
                    dep_tb, dep_step = loc
                ET.SubElement(tb_el, "step", {
                    "s": str(idx),
                    "type": kind,
                    "srcbuf": "o", "srcoff": str(
                        chunk_index.get((step.source, step.chunk), 0)),
                    "dstbuf": "o", "dstoff": str(
                        chunk_index.get((step.source, step.chunk), 0)),
                    "cnt": "1",
                    "depid": str(dep_tb), "deps": str(dep_step),
                    "hasdep": "1" if dep_tb >= 0 else "0",
                    # extension attributes (ignored by MSCCL runtimes) that
                    # make the document round-trippable back to a Schedule
                    "x_epoch": str(step.epoch),
                    "x_source": str(step.source),
                    "x_chunk": str(step.chunk),
                })
    rough = ET.tostring(algo, encoding="unicode")
    return minidom.parseString(rough).toprettyxml(indent="  ")


def schedule_from_msccl_xml(document: str, *, tau: float,
                            chunk_bytes: float) -> Schedule:
    """Rebuild a :class:`Schedule` from a document this module exported.

    Relies on the ``x_epoch``/``x_source``/``x_chunk`` extension attributes;
    foreign MSCCL files (which carry no timing) are rejected. The returned
    schedule is in the same (switch-collapsed) node space as the export.
    """
    root = ET.fromstring(document)
    if root.tag != "algo":
        raise ExportError(f"expected <algo>, got <{root.tag}>")
    sends: list[Send] = []
    for gpu_el in root.findall("gpu"):
        gpu = int(gpu_el.get("id"))
        for tb_el in gpu_el.findall("tb"):
            peer = int(tb_el.get("send"))
            if peer < 0:
                continue  # receive threadblocks mirror the send side
            for st in tb_el.findall("step"):
                epoch = st.get("x_epoch")
                if epoch is None:
                    raise ExportError(
                        "document lacks x_epoch timing attributes; only "
                        "documents exported by repro.msccl round-trip")
                sends.append(Send(
                    epoch=int(epoch),
                    source=int(st.get("x_source")),
                    chunk=int(st.get("x_chunk")),
                    src=gpu, dst=peer))
    if not sends:
        raise ExportError("document contains no send steps")
    num_epochs = max(s.epoch for s in sends) + 1
    return Schedule(sends=sorted(sends), tau=tau, chunk_bytes=chunk_bytes,
                    num_epochs=num_epochs)


def roundtrip_schedule(schedule: Schedule, topology: Topology,
                       demand: Demand, *, name: str = "roundtrip",
                       ) -> Schedule:
    """Export to MSCCL XML and re-ingest in one move.

    The conformance harness replays the returned schedule against the same
    oracle as the original: the lowering is correct iff delivery and finish
    are identical. On switch topologies the result lives in the collapsed
    (switch-free) node space — see :func:`collapse_switch_hops`.
    """
    xml = to_msccl_xml(schedule, topology, demand, name=name)
    return schedule_from_msccl_xml(xml, tau=schedule.tau,
                                   chunk_bytes=schedule.chunk_bytes)


def parse_msccl_xml(document: str) -> dict:
    """Parse an exported document back into a comparable structure.

    Used by round-trip tests; returns ``{gpu: [(tb, kind, peer, steps)]}``
    plus the algorithm attributes.
    """
    root = ET.fromstring(document)
    if root.tag != "algo":
        raise ExportError(f"expected <algo>, got <{root.tag}>")
    gpus = {}
    for gpu_el in root.findall("gpu"):
        tbs = []
        for tb_el in gpu_el.findall("tb"):
            kind = "s" if tb_el.get("send") != "-1" else "r"
            peer = int(tb_el.get("send") if kind == "s" else tb_el.get("recv"))
            steps = [(int(st.get("s")), st.get("type"),
                      int(st.get("srcoff")), int(st.get("depid")),
                      int(st.get("deps")))
                     for st in tb_el.findall("step")]
            tbs.append((int(tb_el.get("id")), kind, peer, steps))
        gpus[int(gpu_el.get("id"))] = tbs
    return {"attrs": dict(root.attrib), "gpus": gpus}
