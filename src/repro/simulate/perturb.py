"""Congestion-perturbation robustness: the paper's "unexplored avenue".

§6 "Unexplored avenues" concedes that "the effect of factors such as
congestion ... on the collective latency remains an unknown". This module
explores exactly that, within the α–β world the paper validates: a schedule
is synthesized against the *declared* fabric, then executed (continuous
time, per-link FIFO — :mod:`repro.simulate.events`) against many *perturbed*
fabrics where links are jittered and a random subset is congested. The
spread of finish times is the schedule's congestion sensitivity.

This keeps routes and send ordering fixed under perturbation — modelling a
static schedule meeting unexpected congestion, which is how MSCCL programs
actually behave (they cannot re-route at run time).
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field

from repro.collectives.demand import Demand
from repro.core.schedule import Schedule
from repro.errors import ModelError
from repro.simulate.events import run_events
from repro.topology.topology import Link, Topology


@dataclass(frozen=True)
class PerturbationModel:
    """How one congestion trial distorts the fabric.

    Attributes:
        beta_jitter: std-dev of the multiplicative capacity jitter applied
            to every link (lognormal-ish via clamped Gaussian).
        alpha_jitter: std-dev of the multiplicative α jitter.
        congested_fraction: fraction of links additionally slowed by
            ``congestion_factor`` (cross-tenant traffic on shared links).
        congestion_factor: capacity divisor on congested links (2 = half).
    """

    beta_jitter: float = 0.05
    alpha_jitter: float = 0.05
    congested_fraction: float = 0.0
    congestion_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.beta_jitter < 0 or self.alpha_jitter < 0:
            raise ModelError("jitter std-devs must be non-negative")
        if not 0 <= self.congested_fraction <= 1:
            raise ModelError("congested_fraction must be in [0, 1]")
        if self.congestion_factor < 1:
            raise ModelError("congestion_factor must be at least 1")


def perturbed_topology(topology: Topology, model: PerturbationModel,
                       seed: int = 0, *,
                       rng: random.Random | None = None) -> Topology:
    """One congestion trial: the fabric with jitter and slowdowns applied.

    Determinism contract: passing the same ``seed`` (or an ``rng`` in the
    same state) yields the same perturbed fabric. An explicit ``rng`` lets
    callers thread one generator through a whole scenario instead of
    re-seeding per call.
    """
    if rng is None:
        rng = random.Random(seed)
    links = sorted(topology.links)
    congested: set[tuple[int, int]] = set()
    if model.congested_fraction > 0:
        count = round(model.congested_fraction * len(links))
        congested = set(rng.sample(links, count))
    out = Topology(name=f"{topology.name}-congested-{seed}",
                   num_nodes=topology.num_nodes,
                   switches=topology.switches)
    for key in links:
        link = topology.links[key]
        cap_factor = max(0.1, rng.gauss(1.0, model.beta_jitter))
        alpha_factor = max(0.0, rng.gauss(1.0, model.alpha_jitter))
        capacity = link.capacity * cap_factor
        if key in congested:
            capacity /= model.congestion_factor
        out.links[key] = Link(key[0], key[1], capacity=capacity,
                              alpha=link.alpha * alpha_factor)
    return out


@dataclass(frozen=True)
class DriftModel:
    """Slow multiplicative random-walk drift of per-link capacity.

    Where :class:`PerturbationModel` draws independent jitter per trial,
    drift is *correlated over time*: each step multiplies every link's
    achieved-capacity factor by a small lognormal-ish nudge, so a link that
    wandered low stays low for a while — the shape the fleet estimator's
    EWMA and hysteresis are designed against.

    Attributes:
        sigma: std-dev of the per-step multiplicative nudge.
        floor: lowest factor the walk may reach (clamped).
        ceiling: highest factor the walk may reach (clamped).
    """

    sigma: float = 0.02
    floor: float = 0.25
    ceiling: float = 1.5

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ModelError("drift sigma must be non-negative")
        if not 0 < self.floor <= 1 <= self.ceiling:
            raise ModelError("drift needs 0 < floor <= 1 <= ceiling")


def drift_step(factors: dict[tuple[int, int], float], model: DriftModel,
               rng: random.Random) -> dict[tuple[int, int], float]:
    """Advance every link's capacity factor by one random-walk step.

    Links are visited in sorted order so the trace depends only on the
    ``rng`` state, never on dict insertion order.
    """
    out: dict[tuple[int, int], float] = {}
    for key in sorted(factors):
        nudged = factors[key] * max(0.0, rng.gauss(1.0, model.sigma))
        out[key] = min(model.ceiling, max(model.floor, nudged))
    return out


def drift_trace(topology: Topology, model: DriftModel, steps: int, *,
                rng: random.Random,
                ) -> list[dict[tuple[int, int], float]]:
    """A seeded per-link capacity-factor trace, one dict per step.

    This is the scenario generator behind the fleet telemetry's synthetic
    sources: two calls with generators seeded identically produce identical
    traces (regression-tested), so every adaptation experiment replays.
    """
    if steps < 1:
        raise ModelError("need at least one drift step")
    factors = {key: 1.0 for key in topology.links}
    trace = []
    for _ in range(steps):
        factors = drift_step(factors, model, rng)
        trace.append(dict(factors))
    return trace


@dataclass
class RobustnessReport:
    """Finish-time distribution of one schedule across congestion trials."""

    baseline: float
    times: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times)

    @property
    def p50(self) -> float:
        return statistics.median(self.times)

    @property
    def p95(self) -> float:
        ordered = sorted(self.times)
        index = min(len(ordered) - 1, round(0.95 * (len(ordered) - 1)))
        return ordered[index]

    @property
    def worst(self) -> float:
        return max(self.times)

    @property
    def mean_slowdown(self) -> float:
        """Mean finish under congestion relative to the clean fabric."""
        return self.mean / self.baseline

    @property
    def tail_slowdown(self) -> float:
        return self.p95 / self.baseline


def congestion_robustness(schedule: Schedule, topology: Topology,
                          demand: Demand, *, model: PerturbationModel,
                          trials: int = 20, seed: int = 0,
                          ) -> RobustnessReport:
    """Execute one fixed schedule across ``trials`` perturbed fabrics.

    The baseline is the same continuous-time execution on the clean
    fabric, so the reported slowdowns isolate the congestion effect from
    epoch-quantisation effects.
    """
    if trials < 1:
        raise ModelError("need at least one trial")
    baseline = run_events(schedule, topology, demand).finish_time
    report = RobustnessReport(baseline=baseline)
    for trial in range(trials):
        fabric = perturbed_topology(topology, model, seed=seed + trial)
        report.times.append(
            run_events(schedule, fabric, demand).finish_time)
    return report
