"""An α–β discrete-time executor for integral schedules.

The paper validates solver output by lowering schedules to MSCCL and running
them on a DGX1, then uses the α–β cost model for every topology it cannot
run on hardware. This module is that methodology in code: it *executes* a
:class:`~repro.core.schedule.Schedule` against a topology and demand,
independently of any solver, checking

* availability — no node transmits a chunk before holding it (sources hold
  their own chunks; everyone else must wait for an arrival to complete);
* capacity — each link carries at most its per-epoch chunk budget, with the
  Appendix F sliding window on links slower than the epoch grid;
* switch semantics — switches relay in the next epoch and never hold chunks;
* delivery — every demanded (source, chunk, destination) triple arrives.

It reports the finish time under the same continuous α–β estimate the paper
uses for its collective-time numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.collectives.demand import Demand
from repro.core.epochs import EpochPlan
from repro.core.schedule import Schedule, Send
from repro.errors import ScheduleError
from repro.topology.topology import Topology

_EPS = 1e-9


@dataclass
class SimulationReport:
    """Outcome of one simulated schedule execution."""

    ok: bool
    finish_time: float
    finish_epoch: int
    delivered: dict[tuple[int, int, int], float]
    violations: list[str] = field(default_factory=list)
    total_bytes: float = 0.0

    def raise_on_violation(self) -> "SimulationReport":
        if not self.ok:
            raise ScheduleError("; ".join(self.violations[:5]))
        return self


def simulate(schedule: Schedule, topology: Topology, demand: Demand,
             plan: EpochPlan, *, strict_switches: bool = True,
             ) -> SimulationReport:
    """Execute the schedule epoch by epoch and verify every invariant.

    Args:
        strict_switches: enforce that a chunk crossing a switch leaves in the
            epoch right after it arrives (zero-buffer semantics). Disable for
            baselines that intentionally model buffered switches.
    """
    violations: list[str] = []
    # (source, chunk, node) -> buffer epoch at which the chunk is available.
    available: dict[tuple[int, int, int], int] = {}
    for s, c in demand.commodities():
        available[(s, c, s)] = 0

    sends_sorted = sorted(schedule.sends)
    # --- availability & switch semantics -------------------------------
    # Multiple passes are unnecessary: process in epoch order; arrivals land
    # strictly after their send epoch, so a single ordered pass sees every
    # provider before its consumers.
    arrivals_at_switch: dict[tuple[int, int, int], set[int]] = {}
    missing_links = False
    for send in sends_sorted:
        key = (send.source, send.chunk, send.src)
        if not topology.has_link(send.src, send.dst):
            violations.append(
                f"send on nonexistent link ({send.src},{send.dst})")
            missing_links = True
            continue
        offset = plan.arrival_offset(send.src, send.dst)
        if topology.is_switch(send.src):
            arrived = arrivals_at_switch.get(
                (send.source, send.chunk, send.src), set())
            if send.epoch not in arrived:
                violations.append(
                    f"switch {send.src} forwards chunk ({send.source},"
                    f"{send.chunk}) at epoch {send.epoch} without an arrival "
                    "in the previous epoch")
        else:
            have = available.get(key)
            if have is None or have > send.epoch:
                violations.append(
                    f"node {send.src} sends chunk ({send.source},{send.chunk})"
                    f" at epoch {send.epoch} before holding it "
                    f"(available at {have})")
        arrival_epoch = send.epoch + offset + 1
        dst_key = (send.source, send.chunk, send.dst)
        if topology.is_switch(send.dst):
            arrivals_at_switch.setdefault(dst_key, set()).add(arrival_epoch)
        else:
            current = available.get(dst_key)
            if current is None or arrival_epoch < current:
                available[dst_key] = arrival_epoch

    if strict_switches:
        # every chunk that enters a switch must leave exactly one epoch later
        out_epochs: dict[tuple[int, int, int], set[int]] = {}
        for send in sends_sorted:
            if topology.is_switch(send.src):
                out_epochs.setdefault(
                    (send.source, send.chunk, send.src), set()).add(send.epoch)
        for key, arrived in arrivals_at_switch.items():
            left = out_epochs.get(key, set())
            for epoch in arrived:
                if epoch not in left:
                    violations.append(
                        f"chunk ({key[0]},{key[1]}) stranded at switch "
                        f"{key[2]} (arrived for epoch {epoch}, never left)")

    # --- capacity -------------------------------------------------------
    load: dict[tuple[int, int, int], int] = {}
    for send in sends_sorted:
        if missing_links and not topology.has_link(send.src, send.dst):
            continue
        load[(send.src, send.dst, send.epoch)] = load.get(
            (send.src, send.dst, send.epoch), 0) + 1
    for (i, j) in {(a, b) for (a, b, _) in load}:
        kappa = plan.occupancy[(i, j)]
        cap = plan.cap_chunks[(i, j)]
        epochs = [k for (a, b, k) in load if (a, b) == (i, j)]
        for k in range(min(epochs), max(epochs) + 1):
            if kappa == 1:
                used = load.get((i, j, k), 0)
                limit = math.floor(cap + _EPS)
            else:
                used = sum(load.get((i, j, kk), 0)
                           for kk in range(max(0, k - kappa + 1), k + 1))
                limit = max(1, math.floor(kappa * cap + _EPS))
            if used > limit:
                violations.append(
                    f"link ({i},{j}) carries {used} chunks in window ending "
                    f"at epoch {k}, capacity {limit}")

    # --- delivery -------------------------------------------------------
    delivered: dict[tuple[int, int, int], float] = {}
    finish_time = 0.0
    for s, c in demand.commodities():
        for d in demand.destinations(s, c):
            buffer_epoch = available.get((s, c, d))
            if buffer_epoch is None:
                violations.append(
                    f"demand unmet: chunk ({s},{c}) never reaches {d}")
                continue
            # continuous arrival estimate for the last hop into d
            t = _continuous_arrival(schedule, topology, plan, s, c, d)
            delivered[(s, c, d)] = t
            finish_time = max(finish_time, t)

    return SimulationReport(
        ok=not violations,
        finish_time=finish_time,
        finish_epoch=schedule.finish_epoch,
        delivered=delivered,
        violations=violations,
        total_bytes=schedule.total_bytes())


def _continuous_arrival(schedule: Schedule, topology: Topology,
                        plan: EpochPlan, s: int, c: int, d: int) -> float:
    """Earliest α + β·S completion among sends of (s, c) into d."""
    best = math.inf
    for send in schedule.sends:
        if send.source == s and send.chunk == c and send.dst == d:
            if not topology.has_link(send.src, send.dst):
                continue
            link = topology.link(send.src, send.dst)
            best = min(best, send.epoch * plan.tau
                       + link.transfer_time(plan.chunk_bytes))
    if math.isinf(best):
        # the chunk was already at d (d == s handled upstream)
        return 0.0
    return best


def verify(schedule: Schedule, topology: Topology, demand: Demand,
           plan: EpochPlan, **kwargs) -> SimulationReport:
    """Simulate and raise :class:`ScheduleError` on any violation."""
    return simulate(schedule, topology, demand, plan,
                    **kwargs).raise_on_violation()
