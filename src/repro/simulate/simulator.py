"""Back-compat façade over the conformance engine (the original simulator).

The original 190-line epoch-grid simulator grew into the schedule
conformance engine (:mod:`repro.simulate.conformance`); this module keeps
the historical ``simulate``/``verify`` API — a flat
:class:`SimulationReport` with string violations — as a thin adapter so
existing callers and tests keep working. New code should call
:func:`repro.simulate.check_schedule` (or :func:`~repro.simulate.check_flow`
/ :func:`~repro.simulate.check_result`) and consume the structured
:class:`~repro.simulate.conformance.ConformanceReport` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collectives.demand import Demand
from repro.core.epochs import EpochPlan
from repro.core.schedule import Schedule
from repro.errors import ScheduleError
from repro.simulate.conformance import check_schedule
from repro.topology.topology import Topology


@dataclass
class SimulationReport:
    """Outcome of one simulated schedule execution (flat legacy shape)."""

    ok: bool
    finish_time: float
    finish_epoch: int
    delivered: dict[tuple[int, int, int], float]
    violations: list[str] = field(default_factory=list)
    total_bytes: float = 0.0

    def raise_on_violation(self) -> "SimulationReport":
        if not self.ok:
            raise ScheduleError("; ".join(self.violations[:5]))
        return self


def simulate(schedule: Schedule, topology: Topology, demand: Demand,
             plan: EpochPlan, *, strict_switches: bool = True,
             ) -> SimulationReport:
    """Execute the schedule epoch by epoch and verify every invariant.

    Args:
        strict_switches: enforce that a chunk crossing a switch leaves in the
            epoch right after it arrives (zero-buffer semantics). Disable for
            baselines that intentionally model buffered switches.
    """
    report = check_schedule(schedule, topology, demand, plan,
                            strict_switches=strict_switches)
    return SimulationReport(
        ok=report.ok,
        finish_time=report.finish_time,
        finish_epoch=schedule.finish_epoch,
        delivered=report.delivered,
        violations=[str(v) for v in report.violations],
        total_bytes=schedule.total_bytes())


def verify(schedule: Schedule, topology: Topology, demand: Demand,
           plan: EpochPlan, **kwargs) -> SimulationReport:
    """Simulate and raise :class:`ScheduleError` on any violation."""
    return simulate(schedule, topology, demand, plan,
                    **kwargs).raise_on_violation()
