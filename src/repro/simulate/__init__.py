"""Schedule execution and validation (the repo's stand-in for hardware runs).

The package's centrepiece is the **conformance engine**
(:mod:`repro.simulate.conformance`): a strict replay oracle written against
the paper's execution model that every schedule producer in the repo is
swept through by the randomized cross-producer harness
(:mod:`repro.simulate.harness`). The continuous-time event executor
(:mod:`repro.simulate.events`) and the perturbation robustness tools
(:mod:`repro.simulate.perturb`) answer the follow-up questions — what would
this schedule do on un-quantised hardware, and under congestion?
"""

from repro.simulate.conformance import (FINISH_RTOL, FLOW_ATOL,
                                        ConformanceReport, Violation,
                                        check_flow, check_result,
                                        check_schedule)
from repro.simulate.events import (ChunkArrival, EventReport,
                                   quantisation_gap, run_events)
from repro.simulate.harness import (PRODUCERS, ReplayCase, SweepRecord,
                                    random_instance, replay_case,
                                    run_producer, sweep)
from repro.simulate.perturb import (DriftModel, PerturbationModel,
                                    RobustnessReport, congestion_robustness,
                                    drift_step, drift_trace,
                                    perturbed_topology)
from repro.simulate.simulator import SimulationReport, simulate, verify

__all__ = [
    "ConformanceReport", "Violation", "check_schedule", "check_flow",
    "check_result", "FINISH_RTOL", "FLOW_ATOL",
    "ReplayCase", "SweepRecord", "PRODUCERS", "random_instance",
    "replay_case", "run_producer", "sweep",
    "SimulationReport", "simulate", "verify",
    "run_events", "EventReport", "ChunkArrival", "quantisation_gap",
    "PerturbationModel", "RobustnessReport", "congestion_robustness",
    "perturbed_topology", "DriftModel", "drift_step", "drift_trace",
]
