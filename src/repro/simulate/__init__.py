"""Schedule execution and validation (the repo's stand-in for hardware runs)."""

from repro.simulate.events import (ChunkArrival, EventReport,
                                   quantisation_gap, run_events)
from repro.simulate.perturb import (PerturbationModel, RobustnessReport,
                                    congestion_robustness,
                                    perturbed_topology)
from repro.simulate.simulator import SimulationReport, simulate, verify

__all__ = [
    "SimulationReport", "simulate", "verify",
    "run_events", "EventReport", "ChunkArrival", "quantisation_gap",
    "PerturbationModel", "RobustnessReport", "congestion_robustness",
    "perturbed_topology",
]
