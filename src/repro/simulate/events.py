"""A continuous-time event simulator for collective schedules.

The epoch-grid simulator (:mod:`repro.simulate.simulator`) validates a
schedule against the *model* TE-CCL optimised. This module answers the next
question the paper asks (§6 "Platform"): what would the schedule do on real
hardware, where time is not quantised? It executes sends under the α–β
model with per-link FIFO serialisation:

* a link transmits one chunk at a time, each occupying the wire for
  ``S/capacity`` seconds and landing ``α`` seconds after transmission ends;
* a send becomes eligible as soon as the sender holds the chunk; per link,
  sends transmit in scheduled-epoch order (the schedule's ordering is kept,
  its absolute timing is not — that is the point);
* every node holds chunks once received. This is *lenient* for zero-buffer
  switches: the executor measures timing, not switch-memory feasibility —
  the epoch-grid simulator (:func:`repro.simulate.verify`) owns that check.

The gap between the event-simulated finish and the α–β epoch estimate is the
discretisation error — reported by :func:`quantisation_gap` and kept small
by construction (the paper validated the same estimates on a DGX1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collectives.demand import Demand
from repro.core.schedule import Schedule, Send
from repro.errors import ScheduleError
from repro.topology.topology import Topology


@dataclass(frozen=True)
class ChunkArrival:
    """One chunk landing at one node, in wall-clock seconds."""

    time: float
    source: int
    chunk: int
    node: int


@dataclass(frozen=True)
class Transmission:
    """One chunk occupying one link: the wire interval and the landing."""

    link: tuple[int, int]
    start: float
    end: float
    arrival: float
    source: int
    chunk: int


@dataclass
class EventReport:
    """Result of a continuous-time execution."""

    finish_time: float
    arrivals: list[ChunkArrival]
    link_busy: dict[tuple[int, int], float]
    delivered: dict[tuple[int, int, int], float]
    transmissions: list[Transmission] = field(default_factory=list)

    def utilisation(self, topology: Topology) -> dict[tuple[int, int], float]:
        """Busy fraction per link over the collective's duration."""
        if self.finish_time <= 0:
            return {key: 0.0 for key in self.link_busy}
        return {key: busy / self.finish_time
                for key, busy in self.link_busy.items()}


def run_events(schedule: Schedule, topology: Topology, demand: Demand,
               ) -> EventReport:
    """Execute the schedule in continuous time; returns arrivals and finish.

    Raises :class:`ScheduleError` if the schedule deadlocks (a send waits on
    a chunk that never arrives) or leaves demands unmet.
    """
    # availability time per (source, chunk, node); sources start at 0
    available: dict[tuple[int, int, int], float] = {}
    for s, c in demand.commodities():
        available[(s, c, s)] = 0.0
    # per-link FIFO: time the wire frees up
    link_free: dict[tuple[int, int], float] = {
        key: 0.0 for key in topology.links}
    link_busy: dict[tuple[int, int], float] = {
        key: 0.0 for key in topology.links}

    # Event loop: repeatedly dispatch the eligible send with the earliest
    # possible start. A heap keyed by (earliest start, epoch, order) would
    # need re-keying as links free up; with schedule sizes in the thousands a
    # simple scan per dispatch is fast enough and obviously correct.
    #
    # Ties are frequent (float-equal start times whenever several chunks
    # become eligible at an epoch boundary), so the dispatch key breaks them
    # all the way down to the send's identity. The trace is therefore a pure
    # function of the schedule's *set* of sends — independent of list order —
    # which the determinism regression test in tests/test_events.py pins.
    remaining: list[Send] = sorted(schedule.sends)
    dispatched: set[int] = set()
    arrivals: list[ChunkArrival] = []
    transmissions: list[Transmission] = []
    while len(dispatched) < len(remaining):
        best_index = -1
        best_key: tuple | None = None
        for idx, send in enumerate(remaining):
            if idx in dispatched:
                continue
            ready = available.get((send.source, send.chunk, send.src))
            if ready is None:
                continue
            start = max(ready, link_free[send.link])
            # epoch ordering is preserved per link: a later-epoch send never
            # jumps an earlier one on the same link; beyond that the send's
            # identity is the stable tie-break under float-equal starts
            key = (start, send.epoch, send.src, send.dst, send.source,
                   send.chunk)
            if best_key is None or key < best_key:
                best_key, best_index = key, idx
        if best_index < 0:
            stuck = [remaining[i] for i in range(len(remaining))
                     if i not in dispatched]
            raise ScheduleError(
                f"event simulation deadlocked with {len(stuck)} sends "
                f"waiting (first: {stuck[0]})")
        send = remaining[best_index]
        best_start = best_key[0]
        dispatched.add(best_index)
        link = topology.link(send.src, send.dst)
        transmit = schedule.chunk_bytes / link.capacity
        end_of_wire = best_start + transmit
        arrival_time = end_of_wire + link.alpha
        link_free[send.link] = end_of_wire
        link_busy[send.link] += transmit
        key = (send.source, send.chunk, send.dst)
        if key not in available or arrival_time < available[key]:
            available[key] = arrival_time
        arrivals.append(ChunkArrival(time=arrival_time, source=send.source,
                                     chunk=send.chunk, node=send.dst))
        transmissions.append(Transmission(
            link=send.link, start=best_start, end=end_of_wire,
            arrival=arrival_time, source=send.source, chunk=send.chunk))

    delivered: dict[tuple[int, int, int], float] = {}
    finish = 0.0
    for s, c in demand.commodities():
        for d in demand.destinations(s, c):
            t = available.get((s, c, d))
            if t is None:
                raise ScheduleError(
                    f"demand unmet in event simulation: ({s},{c})->{d}")
            delivered[(s, c, d)] = t
            finish = max(finish, t)
    # Stable full-identity keys: float-equal timestamps must not leave the
    # trace order at the mercy of the dispatch history.
    arrivals.sort(key=lambda a: (a.time, a.source, a.chunk, a.node))
    transmissions.sort(key=lambda t: (t.start, t.link, t.source, t.chunk))
    return EventReport(finish_time=finish, arrivals=arrivals,
                       link_busy=link_busy, delivered=delivered,
                       transmissions=transmissions)


def quantisation_gap(schedule: Schedule, topology: Topology,
                     demand: Demand) -> float:
    """Relative gap between the epoch-grid α–β estimate and event time.

    Positive values mean the epoch grid over-estimates (it rounds waiting to
    epoch boundaries); the event execution can only be faster or equal.
    """
    grid = schedule.finish_time(topology)
    event = run_events(schedule, topology, demand).finish_time
    if grid <= 0:
        raise ScheduleError("empty schedule has no finish time")
    return (grid - event) / grid
