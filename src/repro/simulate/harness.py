"""Randomized cross-producer conformance harness.

Every schedule producer in the repo — the MILP, the LP, the A* round
decomposition, POP partitioning, hierarchical synthesis, the heuristic
baselines, the MSCCL export/ingest round-trip, and failure repair — is
registered here as a *producer*: a function that, given one randomized
``(topology, demand, config)`` instance, emits the
:class:`ReplayCase` records the conformance engine should replay. The
harness sweeps producers over :func:`random_instance` seeds and reports one
:class:`SweepRecord` per replay; ``tests/test_conformance.py`` asserts zero
violations plus solver-objective agreement, and
``benchmarks/bench_conformance.py`` publishes the same sweep as a JSON
artifact.

A producer may *skip* an instance it does not support (a ring schedule on a
line fabric, POP on a single-source demand); it signals that by returning no
cases or raising a :class:`~repro.errors.ReproError`, which the sweep
records as a skip rather than a failure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.collectives.demand import Demand
from repro.core.config import TecclConfig
from repro.core.epochs import EpochPlan
from repro.core.schedule import FlowSchedule, Schedule
from repro.errors import ReproError
from repro.simulate.conformance import (ConformanceReport, check_flow,
                                        check_schedule)
from repro.topology.topology import Topology


# ----------------------------------------------------------------------
# randomized instances (shared with tests/conftest.py, which re-exports it)
# ----------------------------------------------------------------------
def random_instance(seed: int) -> tuple[Topology, Demand, TecclConfig]:
    """A deterministic pseudo-random (topology, demand, config) triple.

    Sweeps the surface every producer must agree on: ring/line/star/mesh
    shapes (with and without a switch), mixed link speeds and α delays
    (which exercise occupancy windows under the default fastest-link
    epochs), unicast and multicast chunks, optional buffer limits, and the
    store-and-forward ablation.
    """
    from repro import topology as topo_builders
    from repro.solver import SolverOptions

    rng = random.Random(seed)
    kind = rng.choice(["ring", "line", "star", "mesh"])
    n = rng.randint(3, 5)
    if kind == "ring":
        topo = topo_builders.ring(n, capacity=1.0, alpha=0.0)
    elif kind == "line":
        topo = topo_builders.line(n, capacity=1.0, alpha=0.0)
    elif kind == "star":
        topo = topo_builders.star(n, capacity=1.0, alpha=0.0,
                                  hub_is_switch=True)
    else:
        topo = Topology(name=f"mesh{n}", num_nodes=n)
        for a in range(n):
            for b in range(a + 1, n):
                topo.add_bidirectional(a, b, capacity=1.0)
    # re-roll link speeds and delays (replaces the uniform builder links)
    for (a, b) in list(topo.links):
        topo.add_link(a, b, capacity=rng.choice([1.0, 1.0, 2.0]),
                      alpha=rng.choice([0.0, 0.0, 0.5]))
    topo.validate()

    gpus = topo.gpus
    triples = []
    for s in gpus:
        for c in range(rng.randint(1, 2)):
            others = [d for d in gpus if d != s]
            for d in rng.sample(others, rng.randint(1, min(2, len(others)))):
                triples.append((s, c, d))
    demand = Demand.from_triples(triples)

    config = TecclConfig(
        chunk_bytes=1.0,
        store_and_forward=rng.random() > 0.25,
        buffer_limit_chunks=rng.choice([None, None, None, 2]),
        tighten=rng.random() > 0.2,
        solver=SolverOptions(time_limit=60))
    return topo, demand, config


# ----------------------------------------------------------------------
# replay cases and records
# ----------------------------------------------------------------------
@dataclass
class ReplayCase:
    """One schedule to replay through the conformance engine.

    Attributes:
        producer: registry name of the producer that emitted it.
        label: disambiguates multiple cases from one producer (phases).
        schedule: integral or fractional schedule.
        topology / demand / plan: the space the schedule is expressed over
            (hyper-transformed or induced subfabrics when applicable).
        claimed_finish: the producer's objective value, when it makes one.
        compare_finish: require replayed == claimed within model tolerance.
        config: model-variant flags the schedule was produced under
            (``None`` replays under paper defaults).
        strict_switches: forward-on-arrival switch strictness.
    """

    producer: str
    schedule: Schedule | FlowSchedule
    topology: Topology
    demand: Demand
    plan: EpochPlan
    label: str = ""
    claimed_finish: float | None = None
    compare_finish: bool = False
    config: TecclConfig | None = None
    strict_switches: bool = True


@dataclass
class SweepRecord:
    """One replay (or skip) from a sweep."""

    producer: str
    seed: int
    label: str = ""
    report: ConformanceReport | None = None
    error: str | None = None

    @property
    def skipped(self) -> bool:
        return self.report is None

    @property
    def ok(self) -> bool:
        return self.report is not None and self.report.ok

    @property
    def num_violations(self) -> int:
        return 0 if self.report is None else len(self.report.violations)

    @property
    def finish_delta(self) -> float | None:
        return None if self.report is None else self.report.finish_delta


def replay_case(case: ReplayCase) -> ConformanceReport:
    """Run one case through the conformance engine."""
    claimed = case.claimed_finish if case.compare_finish else None
    if isinstance(case.schedule, FlowSchedule):
        return check_flow(case.schedule, case.topology, case.demand,
                          case.plan, config=case.config,
                          claimed_finish_time=claimed)
    return check_schedule(case.schedule, case.topology, case.demand,
                          case.plan, config=case.config,
                          strict_switches=case.strict_switches,
                          claimed_finish_time=claimed)


def _baseline_plan(topology: Topology, config: TecclConfig,
                   schedule: Schedule) -> EpochPlan:
    """The exact epoch plan a baseline booked against (see ``replay_plan``)."""
    from repro.baselines import replay_plan

    return replay_plan(topology, config, schedule)


# ----------------------------------------------------------------------
# producers
# ----------------------------------------------------------------------
def _produce_milp(topo, demand, config, seed):
    from repro.core.milp import solve_milp

    outcome = solve_milp(topo, demand, config)
    return [ReplayCase(producer="milp", schedule=outcome.schedule,
                       topology=topo, demand=demand, plan=outcome.plan,
                       claimed_finish=outcome.finish_time,
                       compare_finish=True, config=config)]


def _produce_lp(topo, demand, config, seed):
    from repro.core.lp import solve_lp

    # Mirror the facade: multicast demands fall back to the (sound but
    # weaker) per-chunk no-copy LP.
    outcome = solve_lp(topo, demand, config,
                       aggregate=not demand.benefits_from_copy())
    return [ReplayCase(producer="lp", schedule=outcome.schedule,
                       topology=topo, demand=demand, plan=outcome.plan,
                       claimed_finish=outcome.finish_time,
                       compare_finish=True, config=config)]


def _produce_astar(topo, demand, config, seed):
    from repro.core.astar import solve_astar

    # A* buffers chunks across round boundaries, so it only exists in the
    # store-and-forward world (solve_astar rejects the Figure 9 ablation).
    config = replace(config, store_and_forward=True)
    outcome = solve_astar(topo, demand, config)
    return [ReplayCase(producer="astar", schedule=outcome.schedule,
                       topology=topo, demand=demand, plan=outcome.plan,
                       claimed_finish=outcome.finish_time,
                       compare_finish=True, config=config)]


def _produce_pop(topo, demand, config, seed):
    from repro import collectives
    from repro.core.pop import solve_lp_pop

    if demand.benefits_from_copy():
        # POP applies to the LP form only; keep the producer in the sweep by
        # deriving the canonical copy-free collective on the same fabric.
        demand = collectives.alltoall(topo.gpus, 1)
    if len(demand.sources) < 2:
        return []
    outcome = solve_lp_pop(topo, demand, config, num_partitions=2, seed=seed)
    return [ReplayCase(producer="pop", schedule=outcome.schedule,
                       topology=topo, demand=demand, plan=outcome.plan,
                       claimed_finish=outcome.finish_time,
                       compare_finish=True, config=config)]


def _produce_hierarchical(topo, demand, config, seed):
    from repro.core.hierarchical import ChassisPlan, hierarchical_allgather

    gpus = topo.gpus
    if topo.switches or len(gpus) < 4:
        return []  # induced chassis subfabrics need direct GPU links
    half = len(gpus) // 2
    # Leaders sit at the split boundary so the induced leader fabric is
    # connected on ring/line-numbered topologies.
    chassis = [ChassisPlan(gpus=tuple(gpus[:half]), leader=gpus[half - 1]),
               ChassisPlan(gpus=tuple(gpus[half:]), leader=gpus[half])]
    outcome = hierarchical_allgather(topo, config, chassis=chassis)
    cases = []
    for phase in outcome.phases():
        synthesis = phase.synthesis
        cases.append(ReplayCase(
            producer="hierarchical", label=phase.label,
            schedule=synthesis.schedule,
            topology=synthesis.topology_used, demand=synthesis.demand_used,
            plan=synthesis.plan, claimed_finish=synthesis.finish_time,
            compare_finish=True, config=config))
    return cases


def _produce_shortest_path(topo, demand, config, seed):
    from repro.baselines import shortest_path_schedule

    schedule = shortest_path_schedule(topo, demand, config)
    return [ReplayCase(producer="shortest_path", schedule=schedule,
                       topology=topo, demand=demand,
                       plan=_baseline_plan(topo, config, schedule))]


def _produce_ring(topo, demand, config, seed):
    from repro import collectives
    from repro.baselines import ring_allgather

    schedule = ring_allgather(topo, config, 1)
    ag = collectives.allgather(topo.gpus, 1)
    return [ReplayCase(producer="ring", schedule=schedule, topology=topo,
                       demand=ag,
                       plan=_baseline_plan(topo, config, schedule))]


def _produce_trees(topo, demand, config, seed):
    from repro import collectives
    from repro.baselines import tree_allgather

    schedule = tree_allgather(topo, config, 1)
    ag = collectives.allgather(topo.gpus, 1)
    return [ReplayCase(producer="trees", schedule=schedule, topology=topo,
                       demand=ag,
                       plan=_baseline_plan(topo, config, schedule))]


def _produce_blink(topo, demand, config, seed):
    from repro import collectives
    from repro.baselines import blink_allgather

    schedule = blink_allgather(topo, config, 1)
    ag = collectives.allgather(topo.gpus, 1)
    return [ReplayCase(producer="blink", schedule=schedule, topology=topo,
                       demand=ag,
                       plan=_baseline_plan(topo, config, schedule))]


def _produce_taccl(topo, demand, config, seed):
    from repro.baselines import taccl_like

    outcome = taccl_like(topo, demand, config, seed=seed)
    return [ReplayCase(producer="taccl", schedule=outcome.schedule,
                       topology=outcome.topology, demand=outcome.demand,
                       plan=_baseline_plan(outcome.topology, config,
                                           outcome.schedule))]


def _produce_msccl_roundtrip(topo, demand, config, seed):
    from repro import collectives
    from repro.baselines import tree_allgather
    from repro.msccl import roundtrip_schedule

    if topo.switches:
        return []  # the export collapses switch hops into logical links
    schedule = tree_allgather(topo, config, 1)
    ag = collectives.allgather(topo.gpus, 1)
    back = roundtrip_schedule(schedule, topo, ag, name="harness")
    return [ReplayCase(producer="msccl_roundtrip", schedule=back,
                       topology=topo, demand=ag,
                       plan=_baseline_plan(topo, config, back))]


def _produce_repair(topo, demand, config, seed):
    from repro.failures.inject import FailureEvent, degraded_topology
    from repro.failures.repair import repair_schedule
    from repro.baselines import shortest_path_schedule

    schedule = shortest_path_schedule(topo, demand, config)
    plan = _baseline_plan(topo, config, schedule)
    # Fail a link the schedule actually uses, preferring one whose loss
    # keeps the fabric connected (otherwise repair is rightly infeasible).
    rng = random.Random(seed)
    used = sorted(schedule.links_used())
    rng.shuffle(used)
    for link in used:
        try:
            degraded_topology(topo, [FailureEvent(epoch=1, link=link)]) \
                .validate()
        except ReproError:
            continue
        outcome = repair_schedule(topo, demand, config, schedule, plan,
                                  [FailureEvent(epoch=1, link=link)])
        if outcome.synthesis is None:
            return []
        synthesis = outcome.synthesis
        return [ReplayCase(
            producer="repair", label=f"fail{link[0]}-{link[1]}",
            schedule=synthesis.schedule, topology=synthesis.topology_used,
            demand=synthesis.demand_used, plan=synthesis.plan,
            claimed_finish=synthesis.finish_time, compare_finish=True,
            config=replace(config, num_epochs=None, priorities=None))]
    return []


PRODUCERS = {
    "milp": _produce_milp,
    "lp": _produce_lp,
    "astar": _produce_astar,
    "pop": _produce_pop,
    "hierarchical": _produce_hierarchical,
    "shortest_path": _produce_shortest_path,
    "ring": _produce_ring,
    "trees": _produce_trees,
    "blink": _produce_blink,
    "taccl": _produce_taccl,
    "msccl_roundtrip": _produce_msccl_roundtrip,
    "repair": _produce_repair,
}


# ----------------------------------------------------------------------
# sweeping
# ----------------------------------------------------------------------
def run_producer(name: str, topo: Topology, demand: Demand,
                 config: TecclConfig, seed: int) -> list[SweepRecord]:
    """Produce and replay one producer on one instance."""
    try:
        cases = PRODUCERS[name](topo, demand, config, seed)
    except ReproError as exc:
        return [SweepRecord(producer=name, seed=seed,
                            error=f"{type(exc).__name__}: {exc}")]
    if not cases:
        return [SweepRecord(producer=name, seed=seed, error="unsupported")]
    return [SweepRecord(producer=name, seed=seed, label=case.label,
                        report=replay_case(case))
            for case in cases]


def sweep(seeds, producers=None, instance_fn=random_instance,
          ) -> list[SweepRecord]:
    """Replay the given producers over the given instance seeds."""
    names = list(PRODUCERS) if producers is None else list(producers)
    records: list[SweepRecord] = []
    for seed in seeds:
        topo, demand, config = instance_fn(seed)
        for name in names:
            records.extend(run_producer(name, topo, demand, config, seed))
    return records
