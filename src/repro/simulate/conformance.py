"""The schedule conformance engine: a strict replay oracle for every producer.

The paper's central claim is that the optimizer's objective *is* the
collective's finish time — which is only true if the schedule it emits is
*executable* under the model of §3: per-epoch link capacities (with the
Appendix F occupancy windows on links slower than the epoch grid), α–β
transfer costs, zero-buffer switches that copy or merely forward (§3.1),
bounded GPU relay buffers (Appendix B), and the store-and-forward ablation
(Figure 9). This module replays a schedule against that model — written from
the paper, independently of any producer's code — and returns a structured
:class:`ConformanceReport` instead of a bare pass/fail: every violation
carries its epoch/link/commodity provenance, and the report includes the
replayed α–β finish time and per-link utilization so callers can compare the
replay against the solver's claimed objective.

Three entry points:

* :func:`check_schedule` — integral :class:`~repro.core.schedule.Schedule`
  (MILP, A*, baselines, MSCCL round-trips, repair residuals);
* :func:`check_flow` — fractional :class:`~repro.core.schedule.FlowSchedule`
  (LP, POP), checked against the LP's conservation/causality equalities;
* :func:`check_result` — a whole :class:`~repro.core.solve.SynthesisResult`,
  dispatching on the schedule kind and comparing the replayed finish time
  with the producer's claimed objective within model tolerance.

The cross-producer randomized harness (:mod:`repro.simulate.harness`) sweeps
every producer in the repo through this oracle; ``teccl verify`` and the
planner service expose the same engine to operators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.collectives.demand import Demand
from repro.core.config import SwitchModel, TecclConfig
from repro.core.epochs import EpochPlan
from repro.core.schedule import FlowSchedule, Schedule
from repro.errors import ScheduleError
from repro.obs.trace import span as _obs_span
from repro.topology.topology import Topology

_EPS = 1e-9

#: Relative tolerance for replayed-vs-claimed finish-time agreement. The
#: replay recomputes arrivals from the same α–β inputs the solver used, so
#: agreement is float-roundoff tight; anything beyond this is a real
#: disagreement between the objective and the executable schedule.
FINISH_RTOL = 1e-6

#: Absolute tolerance on fractional chunk amounts (LP flows are ~1.0-scaled
#: and solved to 1e-7-ish feasibility by the backend).
FLOW_ATOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One broken model invariant, with provenance.

    Attributes:
        kind: invariant family — ``"link"`` (send on a nonexistent link),
            ``"horizon"`` (activity beyond the epoch plan), ``"availability"``
            (transmit before holding), ``"relay"`` (store-and-forward
            ablation broken), ``"switch"`` (forward without a matching
            arrival, or duplication on a no-copy switch), ``"stranded"``
            (chunk enters a switch and never leaves), ``"capacity"``,
            ``"buffer"`` (relay-buffer budget exceeded), ``"conservation"``
            (flow mass appears from nowhere), ``"delivery"`` (demand unmet),
            ``"finish"`` (replayed finish disagrees with the claimed
            objective).
        message: human-readable description.
        epoch: the epoch (or pool index, for flows) where it happened.
        link: the (src, dst) pair involved, when link-local.
        commodity: the (source, chunk) pair — or aggregated source id —
            involved, when commodity-local.
        node: the node involved, when node-local.
    """

    kind: str
    message: str
    epoch: int | None = None
    link: tuple[int, int] | None = None
    commodity: tuple[int, int] | int | None = None
    node: int | None = None

    def __str__(self) -> str:
        return self.message


@dataclass
class ConformanceReport:
    """The outcome of one conformance replay.

    Attributes:
        violations: every broken invariant (empty means conformant).
        finish_time: the replayed α–β finish — the latest demanded delivery
            for integral schedules, the latest serialized per-link arrival
            for flows. Computed by the replay, never copied from the
            producer.
        claimed_finish_time: the producer's objective value, when supplied.
        finish_epoch: last epoch with any activity (−1 when empty).
        delivered: per demanded triple, the α–β delivery time (integral) —
            or per ``(commodity, destination)``, the amount read (flows).
        utilization: per link, busy fraction over the replayed duration.
        num_sends: integral sends replayed (0 for flows).
        total_flow: fractional chunk mass replayed (0.0 for integral).
        total_bytes: bytes placed on the wire.
    """

    violations: list[Violation] = field(default_factory=list)
    finish_time: float = 0.0
    claimed_finish_time: float | None = None
    finish_epoch: int = -1
    delivered: dict = field(default_factory=dict)
    utilization: dict[tuple[int, int], float] = field(default_factory=dict)
    num_sends: int = 0
    total_flow: float = 0.0
    total_bytes: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def finish_delta(self) -> float | None:
        """Replayed minus claimed finish time (``None`` when no claim)."""
        if self.claimed_finish_time is None:
            return None
        return self.finish_time - self.claimed_finish_time

    def counts_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.kind] = out.get(v.kind, 0) + 1
        return out

    def raise_on_violation(self) -> "ConformanceReport":
        if not self.ok:
            raise ScheduleError("; ".join(
                str(v) for v in self.violations[:5]))
        return self

    def to_dict(self) -> dict:
        """JSON-ready summary (violations keep their provenance fields)."""
        return {
            "ok": self.ok,
            "finish_time": self.finish_time,
            "claimed_finish_time": self.claimed_finish_time,
            "finish_delta": self.finish_delta,
            "finish_epoch": self.finish_epoch,
            "num_sends": self.num_sends,
            "total_flow": self.total_flow,
            "total_bytes": self.total_bytes,
            "violation_counts": self.counts_by_kind(),
            "violations": [
                {"kind": v.kind, "message": v.message, "epoch": v.epoch,
                 "link": list(v.link) if v.link else None,
                 "commodity": (list(v.commodity)
                               if isinstance(v.commodity, tuple)
                               else v.commodity),
                 "node": v.node}
                for v in self.violations],
            "utilization": {f"{i}->{j}": u
                            for (i, j), u in sorted(self.utilization.items())},
        }


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def _epoch_capacity(plan: EpochPlan, config: TecclConfig | None,
                    i: int, j: int, k: int) -> float:
    """Per-epoch chunk budget, honouring a time-varying capacity hook."""
    if config is not None and config.capacity_fn is not None:
        return config.capacity_fn(i, j, k) * plan.tau / plan.chunk_bytes
    return plan.cap_chunks[(i, j)]


def _finish_compare(report: ConformanceReport, rtol: float) -> None:
    claimed = report.claimed_finish_time
    if claimed is None:
        return
    tol = rtol * max(abs(claimed), abs(report.finish_time)) + 1e-12
    if abs(report.finish_time - claimed) > tol:
        report.violations.append(Violation(
            kind="finish",
            message=(f"replayed finish {report.finish_time:.9g}s disagrees "
                     f"with the claimed objective {claimed:.9g}s "
                     f"(delta {report.finish_time - claimed:+.3g}s)")))


# ----------------------------------------------------------------------
# integral schedules
# ----------------------------------------------------------------------
def check_schedule(schedule: Schedule, topology: Topology, demand: Demand,
                   plan: EpochPlan, *, config: TecclConfig | None = None,
                   strict_switches: bool = True,
                   claimed_finish_time: float | None = None,
                   finish_rtol: float = FINISH_RTOL) -> ConformanceReport:
    """Replay an integral schedule against the paper's execution model.

    Args:
        config: supplies the model variant the schedule was produced under —
            switch copy semantics, the store-and-forward ablation, the
            relay-buffer budget, and any time-varying capacity hook.
            ``None`` replays under the paper's defaults (copy switches,
            store-and-forward on, unbounded buffers).
        strict_switches: additionally require that every chunk entering a
            switch leaves in the very next epoch (zero-buffer semantics);
            disable for baselines that intentionally buffer at switches.
        claimed_finish_time: the producer's objective; when given, the
            replayed finish must agree within ``finish_rtol`` or a
            ``"finish"`` violation is reported.
    """
    with _obs_span("conformance.check", kind="schedule",
                   sends=schedule.num_sends) as sp:
        report = _check_schedule_impl(
            schedule, topology, demand, plan, config=config,
            strict_switches=strict_switches,
            claimed_finish_time=claimed_finish_time,
            finish_rtol=finish_rtol)
        sp.set_attr(ok=report.ok, violations=len(report.violations))
        return report


def _check_schedule_impl(schedule: Schedule, topology: Topology,
                         demand: Demand, plan: EpochPlan, *,
                         config: TecclConfig | None,
                         strict_switches: bool,
                         claimed_finish_time: float | None,
                         finish_rtol: float) -> ConformanceReport:
    report = ConformanceReport(claimed_finish_time=claimed_finish_time,
                               num_sends=schedule.num_sends,
                               total_bytes=schedule.total_bytes(),
                               finish_epoch=schedule.finish_epoch)
    violations = report.violations
    copy_switches = (config is None
                     or config.switch_model is not SwitchModel.NO_COPY)
    store_and_forward = config is None or config.store_and_forward
    buffer_limit = None if config is None else config.buffer_limit_chunks

    sends_sorted = sorted(schedule.sends)
    valid = []
    for send in sends_sorted:
        if not topology.has_link(send.src, send.dst):
            violations.append(Violation(
                kind="link", epoch=send.epoch, link=send.link,
                commodity=send.commodity,
                message=f"send on nonexistent link ({send.src},{send.dst})"))
            continue
        if send.epoch >= plan.num_epochs:
            violations.append(Violation(
                kind="horizon", epoch=send.epoch, link=send.link,
                commodity=send.commodity,
                message=(f"send at epoch {send.epoch} beyond the plan "
                         f"horizon K={plan.num_epochs}")))
        valid.append(send)

    # --- availability, relay and switch semantics ----------------------
    # One ordered pass suffices: arrivals land strictly after their send
    # epoch, so every provider is seen before its consumers.
    # (source, chunk, gpu) -> earliest buffer epoch the chunk is held
    available: dict[tuple[int, int, int], int] = {}
    for s, c in demand.commodities():
        available[(s, c, s)] = 0
    # (source, chunk, node) -> {buffer epoch: arrival count}
    arrivals: dict[tuple[int, int, int], dict[int, int]] = {}
    # (source, chunk, switch, epoch) -> outgoing send count (no-copy check)
    switch_out: dict[tuple[int, int, int, int], int] = {}

    for send in valid:
        key = (send.source, send.chunk, send.src)
        arrived_here = arrivals.get(key, {})
        if topology.is_switch(send.src):
            if send.epoch not in arrived_here:
                violations.append(Violation(
                    kind="switch", epoch=send.epoch, link=send.link,
                    commodity=send.commodity, node=send.src,
                    message=(f"switch {send.src} forwards chunk "
                             f"({send.source},{send.chunk}) at epoch "
                             f"{send.epoch} without an arrival in the "
                             "previous epoch")))
            elif not copy_switches:
                out_key = (send.source, send.chunk, send.src, send.epoch)
                switch_out[out_key] = switch_out.get(out_key, 0) + 1
                if switch_out[out_key] > arrived_here[send.epoch]:
                    violations.append(Violation(
                        kind="switch", epoch=send.epoch, link=send.link,
                        commodity=send.commodity, node=send.src,
                        message=(f"no-copy switch {send.src} duplicates "
                                 f"chunk ({send.source},{send.chunk}) at "
                                 f"epoch {send.epoch} "
                                 f"({switch_out[out_key]} sends for "
                                 f"{arrived_here[send.epoch]} arrivals)")))
        elif not store_and_forward and send.src != send.source:
            # Figure 9 ablation: non-source GPUs relay on arrival, like a
            # switch — holding a chunk across epochs is the disabled feature.
            if send.epoch not in arrived_here:
                violations.append(Violation(
                    kind="relay", epoch=send.epoch, link=send.link,
                    commodity=send.commodity, node=send.src,
                    message=(f"store-and-forward is disabled but node "
                             f"{send.src} sends chunk ({send.source},"
                             f"{send.chunk}) at epoch {send.epoch} without "
                             "an arrival in the previous epoch")))
        else:
            have = available.get(key)
            if have is None or have > send.epoch:
                violations.append(Violation(
                    kind="availability", epoch=send.epoch, link=send.link,
                    commodity=send.commodity, node=send.src,
                    message=(f"node {send.src} sends chunk ({send.source},"
                             f"{send.chunk}) at epoch {send.epoch} before "
                             f"holding it (available at {have})")))
        buffer_epoch = send.epoch + plan.arrival_offset(send.src, send.dst) + 1
        dst_key = (send.source, send.chunk, send.dst)
        arrivals.setdefault(dst_key, {})
        arrivals[dst_key][buffer_epoch] = \
            arrivals[dst_key].get(buffer_epoch, 0) + 1
        if not topology.is_switch(send.dst):
            current = available.get(dst_key)
            if current is None or buffer_epoch < current:
                available[dst_key] = buffer_epoch

    if strict_switches:
        out_epochs: dict[tuple[int, int, int], set[int]] = {}
        for send in valid:
            if topology.is_switch(send.src):
                out_epochs.setdefault(
                    (send.source, send.chunk, send.src), set()).add(send.epoch)
        for (s, c, node), pools in arrivals.items():
            if not topology.is_switch(node):
                continue
            left = out_epochs.get((s, c, node), set())
            for epoch in sorted(pools):
                if epoch not in left:
                    violations.append(Violation(
                        kind="stranded", epoch=epoch, node=node,
                        commodity=(s, c),
                        message=(f"chunk ({s},{c}) stranded at switch "
                                 f"{node} (arrived for epoch {epoch}, "
                                 "never left)")))

    # --- per-epoch link capacity (Appendix F windows) -------------------
    load: dict[tuple[int, int, int], int] = {}
    for send in valid:
        load[(send.src, send.dst, send.epoch)] = load.get(
            (send.src, send.dst, send.epoch), 0) + 1
    for (i, j) in sorted({(a, b) for (a, b, _) in load}):
        kappa = plan.occupancy[(i, j)]
        epochs = [k for (a, b, k) in load if (a, b) == (i, j)]
        for k in range(min(epochs), max(epochs) + 1):
            cap = _epoch_capacity(plan, config, i, j, k)
            if kappa == 1:
                used = load.get((i, j, k), 0)
                limit = math.floor(cap + _EPS)
            else:
                used = sum(load.get((i, j, kk), 0)
                           for kk in range(max(0, k - kappa + 1), k + 1))
                limit = max(1, math.floor(kappa * cap + _EPS))
            if used > limit:
                violations.append(Violation(
                    kind="capacity", epoch=k, link=(i, j),
                    message=(f"link ({i},{j}) carries {used} chunks in the "
                             f"window ending at epoch {k}, capacity "
                             f"{limit}")))

    # --- relay-buffer occupancy (Appendix B) ----------------------------
    if buffer_limit is not None:
        _check_buffer_occupancy(report, valid, topology, demand, plan,
                                arrivals, buffer_limit)

    # --- demand delivery and the replayed α–β finish --------------------
    finish = 0.0
    last_hop: dict[tuple[int, int, int], float] = {}
    for send in valid:
        t = send.epoch * plan.tau + topology.link(
            send.src, send.dst).transfer_time(plan.chunk_bytes)
        key = (send.source, send.chunk, send.dst)
        if key not in last_hop or t < last_hop[key]:
            last_hop[key] = t
    for s, c in demand.commodities():
        for d in demand.destinations(s, c):
            if (s, c, d) not in available:
                violations.append(Violation(
                    kind="delivery", commodity=(s, c), node=d,
                    message=f"demand unmet: chunk ({s},{c}) never "
                            f"reaches {d}"))
                continue
            t = last_hop.get((s, c, d), 0.0)
            report.delivered[(s, c, d)] = t
            finish = max(finish, t)
    report.finish_time = finish

    # --- utilization ----------------------------------------------------
    busy: dict[tuple[int, int], float] = {}
    for send in valid:
        link = topology.link(send.src, send.dst)
        busy[send.link] = busy.get(send.link, 0.0) \
            + plan.chunk_bytes / link.capacity
    if finish > 0:
        report.utilization = {key: b / finish for key, b in busy.items()}
    else:
        report.utilization = {key: 0.0 for key in busy}

    _finish_compare(report, finish_rtol)
    return report


def _check_buffer_occupancy(report: ConformanceReport, sends, topology,
                            demand: Demand, plan: EpochPlan,
                            arrivals: dict, limit: float) -> None:
    """Least-commitment relay-buffer replay against the Appendix B budget.

    A relay chunk must sit in the buffer from some arrival until each send
    that uses it; the minimal feasible occupancy for a (commodity, node)
    pair is the union over its sends of ``[latest arrival ≤ send epoch,
    send epoch]``. A schedule violates the budget only if even this minimal
    assignment exceeds it. Sources and demand destinations are exempt (the
    input/output buffers of §3.1 hold that data regardless).
    """
    sends_from: dict[tuple[int, int, int], list[int]] = {}
    for send in sends:
        if topology.is_switch(send.src):
            continue
        sends_from.setdefault(
            (send.source, send.chunk, send.src), []).append(send.epoch)
    occupancy: dict[int, dict[int, int]] = {}  # node -> epoch -> count
    for (s, c, node), epochs in sends_from.items():
        if node == s or node in demand.destinations(s, c):
            continue
        pools = sorted(arrivals.get((s, c, node), {}))
        if not pools:
            continue  # availability violation already recorded
        intervals: list[tuple[int, int]] = []
        for t in sorted(epochs):
            candidates = [p for p in pools if p <= t]
            if not candidates:
                continue  # availability violation already recorded
            intervals.append((candidates[-1], t))
        per_node = occupancy.setdefault(node, {})
        covered: set[int] = set()
        for lo, hi in intervals:
            covered.update(range(lo, hi + 1))
        for k in covered:
            per_node[k] = per_node.get(k, 0) + 1
    budget = math.floor(limit + _EPS)
    for node in sorted(occupancy):
        for k in sorted(occupancy[node]):
            if occupancy[node][k] > budget:
                report.violations.append(Violation(
                    kind="buffer", epoch=k, node=node,
                    message=(f"node {node} needs {occupancy[node][k]} relay "
                             f"buffer slots at epoch {k}, budget "
                             f"{budget}")))


# ----------------------------------------------------------------------
# fractional (LP) schedules
# ----------------------------------------------------------------------
def _commodity_origin(key) -> int:
    return key[0] if isinstance(key, tuple) else key


def _demand_amounts(demand: Demand, keys) -> dict:
    """Per commodity key, the (supply, {sink: amount}) the LP was fed."""
    out = {}
    for key in keys:
        if isinstance(key, tuple):
            dests = demand.destinations(*key)
            out[key] = (float(len(dests)), {d: 1.0 for d in dests})
        else:
            sinks: dict[int, float] = {}
            supply = 0.0
            for c in demand.chunks_of(key):
                for d in demand.destinations(key, c):
                    sinks[d] = sinks.get(d, 0.0) + 1.0
                    supply += 1.0
            out[key] = (supply, sinks)
    return out


def check_flow(flow: FlowSchedule, topology: Topology, demand: Demand,
               plan: EpochPlan, *, config: TecclConfig | None = None,
               claimed_finish_time: float | None = None,
               atol: float = FLOW_ATOL,
               finish_rtol: float = FINISH_RTOL) -> ConformanceReport:
    """Replay a fractional schedule against the LP model of §4.1.

    Checks per-epoch link capacity (the LP has no occupancy windows — its
    fractional amounts are rate-limited per epoch directly), causality and
    mass conservation per commodity (consumption can never outrun arrivals
    plus the origin supply), zero-buffer switch forwarding, the relay-buffer
    budget, read legality, and full demand delivery within ``atol``.
    """
    with _obs_span("conformance.check", kind="flow",
                   flows=len(flow.flows)) as sp:
        report = _check_flow_impl(
            flow, topology, demand, plan, config=config,
            claimed_finish_time=claimed_finish_time, atol=atol,
            finish_rtol=finish_rtol)
        sp.set_attr(ok=report.ok, violations=len(report.violations))
        return report


def _check_flow_impl(flow: FlowSchedule, topology: Topology, demand: Demand,
                     plan: EpochPlan, *, config: TecclConfig | None,
                     claimed_finish_time: float | None,
                     atol: float, finish_rtol: float) -> ConformanceReport:
    report = ConformanceReport(claimed_finish_time=claimed_finish_time,
                               total_flow=sum(flow.flows.values()),
                               total_bytes=flow.total_bytes(),
                               finish_epoch=flow.finish_epoch)
    violations = report.violations
    buffer_limit = None if config is None else config.buffer_limit_chunks
    K = plan.num_epochs

    keys = {q for (q, _, _, _) in flow.flows} \
        | {q for (q, _, _) in flow.reads}
    amounts = _demand_amounts(demand, keys)

    link_load: dict[tuple[int, int, int], float] = {}
    for (q, i, j, k), amount in flow.flows.items():
        if amount < -atol:
            violations.append(Violation(
                kind="conservation", epoch=k, link=(i, j), commodity=q,
                message=f"negative flow {amount:.3g} on ({i},{j}) at "
                        f"epoch {k}"))
        if not topology.has_link(i, j):
            violations.append(Violation(
                kind="link", epoch=k, link=(i, j), commodity=q,
                message=f"flow on nonexistent link ({i},{j})"))
            continue
        if k >= K or k + plan.arrival_offset(i, j) + 1 > K:
            violations.append(Violation(
                kind="horizon", epoch=k, link=(i, j), commodity=q,
                message=(f"flow sent at epoch {k} on ({i},{j}) cannot land "
                         f"within the horizon K={K}")))
        link_load[(i, j, k)] = link_load.get((i, j, k), 0.0) + amount

    for (i, j, k), used in sorted(link_load.items()):
        if (i, j) not in topology.links:
            continue
        cap = _epoch_capacity(plan, config, i, j, k)
        if used > cap + atol:
            violations.append(Violation(
                kind="capacity", epoch=k, link=(i, j),
                message=(f"link ({i},{j}) carries {used:.6g} chunks at "
                         f"epoch {k}, capacity {cap:.6g}")))

    # --- causality & conservation per commodity -------------------------
    # Normalise every event to a pool index p: a send at epoch e arrives at
    # pool e + Δ + 1; a send consumes its node's pool at index e; a read at
    # epoch r consumes pool r + 1 (R[k] ≤ B[k+1] in the LP). The invariant
    # is prefix-wise: consumption through p never exceeds arrivals through p
    # plus the origin's supply.
    arrives: dict[tuple, dict[int, float]] = {}   # (q, node) -> pool -> mass
    consumes: dict[tuple, dict[int, float]] = {}
    for (q, i, j, k), amount in flow.flows.items():
        if not topology.has_link(i, j):
            continue
        pool = k + plan.arrival_offset(i, j) + 1
        arrives.setdefault((q, j), {})
        arrives[(q, j)][pool] = arrives[(q, j)].get(pool, 0.0) + amount
        consumes.setdefault((q, i), {})
        consumes[(q, i)][k] = consumes[(q, i)].get(k, 0.0) + amount
    for (q, d, k), amount in flow.reads.items():
        supply, sinks = amounts[q]
        if d not in sinks:
            violations.append(Violation(
                kind="delivery", epoch=k, commodity=q, node=d,
                message=(f"read of commodity {q} at node {d} which never "
                         "demanded it")))
        consumes.setdefault((q, d), {})
        consumes[(q, d)][k + 1] = consumes[(q, d)].get(k + 1, 0.0) + amount

    # node -> pool -> implied relay-buffer mass held at that pool index
    implied_buffers: dict[int, dict[int, float]] = {}
    for (q, node) in sorted(consumes, key=str):
        if topology.is_switch(node):
            continue
        supply = amounts[q][0] if _commodity_origin(q) == node else 0.0
        inflow = arrives.get((q, node), {})
        pools = sorted(set(inflow) | set(consumes[(q, node)]))
        running = supply
        for idx, p in enumerate(pools):
            running += inflow.get(p, 0.0)
            running -= consumes[(q, node)].get(p, 0.0)
            if running < -atol:
                violations.append(Violation(
                    kind="conservation", epoch=p, commodity=q, node=node,
                    message=(f"node {node} consumes {-running:.6g} more of "
                             f"commodity {q} than has arrived by pool "
                             f"index {p}")))
                running = 0.0  # report each deficit once, then re-anchor
            elif supply == 0.0 and running > atol:
                # Held-over mass at a relay: the implied LP buffer. It
                # persists until the next event, so spread it over the gap.
                until = pools[idx + 1] if idx + 1 < len(pools) else p + 1
                per_node = implied_buffers.setdefault(node, {})
                for k in range(p, min(until, K + 2)):
                    per_node[k] = per_node.get(k, 0.0) + running

    # --- zero-buffer switches: the LP's in(k) == out(k+1) equality -------
    # (in pool-index terms both sides land on the same index p). Forwarding
    # more than arrived is a causality break; forwarding less strands mass
    # at a bufferless node — the fractional analogue of "stranded".
    switch_keys = {key for key in consumes if topology.is_switch(key[1])} \
        | {key for key in arrives if topology.is_switch(key[1])}
    for (q, node) in sorted(switch_keys, key=str):
        inflow = arrives.get((q, node), {})
        outflow = consumes.get((q, node), {})
        for p in sorted(set(inflow) | set(outflow)):
            landed = inflow.get(p, 0.0)
            forwarded = outflow.get(p, 0.0)
            if forwarded > landed + atol:
                violations.append(Violation(
                    kind="switch", epoch=p, commodity=q, node=node,
                    message=(f"switch {node} forwards {forwarded:.6g} of "
                             f"commodity {q} at epoch {p} but only "
                             f"{landed:.6g} arrived for that epoch")))
            elif landed > forwarded + atol:
                violations.append(Violation(
                    kind="stranded", epoch=p, commodity=q, node=node,
                    message=(f"{landed - forwarded:.6g} of commodity {q} "
                             f"stranded at switch {node} (arrived for "
                             f"epoch {p}, never forwarded)")))

    if buffer_limit is not None:
        for node in sorted(implied_buffers):
            for p, mass in sorted(implied_buffers[node].items()):
                if mass > buffer_limit + atol:
                    violations.append(Violation(
                        kind="buffer", epoch=p, node=node,
                        message=(f"node {node} buffers {mass:.6g} chunks "
                                 f"at pool index {p}, budget "
                                 f"{buffer_limit:g}")))

    # --- demand delivery -------------------------------------------------
    read_totals: dict[tuple, float] = {}
    for (q, d, _), amount in flow.reads.items():
        read_totals[(q, d)] = read_totals.get((q, d), 0.0) + amount
    for q in sorted(keys, key=str):
        _, sinks = amounts[q]
        for d, amount in sorted(sinks.items()):
            got = read_totals.get((q, d), 0.0)
            report.delivered[(q, d)] = got
            if got < amount - atol:
                violations.append(Violation(
                    kind="delivery", commodity=q, node=d,
                    message=(f"demand unmet: sink {d} read {got:.6g} of "
                             f"{amount:g} demanded of commodity {q}")))
    # commodities with no flow and no reads at all (entirely undelivered)
    demanded_keys = set()
    if demand.benefits_from_copy() or any(
            isinstance(k, tuple) for k in keys) or not keys:
        demanded_keys = set(demand.commodities())
    else:
        demanded_keys = set(demand.sources)
    for q in sorted(demanded_keys - keys, key=str):
        violations.append(Violation(
            kind="delivery", commodity=q,
            message=f"demand unmet: commodity {q} never moves"))

    # --- replayed finish: serialized per-link α–β arrival ----------------
    finish = 0.0
    busy: dict[tuple[int, int], float] = {}
    for (i, j, k), amount in link_load.items():
        if (i, j) not in topology.links:
            continue
        link = topology.link(i, j)
        finish = max(finish, k * plan.tau
                     + link.transfer_time(amount * plan.chunk_bytes))
        busy[(i, j)] = busy.get((i, j), 0.0) \
            + amount * plan.chunk_bytes / link.capacity
    report.finish_time = finish
    if finish > 0:
        report.utilization = {key: b / finish for key, b in busy.items()}
    else:
        report.utilization = {key: 0.0 for key in busy}

    _finish_compare(report, finish_rtol)
    return report


# ----------------------------------------------------------------------
# synthesis results
# ----------------------------------------------------------------------
def check_result(result, *, topology: Topology | None = None,
                 demand: Demand | None = None,
                 config: TecclConfig | None = None,
                 strict_switches: bool = True,
                 compare_finish: bool = True,
                 finish_rtol: float = FINISH_RTOL) -> ConformanceReport:
    """Conformance-check a :class:`~repro.core.solve.SynthesisResult`.

    Uses the topology/demand the schedule is expressed over (the
    hyper-edge-transformed fabric when the Appendix C transform ran) and
    the synthesis config's model-variant flags, all of which the result
    carries; pass ``topology``/``demand``/``config`` explicitly only to
    override. With ``compare_finish`` the replayed finish must agree with
    ``result.finish_time`` within ``finish_rtol``.
    """
    topo = topology if topology is not None else result.topology_used
    dem = demand if demand is not None else result.demand_used
    if config is None:
        config = result.config
    if topo is None or dem is None:
        raise ScheduleError(
            "result carries no topology/demand; pass them explicitly")
    claimed = result.finish_time if compare_finish else None
    if isinstance(result.schedule, FlowSchedule):
        return check_flow(result.schedule, topo, dem, result.plan,
                          config=config, claimed_finish_time=claimed,
                          finish_rtol=finish_rtol)
    return check_schedule(result.schedule, topo, dem, result.plan,
                          config=config, strict_switches=strict_switches,
                          claimed_finish_time=claimed,
                          finish_rtol=finish_rtol)
