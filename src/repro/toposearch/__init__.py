"""Topology design search on top of the TE-CCL synthesizer.

The paper's introduction argues that a fast, reliable collective optimizer
unlocks *other* design loops — "topology design and adapting to failures"
(§1) — because tools like TopoOpt [30] call the collective optimizer many
times inside their search. This subpackage is that outer loop: local search
and greedy augmentation over fabric designs, scoring every candidate with an
actual TE-CCL synthesis.
"""

from repro.toposearch.design import (DesignResult, DesignSpec,
                                     UpgradeOption, evaluate_topology,
                                     greedy_augment, local_search,
                                     random_topology, rank_link_upgrades)

__all__ = [
    "DesignSpec", "DesignResult", "UpgradeOption", "evaluate_topology",
    "local_search", "greedy_augment", "rank_link_upgrades",
    "random_topology",
]
