"""Search over GPU fabric designs, scored by TE-CCL synthesis.

Three entry points, in increasing ambition:

* :func:`rank_link_upgrades` — what-if analysis: which existing link, made
  faster, buys the most collective time? (The operator's "where do I spend
  my next optics dollar" question.)
* :func:`greedy_augment` — start from a base fabric and spend a budget of
  extra links one at a time, always adding the link with the best measured
  improvement.
* :func:`local_search` — seeded hill-climbing over fixed-degree fabrics:
  move one link at a time, keep the move iff the synthesized finish time
  improves. This is the inner loop TopoOpt-style co-design tools run; the
  paper positions TE-CCL as the optimizer that makes it affordable (§1, §7).

Every candidate is scored by actually synthesizing the collective
(:func:`repro.core.solve.synthesize`), not by a proxy metric — the whole
point of having a fast optimizer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.collectives.demand import Demand
from repro.core.config import TecclConfig
from repro.core.solve import Method, synthesize
from repro.errors import InfeasibleError, ModelError, TopologyError
from repro.topology.topology import Topology


@dataclass(frozen=True)
class DesignSpec:
    """The degrees of freedom of the design search.

    Attributes:
        num_gpus: fabric size (no switches in the searched designs; switch
            placement is a different search).
        capacity: bytes/s of every candidate link (homogeneous fabrics).
        alpha: fixed latency of every candidate link.
        link_budget: number of *directed* links a design may use.
    """

    num_gpus: int
    capacity: float
    alpha: float = 0.0
    link_budget: int | None = None

    def __post_init__(self) -> None:
        if self.num_gpus < 2:
            raise ModelError("need at least 2 GPUs to design a fabric")
        if self.capacity <= 0:
            raise ModelError("capacity must be positive")
        if self.alpha < 0:
            raise ModelError("alpha must be non-negative")
        min_links = 2 * self.num_gpus - 2  # weakly sufficient for a cycle
        if self.link_budget is not None and self.link_budget < self.num_gpus:
            raise ModelError(
                f"link budget {self.link_budget} cannot strongly connect "
                f"{self.num_gpus} GPUs (needs at least {self.num_gpus}, "
                f"comfortably {min_links})")

    @property
    def budget(self) -> int:
        if self.link_budget is not None:
            return self.link_budget
        return 2 * self.num_gpus  # a bidirectional ring plus two spare links


@dataclass
class DesignResult:
    """A searched design and the trace that produced it."""

    topology: Topology
    finish_time: float
    evaluations: int
    history: list[float] = field(default_factory=list)

    def improvement_over(self, baseline_finish: float) -> float:
        """Relative improvement (0.25 = 25% faster than the baseline)."""
        if baseline_finish <= 0:
            raise ModelError("baseline finish time must be positive")
        return (baseline_finish - self.finish_time) / baseline_finish


def evaluate_topology(topo: Topology, demand: Demand, config: TecclConfig,
                      *, method: Method = Method.AUTO) -> float:
    """Score one candidate fabric: the synthesized collective finish time.

    Returns ``inf`` for designs the synthesizer proves infeasible within
    the configured horizon — the search treats those as maximally bad
    rather than erroring out.
    """
    try:
        topo.validate()
        result = synthesize(topo, demand, config, method=method)
    except (InfeasibleError, TopologyError):
        return float("inf")
    return result.finish_time


def random_topology(spec: DesignSpec, seed: int = 0,
                    name: str = "design") -> Topology:
    """A random strongly-connected design within the link budget.

    Always starts from a directed Hamiltonian cycle (guaranteeing strong
    connectivity), then spends the remaining budget on uniformly random
    extra links.
    """
    rng = random.Random(seed)
    order = list(range(spec.num_gpus))
    rng.shuffle(order)
    topo = Topology(name=name, num_nodes=spec.num_gpus)
    for a, b in zip(order, order[1:] + order[:1]):
        topo.add_link(a, b, spec.capacity, spec.alpha)
    candidates = [(a, b) for a in order for b in order
                  if a != b and not topo.has_link(a, b)]
    rng.shuffle(candidates)
    for (a, b) in candidates[:max(0, spec.budget - spec.num_gpus)]:
        topo.add_link(a, b, spec.capacity, spec.alpha)
    return topo


def _neighbour(topo: Topology, spec: DesignSpec,
               rng: random.Random) -> Topology | None:
    """One local move: drop a random link, add a random absent link.

    Returns ``None`` when the move broke strong connectivity (the caller
    just draws another move).
    """
    links = sorted(topo.links)
    absent = [(a, b) for a in range(spec.num_gpus)
              for b in range(spec.num_gpus)
              if a != b and not topo.has_link(a, b)]
    if not absent:
        return None  # complete graph: no move possible
    drop = rng.choice(links)
    add = rng.choice(absent)
    candidate = topo.copy(name=topo.name)
    del candidate.links[drop]
    candidate.add_link(add[0], add[1], spec.capacity, spec.alpha)
    try:
        candidate.validate()
    except TopologyError:
        return None
    return candidate


def local_search(spec: DesignSpec, demand: Demand, config: TecclConfig, *,
                 seed: int = 0, max_iters: int = 40, patience: int = 12,
                 method: Method = Method.AUTO,
                 start: Topology | None = None) -> DesignResult:
    """Hill-climb over fixed-budget fabrics, scoring with TE-CCL.

    Args:
        max_iters: total candidate evaluations allowed.
        patience: stop after this many consecutive non-improving moves.
        start: initial design; defaults to :func:`random_topology`.
    """
    if max_iters < 1:
        raise ModelError("max_iters must be at least 1")
    rng = random.Random(seed)
    current = start.copy() if start is not None else random_topology(
        spec, seed=seed)
    best_time = evaluate_topology(current, demand, config, method=method)
    if best_time == float("inf"):
        raise InfeasibleError("initial design is infeasible; raise the "
                              "horizon or the link budget")
    history = [best_time]
    evaluations = 1
    stale = 0
    while evaluations < max_iters and stale < patience:
        candidate = _neighbour(current, spec, rng)
        if candidate is None:
            stale += 1
            continue
        time = evaluate_topology(candidate, demand, config, method=method)
        evaluations += 1
        if time < best_time - 1e-12:
            current, best_time = candidate, time
            stale = 0
        else:
            stale += 1
        history.append(best_time)
    return DesignResult(topology=current, finish_time=best_time,
                        evaluations=evaluations, history=history)


def greedy_augment(base: Topology, spec: DesignSpec, demand: Demand,
                   config: TecclConfig, *, extra_links: int,
                   method: Method = Method.AUTO) -> DesignResult:
    """Spend ``extra_links`` one at a time on the best measured addition.

    Each round evaluates every absent link as a candidate addition and
    commits the one with the smallest synthesized finish time. O(extra ×
    |absent|) synthesizer calls — this is exactly the workload the paper's
    scalability argument targets.
    """
    if extra_links < 1:
        raise ModelError("extra_links must be at least 1")
    current = base.copy()
    best_time = evaluate_topology(current, demand, config, method=method)
    history = [best_time]
    evaluations = 1
    for _ in range(extra_links):
        best_candidate: Topology | None = None
        round_best = best_time
        for a in range(spec.num_gpus):
            for b in range(spec.num_gpus):
                if a == b or current.has_link(a, b):
                    continue
                candidate = current.copy()
                candidate.add_link(a, b, spec.capacity, spec.alpha)
                time = evaluate_topology(candidate, demand, config,
                                         method=method)
                evaluations += 1
                if time < round_best - 1e-12:
                    round_best, best_candidate = time, candidate
        if best_candidate is None:
            break  # no addition helps; stop spending
        current, best_time = best_candidate, round_best
        history.append(best_time)
    return DesignResult(topology=current, finish_time=best_time,
                        evaluations=evaluations, history=history)


@dataclass(frozen=True)
class UpgradeOption:
    """One what-if result: scale this link's capacity, gain this much."""

    link: tuple[int, int]
    finish_time: float
    improvement: float


def rank_link_upgrades(topo: Topology, demand: Demand, config: TecclConfig,
                       *, factor: float = 2.0,
                       method: Method = Method.AUTO) -> list[UpgradeOption]:
    """Rank every link by the collective speedup its upgrade would buy.

    Re-synthesizes the collective once per link with that link's capacity
    scaled by ``factor``; returns options sorted by improvement, best
    first. Ties (links off the critical path buy nothing) sort by link id
    for determinism.
    """
    if factor <= 1.0:
        raise ModelError("upgrade factor must exceed 1")
    baseline = evaluate_topology(topo, demand, config, method=method)
    if baseline == float("inf"):
        raise InfeasibleError("baseline design is infeasible")
    options = []
    for (a, b), link in sorted(topo.links.items()):
        candidate = topo.copy()
        candidate.links[(a, b)] = type(link)(
            src=a, dst=b, capacity=link.capacity * factor, alpha=link.alpha)
        time = evaluate_topology(candidate, demand, config, method=method)
        options.append(UpgradeOption(
            link=(a, b), finish_time=time,
            improvement=(baseline - time) / baseline))
    options.sort(key=lambda o: (-o.improvement, o.link))
    return options
