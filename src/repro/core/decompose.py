"""Temporal flow decomposition: LP rates → per-chunk paths → integral sends.

§4.1: "Our LP produces a rate allocation to demands ... From this we generate
a schedule that we then execute in hardware (we translate these rates to
paths for each chunk through the same DFS-like solution)". This module is
that translation. It decomposes a (pruned) :class:`FlowSchedule` over the
time-expanded graph into *strips* — (amount, timed path) pairs — and
optionally quantises strips into unit-chunk :class:`Schedule` sends for the
MSCCL exporter.

The decomposition walks each read backwards through the pools (the same
structure the pruner uses), peeling off the bottleneck amount along one
provider chain at a time. Conservation guarantees every strip terminates at
the commodity's origin; each strip zeroes at least one residual, so the
number of strips is at most #flows + #reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.epochs import EpochPlan
from repro.core.schedule import FlowSchedule, Schedule, Send
from repro.errors import ScheduleError
from repro.topology.topology import Topology

_TOL = 1e-7


@dataclass(frozen=True)
class TimedHop:
    """One hop of a strip: the link plus the epoch the transfer starts."""

    src: int
    dst: int
    epoch: int


@dataclass
class PathStrip:
    """A fractional chunk following one timed path to one destination."""

    commodity: object
    destination: int
    amount: float
    hops: tuple[TimedHop, ...]
    read_epoch: int

    @property
    def nodes(self) -> list[int]:
        if not self.hops:
            return [self.destination]
        return [self.hops[0].src] + [h.dst for h in self.hops]


@dataclass
class _Residuals:
    flows: dict[tuple, float]
    buffers: dict[tuple, float] | None
    arrivals: dict[tuple, list[tuple]] = field(default_factory=dict)

    def hold_capacity(self, q, node, pool) -> float:
        if self.buffers is None:
            return float("inf")
        return self.buffers.get((q, node, pool), 0.0)

    def take_hold(self, q, node, pool, amount) -> None:
        if self.buffers is not None:
            self.buffers[(q, node, pool)] -= amount


def decompose(flow_schedule: FlowSchedule, topology: Topology,
              plan: EpochPlan,
              buffers: dict[tuple, float] | None = None) -> list[PathStrip]:
    """Decompose a pruned flow schedule into timed path strips.

    Args:
        buffers: the LP's ``B`` values (hold capacities); ``None`` treats
            buffering as unlimited, which is safe on pruned schedules whose
            flows all feed reads.

    Raises :class:`ScheduleError` if some read cannot be traced to the
    origin — which would mean the schedule violates conservation.
    """
    residual = _Residuals(
        flows=dict(flow_schedule.flows),
        buffers=dict(buffers) if buffers is not None else None)
    for (q, i, j, k), _amount in flow_schedule.flows.items():
        pool = k + plan.arrival_offset(i, j) + 1
        residual.arrivals.setdefault((q, j, pool), []).append((q, i, j, k))

    strips: list[PathStrip] = []
    for (q, d, read_epoch), amount in sorted(flow_schedule.reads.items(),
                                             key=lambda kv: kv[0][2]):
        remaining = amount
        guard = 0
        while remaining > _TOL:
            guard += 1
            if guard > 10_000:
                raise ScheduleError("decomposition did not converge")
            strip_amount, hops = _trace_one(residual, q, d,
                                            read_epoch + 1, remaining,
                                            topology)
            strips.append(PathStrip(commodity=q, destination=d,
                                    amount=strip_amount,
                                    hops=tuple(hops),
                                    read_epoch=read_epoch))
            remaining -= strip_amount
    return strips


def _trace_one(residual: _Residuals, q, node: int, pool: int,
               want: float, topology: Topology) -> tuple[float, list[TimedHop]]:
    """Peel one strip of up to ``want`` ending at (node, pool).

    Walks backwards preferring arrivals (so hops are recovered), falling
    back to hold; returns the bottleneck amount and the forward hop list.
    """
    origin = q[0] if isinstance(q, tuple) else q
    hops_reversed: list[TimedHop] = []
    amount = want
    current, current_pool = node, pool
    guard = 0
    while current != origin:
        guard += 1
        if guard > 100_000:
            raise ScheduleError("backward trace did not terminate")
        flow_key = _pick_arrival(residual, q, current, current_pool)
        if flow_key is not None:
            available = residual.flows[flow_key]
            amount = min(amount, available)
            _, i, j, k = flow_key
            hops_reversed.append(TimedHop(src=i, dst=j, epoch=k))
            current, current_pool = i, k
            continue
        if current == origin:
            break
        hold = residual.hold_capacity(q, current, current_pool - 1)
        if hold > _TOL and current_pool > 0 \
                and not topology.is_switch(current):
            amount = min(amount, hold)
            current_pool -= 1
            continue
        raise ScheduleError(
            f"cannot trace commodity {q} at node {current}, pool "
            f"{current_pool} back to origin {origin}")

    # commit: decrement residuals along the chosen chain
    pool_cursor = pool
    node_cursor = node
    for hop in hops_reversed:
        # account holds between this arrival and where we came from
        arrival_pool = hop.epoch + _offset(residual, q, hop)
        for held_pool in range(arrival_pool, pool_cursor):
            residual.take_hold(q, node_cursor, held_pool, amount)
        key = (q, hop.src, hop.dst, hop.epoch)
        residual.flows[key] -= amount
        if residual.flows[key] <= _TOL:
            residual.flows[key] = 0.0
        node_cursor = hop.src
        pool_cursor = hop.epoch
    return amount, list(reversed(hops_reversed))


def _offset(residual: _Residuals, q, hop: TimedHop) -> int:
    # arrival pools were indexed when building residual.arrivals; recompute
    for (qq, j, pool), keys in residual.arrivals.items():
        if qq == q and j == hop.dst:
            if (q, hop.src, hop.dst, hop.epoch) in keys:
                return pool - hop.epoch
    raise ScheduleError("hop not found in arrival index")


def _pick_arrival(residual: _Residuals, q, node: int, pool: int):
    for flow_key in residual.arrivals.get((q, node, pool), []):
        if residual.flows.get(flow_key, 0.0) > _TOL:
            return flow_key
    return None


def strips_to_events(strips: list[PathStrip], plan: EpochPlan):
    """Strips → (integral schedule, synthetic demand) for event execution.

    Each unit of each strip gets a fresh chunk id per source, so the event
    simulator treats the units as distinct bytes even when the LP aggregated
    a source's chunks into one commodity. Use this to measure a fractional
    schedule's continuous-time finish (free of epoch quantisation).
    """
    import math

    from repro.collectives.demand import Demand

    # Allocate integral units per (commodity, destination) across that
    # pair's strips by largest remainder, so fractional path splits round to
    # the demanded total instead of inflating it.
    by_sink: dict[tuple, list[PathStrip]] = {}
    for strip in strips:
        by_sink.setdefault((strip.commodity, strip.destination),
                           []).append(strip)
    sends: list[Send] = []
    triples: list[tuple[int, int, int]] = []
    next_chunk: dict[int, int] = {}
    for (q, d), group in sorted(by_sink.items(), key=lambda kv: str(kv[0])):
        source = q[0] if isinstance(q, tuple) else q
        total_units = max(1, round(sum(s.amount for s in group)))
        floors = [math.floor(s.amount) for s in group]
        leftover = total_units - sum(floors)
        order = sorted(range(len(group)),
                       key=lambda i: group[i].amount - floors[i],
                       reverse=True)
        units = list(floors)
        for i in order[:max(0, leftover)]:
            units[i] += 1
        for strip, count in zip(group, units):
            for _ in range(count):
                chunk = next_chunk.get(source, 0)
                next_chunk[source] = chunk + 1
                triples.append((source, chunk, d))
                for hop in strip.hops:
                    sends.append(Send(epoch=hop.epoch, source=source,
                                      chunk=chunk, src=hop.src, dst=hop.dst))
    num_epochs = max((s.epoch for s in sends), default=0) + 1
    schedule = Schedule(sends=sorted(sends), tau=plan.tau,
                        chunk_bytes=plan.chunk_bytes, num_epochs=num_epochs)
    return schedule, Demand.from_triples(triples)


def strips_to_schedule(strips: list[PathStrip], plan: EpochPlan,
                       chunk_quantum: float = 1.0) -> Schedule:
    """Quantise strips into unit-chunk sends (for export/visualisation).

    Strips whose amount is below the quantum are merged per (commodity,
    destination, path) before rounding; sub-chunk ids are appended after the
    original chunk id so exported offsets stay unique.
    """
    sends: list[Send] = []
    counters: dict[tuple, int] = {}
    for strip in strips:
        units = max(1, round(strip.amount / chunk_quantum))
        q = strip.commodity
        source = q[0] if isinstance(q, tuple) else q
        base_chunk = q[1] if isinstance(q, tuple) else 0
        for _ in range(units):
            sub = counters.get((q, strip.destination), 0)
            counters[(q, strip.destination)] = sub + 1
            for hop in strip.hops:
                sends.append(Send(epoch=hop.epoch, source=source,
                                  chunk=base_chunk, src=hop.src,
                                  dst=hop.dst))
    num_epochs = max((s.epoch for s in sends), default=0) + 1
    return Schedule(sends=sorted(set(sends)), tau=plan.tau,
                    chunk_bytes=plan.chunk_bytes, num_epochs=num_epochs)
