"""Shared sub-solve execution: thread fan-out and fingerprint dedup.

Both decompositions in this package — POP partitions (:mod:`.pop`) and
hierarchical chassis phases (:mod:`.hierarchical`) — produce batches of
*independent* solver instances that today's callers run back to back.
This module is the one place that knows how to run such a batch:

* :func:`run_subsolves` fans zero-argument solve thunks out on a thread
  pool and returns their results in task order. Threads (not processes)
  are the right default here because the thunks usually close over live
  in-process state — a partition's growing :class:`~repro.core.lp.
  IncrementalLp` model, a warm-start slot — that cannot cross a pickle
  boundary, and scipy's HiGHS calls release the GIL for the long solver
  stretches. Process fan-out for cold (stateless) solves lives in the
  service layer (:class:`~repro.service.pool.SolvePool`).
* :class:`SubSolveCache` coalesces *identical* sub-instances onto one
  solve by caller-provided fingerprint: the first requester computes, any
  concurrent or later requester for the same key waits on (or reads) the
  same future. A symmetric G-chassis fabric pays for 1 chassis solve
  instead of G per phase.

Error semantics mirror a sequential loop: every task runs to completion,
then the **lowest-index** failure is re-raised, so retry logic upstream
(e.g. POP's horizon doubling) observes the same exception no matter how
the batch was scheduled.
"""

from __future__ import annotations

import concurrent.futures as _futures
import os
import threading
from collections.abc import Callable, Sequence

from repro.obs.trace import span as _obs_span


def default_jobs() -> int:
    """Fan-out width when the caller does not pick one: the CPU count."""
    return max(1, os.cpu_count() or 1)


def run_subsolves(tasks: Sequence[Callable[[], object]], *,
                  jobs: int | None = None,
                  label: str = "subsolve") -> list:
    """Run independent sub-solve thunks; results come back in task order.

    Every task runs to completion regardless of width — including after
    another task failed — and the **lowest-index** failure is then
    re-raised. Side effects (grown models, recorded warm starts) are
    therefore identical whether the batch ran on one thread or eight,
    which is what lets a retry loop above produce bit-identical results
    for sequential and parallel dispatch.

    Args:
        tasks: zero-argument callables, one per sub-instance. Each must
            touch only its own state (its own model/warm-start slot) —
            the batch may run on concurrent threads.
        jobs: maximum concurrent tasks; ``None`` means
            :func:`default_jobs`. ``jobs <= 1`` (or a single task) runs
            on the calling thread with no pool.
        label: obs span prefix — the fan-out emits ``{label}.fanout``.

    Raises:
        The lowest-index task's exception, after every task has run.
    """
    tasks = list(tasks)
    width = default_jobs() if jobs is None else jobs
    if len(tasks) <= 1 or width <= 1:
        results, first_error = [], None
        for task in tasks:
            try:
                results.append(task())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results
    width = min(width, len(tasks))
    with _obs_span(f"{label}.fanout", tasks=len(tasks), jobs=width):
        with _futures.ThreadPoolExecutor(
                max_workers=width,
                thread_name_prefix="teccl-subsolve") as pool:
            futures = [pool.submit(task) for task in tasks]
            _futures.wait(futures)
    for future in futures:
        error = future.exception()
        if error is not None:
            raise error
    return [future.result() for future in futures]


class SubSolveCache:
    """Fingerprint-keyed memo with in-flight coalescing.

    :meth:`solve` is safe to call from many threads: the first caller for
    a key becomes the owner and computes; everyone else (concurrent or
    later) blocks on the owner's future and shares the result object. An
    owner's exception is cached too — all requesters for that key see the
    same failure, never a silent re-solve.

    Attributes:
        solves: distinct keys computed (owner runs).
        hits: requests served from an existing entry or in-flight solve.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, _futures.Future] = {}
        self.solves = 0
        self.hits = 0

    def solve(self, key: str, fn: Callable[[], object]) -> tuple[object, bool]:
        """Return ``(result, hit)`` — ``hit`` is True when ``fn`` did not run."""
        with self._lock:
            future = self._entries.get(key)
            owner = future is None
            if owner:
                future = _futures.Future()
                self._entries[key] = future
                self.solves += 1
            else:
                self.hits += 1
        if owner:
            try:
                future.set_result(fn())
            except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
                future.set_exception(exc)
        return future.result(), not owner
