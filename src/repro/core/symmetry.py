"""Symmetry reduction: quotient instances by fabric automorphisms (§2(a)).

The paper's Table-4 fabrics — rings, tori, NDv2 pods, symmetric chassis
groups — are riddled with automorphisms: node permutations that map the
fabric onto itself (links to links with equal capacity and alpha) *and*
leave the demand invariant. Under such a permutation whole families of
flow/buffer/read variables are provably interchangeable, yet the LP/MILP
builders emit every one of them. This module detects those automorphisms
and collapses the instance:

* **Detection** starts from cheap candidate families on the known builders
  (ring/torus rotations and reflections, chassis/pod block permutations,
  intra-block rotations, leaf exchanges within refinement color classes)
  and *verifies* every candidate with :func:`is_automorphism` — a heuristic
  miss only costs speedup, never correctness.
* **LP quotient** (:func:`reduce_lp`): every verified node permutation
  induces a column permutation of the built model; the model is averaged
  onto the fixed subspace — one variable per column orbit, constraints
  deduplicated — which preserves the exact optimum by convexity (the
  orbit-average of any feasible point is feasible with equal objective).
  The reduced solution lifts back by copying each orbit value to all
  members.
* **MILP cuts** (:func:`add_symmetry_cuts`): quotient restriction is *not*
  valid for integer programs, so instead optimum-preserving lex-leader
  cuts are added per verified generator — at least one optimal solution
  (the lexicographically largest in its orbit) always survives.
* **Cache canonicalization** (:func:`canonicalize_demand`): automorphisms
  of the topology alone relabel the demand; the lexicographically minimal
  relabeling is a canonical form, so symmetric requests collapse to one
  cache entry (used by the planner, salted into ``FINGERPRINT_VERSION``).

Every reduced result is replay-vetted by the conformance oracle at the
call sites in ``core/lp.py`` / ``core/milp.py``, with automatic cold
fallback to the full model on any violation. Soundness therefore never
rests on the detection heuristics: the layers are (1) exact verification
of each generator, (2) exact verification of the induced column
permutation against the compiled matrix, (3) conformance replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.collectives.demand import Demand
from repro.obs.metrics import get_registry as _default_registry
from repro.obs.trace import rspan as _obs_rspan
from repro.obs.trace import span as _obs_span
from repro.solver.model import CompiledModel, Model
from repro.solver.options import SolverOptions
from repro.solver.result import SolveResult
from repro.topology.topology import Topology

#: "auto" mode only attempts a reduction above this many columns — below
#: it the detection/quotient overhead rivals the solve itself.
AUTO_SYMMETRY_MIN_VARS = 2000

#: cap on verified generators kept (more generators refine orbits with
#: rapidly diminishing returns and linearly growing verification cost)
MAX_GENERATORS = 32

#: node-count ceiling for candidate enumeration (the families below are
#: O(n^2) candidates each verified in O(links + demand))
MAX_NODES = 256

#: BFS budget (group elements visited) for demand canonicalization
CANONICAL_BFS_BUDGET = 512


# ----------------------------------------------------------------------
# automorphism verification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Automorphism:
    """A verified symmetry of one (topology, demand) instance.

    ``perm`` maps old node id -> new node id. ``chunk_map`` carries the
    per-source chunk relabeling that accompanies the node permutation:
    chunk ids are arbitrary labels (e.g. ``collectives.alltoall`` encodes
    the destination *index* in the chunk id), so the demand is stabilized
    up to a bijection of each source's chunks — ``chunk_map[(s, c)] =
    (perm[s], c')`` with the destination set of ``(s, c)`` mapping exactly
    onto that of ``(perm[s], c')``. ``None`` when verified against the
    topology alone.
    """

    perm: tuple[int, ...]
    chunk_map: dict | None = None


def chunk_relabeling(demand: Demand, perm) -> dict | None:
    """The per-source chunk bijection under which ``perm`` stabilizes
    ``demand``, or ``None`` when no such bijection exists.

    Chunks are matched by the image of their destination set — two chunks
    of one source with identical destination sets are interchangeable, so
    a greedy exact matching is complete.
    """
    by_source: dict[int, dict[int, set]] = {}
    for (s, c, d) in demand.triples():
        by_source.setdefault(s, {}).setdefault(c, set()).add(d)
    mapping: dict = {}
    for s, chunks in by_source.items():
        t = perm[s]
        target = by_source.get(t)
        if target is None or len(target) != len(chunks):
            return None
        pool: dict[frozenset, list[int]] = {}
        for c, dests in target.items():
            pool.setdefault(frozenset(dests), []).append(c)
        for bucket in pool.values():
            bucket.sort(reverse=True)
        for c in sorted(chunks):
            image = frozenset(perm[d] for d in chunks[c])
            bucket = pool.get(image)
            if not bucket:
                return None
            mapping[(s, c)] = (t, bucket.pop())
    return mapping


def is_automorphism(topology: Topology, demand: Demand | None,
                    perm) -> bool:
    """Exactly verify that ``perm`` is an automorphism of (topology, demand).

    ``perm`` maps old node id -> new node id and must be a bijection on
    ``range(num_nodes)``. Checks: switches map onto switches, every link
    (i, j) maps onto a link (perm[i], perm[j]) with identical capacity and
    alpha, and (when given) the demand is invariant under (s, c, d) ->
    (perm[s], c, perm[d]) up to a per-source relabeling of its chunk ids
    (see :func:`chunk_relabeling` — chunk ids are labels, not structure).
    """
    return _verify(topology, demand, perm) is not None


def _verify(topology: Topology, demand: Demand | None,
            perm) -> Automorphism | None:
    n = topology.num_nodes
    p = list(perm)
    if len(p) != n or sorted(p) != list(range(n)):
        return None
    if frozenset(p[s] for s in topology.switches) != topology.switches:
        return None
    for (i, j), link in topology.links.items():
        image = topology.links.get((p[i], p[j]))
        if image is None or image.capacity != link.capacity \
                or image.alpha != link.alpha:
            return None
    chunk_map = None
    if demand is not None:
        chunk_map = chunk_relabeling(demand, p)
        if chunk_map is None:
            return None
    return Automorphism(perm=tuple(p), chunk_map=chunk_map)


# ----------------------------------------------------------------------
# candidate generator families
# ----------------------------------------------------------------------
def _wl_colors(topology: Topology, demand: Demand | None) -> list[int]:
    """1-WL refinement colors: a necessary invariant of any automorphism."""
    n = topology.num_nodes
    triples = list(demand.triples()) if demand is not None else []
    # chunk ids are labels, not structure (automorphisms may relabel them
    # per source) — signatures use destination-set sizes and sink counts
    chunk_dests: dict[tuple[int, int], int] = {}
    dst_sig = {v: 0 for v in range(n)}
    for (s, c, d) in triples:
        chunk_dests[(s, c)] = chunk_dests.get((s, c), 0) + 1
        dst_sig[d] += 1
    src_sig: dict[int, list[int]] = {v: [] for v in range(n)}
    for (s, _c), size in chunk_dests.items():
        src_sig[s].append(size)
    colors = {}
    seen: dict[tuple, int] = {}
    for v in range(n):
        key = (topology.is_switch(v), tuple(sorted(src_sig[v])),
               dst_sig[v])
        colors[v] = seen.setdefault(key, len(seen))
    for _ in range(n):
        seen = {}
        nxt = {}
        for v in range(n):
            outs = sorted((l.capacity, l.alpha, colors[l.dst])
                          for l in topology.out_edges(v))
            ins = sorted((l.capacity, l.alpha, colors[l.src])
                         for l in topology.in_edges(v))
            key = (colors[v], tuple(outs), tuple(ins))
            nxt[v] = seen.setdefault(key, len(seen))
        if len(set(nxt.values())) == len(set(colors.values())):
            colors = nxt
            break
        colors = nxt
    return [colors[v] for v in range(n)]


def _candidate_perms(topology: Topology, demand: Demand | None):
    """Yield candidate node permutations from the builder families.

    Every yield is a *candidate* only — callers must run
    :func:`is_automorphism` on each. Families: full rotations and
    reflections (rings/tori), block rotations and adjacent block swaps for
    every divisor block size (chassis/pod groups, node-numbered
    block-major), simultaneous intra-block rotations (torus columns), and
    transpositions within 1-WL color classes (leaf exchanges).
    """
    n = topology.num_nodes
    ids = list(range(n))
    for r in range(1, n):
        yield [(i + r) % n for i in ids]
    for a in range(n):
        yield [(a - i) % n for i in ids]
    for size in range(2, n // 2 + 1):
        if n % size:
            continue
        blocks = n // size
        # rotate blocks by one
        yield [((i // size + 1) % blocks) * size + i % size for i in ids]
        # swap the first two blocks
        swap = list(ids)
        for off in range(size):
            swap[off], swap[size + off] = swap[size + off], swap[off]
        yield swap
        # rotate within every block simultaneously
        yield [(i // size) * size + (i + 1) % size for i in ids]
    classes: dict[int, list[int]] = {}
    for v, color in enumerate(_wl_colors(topology, demand)):
        classes.setdefault(color, []).append(v)
    budget = 4 * n
    for members in classes.values():
        for a, b in zip(members, members[1:]):
            if budget <= 0:
                return
            budget -= 1
            t = list(ids)
            t[a], t[b] = b, a
            yield t


def find_generators(topology: Topology, demand: Demand | None = None,
                    max_generators: int = MAX_GENERATORS,
                    ) -> list[Automorphism]:
    """Verified, non-identity automorphism generators of (topology, demand).

    Pass ``demand=None`` for automorphisms of the topology alone (the
    group used for cache canonicalization, under which the demand is
    *relabeled* rather than stabilized).
    """
    if topology.num_nodes > MAX_NODES:
        return []
    identity = list(range(topology.num_nodes))
    out: list[Automorphism] = []
    seen = {tuple(identity)}
    with _obs_span("symmetry.detect", nodes=topology.num_nodes) as sp:
        for cand in _candidate_perms(topology, demand):
            key = tuple(cand)
            if key in seen:
                continue
            seen.add(key)
            auto = _verify(topology, demand, cand)
            if auto is not None:
                out.append(auto)
                if len(out) >= max_generators:
                    break
        sp.set_attr(generators=len(out))
    return out


# ----------------------------------------------------------------------
# induced column permutations
# ----------------------------------------------------------------------
def _col(var) -> int:
    return var.index if hasattr(var, "index") else int(var)


def _map_key(key, auto: Automorphism):
    if isinstance(key, tuple):
        if auto.chunk_map is not None:
            return auto.chunk_map.get(key)
        return (auto.perm[key[0]],) + key[1:]
    return auto.perm[key]


def induced_column_permutation(auto: Automorphism, num_cols: int,
                               f_vars: dict, b_vars: dict, r_vars: dict):
    """The column permutation a node automorphism induces on a built model.

    Formulation keys map as ``f(q, i, j, k) -> (auto·q, perm[i], perm[j],
    k)``, ``b(q, n, k) -> (auto·q, perm[n], k)`` and ``r(q, d, k) ->
    (auto·q, perm[d], k)`` where ``auto·q`` relabels an aggregated int key
    through the node permutation and an (s, c) commodity key through the
    automorphism's chunk map. Returns ``None`` when any image key is
    absent (the permutation does not act on this model) or the induced
    map is not a bijection; columns in none of the dicts stay fixed —
    :func:`verify_column_permutation` is the backstop for any auxiliary
    structure.
    """
    perm = auto.perm
    pi = np.arange(num_cols, dtype=np.int64)
    for vars_ in (f_vars, b_vars, r_vars):
        for key, var in vars_.items():
            head = _map_key(key[0], auto)
            if head is None:
                return None
            image = (head,) + tuple(
                perm[x] for x in key[1:-1]) + (key[-1],)
            target = vars_.get(image)
            if target is None:
                return None
            pi[_col(var)] = _col(target)
    if not np.array_equal(np.sort(pi), np.arange(num_cols)):
        return None
    return pi


def verify_column_permutation(compiled: CompiledModel, pi,
                              seed: int = 0) -> bool:
    """Verify ``pi`` leaves the compiled model invariant.

    A feasible ``x`` must map to a feasible ``x'`` with ``x'[pi[i]] =
    x[i]`` and equal objective. Exact checks: ``c[pi] == c``, column
    bounds and integrality invariant. The constraint set is checked as a
    row multiset: for random ``w``, the multisets of ``(A w, lb, ub)`` and
    ``(A w[pi], lb, ub)`` rows must agree — sound up to hash collision
    odds, and the conformance replay at the call sites is the hard gate.
    A spurious rejection only costs the reduction, never correctness.
    """
    pi = np.asarray(pi, dtype=np.int64)
    if not (np.array_equal(compiled.c[pi], compiled.c)
            and np.array_equal(compiled.col_lower[pi], compiled.col_lower)
            and np.array_equal(compiled.col_upper[pi], compiled.col_upper)
            and np.array_equal(compiled.integrality[pi],
                               compiled.integrality)):
        return False
    rng = np.random.default_rng(seed)
    w = rng.uniform(1.0, 2.0, size=(compiled.A.shape[1], 2))
    u = compiled.A @ w
    v = compiled.A @ w[pi]
    return _row_multisets_match(u, v, compiled.row_lower, compiled.row_upper)


def _bound_key(bounds: np.ndarray) -> np.ndarray:
    return np.nan_to_num(bounds, posinf=1e300, neginf=-1e300)


def _row_multisets_match(u: np.ndarray, v: np.ndarray, lb: np.ndarray,
                         ub: np.ndarray) -> bool:
    scale = max(1.0, float(np.abs(u).max(initial=0.0)))
    uq = np.round(u * (1e7 / scale)).astype(np.int64)
    vq = np.round(v * (1e7 / scale)).astype(np.int64)
    lbq = _bound_key(lb)
    ubq = _bound_key(ub)
    order_u = np.lexsort((uq[:, 1], uq[:, 0], ubq, lbq))
    order_v = np.lexsort((vq[:, 1], vq[:, 0], ubq, lbq))
    return (np.array_equal(uq[order_u], vq[order_v])
            and np.array_equal(lbq[order_u], lbq[order_v])
            and np.array_equal(ubq[order_u], ubq[order_v]))


# ----------------------------------------------------------------------
# orbits
# ----------------------------------------------------------------------
def column_orbits(num_cols: int, perms) -> tuple[np.ndarray, np.ndarray]:
    """Orbit partition of the columns under the given permutations.

    Returns ``(orbit, reps)``: ``orbit[i]`` is the dense orbit id of
    column ``i`` (ids ``0..k-1`` ordered by smallest member) and
    ``reps[o]`` the smallest column in orbit ``o``.
    """
    parent = list(range(num_cols))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for p in perms:
        for i, j in enumerate(np.asarray(p).tolist()):
            if i == j:
                continue
            ri, rj = find(i), find(j)
            if ri != rj:
                if ri < rj:
                    parent[rj] = ri
                else:
                    parent[ri] = rj
    roots = np.fromiter((find(i) for i in range(num_cols)),
                        dtype=np.int64, count=num_cols)
    reps, orbit = np.unique(roots, return_inverse=True)
    return orbit.astype(np.int64), reps


# ----------------------------------------------------------------------
# LP quotient
# ----------------------------------------------------------------------
@dataclass
class OrbitMap:
    """A verified reduction of a built model onto its symmetric subspace.

    Attributes:
        generators: the verified node permutations used.
        orbit: dense orbit id per original column.
        reps: representative (smallest) original column per orbit.
        stats: reduction bookkeeping merged into the solve stats.
    """

    generators: list[Automorphism]
    orbit: np.ndarray
    reps: np.ndarray
    reduced: Model | None = None
    stats: dict = field(default_factory=dict)

    @property
    def num_orbits(self) -> int:
        return len(self.reps)


def reduce_lp(model: Model, generators, num_cols: int, f_vars: dict,
              b_vars: dict, r_vars: dict) -> OrbitMap | None:
    """Build the quotient LP of ``model`` under verified generators.

    Restricting a symmetric LP to the fixed subspace (all orbit members
    equal) preserves the exact optimum: the orbit-average of any feasible
    point is feasible by convexity, has equal objective by ``c[pi] == c``,
    and lies in the subspace. The quotient substitutes ``x = S y`` (S the
    0/1 column-orbit selector), deduplicates the rows that become
    identical, and keeps representative bounds (constant on orbits by
    generator verification). Returns ``None`` when nothing collapses or no
    generator survives verification.
    """
    compiled = model.compile()
    colperms = []
    for gen in generators:
        pi = induced_column_permutation(gen, num_cols, f_vars, b_vars,
                                        r_vars)
        if pi is not None and verify_column_permutation(compiled, pi):
            colperms.append(pi)
    if not colperms:
        return None
    if np.any(compiled.integrality != 0):
        return None
    orbit, reps = column_orbits(num_cols, colperms)
    k = len(reps)
    if k >= num_cols:
        return None
    with _obs_span("symmetry.quotient", cols=num_cols, orbits=k):
        selector = sparse.csr_matrix(
            (np.ones(num_cols), (np.arange(num_cols), orbit)),
            shape=(num_cols, k))
        a_red = (compiled.A @ selector).tocsr()
        a_red.sort_indices()
        keep = _dedup_rows(a_red, compiled.row_lower, compiled.row_upper)
        a_red = a_red[keep]
        reduced = Model(name="quotient", sense=compiled.sense)
        reduced.add_var_array(k, lb=compiled.col_lower[reps],
                              ub=compiled.col_upper[reps])
        coo = a_red.tocoo()
        reduced.add_constr_coo(coo.row, coo.col, coo.data,
                               lb=compiled.row_lower[keep],
                               ub=compiled.row_upper[keep],
                               num_rows=a_red.shape[0])
        c_red = np.zeros(k)
        np.add.at(c_red, orbit, compiled.c)
        reduced.set_objective_array(np.arange(k), c_red,
                                    const=compiled.obj_const)
        stats = {
            "symmetry_generators": len(colperms),
            "symmetry_orbits": k,
            "symmetry_cols_full": num_cols,
            "symmetry_cols_reduced": k,
            "symmetry_rows_full": int(compiled.A.shape[0]),
            "symmetry_rows_reduced": int(a_red.shape[0]),
        }
        return OrbitMap(generators=list(generators), orbit=orbit, reps=reps,
                        reduced=reduced, stats=stats)


def _dedup_rows(a: sparse.csr_matrix, lb: np.ndarray,
                ub: np.ndarray) -> np.ndarray:
    """Indices of rows to keep after dropping exact duplicates.

    Candidate duplicates are grouped by a randomized hash and then
    compared *exactly* (sparsity pattern, data, both bounds) against the
    group representative — a float-association mismatch merely keeps the
    row, which loses compression but never correctness.
    """
    m = a.shape[0]
    rng = np.random.default_rng(1)
    w = rng.integers(1, 1 << 30, size=(a.shape[1], 2)).astype(float)
    h = a @ w
    lbq = _bound_key(lb)
    ubq = _bound_key(ub)
    order = np.lexsort((h[:, 1], h[:, 0], ubq, lbq))
    indptr, indices, data = a.indptr, a.indices, a.data

    def _same(r1: int, r2: int) -> bool:
        s1, e1 = indptr[r1], indptr[r1 + 1]
        s2, e2 = indptr[r2], indptr[r2 + 1]
        return (lb[r1] == lb[r2] and ub[r1] == ub[r2]
                and e1 - s1 == e2 - s2
                and np.array_equal(indices[s1:e1], indices[s2:e2])
                and np.array_equal(data[s1:e1], data[s2:e2]))

    keep = []
    rep = -1
    for r in order.tolist():
        if rep >= 0 and h[r, 0] == h[rep, 0] and h[r, 1] == h[rep, 1] \
                and _same(rep, r):
            continue
        rep = r
        keep.append(r)
    return np.sort(np.asarray(keep, dtype=np.int64))


def note_reduction() -> None:
    """Count one attempted quotient solve in the process registry.

    Together with :func:`note_fallback` this feeds the SLO alert engine's
    symmetry-fallback-rate rule (:mod:`repro.obs.alerts`): a fabric where
    a quarter of reduced solves fail vetting is burning the speedup twice.
    """
    _default_registry().counter(
        "symmetry_reductions_total",
        "Quotient (symmetry-reduced) solves attempted").inc()


def note_fallback() -> None:
    """Count one conformance-triggered fallback to the full model."""
    _default_registry().counter(
        "symmetry_fallbacks_total",
        "Symmetry-reduced solves that fell back to the full model").inc()


def solve_reduced(orbit_map: OrbitMap,
                  options: SolverOptions) -> SolveResult:
    """Solve the quotient model and lift the solution to the full fabric.

    The lift copies each orbit value to every member (``x[i] =
    y[orbit[i]]``), which is exactly the symmetric feasible point the
    quotient optimizes over; statuses carry over unchanged (the quotient
    is infeasible iff the full LP is).
    """
    note_reduction()
    with _obs_rspan("symmetry.solve", orbits=orbit_map.num_orbits,
                    cols_full=orbit_map.stats.get("cols_full"),
                    cols_reduced=orbit_map.stats.get("cols_reduced")):
        result = orbit_map.reduced.solve(options)
    values = None
    if result.values is not None:
        values = np.asarray(result.values)[orbit_map.orbit]
    stats = dict(result.stats)
    stats.update(orbit_map.stats)
    return SolveResult(status=result.status, objective=result.objective,
                       values=values, solve_time=result.solve_time,
                       mip_gap=result.mip_gap, message=result.message,
                       stats=stats)


# ----------------------------------------------------------------------
# MILP lex-leader cuts
# ----------------------------------------------------------------------
def add_symmetry_cuts(model: Model, generators, num_cols: int,
                      f_vars: dict, b_vars: dict, r_vars: dict) -> int:
    """Add optimum-preserving lex-leader cuts per verified generator.

    For an integer program the quotient restriction is invalid (forcing an
    orbit equal can lose every optimum), so instead each solution orbit is
    pruned to representatives containing its lexicographically largest
    element: for a generator ``pi`` with ``p`` the smallest moved column,
    both ``pi`` and its inverse fix all columns below ``p``, so the
    lex-max element satisfies ``x[p] >= x[pi(p)]`` and ``x[p] >=
    x[pi^-1(p)]`` — every orbit keeps at least one optimum and the optimal
    value is unchanged. Returns the number of cut rows added.
    """
    compiled = model.compile()
    added = 0
    for gen in generators:
        pi = induced_column_permutation(gen, num_cols, f_vars, b_vars,
                                        r_vars)
        if pi is None or not verify_column_permutation(compiled, pi):
            continue
        moved = np.nonzero(pi != np.arange(num_cols))[0]
        if not len(moved):
            continue
        p = int(moved[0])
        inv = np.empty_like(pi)
        inv[pi] = np.arange(num_cols)
        for q in {int(pi[p]), int(inv[p])}:
            model.add_constr_coo([0, 0], [p, q], [1.0, -1.0],
                                 lb=0.0, ub=float("inf"), num_rows=1)
            added += 1
    return added


# ----------------------------------------------------------------------
# gating and cache canonicalization
# ----------------------------------------------------------------------
def symmetry_enabled(options: SolverOptions, num_vars: int) -> bool:
    """Whether a reduction should even be attempted for this model."""
    if options.symmetry == "off":
        return False
    if options.symmetry == "on":
        return True
    return num_vars >= AUTO_SYMMETRY_MIN_VARS


def canonicalize_demand(topology: Topology, demand: Demand,
                        budget: int = CANONICAL_BFS_BUDGET,
                        generators: list[Automorphism] | None = None,
                        ) -> tuple[Demand, list[int]]:
    """Lexicographically minimal relabeling of ``demand`` under the
    topology's automorphism group, with the permutation that achieves it.

    Returns ``(canonical_demand, sigma)`` where ``canonical_demand ==
    sigma · demand``. Two demands related by a topology automorphism map
    to the same canonical form whenever the budgeted BFS over the
    generator closure reaches the global minimum from both — a truncated
    search can only miss a collapse, never produce a wrong equivalence.
    ``sigma`` is the identity when no symmetry is found.
    """
    n = topology.num_nodes
    identity = list(range(n))
    if generators is None:
        generators = find_generators(topology, None)
    if not generators:
        return demand, identity

    def relabeled(sig: tuple) -> tuple:
        return tuple(sorted((sig[s], c, sig[d])
                            for (s, c, d) in demand.triples()))

    best_sigma = tuple(identity)
    best_key = relabeled(best_sigma)
    seen = {best_sigma}
    frontier = [best_sigma]
    while frontier and len(seen) < budget:
        nxt = []
        for sigma in frontier:
            for gen in generators:
                comp = tuple(gen.perm[sigma[i]] for i in range(n))
                if comp in seen:
                    continue
                seen.add(comp)
                nxt.append(comp)
                key = relabeled(comp)
                if key < best_key:
                    best_key = key
                    best_sigma = comp
                if len(seen) >= budget:
                    break
            if len(seen) >= budget:
                break
        frontier = nxt
    if best_sigma == tuple(identity):
        return demand, identity
    return Demand.from_triples(best_key), list(best_sigma)


def invert_permutation(perm) -> list[int]:
    """The inverse node permutation (new id -> old id becomes old -> new)."""
    inv = [0] * len(perm)
    for i, j in enumerate(perm):
        inv[j] = i
    return inv
