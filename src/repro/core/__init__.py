"""TE-CCL core: the paper's formulations and the synthesis facade."""

from repro.core.astar import AStarOutcome, solve_astar
from repro.core.config import AStarConfig, EpochMode, SwitchModel, TecclConfig
from repro.core.decompose import PathStrip, decompose, strips_to_schedule
from repro.core.epochs import (EpochPlan, algorithm1_num_epochs,
                               build_epoch_plan, epoch_duration,
                               path_based_epoch_bound, plan_with_tau)
from repro.core.hierarchical import (ChassisPlan, HierarchicalOutcome,
                                     PhaseResult, chassis_groups,
                                     hierarchical_allgather)
from repro.core.lp import (IncrementalLp, LpOutcome, minimize_epochs_lp,
                           solve_lp)
from repro.core.milp import MilpOutcome, solve_milp
from repro.core.pop import (Partition, PopOutcome, merge_flow_schedules,
                            partition_demand, pop_auto_horizon,
                            solve_lp_pop, solve_pop_partition)
from repro.core.subsolve import SubSolveCache, default_jobs, run_subsolves
from repro.core.schedule import FlowSchedule, Schedule, Send
from repro.core.solve import (Method, SynthesisResult, synthesize,
                              synthesize_multi_tenant)

__all__ = [
    "TecclConfig", "AStarConfig", "EpochMode", "SwitchModel",
    "EpochPlan", "build_epoch_plan", "plan_with_tau", "epoch_duration",
    "algorithm1_num_epochs", "path_based_epoch_bound",
    "solve_milp", "MilpOutcome",
    "solve_lp", "minimize_epochs_lp", "LpOutcome", "IncrementalLp",
    "solve_astar", "AStarOutcome",
    "synthesize", "synthesize_multi_tenant", "Method", "SynthesisResult",
    "Schedule", "FlowSchedule", "Send",
    "solve_lp_pop", "partition_demand", "merge_flow_schedules",
    "Partition", "PopOutcome", "pop_auto_horizon", "solve_pop_partition",
    "run_subsolves", "SubSolveCache", "default_jobs",
    "decompose", "strips_to_schedule", "PathStrip",
    "hierarchical_allgather", "chassis_groups", "ChassisPlan",
    "HierarchicalOutcome", "PhaseResult",
]
