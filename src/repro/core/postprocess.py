"""Post-processing: zero out flows that serve no demand (§3.1).

The TE-CCL objective has multiple optima — schedules may contain sends that
satisfy nothing. The paper removes them after solving with a reverse-DFS from
each destination; adding an objective penalty instead slows the solver. This
module implements that pass for both solution flavors:

* :func:`prune_sends` — integral (MILP/A*) solutions. Copy semantics: one
  buffered chunk can serve many downstream needs, so marking is boolean.
* :func:`prune_fractional` — LP solutions. Conservation is an equality, so
  pruning allocates *mass* backwards through the time-expanded pools.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.collectives.demand import Demand
from repro.core.epochs import EpochPlan
from repro.core.schedule import FlowSchedule, Schedule, Send
from repro.errors import ScheduleError
from repro.topology.topology import Topology

_TOL = 1e-7


def prune_sends(schedule: Schedule, demand: Demand, topology: Topology,
                plan: EpochPlan,
                delivered_epoch: dict[tuple[int, int, int], int],
                buffer_values: Callable[[int, int, int, int], bool] | None = None,
                store_and_forward: bool = True,
                ) -> Schedule:
    """Drop sends that serve no demanded triple.

    Args:
        schedule: the raw MILP/A* schedule.
        delivered_epoch: per demanded triple (s, c, d), the epoch by whose end
            the chunk must be at d (first epoch the solver reported delivery).
        buffer_values: optional oracle ``(s, c, n, k) -> bool`` saying whether
            the solution kept the chunk buffered at n at the start of epoch k.
            When omitted, buffering is assumed unlimited (chunks persist once
            they arrive) — correct whenever the model had no buffer limit.
        store_and_forward: whether the model let non-source GPUs buffer
            before relaying. Under the Figure 9 ablation a relayed send is
            fed by an arrival in that exact epoch (reads still draw the
            destination's buffer).

    The walk starts from every demanded triple and follows providers backwards
    in the time-expanded graph; a send is kept iff some demand transitively
    requires it. Raises :class:`ScheduleError` when the solution cannot
    actually supply a demand (which would mean the model was wrong).
    """
    # Index arrivals: (source, chunk, node) -> list of (buffer_epoch, send).
    arrivals: dict[tuple[int, int, int], list[tuple[int, Send]]] = {}
    for send in schedule.sends:
        buffer_epoch = send.epoch + plan.arrival_offset(send.src, send.dst) + 1
        arrivals.setdefault((send.source, send.chunk, send.dst), []).append(
            (buffer_epoch, send))
    for lst in arrivals.values():
        lst.sort()

    switches = topology.switches
    kept: set[Send] = set()
    # memo of satisfied needs: (source, chunk, node, epoch-of-need, relayed)
    satisfied: set[tuple[int, int, int, int, bool]] = set()

    def holds(s: int, c: int, n: int, k: int) -> bool:
        if buffer_values is None:
            return True
        return buffer_values(s, c, n, k)

    def satisfy(s: int, c: int, node: int, k: int,
                relayed: bool = False) -> None:
        """Ensure chunk (s, c) is available at `node` at buffer index k.

        ``relayed`` marks a need created by an outgoing send under the
        no-store-and-forward ablation: the chunk cannot come from the
        buffer, it must be arriving in that exact epoch.
        """
        key = (s, c, node, k, relayed)
        if key in satisfied:
            return
        satisfied.add(key)
        if node == s:
            return  # the source holds its own chunk from epoch 0
        if node in switches or relayed:
            # A switch (or a no-SF relay) holds nothing: the chunk must be
            # *arriving* exactly at buffer index k (sent Δ+1 epochs earlier).
            for buffer_epoch, send in arrivals.get((s, c, node), []):
                if buffer_epoch == k:
                    _require_send(s, c, send)
                    return
            raise ScheduleError(
                f"chunk ({s},{c}) needed at "
                f"{'switch' if node in switches else 'relay'} {node} at "
                f"epoch {k} but no send arrives then")
        # GPU: find the latest arrival at buffer index k' <= k such that the
        # chunk stayed buffered from k' through k.
        best: tuple[int, Send] | None = None
        for buffer_epoch, send in arrivals.get((s, c, node), []):
            if buffer_epoch <= k:
                if all(holds(s, c, node, t) for t in range(buffer_epoch, k + 1)):
                    if best is None or buffer_epoch > best[0]:
                        best = (buffer_epoch, send)
        if best is None:
            raise ScheduleError(
                f"chunk ({s},{c}) needed at node {node} by epoch {k} "
                "but never arrives")
        _require_send(s, c, best[1])

    def _require_send(s: int, c: int, send: Send) -> None:
        if send in kept:
            return
        kept.add(send)
        # The sender needed the chunk at the send's start epoch; under the
        # Figure 9 ablation a non-source sender relays an arrival instead.
        satisfy(s, c, send.src, send.epoch,
                relayed=not store_and_forward and send.src != s)

    for (s, c, d), epoch in delivered_epoch.items():
        if not demand.wants(s, c, d):
            continue
        satisfy(s, c, d, epoch + 1)

    return Schedule(sends=sorted(kept), tau=schedule.tau,
                    chunk_bytes=schedule.chunk_bytes,
                    num_epochs=schedule.num_epochs)


def prune_fractional(flow_schedule: FlowSchedule, topology: Topology,
                     plan: EpochPlan,
                     buffers: dict[tuple, float] | None = None,
                     ) -> FlowSchedule:
    """Allocate read mass backwards; drop flow that feeds no read.

    Pools ``(commodity, node, p)`` mirror the LP conservation equalities: the
    pool at index p is fed by sends arriving at index p (sent Δ+1 epochs
    earlier) and by mass held over from pool p−1 (the LP's ``B`` variable at
    index p−1), and it feeds reads at epoch p−1, sends at epoch p, and hold
    into pool p+1. Reads pull mass backwards; arrivals are consumed before
    hold, and hold is capped by the LP's actual ``B`` values so the
    allocation always succeeds (the equalities guarantee the disaggregation).

    Args:
        buffers: the LP's buffer values keyed ``(commodity, node, k)``; when
            omitted, hold capacity is treated as unlimited, which is sound
            only for integral copy-free solutions.
    """
    switches = topology.switches
    flows = dict(flow_schedule.flows)
    reads = flow_schedule.reads
    res_hold: dict[tuple, float] | None = (
        dict(buffers) if buffers is not None else None)

    # needed mass per pool (q, node, p)
    needed: dict[tuple, float] = {}
    for (q, d, k), amount in reads.items():
        # R at epoch k draws the pool at index k + 1.
        key = (q, d, k + 1)
        needed[key] = needed.get(key, 0.0) + amount
    kept: dict[tuple, float] = {}

    # Arrivals indexed by destination pool index.
    arrivals: dict[tuple, list[tuple]] = {}
    for (q, i, j, k), amount in flows.items():
        pool = k + plan.arrival_offset(i, j) + 1
        arrivals.setdefault((q, j, pool), []).append((q, i, j, k))

    max_k = flow_schedule.num_epochs
    # Walk pools from the latest index to the earliest; by then every
    # downstream requirement on a pool is known (hold pushes to p−1, arrivals
    # push to the sender's pool at the send epoch, strictly earlier).
    for p in range(max_k + 1, -1, -1):
        pool_keys = [key for key in needed if key[2] == p and needed[key] > _TOL]
        for q, node, _ in pool_keys:
            remaining = needed.pop((q, node, p))
            origin = q[0] if isinstance(q, tuple) else q
            if node == origin:
                continue  # satisfied by the source's initial supply
            for flow_key in arrivals.get((q, node, p), []):
                if remaining <= _TOL:
                    break
                available = flows.get(flow_key, 0.0) - kept.get(flow_key, 0.0)
                take = min(remaining, available)
                if take > _TOL:
                    kept[flow_key] = kept.get(flow_key, 0.0) + take
                    remaining -= take
                    _, i, _, send_k = flow_key
                    key = (q, i, send_k)
                    needed[key] = needed.get(key, 0.0) + take
            if remaining > _TOL and node not in switches and p > 0:
                if res_hold is None:
                    capacity = remaining
                else:
                    capacity = res_hold.get((q, node, p - 1), 0.0)
                take = min(remaining, capacity)
                if take > _TOL:
                    if res_hold is not None:
                        res_hold[(q, node, p - 1)] = capacity - take
                    key = (q, node, p - 1)
                    needed[key] = needed.get(key, 0.0) + take
                    remaining -= take
            if remaining > 1e-5:
                raise ScheduleError(
                    f"LP solution cannot supply {remaining:g} chunks of "
                    f"commodity {q} at node {node}, pool {p}")
    return FlowSchedule(flows=kept, reads=dict(reads),
                        tau=flow_schedule.tau,
                        chunk_bytes=flow_schedule.chunk_bytes,
                        num_epochs=flow_schedule.num_epochs)
