"""The LP form of TE-CCL (§4.1): optimal and scalable for copy-free demands.

When no chunk is wanted by two destinations (ALLTOALL-like demands), copy
buys nothing, flows may be fractional, and the whole problem is a linear
program. Flow conservation reverts to the traditional *equality* form — a
node buffers, forwards, or consumes what it receives — and chunks of one
source collapse into a single fungible commodity, shrinking the model by a
factor of |C|.

The same machinery doubles as the paper's "no copy" ablation (Figure 7): a
multicast demand is modelled by giving the commodity a *supply multiplicity*
(the source injects one physical copy per destination). Conservation then
guarantees no in-network duplication, which is exactly what "without copy"
means; per-chunk commodities keep content distinct so Figure 3's
half-chunk confusion cannot arise (see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.collectives.demand import Demand
from repro.core.config import TecclConfig
from repro.core.epochs import (EpochPlan, build_epoch_plan,
                               earliest_arrival_epochs,
                               path_based_epoch_bound, plan_with_tau)
from repro.core.postprocess import prune_fractional
from repro.core.schedule import FlowSchedule
from repro.errors import InfeasibleError, ModelError
from repro.solver import Model, Sense, SolveResult, SolverOptions, quicksum
from repro.topology.topology import Topology

_EPS = 1e-9


@dataclass(frozen=True)
class LpCommodity:
    """One commodity of the LP: fungible mass originating at one node.

    ``key`` is either a bare source id (chunks aggregated, the fast path for
    ALLTOALL) or a ``(source, chunk)`` pair (needed when a chunk has several
    destinations, i.e. the no-copy multicast mode).
    """

    key: object
    origin: int
    supply: float
    sinks: dict[int, float]


def build_commodities(demand: Demand, aggregate: bool = True,
                      ) -> list[LpCommodity]:
    """Group the demand into LP commodities.

    Aggregation by source applies only when every chunk has exactly one
    destination (then bytes of one source are mutually fungible — flow
    decomposition assigns distinct content per path).
    """
    single_dest = not demand.benefits_from_copy()
    if aggregate and single_dest:
        commodities = []
        for s in demand.sources:
            sinks: dict[int, float] = {}
            supply = 0.0
            for c in demand.chunks_of(s):
                for d in demand.destinations(s, c):
                    sinks[d] = sinks.get(d, 0.0) + 1.0
                    supply += 1.0
            commodities.append(LpCommodity(key=s, origin=s, supply=supply,
                                           sinks=sinks))
        return commodities
    commodities = []
    for s, c in demand.commodities():
        dests = demand.destinations(s, c)
        commodities.append(LpCommodity(
            key=(s, c), origin=s, supply=float(len(dests)),
            sinks={d: 1.0 for d in dests}))
    return commodities


@dataclass
class LpProblem:
    model: Model
    plan: EpochPlan
    topology: Topology
    commodities: list[LpCommodity]
    f_vars: dict[tuple, object] = field(default_factory=dict)
    b_vars: dict[tuple, object] = field(default_factory=dict)
    r_vars: dict[tuple, object] = field(default_factory=dict)


@dataclass
class LpOutcome:
    """A solved LP instance with the pruned fractional schedule."""

    schedule: FlowSchedule
    raw_schedule: FlowSchedule
    result: SolveResult
    plan: EpochPlan
    finish_time: float

    @property
    def solve_time(self) -> float:
        return self.result.solve_time


class LpBuilder:
    """Builds the §4.1 linear program over one horizon."""

    def __init__(self, topology: Topology, demand: Demand,
                 config: TecclConfig, plan: EpochPlan, *,
                 aggregate: bool = True):
        demand.validate(topology)
        topology.validate()
        if config.priorities is not None:
            aggregate = False  # per-chunk weights need per-chunk commodities
        self.topology = topology
        self.demand = demand
        self.config = config
        self.plan = plan
        self.commodities = build_commodities(demand, aggregate=aggregate)
        self._earliest = earliest_arrival_epochs(topology, plan)

    # ------------------------------------------------------------------
    def build(self) -> LpProblem:
        model = Model("teccl-lp", sense=Sense.MAXIMIZE)
        problem = LpProblem(model=model, plan=self.plan,
                            topology=self.topology,
                            commodities=self.commodities)
        self._check_horizon()
        self._make_vars(problem)
        self._initialization(problem)
        self._conservation(problem)
        self._switch_conservation(problem)
        self._capacity(problem)
        self._demand_met(problem)
        self._buffer_limit(problem)
        self._objective(problem)
        return problem

    def _check_horizon(self) -> None:
        K = self.plan.num_epochs
        for q in self.commodities:
            for d in q.sinks:
                earliest = self._earliest[q.origin].get(d)
                if earliest is None:
                    raise ModelError(
                        f"sink {d} unreachable from origin {q.origin}")
                if earliest > K:
                    raise InfeasibleError(
                        f"horizon K={K} below earliest arrival ({earliest}) "
                        f"for commodity {q.key}->{d}", status="horizon")

    def _reachable(self, q: LpCommodity, node: int, k: int) -> bool:
        earliest = self._earliest[q.origin].get(node)
        return earliest is not None and k >= earliest

    def _make_vars(self, problem: LpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        sf = self.config.store_and_forward
        for q in self.commodities:
            for (i, j) in self.topology.links:
                offset = self.plan.arrival_offset(i, j)
                for k in range(K):
                    if not self._reachable(q, i, k):
                        continue
                    arrival_pool = k + offset + 1
                    if arrival_pool > K:
                        continue  # cannot contribute within the horizon
                    problem.f_vars[(q.key, i, j, k)] = model.add_var(
                        name=f"F[{q.key},{i},{j},{k}]")
            for n in self.topology.gpus:
                if not sf and n != q.origin:
                    continue  # Figure 9 ablation: no intermediate buffering
                for k in range(K + 1):
                    if n != q.origin and not self._reachable(q, n, k):
                        continue
                    problem.b_vars[(q.key, n, k)] = model.add_var(
                        name=f"B[{q.key},{n},{k}]")
            for d in q.sinks:
                for k in range(K):
                    if not self._reachable(q, d, k + 1):
                        continue
                    problem.r_vars[(q.key, d, k)] = model.add_var(
                        name=f"R[{q.key},{d},{k}]")

    # ------------------------------------------------------------------
    def _out_flow(self, problem: LpProblem, q: LpCommodity, n: int, k: int):
        return quicksum(
            problem.f_vars[(q.key, n, l.dst, k)]
            for l in self.topology.out_edges(n)
            if (q.key, n, l.dst, k) in problem.f_vars)

    def _arrivals(self, problem: LpProblem, q: LpCommodity, n: int, k: int):
        """Flow arriving at n during epoch k (sent Δ epochs earlier)."""
        terms = []
        for link in self.topology.in_edges(n):
            send_epoch = k - self.plan.arrival_offset(link.src, link.dst)
            var = problem.f_vars.get((q.key, link.src, link.dst, send_epoch))
            if var is not None:
                terms.append(var)
        return quicksum(terms)

    def _initialization(self, problem: LpProblem) -> None:
        """Appendix A first-epoch constraints (with the n = s typo fixed)."""
        model = problem.model
        for q in self.commodities:
            b0 = problem.b_vars.get((q.key, q.origin, 0), 0.0)
            out0 = self._out_flow(problem, q, q.origin, 0)
            model.add_constr(b0 + out0 == q.supply,
                             name=f"init[{q.key}]")

    def _conservation(self, problem: LpProblem) -> None:
        """arrivals(k) + B[k] = B[k+1] + R[k] + sends(k+1), per GPU."""
        model = problem.model
        K = self.plan.num_epochs
        for q in self.commodities:
            for n in self.topology.gpus:
                for k in range(K):
                    if n == q.origin and k == 0:
                        continue  # epoch 0 at the origin is _initialization
                    b_k = problem.b_vars.get((q.key, n, k))
                    b_next = problem.b_vars.get((q.key, n, k + 1))
                    read = problem.r_vars.get((q.key, n, k))
                    lhs = self._arrivals(problem, q, n, k)
                    if b_k is not None:
                        lhs = lhs + b_k
                    rhs = (self._out_flow(problem, q, n, k + 1)
                           if k + 1 < K else quicksum([]))
                    if b_next is not None:
                        rhs = rhs + b_next
                    if read is not None:
                        rhs = rhs + read
                    # Skip trivial 0 == 0 rows for unreachable node-epochs.
                    if lhs.is_constant() and rhs.is_constant():
                        continue
                    model.add_constr(lhs == rhs, name=f"cons[{q.key},{n},{k}]")

    def _switch_conservation(self, problem: LpProblem) -> None:
        """Switches neither buffer nor consume: in(k) == out(k+1)."""
        model = problem.model
        K = self.plan.num_epochs
        for q in self.commodities:
            for sw in self.topology.switches:
                for k in range(K):
                    arrivals = self._arrivals(problem, q, sw, k)
                    sends_next = (self._out_flow(problem, q, sw, k + 1)
                                  if k + 1 < K else quicksum([]))
                    if arrivals.is_constant() and sends_next.is_constant():
                        continue
                    model.add_constr(arrivals == sends_next,
                                     name=f"swc[{q.key},{sw},{k}]")

    def _capacity(self, problem: LpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        tau = self.plan.tau
        by_link_epoch: dict[tuple[int, int, int], list] = {}
        for (key, i, j, k), var in problem.f_vars.items():
            by_link_epoch.setdefault((i, j, k), []).append(var)
        for (i, j) in self.topology.links:
            for k in range(K):
                vars_k = by_link_epoch.get((i, j, k))
                if not vars_k:
                    continue
                if self.config.capacity_fn is not None:
                    cap = (self.config.capacity_fn(i, j, k) * tau
                           / self.config.chunk_bytes)
                else:
                    cap = self.plan.cap_chunks[(i, j)]
                model.add_constr(quicksum(vars_k) <= cap,
                                 name=f"cap[{i},{j},{k}]")

    def _demand_met(self, problem: LpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        for q in self.commodities:
            for d, amount in q.sinks.items():
                reads = [problem.r_vars[(q.key, d, k)] for k in range(K)
                         if (q.key, d, k) in problem.r_vars]
                if not reads:
                    raise InfeasibleError(
                        f"sink {d} cannot be reached within the horizon",
                        status="horizon")
                model.add_constr(quicksum(reads) == amount,
                                 name=f"met[{q.key},{d}]")

    def _buffer_limit(self, problem: LpProblem) -> None:
        limit = self.config.buffer_limit_chunks
        if limit is None:
            return
        model = problem.model
        K = self.plan.num_epochs
        for n in self.topology.gpus:
            for k in range(K + 1):
                bufs = [problem.b_vars[(q.key, n, k)]
                        for q in self.commodities
                        if (q.key, n, k) in problem.b_vars
                        and n != q.origin]
                if bufs:
                    model.add_constr(quicksum(bufs) <= limit,
                                     name=f"buflim[{n},{k}]")

    def _objective(self, problem: LpProblem) -> None:
        terms = []
        for (key, d, k), r in problem.r_vars.items():
            weight = 1.0
            if self.config.priorities is not None and isinstance(key, tuple):
                weight = self.config.weight(key[0], key[1], d)
            terms.append(r * (weight / (k + 1)))
        problem.model.set_objective(quicksum(terms))


# ----------------------------------------------------------------------
# facades
# ----------------------------------------------------------------------
def solve_lp(topology: Topology, demand: Demand, config: TecclConfig,
             *, aggregate: bool = True) -> LpOutcome:
    """Build and solve the LP; returns a pruned fractional schedule.

    Like :func:`repro.core.milp.solve_milp`, an automatically estimated
    horizon is retried with a doubled K if it proves infeasible (the bound
    is a heuristic).
    """
    auto = config.num_epochs is None
    if auto:
        probe = build_epoch_plan(topology, config, num_epochs=1)
        num_epochs = path_based_epoch_bound(topology, demand, probe)
    else:
        num_epochs = config.num_epochs
    attempts = 3 if auto else 1
    last_error: InfeasibleError | None = None
    for _ in range(attempts):
        plan = build_epoch_plan(topology, config, num_epochs=num_epochs)
        builder = LpBuilder(topology, demand, config, plan,
                            aggregate=aggregate)
        problem = builder.build()
        result = problem.model.solve(config.solver)
        if result.status.has_solution:
            return extract_lp_outcome(problem, result)
        from repro.solver import SolveStatus

        if result.status is not SolveStatus.INFEASIBLE:
            result.require_solution()
        last_error = InfeasibleError(
            f"infeasible at horizon K={num_epochs}", status="horizon")
        num_epochs *= 2
    raise last_error


def extract_lp_outcome(problem: LpProblem, result: SolveResult) -> LpOutcome:
    flows = {key: result.value(var)
             for key, var in problem.f_vars.items()}
    reads = {key: result.value(var)
             for key, var in problem.r_vars.items()}
    raw = FlowSchedule(flows=flows, reads=reads, tau=problem.plan.tau,
                       chunk_bytes=problem.plan.chunk_bytes,
                       num_epochs=problem.plan.num_epochs)
    buffers = {key: result.value(var) for key, var in problem.b_vars.items()}
    pruned = prune_fractional(raw, problem.topology, problem.plan,
                              buffers=buffers)
    return LpOutcome(schedule=pruned, raw_schedule=raw, result=result,
                     plan=problem.plan,
                     finish_time=pruned.finish_time(problem.topology))


def lp_feasible_horizon(topology: Topology, demand: Demand,
                        config: TecclConfig, *, tau: float,
                        num_epochs: int) -> bool:
    """Feasibility probe used by Algorithm 1 (coarse grid, custom τ)."""
    plan = plan_with_tau(topology, config.chunk_bytes, tau, num_epochs)
    try:
        builder = LpBuilder(topology, demand, config, plan)
        problem = builder.build()
    except InfeasibleError:
        return False
    result = problem.model.solve(SolverOptions(time_limit=60))
    return result.status.has_solution


def minimize_epochs_lp(topology: Topology, demand: Demand,
                       config: TecclConfig, *, max_epochs: int | None = None,
                       ) -> LpOutcome:
    """Binary search for the smallest feasible horizon (§6 "TE-CCL variants").

    The paper runs the ALLTOALL solver in a loop, binary-searching the number
    of epochs; the returned schedule is the optimum for the minimal K.
    """
    if max_epochs is None:
        probe = build_epoch_plan(topology, config, num_epochs=1)
        max_epochs = path_based_epoch_bound(topology, demand, probe)
    lo, hi = 1, max_epochs
    best: LpOutcome | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        try:
            outcome = _try_horizon(topology, demand, config, mid)
        except InfeasibleError:
            outcome = None
        if outcome is not None:
            best = outcome
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        raise InfeasibleError(
            f"no feasible horizon up to K={max_epochs}", status="horizon")
    return best


def _try_horizon(topology: Topology, demand: Demand, config: TecclConfig,
                 num_epochs: int) -> LpOutcome | None:
    plan = build_epoch_plan(topology, config, num_epochs=num_epochs)
    builder = LpBuilder(topology, demand, config, plan)
    problem = builder.build()
    result = problem.model.solve(config.solver)
    if not result.status.has_solution:
        return None
    return extract_lp_outcome(problem, result)
