"""The LP form of TE-CCL (§4.1): optimal and scalable for copy-free demands.

When no chunk is wanted by two destinations (ALLTOALL-like demands), copy
buys nothing, flows may be fractional, and the whole problem is a linear
program. Flow conservation reverts to the traditional *equality* form — a
node buffers, forwards, or consumes what it receives — and chunks of one
source collapse into a single fungible commodity, shrinking the model by a
factor of |C|.

The same machinery doubles as the paper's "no copy" ablation (Figure 7): a
multicast demand is modelled by giving the commodity a *supply multiplicity*
(the source injects one physical copy per destination). Conservation then
guarantees no in-network duplication, which is exactly what "without copy"
means; per-chunk commodities keep content distinct so Figure 3's
half-chunk confusion cannot arise (see DESIGN.md).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.collectives.demand import Demand
from repro.core.config import TecclConfig
from repro.core.epochs import (EpochPlan, build_epoch_plan,
                               earliest_arrival_epochs,
                               path_based_epoch_bound, plan_with_tau)
from repro.core.postprocess import prune_fractional
from repro.core.schedule import FlowSchedule
from repro.errors import InfeasibleError, ModelError
from repro.solver import Model, Sense, SolveResult, SolverOptions, quicksum
from repro.topology.topology import Topology

_EPS = 1e-9

#: sentinel "unreachable" epoch, far beyond any horizon
_FAR = 1 << 30


@dataclass(frozen=True)
class LpCommodity:
    """One commodity of the LP: fungible mass originating at one node.

    ``key`` is either a bare source id (chunks aggregated, the fast path for
    ALLTOALL) or a ``(source, chunk)`` pair (needed when a chunk has several
    destinations, i.e. the no-copy multicast mode).
    """

    key: object
    origin: int
    supply: float
    sinks: dict[int, float]


def build_commodities(demand: Demand, aggregate: bool = True,
                      ) -> list[LpCommodity]:
    """Group the demand into LP commodities.

    Aggregation by source applies only when every chunk has exactly one
    destination (then bytes of one source are mutually fungible — flow
    decomposition assigns distinct content per path).
    """
    single_dest = not demand.benefits_from_copy()
    if aggregate and single_dest:
        commodities = []
        for s in demand.sources:
            sinks: dict[int, float] = {}
            supply = 0.0
            for c in demand.chunks_of(s):
                for d in demand.destinations(s, c):
                    sinks[d] = sinks.get(d, 0.0) + 1.0
                    supply += 1.0
            commodities.append(LpCommodity(key=s, origin=s, supply=supply,
                                           sinks=sinks))
        return commodities
    commodities = []
    for s, c in demand.commodities():
        dests = demand.destinations(s, c)
        commodities.append(LpCommodity(
            key=(s, c), origin=s, supply=float(len(dests)),
            sinks={d: 1.0 for d in dests}))
    return commodities


@dataclass
class LpProblem:
    """A built LP instance.

    The ``*_vars`` dicts map formulation keys to solver columns: values are
    :class:`repro.solver.Variable` handles on the expression path and raw
    ``int`` column indices on the bulk (COO) path; both are accepted by
    :meth:`repro.solver.SolveResult.value`.
    """

    model: Model
    plan: EpochPlan
    topology: Topology
    commodities: list[LpCommodity]
    f_vars: dict[tuple, object] = field(default_factory=dict)
    b_vars: dict[tuple, object] = field(default_factory=dict)
    r_vars: dict[tuple, object] = field(default_factory=dict)
    #: which construction path built this model ("expr" or "coo")
    construction: str = "expr"


@dataclass
class LpOutcome:
    """A solved LP instance with the pruned fractional schedule."""

    schedule: FlowSchedule
    raw_schedule: FlowSchedule
    result: SolveResult
    plan: EpochPlan
    finish_time: float

    @property
    def solve_time(self) -> float:
        return self.result.solve_time


class LpBuilder:
    """Builds the §4.1 linear program over one horizon.

    Two construction paths produce bit-identical compiled models (enforced
    by ``tests/test_model_equivalence.py``): the legacy gurobipy-style
    expression path, and a vectorized bulk path that computes variable
    existence masks with NumPy index arithmetic and appends COO blocks
    straight into the compiled-matrix buffers. ``construction`` overrides
    ``config.solver.construction`` ("auto" → bulk; the LP has no
    expression-only features).
    """

    def __init__(self, topology: Topology, demand: Demand,
                 config: TecclConfig, plan: EpochPlan, *,
                 aggregate: bool = True, construction: str | None = None):
        demand.validate(topology)
        topology.validate()
        if config.priorities is not None:
            aggregate = False  # per-chunk weights need per-chunk commodities
        self.topology = topology
        self.demand = demand
        self.config = config
        self.plan = plan
        self.commodities = build_commodities(demand, aggregate=aggregate)
        self._earliest = earliest_arrival_epochs(topology, plan)
        requested = construction or config.solver.construction
        if requested not in ("auto", "coo", "expr"):
            raise ModelError(f"unknown construction {requested!r}")
        self.construction = "expr" if requested == "expr" else "coo"

    # ------------------------------------------------------------------
    def build(self) -> LpProblem:
        model = Model("teccl-lp", sense=Sense.MAXIMIZE)
        problem = LpProblem(model=model, plan=self.plan,
                            topology=self.topology,
                            commodities=self.commodities,
                            construction=self.construction)
        self._check_horizon()
        if self.construction == "coo":
            self._build_coo(problem)
            return problem
        self._make_vars(problem)
        self._initialization(problem)
        self._conservation(problem)
        self._switch_conservation(problem)
        self._capacity(problem)
        self._demand_met(problem)
        self._buffer_limit(problem)
        self._objective(problem)
        return problem

    def _check_horizon(self) -> None:
        K = self.plan.num_epochs
        for q in self.commodities:
            for d in q.sinks:
                earliest = self._earliest[q.origin].get(d)
                if earliest is None:
                    raise ModelError(
                        f"sink {d} unreachable from origin {q.origin}")
                if earliest > K:
                    raise InfeasibleError(
                        f"horizon K={K} below earliest arrival ({earliest}) "
                        f"for commodity {q.key}->{d}", status="horizon")

    def _reachable(self, q: LpCommodity, node: int, k: int) -> bool:
        earliest = self._earliest[q.origin].get(node)
        return earliest is not None and k >= earliest

    def _make_vars(self, problem: LpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        sf = self.config.store_and_forward
        for q in self.commodities:
            for (i, j) in self.topology.links:
                offset = self.plan.arrival_offset(i, j)
                for k in range(K):
                    if not self._reachable(q, i, k):
                        continue
                    arrival_pool = k + offset + 1
                    if arrival_pool > K:
                        continue  # cannot contribute within the horizon
                    problem.f_vars[(q.key, i, j, k)] = model.add_var(
                        name=f"F[{q.key},{i},{j},{k}]")
            for n in self.topology.gpus:
                if not sf and n != q.origin:
                    continue  # Figure 9 ablation: no intermediate buffering
                for k in range(K + 1):
                    if n != q.origin and not self._reachable(q, n, k):
                        continue
                    problem.b_vars[(q.key, n, k)] = model.add_var(
                        name=f"B[{q.key},{n},{k}]")
            for d in q.sinks:
                for k in range(K):
                    if not self._reachable(q, d, k + 1):
                        continue
                    problem.r_vars[(q.key, d, k)] = model.add_var(
                        name=f"R[{q.key},{d},{k}]")

    # ------------------------------------------------------------------
    def _out_flow(self, problem: LpProblem, q: LpCommodity, n: int, k: int):
        return quicksum(
            problem.f_vars[(q.key, n, l.dst, k)]
            for l in self.topology.out_edges(n)
            if (q.key, n, l.dst, k) in problem.f_vars)

    def _arrivals(self, problem: LpProblem, q: LpCommodity, n: int, k: int):
        """Flow arriving at n during epoch k (sent Δ epochs earlier)."""
        terms = []
        for link in self.topology.in_edges(n):
            send_epoch = k - self.plan.arrival_offset(link.src, link.dst)
            var = problem.f_vars.get((q.key, link.src, link.dst, send_epoch))
            if var is not None:
                terms.append(var)
        return quicksum(terms)

    def _initialization(self, problem: LpProblem) -> None:
        """Appendix A first-epoch constraints (with the n = s typo fixed)."""
        model = problem.model
        for q in self.commodities:
            b0 = problem.b_vars.get((q.key, q.origin, 0), 0.0)
            out0 = self._out_flow(problem, q, q.origin, 0)
            model.add_constr(b0 + out0 == q.supply,
                             name=f"init[{q.key}]")

    def _conservation(self, problem: LpProblem) -> None:
        """arrivals(k) + B[k] = B[k+1] + R[k] + sends(k+1), per GPU."""
        model = problem.model
        K = self.plan.num_epochs
        for q in self.commodities:
            for n in self.topology.gpus:
                for k in range(K):
                    if n == q.origin and k == 0:
                        continue  # epoch 0 at the origin is _initialization
                    b_k = problem.b_vars.get((q.key, n, k))
                    b_next = problem.b_vars.get((q.key, n, k + 1))
                    read = problem.r_vars.get((q.key, n, k))
                    lhs = self._arrivals(problem, q, n, k)
                    if b_k is not None:
                        lhs = lhs + b_k
                    rhs = (self._out_flow(problem, q, n, k + 1)
                           if k + 1 < K else quicksum([]))
                    if b_next is not None:
                        rhs = rhs + b_next
                    if read is not None:
                        rhs = rhs + read
                    # Skip trivial 0 == 0 rows for unreachable node-epochs.
                    if lhs.is_constant() and rhs.is_constant():
                        continue
                    model.add_constr(lhs == rhs, name=f"cons[{q.key},{n},{k}]")

    def _switch_conservation(self, problem: LpProblem) -> None:
        """Switches neither buffer nor consume: in(k) == out(k+1)."""
        model = problem.model
        K = self.plan.num_epochs
        for q in self.commodities:
            for sw in self.topology.switches:
                for k in range(K):
                    arrivals = self._arrivals(problem, q, sw, k)
                    sends_next = (self._out_flow(problem, q, sw, k + 1)
                                  if k + 1 < K else quicksum([]))
                    if arrivals.is_constant() and sends_next.is_constant():
                        continue
                    model.add_constr(arrivals == sends_next,
                                     name=f"swc[{q.key},{sw},{k}]")

    def _capacity(self, problem: LpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        tau = self.plan.tau
        by_link_epoch: dict[tuple[int, int, int], list] = {}
        for (key, i, j, k), var in problem.f_vars.items():
            by_link_epoch.setdefault((i, j, k), []).append(var)
        for (i, j) in self.topology.links:
            for k in range(K):
                vars_k = by_link_epoch.get((i, j, k))
                if not vars_k:
                    continue
                if self.config.capacity_fn is not None:
                    cap = (self.config.capacity_fn(i, j, k) * tau
                           / self.config.chunk_bytes)
                else:
                    cap = self.plan.cap_chunks[(i, j)]
                model.add_constr(quicksum(vars_k) <= cap,
                                 name=f"cap[{i},{j},{k}]")

    def _demand_met(self, problem: LpProblem) -> None:
        model = problem.model
        K = self.plan.num_epochs
        for q in self.commodities:
            for d, amount in q.sinks.items():
                reads = [problem.r_vars[(q.key, d, k)] for k in range(K)
                         if (q.key, d, k) in problem.r_vars]
                if not reads:
                    raise InfeasibleError(
                        f"sink {d} cannot be reached within the horizon",
                        status="horizon")
                model.add_constr(quicksum(reads) == amount,
                                 name=f"met[{q.key},{d}]")

    def _buffer_limit(self, problem: LpProblem) -> None:
        limit = self.config.buffer_limit_chunks
        if limit is None:
            return
        model = problem.model
        K = self.plan.num_epochs
        for n in self.topology.gpus:
            for k in range(K + 1):
                bufs = [problem.b_vars[(q.key, n, k)]
                        for q in self.commodities
                        if (q.key, n, k) in problem.b_vars
                        and n != q.origin]
                if bufs:
                    model.add_constr(quicksum(bufs) <= limit,
                                     name=f"buflim[{n},{k}]")

    def _objective(self, problem: LpProblem) -> None:
        terms = []
        for (key, d, k), r in problem.r_vars.items():
            weight = 1.0
            if self.config.priorities is not None and isinstance(key, tuple):
                weight = self.config.weight(key[0], key[1], d)
            terms.append(r * (weight / (k + 1)))
        problem.model.set_objective(quicksum(terms))

    # ------------------------------------------------------------------
    # vectorized (COO) construction — same model, no per-term Python objects
    # ------------------------------------------------------------------
    def _capacity_value(self, i: int, j: int, k: int) -> float:
        if self.config.capacity_fn is not None:
            return (self.config.capacity_fn(i, j, k) * self.plan.tau
                    / self.config.chunk_bytes)
        return self.plan.cap_chunks[(i, j)]

    def _build_coo(self, problem: LpProblem) -> None:
        """Emit the whole LP as COO blocks via NumPy index arithmetic.

        Variable existence masks replicate the expression path's gating
        exactly (same reachability and horizon tests, same iteration
        order), so both paths compile to identical matrices.
        """
        model = problem.model
        plan, topo, K = self.plan, self.topology, self.plan.num_epochs
        links = list(topo.links)
        E = len(links)
        src = np.fromiter((i for i, _ in links), dtype=np.int64, count=E)
        dst = np.fromiter((j for _, j in links), dtype=np.int64, count=E)
        offs = np.fromiter((plan.arrival_offset(i, j) for i, j in links),
                           dtype=np.int64, count=E)
        gpus = list(topo.gpus)
        G = len(gpus)
        gpu_ids = np.asarray(gpus, dtype=np.int64)
        switches = list(topo.switches)
        SW = len(switches)
        num_nodes = len(topo.nodes)
        node_pos = np.full(num_nodes, -1, dtype=np.int64)
        node_pos[gpu_ids] = np.arange(G)
        sw_pos = np.full(num_nodes, -1, dtype=np.int64)
        if SW:
            sw_pos[np.asarray(switches, dtype=np.int64)] = np.arange(SW)
        sf = self.config.store_and_forward
        k_send = np.arange(K, dtype=np.int64)

        # -- variable index grids, in the expression path's creation order
        per_q = []
        base = 0
        for q in self.commodities:
            earliest = np.full(num_nodes, _FAR, dtype=np.int64)
            for node, epoch in self._earliest[q.origin].items():
                earliest[node] = epoch
            f_mask = ((earliest[src][:, None] <= k_send[None, :])
                      & (k_send[None, :] + offs[:, None] + 1 <= K))
            f_idx = np.full((E, K), -1, dtype=np.int64)
            nf = int(np.count_nonzero(f_mask))
            f_idx[f_mask] = base + np.arange(nf)
            base += nf

            origin_row = int(node_pos[q.origin])
            b_mask = earliest[gpu_ids][:, None] <= np.arange(K + 1)[None, :]
            b_mask[origin_row, :] = True
            if not sf:
                only_origin = np.zeros(G, dtype=bool)
                only_origin[origin_row] = True
                b_mask &= only_origin[:, None]
            b_idx = np.full((G, K + 1), -1, dtype=np.int64)
            nb = int(np.count_nonzero(b_mask))
            b_idx[b_mask] = base + np.arange(nb)
            base += nb

            sinks = list(q.sinks)
            S = len(sinks)
            sink_ids = np.asarray(sinks, dtype=np.int64)
            r_mask = (earliest[sink_ids][:, None] <= k_send[None, :] + 1) \
                if S else np.zeros((0, K), dtype=bool)
            r_idx = np.full((S, K), -1, dtype=np.int64)
            nr = int(np.count_nonzero(r_mask))
            r_idx[r_mask] = base + np.arange(nr)
            base += nr
            per_q.append((q, f_mask, f_idx, b_mask, b_idx, sinks, r_mask,
                          r_idx))
        model.add_var_array(base, name="lpvar")

        # -- handle dicts for extraction (raw column indices as values)
        for q, f_mask, f_idx, b_mask, b_idx, sinks, r_mask, r_idx in per_q:
            key = q.key
            ls, ks = np.nonzero(f_mask)
            problem.f_vars.update(
                ((key, links[l][0], links[l][1], k), v)
                for l, k, v in zip(ls.tolist(), ks.tolist(),
                                   f_idx[f_mask].tolist()))
            ns, ks = np.nonzero(b_mask)
            problem.b_vars.update(
                ((key, gpus[n], k), v)
                for n, k, v in zip(ns.tolist(), ks.tolist(),
                                   b_idx[b_mask].tolist()))
            ss, ks = np.nonzero(r_mask)
            problem.r_vars.update(
                ((key, sinks[s], k), v)
                for s, k, v in zip(ss.tolist(), ks.tolist(),
                                   r_idx[r_mask].tolist()))

        self._coo_initialization(model, per_q, src, node_pos)
        self._coo_conservation(model, per_q, src, dst, offs, node_pos, G, K)
        if SW:
            self._coo_switch_conservation(model, per_q, src, dst, offs,
                                          sw_pos, SW, K)
        self._coo_capacity(model, per_q, links, E, K)
        self._coo_demand_met(model, per_q, K)
        self._coo_buffer_limit(model, per_q, gpus, G, K)
        self._coo_objective(model, per_q)

    def _coo_initialization(self, model: Model, per_q, src, node_pos) -> None:
        """``B[origin,0] + out(origin,0) == supply``, one row per commodity."""
        rows, cols = [], []
        lower = []
        for r, (q, _f_mask, f_idx, _b_mask, b_idx, *_rest) in enumerate(per_q):
            cols.append(int(b_idx[int(node_pos[q.origin]), 0]))
            rows.append(r)
            out0 = f_idx[(src == q.origin), 0]
            out0 = out0[out0 >= 0]
            cols.extend(out0.tolist())
            rows.extend([r] * len(out0))
            lower.append(q.supply)
        bounds = np.asarray(lower, dtype=float)
        model.add_constr_coo(rows, cols, np.ones(len(cols)), bounds, bounds,
                             num_rows=len(per_q))

    def _coo_conservation(self, model: Model, per_q, src, dst, offs,
                          node_pos, G: int, K: int) -> None:
        """arrivals(k) + B[k] − B[k+1] − R[k] − sends(k+1) == 0 per GPU."""
        for q, f_mask, f_idx, b_mask, b_idx, sinks, r_mask, r_idx in per_q:
            origin_flat = int(node_pos[q.origin]) * K  # (origin, k=0)
            row_parts, col_parts, dat_parts = [], [], []

            ls, ks = np.nonzero(f_mask)
            vs = f_idx[f_mask]
            # arrivals: a send on (i, j) at k' lands in row (j, k' + Δ)
            at_gpu = node_pos[dst[ls]] >= 0
            row_parts.append(node_pos[dst[ls[at_gpu]]] * K
                             + ks[at_gpu] + offs[ls[at_gpu]])
            col_parts.append(vs[at_gpu])
            dat_parts.append(np.ones(int(at_gpu.sum())))
            # sends(k+1): a send at k' ≥ 1 leaves through row (i, k' − 1)
            out = (ks >= 1) & (node_pos[src[ls]] >= 0)
            row_parts.append(node_pos[src[ls[out]]] * K + ks[out] - 1)
            col_parts.append(vs[out])
            dat_parts.append(-np.ones(int(out.sum())))

            ns, ks = np.nonzero(b_mask)
            vs = b_idx[b_mask]
            held = ks <= K - 1  # B[k] on the left of row (n, k)
            row_parts.append(ns[held] * K + ks[held])
            col_parts.append(vs[held])
            dat_parts.append(np.ones(int(held.sum())))
            nxt = ks >= 1  # B[k+1] on the right of row (n, k)
            row_parts.append(ns[nxt] * K + ks[nxt] - 1)
            col_parts.append(vs[nxt])
            dat_parts.append(-np.ones(int(nxt.sum())))

            ss, ks = np.nonzero(r_mask)
            sink_rows = np.fromiter((int(node_pos[d]) for d in sinks),
                                    dtype=np.int64, count=len(sinks))
            row_parts.append(sink_rows[ss] * K + ks)
            col_parts.append(r_idx[r_mask])
            dat_parts.append(-np.ones(int(r_mask.sum())))

            flat = np.concatenate(row_parts)
            cols = np.concatenate(col_parts)
            data = np.concatenate(dat_parts)
            # epoch 0 at the origin is the initialization row, not this one
            keep = flat != origin_flat
            flat, cols, data = flat[keep], cols[keep], data[keep]
            present = np.zeros(G * K, dtype=bool)
            present[flat] = True  # trivial 0 == 0 rows never materialise
            row_of = np.cumsum(present) - 1
            model.add_constr_coo(row_of[flat], cols, data, 0.0, 0.0,
                                 num_rows=int(present.sum()))

    def _coo_switch_conservation(self, model: Model, per_q, src, dst, offs,
                                 sw_pos, SW: int, K: int) -> None:
        """Switches neither buffer nor consume: in(k) == out(k+1)."""
        for q, f_mask, f_idx, *_rest in per_q:
            ls, ks = np.nonzero(f_mask)
            vs = f_idx[f_mask]
            into = sw_pos[dst[ls]] >= 0
            rows_in = sw_pos[dst[ls[into]]] * K + ks[into] + offs[ls[into]]
            out = (ks >= 1) & (sw_pos[src[ls]] >= 0)
            rows_out = sw_pos[src[ls[out]]] * K + ks[out] - 1
            flat = np.concatenate([rows_in, rows_out])
            cols = np.concatenate([vs[into], vs[out]])
            data = np.concatenate([np.ones(len(rows_in)),
                                   -np.ones(len(rows_out))])
            present = np.zeros(SW * K, dtype=bool)
            present[flat] = True
            row_of = np.cumsum(present) - 1
            model.add_constr_coo(row_of[flat], cols, data, 0.0, 0.0,
                                 num_rows=int(present.sum()))

    def _coo_capacity(self, model: Model, per_q, links, E: int, K: int,
                      ) -> None:
        """Per (link, epoch): total flow across commodities ≤ capacity."""
        present = np.zeros((E, K), dtype=bool)
        for _q, f_mask, *_rest in per_q:
            present |= f_mask
        flat_present = present.ravel()
        row_of = np.cumsum(flat_present) - 1
        row_parts, col_parts = [], []
        for _q, f_mask, f_idx, *_rest in per_q:
            ls, ks = np.nonzero(f_mask)
            row_parts.append(row_of[ls * K + ks])
            col_parts.append(f_idx[f_mask])
        rows = np.concatenate(row_parts)
        cols = np.concatenate(col_parts)
        caps = np.empty(int(flat_present.sum()))
        if self.config.capacity_fn is None:
            per_link = np.fromiter((self.plan.cap_chunks[link]
                                    for link in links),
                                   dtype=float, count=E)
            caps[:] = np.repeat(per_link, K)[flat_present]
        else:
            ls, ks = np.nonzero(present)
            for out, (l, k) in enumerate(zip(ls.tolist(), ks.tolist())):
                i, j = links[l]
                caps[out] = self._capacity_value(i, j, k)
        model.add_constr_coo(rows, cols, np.ones(len(rows)),
                             -np.inf, caps, num_rows=len(caps))

    def _coo_demand_met(self, model: Model, per_q, K: int) -> None:
        """Each sink reads exactly its demanded amount over the horizon."""
        rows, cols, amounts = [], [], []
        r = 0
        for q, _f_mask, _f_idx, _b_mask, _b_idx, sinks, r_mask, r_idx \
                in per_q:
            for s, d in enumerate(sinks):
                reads = r_idx[s][r_mask[s]]
                if not len(reads):
                    raise InfeasibleError(
                        f"sink {d} cannot be reached within the horizon",
                        status="horizon")
                cols.extend(reads.tolist())
                rows.extend([r] * len(reads))
                amounts.append(q.sinks[d])
                r += 1
        bounds = np.asarray(amounts, dtype=float)
        model.add_constr_coo(rows, cols, np.ones(len(cols)), bounds, bounds,
                             num_rows=r)

    def _coo_buffer_limit(self, model: Model, per_q, gpus, G: int, K: int,
                          ) -> None:
        limit = self.config.buffer_limit_chunks
        if limit is None:
            return
        row_parts, col_parts = [], []
        present = np.zeros(G * (K + 1), dtype=bool)
        for q, _f_mask, _f_idx, b_mask, b_idx, *_rest in per_q:
            relay = b_mask.copy()
            relay[gpus.index(q.origin), :] = False  # sources are exempt
            ns, ks = np.nonzero(relay)
            flat = ns * (K + 1) + ks
            present[flat] = True
            row_parts.append(flat)
            col_parts.append(b_idx[relay])
        row_of = np.cumsum(present) - 1
        rows = np.concatenate([row_of[flat] for flat in row_parts])
        cols = np.concatenate(col_parts)
        model.add_constr_coo(rows, cols, np.ones(len(rows)),
                             -np.inf, float(limit),
                             num_rows=int(present.sum()))

    def _coo_objective(self, model: Model, per_q) -> None:
        """Maximise weighted reads, earlier epochs worth more (1/(k+1))."""
        idx_parts, coef_parts = [], []
        priorities = self.config.priorities is not None
        for q, _f_mask, _f_idx, _b_mask, _b_idx, sinks, r_mask, r_idx \
                in per_q:
            ss, ks = np.nonzero(r_mask)
            if priorities and isinstance(q.key, tuple):
                s_id, chunk = q.key
                weights = np.fromiter(
                    (self.config.weight(s_id, chunk, d) for d in sinks),
                    dtype=float, count=len(sinks))
                coef_parts.append(weights[ss] / (ks + 1))
            else:
                coef_parts.append(1.0 / (ks + 1))
            idx_parts.append(r_idx[r_mask])
        model.set_objective_array(np.concatenate(idx_parts),
                                  np.concatenate(coef_parts))


# ----------------------------------------------------------------------
# facades
# ----------------------------------------------------------------------
def solve_lp(topology: Topology, demand: Demand, config: TecclConfig,
             *, aggregate: bool = True) -> LpOutcome:
    """Build and solve the LP; returns a pruned fractional schedule.

    Like :func:`repro.core.milp.solve_milp`, an automatically estimated
    horizon is retried with a doubled K if it proves infeasible (the bound
    is a heuristic).
    """
    auto = config.num_epochs is None
    if auto:
        probe = build_epoch_plan(topology, config, num_epochs=1)
        num_epochs = path_based_epoch_bound(topology, demand, probe)
    else:
        num_epochs = config.num_epochs
    attempts = 3 if auto else 1
    last_error: InfeasibleError | None = None
    for _ in range(attempts):
        plan = build_epoch_plan(topology, config, num_epochs=num_epochs)
        builder = LpBuilder(topology, demand, config, plan,
                            aggregate=aggregate)
        start = time.perf_counter()
        problem = builder.build()
        build_time = time.perf_counter() - start
        result = problem.model.solve(config.solver)
        result.stats["build_time"] = build_time
        result.stats["construction"] = problem.construction
        if result.status.has_solution:
            return extract_lp_outcome(problem, result)
        from repro.solver import SolveStatus

        if result.status is not SolveStatus.INFEASIBLE:
            result.require_solution()
        last_error = InfeasibleError(
            f"infeasible at horizon K={num_epochs}", status="horizon")
        num_epochs *= 2
    raise last_error


def extract_lp_outcome(problem: LpProblem, result: SolveResult) -> LpOutcome:
    flows = {key: result.value(var)
             for key, var in problem.f_vars.items()}
    reads = {key: result.value(var)
             for key, var in problem.r_vars.items()}
    raw = FlowSchedule(flows=flows, reads=reads, tau=problem.plan.tau,
                       chunk_bytes=problem.plan.chunk_bytes,
                       num_epochs=problem.plan.num_epochs)
    buffers = {key: result.value(var) for key, var in problem.b_vars.items()}
    pruned = prune_fractional(raw, problem.topology, problem.plan,
                              buffers=buffers)
    return LpOutcome(schedule=pruned, raw_schedule=raw, result=result,
                     plan=problem.plan,
                     finish_time=pruned.finish_time(problem.topology))


def lp_feasible_horizon(topology: Topology, demand: Demand,
                        config: TecclConfig, *, tau: float,
                        num_epochs: int) -> bool:
    """Feasibility probe used by Algorithm 1 (coarse grid, custom τ)."""
    plan = plan_with_tau(topology, config.chunk_bytes, tau, num_epochs)
    try:
        builder = LpBuilder(topology, demand, config, plan)
        problem = builder.build()
    except InfeasibleError:
        return False
    result = problem.model.solve(SolverOptions(time_limit=60))
    return result.status.has_solution


def minimize_epochs_lp(topology: Topology, demand: Demand,
                       config: TecclConfig, *, max_epochs: int | None = None,
                       ) -> LpOutcome:
    """Binary search for the smallest feasible horizon (§6 "TE-CCL variants").

    The paper runs the ALLTOALL solver in a loop, binary-searching the number
    of epochs; the returned schedule is the optimum for the minimal K.
    """
    if max_epochs is None:
        probe = build_epoch_plan(topology, config, num_epochs=1)
        max_epochs = path_based_epoch_bound(topology, demand, probe)
    lo, hi = 1, max_epochs
    best: LpOutcome | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        try:
            outcome = _try_horizon(topology, demand, config, mid)
        except InfeasibleError:
            outcome = None
        if outcome is not None:
            best = outcome
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        raise InfeasibleError(
            f"no feasible horizon up to K={max_epochs}", status="horizon")
    return best


def _try_horizon(topology: Topology, demand: Demand, config: TecclConfig,
                 num_epochs: int) -> LpOutcome | None:
    plan = build_epoch_plan(topology, config, num_epochs=num_epochs)
    builder = LpBuilder(topology, demand, config, plan)
    problem = builder.build()
    result = problem.model.solve(config.solver)
    if not result.status.has_solution:
        return None
    return extract_lp_outcome(problem, result)
